//! Baseline admission-control algorithms.

use acmr_core::{OnlineAdmission, Outcome, Request, RequestId};
use acmr_graph::{EdgeSet, LoadTracker};
use rand::Rng;

/// Accept a request iff it currently fits; never preempt.
///
/// The natural non-preemptive greedy: on a single capacity-`c` edge
/// with unit costs it is `(c+1)`-competitive (the flavour of the first
/// BKK algorithm). On general graphs it can be forced into `Ω(m)`.
pub struct GreedyNonPreemptive {
    load: LoadTracker,
}

impl GreedyNonPreemptive {
    /// Baseline over the given capacities.
    pub fn new(capacities: &[u32]) -> Self {
        GreedyNonPreemptive {
            load: LoadTracker::from_capacities(capacities.to_vec()),
        }
    }
}

impl OnlineAdmission for GreedyNonPreemptive {
    fn name(&self) -> &'static str {
        "greedy-nonpreemptive"
    }

    fn on_request(&mut self, _id: RequestId, request: &Request) -> Outcome {
        if self.load.fits(&request.footprint) {
            self.load.admit(&request.footprint);
            Outcome::accept()
        } else {
            Outcome::reject()
        }
    }
}

/// Preempt the cheapest conflicting requests when that is cheaper than
/// rejecting the newcomer.
///
/// For each over-subscribed edge of the newcomer's footprint the
/// cheapest accepted requests on that edge are marked as victims; the
/// newcomer is admitted iff the victims' total cost is strictly less
/// than its own cost (otherwise the newcomer is rejected).
pub struct PreemptCheapest {
    load: LoadTracker,
    accepted: Vec<Option<(EdgeSet, f64)>>, // footprint + cost while accepted
}

impl PreemptCheapest {
    /// Baseline over the given capacities.
    pub fn new(capacities: &[u32]) -> Self {
        PreemptCheapest {
            load: LoadTracker::from_capacities(capacities.to_vec()),
            accepted: Vec::new(),
        }
    }
}

impl OnlineAdmission for PreemptCheapest {
    fn name(&self) -> &'static str {
        "preempt-cheapest"
    }

    fn on_request(&mut self, id: RequestId, request: &Request) -> Outcome {
        debug_assert_eq!(id.index(), self.accepted.len());
        self.accepted.push(None);
        if self.load.fits(&request.footprint) {
            self.load.admit(&request.footprint);
            self.accepted[id.index()] = Some((request.footprint.clone(), request.cost));
            return Outcome::accept();
        }
        // Victim selection: for every saturated edge of the newcomer,
        // evict cheapest-first until one slot frees up.
        let mut victims: Vec<RequestId> = Vec::new();
        let mut victim_cost = 0.0;
        let mut planned: Vec<bool> = vec![false; self.accepted.len()];
        for e in request.footprint.iter() {
            let mut needed = (self.load.load(e) + 1).saturating_sub(self.load.capacity(e)) as i64;
            // Discount victims already planned on this edge.
            for (i, p) in planned.iter().enumerate() {
                if *p {
                    if let Some((fp, _)) = &self.accepted[i] {
                        if fp.contains(e) {
                            needed -= 1;
                        }
                    }
                }
            }
            if needed <= 0 {
                continue;
            }
            // Cheapest accepted requests on e.
            let mut on_edge: Vec<(usize, f64)> = self
                .accepted
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    slot.as_ref().and_then(|(fp, cost)| {
                        (!planned[i] && fp.contains(e)).then_some((i, *cost))
                    })
                })
                .collect();
            on_edge.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            for (i, cost) in on_edge.into_iter().take(needed as usize) {
                planned[i] = true;
                victims.push(RequestId(i as u32));
                victim_cost += cost;
            }
        }
        if victim_cost < request.cost && !victims.is_empty() {
            for v in &victims {
                let (fp, _) = self.accepted[v.index()].take().expect("victim accepted");
                self.load.release(&fp);
            }
            self.load.admit(&request.footprint);
            self.accepted[id.index()] = Some((request.footprint.clone(), request.cost));
            Outcome {
                accepted: true,
                preempted: victims,
            }
        } else {
            Outcome::reject()
        }
    }
}

/// Cancellation-cost ("buyback") admission: preempt only when the
/// newcomer's cost beats the victims' by the theorem's margin.
///
/// Models admission with *paid* cancellation after Ashwinkumar's
/// buyback problem: revoking an admitted request of cost `c` charges
/// an extra `f × c` on top of the lost value. The deterministic rule
/// that is optimally competitive there admits with cancellation iff
///
/// ```text
///     cost(newcomer) > (1 + δ) × Σ cost(victims),
///     δ = f + √(f(1 + f)),
/// ```
///
/// which yields the competitive ratio `1 + 2f + 2√(f(1+f))` (at
/// `f = 0` this degenerates to `preempt-cheapest`'s strict-improvement
/// rule with ratio 1 on a single edge's value game). Victim selection
/// is cheapest-first per saturated edge, exactly as in
/// [`PreemptCheapest`]; only the admission threshold differs. The
/// algorithm advertises its factor through
/// [`OnlineAdmission::buyback_factor`], so every [`acmr_core::Session`]
/// driving it bills the charges into `RunReport::buyback_paid`
/// automatically.
pub struct Buyback {
    load: LoadTracker,
    accepted: Vec<Option<(EdgeSet, f64)>>, // footprint + cost while accepted
    factor: f64,
    delta: f64,
}

impl Buyback {
    /// Buyback admission over the given capacities with cancellation
    /// factor `f ≥ 0` (finite; the caller validates).
    pub fn new(capacities: &[u32], factor: f64) -> Self {
        Buyback {
            load: LoadTracker::from_capacities(capacities.to_vec()),
            accepted: Vec::new(),
            factor,
            delta: factor + (factor * (1.0 + factor)).sqrt(),
        }
    }

    /// The preemption margin `δ = f + √(f(1+f))` in effect.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The theorem's competitive-ratio guarantee for factor `f`:
    /// `1 + 2f + 2√(f(1+f))`.
    pub fn guarantee(factor: f64) -> f64 {
        1.0 + 2.0 * factor + 2.0 * (factor * (1.0 + factor)).sqrt()
    }
}

impl OnlineAdmission for Buyback {
    fn name(&self) -> &'static str {
        "buyback"
    }

    fn buyback_factor(&self) -> f64 {
        self.factor
    }

    fn on_request(&mut self, id: RequestId, request: &Request) -> Outcome {
        debug_assert_eq!(id.index(), self.accepted.len());
        self.accepted.push(None);
        if self.load.fits(&request.footprint) {
            self.load.admit(&request.footprint);
            self.accepted[id.index()] = Some((request.footprint.clone(), request.cost));
            return Outcome::accept();
        }
        // Victim selection: cheapest-first per saturated edge, as in
        // PreemptCheapest.
        let mut victims: Vec<RequestId> = Vec::new();
        let mut victim_cost = 0.0;
        let mut planned: Vec<bool> = vec![false; self.accepted.len()];
        for e in request.footprint.iter() {
            let mut needed = (self.load.load(e) + 1).saturating_sub(self.load.capacity(e)) as i64;
            for (i, p) in planned.iter().enumerate() {
                if *p {
                    if let Some((fp, _)) = &self.accepted[i] {
                        if fp.contains(e) {
                            needed -= 1;
                        }
                    }
                }
            }
            if needed <= 0 {
                continue;
            }
            let mut on_edge: Vec<(usize, f64)> = self
                .accepted
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    slot.as_ref().and_then(|(fp, cost)| {
                        (!planned[i] && fp.contains(e)).then_some((i, *cost))
                    })
                })
                .collect();
            on_edge.sort_by(|a, b| a.1.total_cmp(&b.1));
            for (i, cost) in on_edge.into_iter().take(needed as usize) {
                planned[i] = true;
                victims.push(RequestId(i as u32));
                victim_cost += cost;
            }
        }
        // The buyback margin: an upgrade must beat the victims by a
        // (1 + δ) factor to amortize the cancellation charges.
        if !victims.is_empty() && request.cost > (1.0 + self.delta) * victim_cost {
            for v in &victims {
                let (fp, _) = self.accepted[v.index()].take().expect("victim accepted");
                self.load.release(&fp);
            }
            self.load.admit(&request.footprint);
            self.accepted[id.index()] = Some((request.footprint.clone(), request.cost));
            Outcome {
                accepted: true,
                preempted: victims,
            }
        } else {
            Outcome::reject()
        }
    }
}

/// Credit-based rejection in the spirit of BKK's `O(√m)` algorithm.
///
/// Non-preemptive. Every time a newcomer is rejected for lack of room,
/// each saturated edge on its footprint earns one credit. A newcomer
/// whose footprint touches an edge with at least `√m` credits is
/// rejected outright (its rejections have been "charged" to that edge),
/// which caps how often a single hot edge can force rejections to
/// spread — the charging idea underlying the `O(√m)` bound.
pub struct CreditSqrtM {
    load: LoadTracker,
    credits: Vec<u64>,
    cutoff: u64,
}

impl CreditSqrtM {
    /// Baseline over the given capacities.
    pub fn new(capacities: &[u32]) -> Self {
        let m = capacities.len();
        CreditSqrtM {
            load: LoadTracker::from_capacities(capacities.to_vec()),
            credits: vec![0; m],
            cutoff: ((m as f64).sqrt().ceil() as u64).max(1),
        }
    }

    /// The `√m` credit cut-off in effect.
    pub fn cutoff(&self) -> u64 {
        self.cutoff
    }
}

impl OnlineAdmission for CreditSqrtM {
    fn name(&self) -> &'static str {
        "credit-sqrt-m"
    }

    fn on_request(&mut self, _id: RequestId, request: &Request) -> Outcome {
        if request
            .footprint
            .iter()
            .any(|e| self.credits[e.index()] >= self.cutoff)
        {
            return Outcome::reject();
        }
        if self.load.fits(&request.footprint) {
            self.load.admit(&request.footprint);
            Outcome::accept()
        } else {
            for e in request.footprint.iter() {
                if self.load.residual(e) == 0 {
                    self.credits[e.index()] += 1;
                }
            }
            Outcome::reject()
        }
    }
}

/// Preempt uniformly random conflicting requests to make room — the
/// control baseline for E7.
pub struct RandomPreempt<R: Rng> {
    load: LoadTracker,
    accepted: Vec<Option<EdgeSet>>,
    rng: R,
}

impl<R: Rng> RandomPreempt<R> {
    /// Baseline over the given capacities.
    pub fn new(capacities: &[u32], rng: R) -> Self {
        RandomPreempt {
            load: LoadTracker::from_capacities(capacities.to_vec()),
            accepted: Vec::new(),
            rng,
        }
    }
}

impl<R: Rng> OnlineAdmission for RandomPreempt<R> {
    fn name(&self) -> &'static str {
        "random-preempt"
    }

    fn on_request(&mut self, id: RequestId, request: &Request) -> Outcome {
        debug_assert_eq!(id.index(), self.accepted.len());
        self.accepted.push(None);
        let mut victims: Vec<RequestId> = Vec::new();
        for e in request.footprint.iter() {
            while self.load.residual(e) == 0 {
                // Random accepted request on e (counting victims already
                // released frees this loop eventually).
                let on_edge: Vec<usize> = self
                    .accepted
                    .iter()
                    .enumerate()
                    .filter_map(|(i, slot)| {
                        slot.as_ref().and_then(|fp| fp.contains(e).then_some(i))
                    })
                    .collect();
                if on_edge.is_empty() {
                    // Capacity consumed by nothing we can evict (cannot
                    // happen with consistent state) — reject.
                    return Outcome {
                        accepted: false,
                        preempted: victims,
                    };
                }
                let pick = on_edge[self.rng.gen_range(0..on_edge.len())];
                let fp = self.accepted[pick].take().expect("victim accepted");
                self.load.release(&fp);
                victims.push(RequestId(pick as u32));
            }
        }
        self.load.admit(&request.footprint);
        self.accepted[id.index()] = Some(request.footprint.clone());
        Outcome {
            accepted: true,
            preempted: victims,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_graph::EdgeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    fn drive<A: OnlineAdmission>(
        alg: &mut A,
        caps: &[u32],
        arrivals: &[(&[u32], f64)],
    ) -> (Vec<bool>, f64) {
        let mut audit = LoadTracker::from_capacities(caps.to_vec());
        let mut accepted = vec![false; arrivals.len()];
        for (i, (edges, cost)) in arrivals.iter().enumerate() {
            let req = Request::new(fp(edges), *cost);
            let out = alg.on_request(RequestId(i as u32), &req);
            for p in &out.preempted {
                assert!(accepted[p.index()]);
                accepted[p.index()] = false;
                audit.release(&fp(arrivals[p.index()].0));
            }
            if out.accepted {
                accepted[i] = true;
                audit.admit(&req.footprint);
            }
        }
        let cost = arrivals
            .iter()
            .enumerate()
            .filter(|(i, _)| !accepted[*i])
            .map(|(_, (_, c))| *c)
            .sum();
        (accepted, cost)
    }

    #[test]
    fn greedy_accepts_first_come() {
        let caps = [1u32];
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0), (&[0], 100.0)];
        let mut alg = GreedyNonPreemptive::new(&caps);
        let (accepted, cost) = drive(&mut alg, &caps, &arrivals);
        assert!(accepted[0] && !accepted[1]);
        assert_eq!(cost, 100.0); // pays the expensive rejection
    }

    #[test]
    fn preempt_cheapest_evicts_for_expensive() {
        let caps = [1u32];
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0), (&[0], 100.0)];
        let mut alg = PreemptCheapest::new(&caps);
        let (accepted, cost) = drive(&mut alg, &caps, &arrivals);
        assert!(!accepted[0] && accepted[1]);
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn preempt_cheapest_multi_edge_conflict() {
        // Newcomer spans two saturated edges; it must evict one victim
        // per edge (here one request sits on each).
        let caps = [1u32, 1];
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 2.0), (&[1], 3.0), (&[0, 1], 100.0)];
        let mut alg = PreemptCheapest::new(&caps);
        let (accepted, cost) = drive(&mut alg, &caps, &arrivals);
        assert!(accepted[2]);
        assert_eq!(cost, 5.0);
    }

    #[test]
    fn preempt_cheapest_keeps_cheap_newcomer_out() {
        let caps = [1u32];
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 100.0), (&[0], 1.0)];
        let mut alg = PreemptCheapest::new(&caps);
        let (accepted, cost) = drive(&mut alg, &caps, &arrivals);
        assert!(accepted[0] && !accepted[1]);
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn buyback_upgrades_only_past_the_margin() {
        // f = 0.5 → δ = 0.5 + √0.75 ≈ 1.366, threshold ≈ 2.366 × victim.
        let caps = [1u32];
        let mut alg = Buyback::new(&caps, 0.5);
        let delta = alg.delta();
        assert!((delta - (0.5 + 0.75_f64.sqrt())).abs() < 1e-12);
        // 2× is below the margin: keep the squatter.
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0), (&[0], 2.0)];
        let (accepted, _) = drive(&mut alg, &caps, &arrivals);
        assert!(accepted[0] && !accepted[1]);
        // 3× clears it: upgrade.
        let mut alg = Buyback::new(&caps, 0.5);
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0), (&[0], 3.0)];
        let (accepted, cost) = drive(&mut alg, &caps, &arrivals);
        assert!(!accepted[0] && accepted[1]);
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn buyback_factor_zero_matches_preempt_cheapest_threshold() {
        // δ(0) = 0: any strict improvement upgrades, like
        // preempt-cheapest.
        let caps = [1u32];
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0), (&[0], 1.5)];
        let mut alg = Buyback::new(&caps, 0.0);
        assert_eq!(alg.delta(), 0.0);
        let (accepted, _) = drive(&mut alg, &caps, &arrivals);
        assert!(!accepted[0] && accepted[1]);
        assert_eq!(Buyback::guarantee(0.0), 1.0);
    }

    #[test]
    fn buyback_guarantee_formula() {
        // 1 + 2f + 2√(f(1+f)) at f = 1: 3 + 2√2.
        let g = Buyback::guarantee(1.0);
        assert!((g - (3.0 + 2.0 * 2.0_f64.sqrt())).abs() < 1e-12);
        assert!(Buyback::new(&[1], 1.0).buyback_factor() == 1.0);
    }

    #[test]
    fn buyback_multi_edge_conflict_counts_all_victims() {
        let caps = [1u32, 1];
        // Newcomer spans both saturated edges; victim cost is 5, so it
        // needs > (1+δ)·5 ≈ 11.83 at f = 0.5 — 100 clears easily.
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 2.0), (&[1], 3.0), (&[0, 1], 100.0)];
        let mut alg = Buyback::new(&caps, 0.5);
        let (accepted, cost) = drive(&mut alg, &caps, &arrivals);
        assert!(accepted[2]);
        assert_eq!(cost, 5.0);
        // At 10 < 11.83 it must hold back.
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 2.0), (&[1], 3.0), (&[0, 1], 10.0)];
        let mut alg = Buyback::new(&caps, 0.5);
        let (accepted, _) = drive(&mut alg, &caps, &arrivals);
        assert!(accepted[0] && accepted[1] && !accepted[2]);
    }

    #[test]
    fn credit_scheme_poisons_hot_edges() {
        let m = 9; // √m = 3
        let caps = vec![1u32; m];
        let mut alg = CreditSqrtM::new(&caps);
        assert_eq!(alg.cutoff(), 3);
        // Fill edge 0, then reject 3 times to charge it.
        let mut arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0); 5];
        // A request over edges {0,1}: edge 0 has ≥3 credits → auto-reject,
        // even though edge 1 is empty.
        arrivals.push((&[0, 1], 1.0));
        let (accepted, _) = drive(&mut alg, &caps, &arrivals);
        assert!(accepted[0]);
        assert!(
            !accepted[5],
            "poisoned edge must reject the spanning request"
        );
    }

    #[test]
    fn random_preempt_is_feasible_and_seeded() {
        let caps = [2u32, 2];
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0, 1], 1.0); 10];
        let r1 = {
            let mut alg = RandomPreempt::new(&caps, StdRng::seed_from_u64(5));
            drive(&mut alg, &caps, &arrivals)
        };
        let r2 = {
            let mut alg = RandomPreempt::new(&caps, StdRng::seed_from_u64(5));
            drive(&mut alg, &caps, &arrivals)
        };
        assert_eq!(r1.0, r2.0);
        assert_eq!(r1.0.iter().filter(|&&a| a).count(), 2);
    }

    #[test]
    fn all_baselines_accept_when_capacity_suffices() {
        let caps = [4u32, 4];
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0, 1], 3.0); 4];
        let (a1, c1) = drive(&mut GreedyNonPreemptive::new(&caps), &caps, &arrivals);
        let (a2, c2) = drive(&mut PreemptCheapest::new(&caps), &caps, &arrivals);
        let (a3, c3) = drive(&mut CreditSqrtM::new(&caps), &caps, &arrivals);
        let (a4, c4) = drive(
            &mut RandomPreempt::new(&caps, StdRng::seed_from_u64(1)),
            &caps,
            &arrivals,
        );
        for a in [a1, a2, a3, a4] {
            assert!(a.iter().all(|&x| x));
        }
        assert_eq!(c1 + c2 + c3 + c4, 0.0);
    }
}
