//! # acmr-baselines
//!
//! Baseline online algorithms the paper's contributions are compared
//! against in experiment **E7**.
//!
//! The prior state of the art for admission control to minimize
//! rejections is Blum, Kalai & Kleinberg (WADS 2001) — cited as \[10\]
//! by the paper — with two deterministic algorithms: one
//! `(c+1)`-competitive and one `O(√m)`-competitive. Their internals are
//! not reproduced in the SPAA 2005 text, so this crate provides
//! *documented reconstructions* in the same spirit: deterministic,
//! natural, and provably **not** polylogarithmic — exactly what E7
//! needs to exhibit the paper's asymptotic win.
//!
//! * [`GreedyNonPreemptive`] — accept iff it fits; never preempt. On a
//!   single edge this is `(c+1)`-competitive in the unweighted case
//!   (it rejects at most all `k` excess arrivals while OPT rejects
//!   `k − c` … within a `c+1` factor), the flavour of BKK's first
//!   algorithm.
//! * [`PreemptCheapest`] — make room for an expensive newcomer by
//!   evicting the cheapest evictable requests when that is cheaper
//!   than rejecting the newcomer. A natural cost-greedy heuristic.
//! * [`CreditSqrtM`] — credit/charging scheme: each edge accrues a
//!   credit per rejection it causes; a newcomer is rejected outright
//!   once an edge on its footprint has accumulated `√m` credits
//!   (BKK's `O(√m)` flavour: spreading charges over edges).
//! * [`RandomPreempt`] — preempt uniformly random victims; the control
//!   baseline.
//! * [`Buyback`] — cancellation-cost admission after Ashwinkumar's
//!   buyback problem: preempting an admitted request of cost `c` pays
//!   an extra `f × c`, so an upgrade must beat its victims by a
//!   `(1 + δ)` margin, `δ = f + √(f(1+f))`; the deterministic rule is
//!   `1 + 2f + 2√(f(1+f))`-competitive on the single-resource value
//!   game, and the session bills its charges into
//!   `RunReport::buyback_paid`.
//!
//! Beyond the worst-case baselines, [`stochastic`] holds the
//! production-shaped policies benchmarked in E18: [`LpResolve`]
//! (periodic fluid re-solve against buffered allocations via
//! `acmr-lp`) and [`LcbGreedy`] (lower-confidence-bound demand guard).
//! They trade the adversarial guarantee for a better rejection rate on
//! stochastic traffic.
//!
//! Also here:
//! * [`setcover::NaiveOnlineCover`] — buy the cheapest uncovered set
//!   per arrival (the trivial online set-cover baseline).
//! * [`setcover::offline_greedy_multicover`] — offline greedy
//!   (Chvátal), the classic `H_n`-approximation used as an OPT proxy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod registry;
pub mod setcover;
pub mod stochastic;

pub use admission::{Buyback, CreditSqrtM, GreedyNonPreemptive, PreemptCheapest, RandomPreempt};
pub use registry::register_baselines;
pub use setcover::NaiveOnlineCover;
pub use stochastic::{LcbGreedy, LpResolve};
