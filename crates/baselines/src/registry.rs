//! Registry registration for the baseline algorithms.

use crate::admission::{CreditSqrtM, GreedyNonPreemptive, PreemptCheapest, RandomPreempt};
use acmr_core::registry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Register every baseline admission algorithm:
/// `greedy`, `preempt-cheapest`, `credit-sqrt-m`, `random-preempt`.
///
/// None of them take tuning parameters; only the shared `seed` key is
/// accepted (and only `random-preempt` consumes randomness).
pub fn register_baselines(reg: &mut Registry) {
    reg.register(
        "greedy",
        "FCFS non-preemptive greedy: accept iff it fits (BKK's (c+1)-competitive flavour)",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed"])?;
            Ok(Box::new(GreedyNonPreemptive::new(ctx.capacities)))
        }),
    );
    reg.register(
        "preempt-cheapest",
        "evict cheapest conflicting requests when cheaper than rejecting the newcomer",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed"])?;
            Ok(Box::new(PreemptCheapest::new(ctx.capacities)))
        }),
    );
    reg.register(
        "credit-sqrt-m",
        "credit/charging scheme in the spirit of BKK's O(sqrt m) algorithm",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed"])?;
            Ok(Box::new(CreditSqrtM::new(ctx.capacities)))
        }),
    );
    reg.register(
        "random-preempt",
        "preempt uniformly random victims to make room (control baseline)",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed"])?;
            let seed = ctx.effective_seed(spec)?;
            Ok(Box::new(RandomPreempt::new(
                ctx.capacities,
                StdRng::seed_from_u64(seed),
            )))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_core::registry::BuildCtx;
    use acmr_core::{OnlineAdmission as _, Request, RequestId};
    use acmr_graph::{EdgeId, EdgeSet};

    #[test]
    fn all_baselines_register_and_build() {
        let mut reg = Registry::new();
        register_baselines(&mut reg);
        assert_eq!(
            reg.names(),
            vec![
                "credit-sqrt-m",
                "greedy",
                "preempt-cheapest",
                "random-preempt"
            ]
        );
        let caps = vec![2u32, 2];
        let ctx = BuildCtx::new(&caps).with_seed(1);
        for name in reg.names() {
            let mut alg = reg.build(name, &ctx).unwrap();
            let req = Request::unit(EdgeSet::singleton(EdgeId(0)));
            assert!(alg.on_request(RequestId(0), &req).accepted, "{name}");
        }
    }

    #[test]
    fn random_preempt_is_reproducible_from_spec_seed() {
        let mut reg = Registry::new();
        register_baselines(&mut reg);
        let caps = vec![1u32];
        let ctx = BuildCtx::new(&caps);
        let drive = |mut alg: Box<dyn acmr_core::OnlineAdmission>| -> Vec<bool> {
            (0..6)
                .map(|i| {
                    let req = Request::unit(EdgeSet::singleton(EdgeId(0)));
                    alg.on_request(RequestId(i), &req).accepted
                })
                .collect()
        };
        let a = drive(reg.build("random-preempt?seed=9", &ctx).unwrap());
        let b = drive(reg.build("random-preempt?seed=9", &ctx).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn tuning_params_are_rejected() {
        let mut reg = Registry::new();
        register_baselines(&mut reg);
        let caps = vec![1u32];
        assert!(reg
            .build("greedy?threshold=2", &BuildCtx::new(&caps))
            .is_err());
    }
}
