//! Registry registration for the baseline algorithms.

use crate::admission::{Buyback, CreditSqrtM, GreedyNonPreemptive, PreemptCheapest, RandomPreempt};
use crate::stochastic::{LcbGreedy, LpResolve};
use acmr_core::registry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Register every baseline admission algorithm — the worst-case
/// baselines `greedy`, `preempt-cheapest`, `credit-sqrt-m`,
/// `random-preempt`, the cancellation-cost policy `buyback`
/// (`?factor=`), and the stochastic policies `lp-resolve`
/// (`?period=`, `?buffer=`) and `lcb-greedy` (`?delta=`).
///
/// The worst-case baselines take no tuning parameters; only the shared
/// `seed` key is accepted (and only `random-preempt` consumes
/// randomness). The tunable policies are deterministic:
/// `buyback?factor=0.5`, `lp-resolve?period=1024&buffer=0.05`,
/// `lcb-greedy?delta=0.05`.
pub fn register_baselines(reg: &mut Registry) {
    reg.register(
        "greedy",
        "FCFS non-preemptive greedy: accept iff it fits (BKK's (c+1)-competitive flavour)",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed"])?;
            Ok(Box::new(GreedyNonPreemptive::new(ctx.capacities)))
        }),
    );
    reg.register(
        "preempt-cheapest",
        "evict cheapest conflicting requests when cheaper than rejecting the newcomer",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed"])?;
            Ok(Box::new(PreemptCheapest::new(ctx.capacities)))
        }),
    );
    reg.register(
        "credit-sqrt-m",
        "credit/charging scheme in the spirit of BKK's O(sqrt m) algorithm",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed"])?;
            Ok(Box::new(CreditSqrtM::new(ctx.capacities)))
        }),
    );
    reg.register(
        "random-preempt",
        "preempt uniformly random victims to make room (control baseline)",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed"])?;
            let seed = ctx.effective_seed(spec)?;
            Ok(Box::new(RandomPreempt::new(
                ctx.capacities,
                StdRng::seed_from_u64(seed),
            )))
        }),
    );
    reg.register(
        "buyback",
        "cancellation-cost admission: upgrade past the (1+delta) margin, pay factor*cost per preemption",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed", "factor"])?;
            let factor = spec.get::<f64>("factor")?.unwrap_or(0.5);
            if !factor.is_finite() || factor < 0.0 {
                return Err(acmr_core::AcmrError::BadParam {
                    key: "factor".into(),
                    value: factor.to_string(),
                    reason: "must be finite and >= 0".into(),
                });
            }
            Ok(Box::new(Buyback::new(ctx.capacities, factor)))
        }),
    );
    reg.register(
        "lp-resolve",
        "periodic fluid LP re-solve; plan-enforcing preemptive admission",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed", "period", "buffer"])?;
            let period = spec.get::<u32>("period")?.unwrap_or(128);
            let buffer = spec.get::<f64>("buffer")?.unwrap_or(0.05);
            if period == 0 {
                return Err(acmr_core::AcmrError::BadParam {
                    key: "period".into(),
                    value: "0".into(),
                    reason: "must be >= 1".into(),
                });
            }
            if !(0.0..1.0).contains(&buffer) {
                return Err(acmr_core::AcmrError::BadParam {
                    key: "buffer".into(),
                    value: buffer.to_string(),
                    reason: "must be in [0,1)".into(),
                });
            }
            Ok(Box::new(LpResolve::new(ctx.capacities, period, buffer)))
        }),
    );
    reg.register(
        "lcb-greedy",
        "greedy with a lower-confidence-bound demand guard on contested edges",
        Box::new(|spec, ctx| {
            spec.reject_unknown_params(&["seed", "delta"])?;
            let delta = spec.get::<f64>("delta")?.unwrap_or(0.05);
            if !(0.0..1.0).contains(&delta) {
                return Err(acmr_core::AcmrError::BadParam {
                    key: "delta".into(),
                    value: delta.to_string(),
                    reason: "must be in [0,1)".into(),
                });
            }
            Ok(Box::new(LcbGreedy::new(ctx.capacities, delta)))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_core::registry::BuildCtx;
    use acmr_core::{OnlineAdmission as _, Request, RequestId};
    use acmr_graph::{EdgeId, EdgeSet};

    #[test]
    fn all_baselines_register_and_build() {
        let mut reg = Registry::new();
        register_baselines(&mut reg);
        assert_eq!(
            reg.names(),
            vec![
                "buyback",
                "credit-sqrt-m",
                "greedy",
                "lcb-greedy",
                "lp-resolve",
                "preempt-cheapest",
                "random-preempt"
            ]
        );
        let caps = vec![2u32, 2];
        let ctx = BuildCtx::new(&caps).with_seed(1);
        for name in reg.names() {
            let mut alg = reg.build(name, &ctx).unwrap();
            let req = Request::unit(EdgeSet::singleton(EdgeId(0)));
            assert!(alg.on_request(RequestId(0), &req).accepted, "{name}");
        }
    }

    #[test]
    fn random_preempt_is_reproducible_from_spec_seed() {
        let mut reg = Registry::new();
        register_baselines(&mut reg);
        let caps = vec![1u32];
        let ctx = BuildCtx::new(&caps);
        let drive = |mut alg: Box<dyn acmr_core::OnlineAdmission>| -> Vec<bool> {
            (0..6)
                .map(|i| {
                    let req = Request::unit(EdgeSet::singleton(EdgeId(0)));
                    alg.on_request(RequestId(i), &req).accepted
                })
                .collect()
        };
        let a = drive(reg.build("random-preempt?seed=9", &ctx).unwrap());
        let b = drive(reg.build("random-preempt?seed=9", &ctx).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn tuning_params_are_rejected() {
        let mut reg = Registry::new();
        register_baselines(&mut reg);
        let caps = vec![1u32];
        assert!(reg
            .build("greedy?threshold=2", &BuildCtx::new(&caps))
            .is_err());
    }

    #[test]
    fn stochastic_policy_params_parse_and_validate() {
        let mut reg = Registry::new();
        register_baselines(&mut reg);
        let caps = vec![2u32, 2];
        let ctx = BuildCtx::new(&caps);
        assert!(reg
            .build("lp-resolve?period=1024&buffer=0.05", &ctx)
            .is_ok());
        assert!(reg.build("lcb-greedy?delta=0.05", &ctx).is_ok());
        // Out-of-range values are typed errors, not silent clamps.
        assert!(reg.build("lp-resolve?period=0", &ctx).is_err());
        assert!(reg.build("lp-resolve?buffer=1.5", &ctx).is_err());
        assert!(reg.build("lcb-greedy?delta=2", &ctx).is_err());
        // Unknown keys rejected like everywhere else.
        assert!(reg.build("lp-resolve?horizon=9", &ctx).is_err());
    }

    #[test]
    fn buyback_factor_parses_and_validates() {
        let mut reg = Registry::new();
        register_baselines(&mut reg);
        let caps = vec![2u32, 2];
        let ctx = BuildCtx::new(&caps);
        // Valid factors, including 0 (free preemption).
        for spec in ["buyback", "buyback?factor=0", "buyback?factor=1.5"] {
            assert!(reg.build(spec, &ctx).is_ok(), "{spec}");
        }
        // The built algorithm advertises its factor to the session.
        let alg = reg.build("buyback?factor=0.25", &ctx).unwrap();
        assert_eq!(alg.buyback_factor(), 0.25);
        let alg = reg.build("buyback", &ctx).unwrap();
        assert_eq!(alg.buyback_factor(), 0.5, "default factor");
        // Bad factors are typed errors, not silent clamps.
        for spec in [
            "buyback?factor=-1",
            "buyback?factor=nan",
            "buyback?factor=inf",
        ] {
            assert!(reg.build(spec, &ctx).is_err(), "{spec}");
        }
        // Unknown keys rejected like everywhere else.
        assert!(reg.build("buyback?margin=2", &ctx).is_err());
    }
}
