//! Baseline set-cover algorithms: the naive online rule and the
//! classic offline greedy (the paper's `Θ(log n)` offline benchmark,
//! Chvátal \[12\]).

use acmr_core::setcover::{OnlineSetCover, SetId, SetSystem};

/// Naive online multicover: on each arrival of `j`, if coverage is
/// short, buy the cheapest unbought set containing `j`.
///
/// Simple, exact on coverage, but its cost can be `Ω(min(m, n))` times
/// optimal (it never exploits overlap between elements) — the natural
/// strawman for E5/E7.
pub struct NaiveOnlineCover {
    system: SetSystem,
    bought: Vec<bool>,
    bought_order: Vec<SetId>,
    arrivals: Vec<u32>,
}

impl NaiveOnlineCover {
    /// Baseline over `system`.
    pub fn new(system: SetSystem) -> Self {
        NaiveOnlineCover {
            bought: vec![false; system.num_sets()],
            bought_order: Vec::new(),
            arrivals: vec![0; system.num_elements()],
            system,
        }
    }

    /// Sets bought so far, in purchase order.
    pub fn bought(&self) -> &[SetId] {
        &self.bought_order
    }

    /// Total cost of bought sets.
    pub fn total_cost(&self) -> f64 {
        self.system.total_cost(&self.bought_order)
    }

    /// Current coverage of an element.
    pub fn coverage(&self, element: u32) -> usize {
        self.system
            .sets_containing(element)
            .iter()
            .filter(|s| self.bought[s.index()])
            .count()
    }
}

impl OnlineSetCover for NaiveOnlineCover {
    fn name(&self) -> &'static str {
        "naive-online"
    }

    fn on_arrival(&mut self, element: u32) -> Vec<SetId> {
        self.arrivals[element as usize] += 1;
        let k = self.arrivals[element as usize] as usize;
        assert!(
            k <= self.system.degree(element),
            "element {element} arrived more times than its degree"
        );
        let mut new = Vec::new();
        while self.coverage(element) < k {
            let cheapest = self
                .system
                .sets_containing(element)
                .iter()
                .filter(|s| !self.bought[s.index()])
                .copied()
                .min_by(|a, b| {
                    self.system
                        .cost(*a)
                        .partial_cmp(&self.system.cost(*b))
                        .unwrap()
                })
                .expect("degree bound guarantees an unbought set");
            self.bought[cheapest.index()] = true;
            self.bought_order.push(cheapest);
            new.push(cheapest);
        }
        new
    }
}

/// Offline greedy multicover (Chvátal): repeatedly buy the set with
/// the best cost per unit of residual demand. `H_n`-approximate;
/// used as the large-instance OPT proxy.
///
/// `demands[j]` is how many distinct sets must cover element `j`.
/// Returns the bought sets, or `None` if `demands[j] > deg(j)` for
/// some element.
pub fn offline_greedy_multicover(system: &SetSystem, demands: &[u32]) -> Option<Vec<SetId>> {
    assert_eq!(demands.len(), system.num_elements());
    for (j, &d) in demands.iter().enumerate() {
        if d as usize > system.degree(j as u32) {
            return None;
        }
    }
    let mut residual: Vec<u32> = demands.to_vec();
    let mut open: u64 = residual.iter().map(|&d| d as u64).sum();
    let mut bought = vec![false; system.num_sets()];
    let mut order = Vec::new();
    while open > 0 {
        let mut best: Option<(SetId, f64)> = None;
        for (i, &already) in bought.iter().enumerate() {
            if already {
                continue;
            }
            let s = SetId(i as u32);
            let coverage = system
                .elements_of(s)
                .iter()
                .filter(|&&j| residual[j as usize] > 0)
                .count() as f64;
            if coverage == 0.0 {
                continue;
            }
            let density = system.cost(s) / coverage;
            if best.is_none() || density < best.unwrap().1 {
                best = Some((s, density));
            }
        }
        let (s, _) = best.expect("feasible demands always leave a helpful set");
        bought[s.index()] = true;
        order.push(s);
        for &j in system.elements_of(s) {
            if residual[j as usize] > 0 {
                residual[j as usize] -= 1;
                open -= 1;
            }
        }
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SetSystem {
        SetSystem::new(
            3,
            vec![vec![0], vec![1], vec![2], vec![0, 1, 2]],
            vec![1.0, 1.0, 1.0, 1.5],
        )
    }

    #[test]
    fn naive_buys_cheapest_per_element() {
        let mut alg = NaiveOnlineCover::new(sys());
        alg.on_arrival(0);
        // Cheapest set containing 0 is set 0 (cost 1 < 1.5).
        assert_eq!(alg.bought(), &[SetId(0)]);
        alg.on_arrival(1);
        alg.on_arrival(2);
        assert_eq!(alg.total_cost(), 3.0); // vs OPT 1.5 — the strawman gap
    }

    #[test]
    fn naive_handles_repetitions() {
        let mut alg = NaiveOnlineCover::new(sys());
        alg.on_arrival(0);
        alg.on_arrival(0); // needs a second distinct set: the big one
        assert_eq!(alg.coverage(0), 2);
        assert_eq!(alg.total_cost(), 2.5);
    }

    #[test]
    #[should_panic(expected = "more times than its degree")]
    fn naive_rejects_uncoverable() {
        let mut alg = NaiveOnlineCover::new(sys());
        alg.on_arrival(0);
        alg.on_arrival(0);
        alg.on_arrival(0); // deg(0) = 2
    }

    #[test]
    fn offline_greedy_prefers_dense_sets() {
        let order = offline_greedy_multicover(&sys(), &[1, 1, 1]).unwrap();
        assert_eq!(order, vec![SetId(3)]); // density 0.5 beats 1.0
    }

    #[test]
    fn offline_greedy_multicover_demands() {
        let order = offline_greedy_multicover(&sys(), &[2, 0, 0]).unwrap();
        assert_eq!(order.len(), 2); // both sets containing element 0
    }

    #[test]
    fn offline_greedy_infeasible_none() {
        assert!(offline_greedy_multicover(&sys(), &[3, 0, 0]).is_none());
    }

    #[test]
    fn offline_greedy_zero_demand_empty() {
        let order = offline_greedy_multicover(&sys(), &[0, 0, 0]).unwrap();
        assert!(order.is_empty());
    }
}
