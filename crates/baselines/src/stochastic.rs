//! Production-shaped stochastic serving policies.
//!
//! The paper's algorithms defend against an adversary; real traffic is
//! stochastic. These two policies exploit that: they *learn* the
//! arrival mix and spend capacity where the observed value density is,
//! instead of hedging against the worst case.
//!
//! * [`LpResolve`] — periodically re-solves the fluid relaxation of
//!   the admission LP (via `acmr-lp`'s simplex) over the request
//!   classes observed in the last window, then *enforces* the
//!   resulting class plan by preemption: requests from classes the LP
//!   allocated capacity to may evict squatters from classes it zeroed
//!   out, even when the myopic cost comparison says otherwise.
//! * [`LcbGreedy`] — tracks per-edge empirical demand and admits a
//!   request when the lower confidence bound on future demand keeps
//!   every edge of its footprint feasible; on contested edges only
//!   above-average-density requests get the remaining slots.
//!
//! Both are *hard-feasible*: a request is only admitted into capacity
//! that is actually free (freed by plan-enforcing preemption if need
//! be), so the harness referee can never catch them over-committing an
//! edge.

use std::collections::BTreeMap;

use acmr_core::{OnlineAdmission, Outcome, Request, RequestId};
use acmr_graph::{EdgeSet, LoadTracker};
use acmr_lp::{solve, Cmp, Lp};

/// Request classes are `(width, ⌊log₂ cost⌋)` buckets — coarse enough
/// that the mix observed in one window predicts the next, fine enough
/// to separate value densities.
type ClassKey = (u32, i32);

#[derive(Clone, Default)]
struct ClassStats {
    count: u32,
    cost_sum: f64,
    /// Edge touch counts accumulated over the class's arrivals — the
    /// class's empirical footprint distribution.
    edge_hits: BTreeMap<u32, u32>,
}

struct PlanEntry {
    /// Fractional admit budget for the class over the next window
    /// (`x_j · n_j` from the LP, in request counts).
    quota: f64,
    /// Admits already charged against the quota this window.
    used: u32,
}

/// Periodic fluid re-solve: observe a window of arrivals, bucket them
/// into `(width, cost-band)` classes, solve the fractional relaxation
/// `max Σ_j value_j·x_j  s.t.  Σ_j x_j·hits_{j,e} ≤ (1−buffer)·cap_e`
/// (where `hits_{j,e}` is class `j`'s empirical touch count on edge
/// `e`), then *enforce* the resulting class quotas by preemption.
///
/// Admission is optimistic: anything that fits is admitted, because
/// squatters stay evictable. When a request does not fit, two eviction
/// routes are tried in order:
///
/// 1. **Cost-gated swap** — cheapest victims over all accepted
///    requests, taken when their total cost is below the newcomer's
///    (decision-identical to the preempt-cheapest baseline).
/// 2. **Plan enforcement** — when the myopic gate refuses but the
///    request's class still has LP quota this window, lower-density
///    squatters from classes the LP *zeroed out* may be evicted even
///    though they cost more than the newcomer: the swap is taken when
///    the width it frees, valued at the plan's mean admitted density,
///    earns back the immediate cost deficit. This is the move a
///    myopic preemptor can never make, and it is what reclaims wide
///    low-density squatters for the value-dense classes.
///
/// Before the first window completes there is no plan, so the policy
/// is decision-for-decision the preempt-cheapest baseline; each
/// re-solve then layers the learned reclamation on top.
pub struct LpResolve {
    load: LoadTracker,
    period: u32,
    buffer: f64,
    seen: u32,
    window: BTreeMap<ClassKey, ClassStats>,
    plan: BTreeMap<ClassKey, PlanEntry>,
    /// Mean admitted value density under the current plan — planned
    /// value per planned edge-slot. This approximates the price of an
    /// edge slot and is what a freed slot is expected to earn back.
    price: f64,
    /// Footprint, cost and class of each currently-accepted request.
    accepted: Vec<Option<(EdgeSet, f64, ClassKey)>>,
}

fn class_key(request: &Request) -> ClassKey {
    let width = request.footprint.len() as u32;
    let band = if request.cost > 0.0 {
        request.cost.log2().floor() as i32
    } else {
        i32::MIN
    };
    (width, band)
}

impl LpResolve {
    /// Policy over the given capacities; re-solve every `period`
    /// arrivals, holding back a `buffer` fraction of capacity.
    pub fn new(capacities: &[u32], period: u32, buffer: f64) -> Self {
        assert!(period >= 1, "period must be >= 1");
        assert!((0.0..1.0).contains(&buffer), "buffer must be in [0,1)");
        LpResolve {
            load: LoadTracker::from_capacities(capacities.to_vec()),
            period,
            buffer,
            seen: 0,
            window: BTreeMap::new(),
            plan: BTreeMap::new(),
            price: 0.0,
            accepted: Vec::new(),
        }
    }

    /// Pick cheapest-first victims freeing the newcomer's footprint.
    /// With `plan_only` the candidate pool is restricted to accepted
    /// requests from classes the current plan zeroed out (plan
    /// enforcement); otherwise every accepted request is fair game
    /// (preempt-cheapest fallback). Returns `None` if some saturated
    /// edge cannot be freed from the allowed pool.
    fn victims(&self, request: &Request, plan_only: bool) -> Option<(Vec<RequestId>, f64)> {
        let mut victims: Vec<RequestId> = Vec::new();
        let mut victim_cost = 0.0;
        let mut taken: Vec<bool> = vec![false; self.accepted.len()];
        for e in request.footprint.iter() {
            let mut needed = (self.load.load(e) + 1).saturating_sub(self.load.capacity(e)) as i64;
            for (i, t) in taken.iter().enumerate() {
                if *t {
                    if let Some((fp, _, _)) = &self.accepted[i] {
                        if fp.contains(e) {
                            needed -= 1;
                        }
                    }
                }
            }
            if needed <= 0 {
                continue;
            }
            // Plan enforcement targets low-*density* squatters (a wide
            // cheap request is the first to go); the cost-gated
            // fallback stays cheapest-first like preempt-cheapest.
            let mut on_edge: Vec<(usize, f64, f64)> = self
                .accepted
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    slot.as_ref().and_then(|(fp, cost, class)| {
                        let density = *cost / fp.len().max(1) as f64;
                        (!taken[i]
                            && fp.contains(e)
                            && (!plan_only
                                || (!self.plan.contains_key(class)
                                    && density
                                        < request.cost / request.footprint.len().max(1) as f64)))
                            .then_some((i, *cost, density))
                    })
                })
                .collect();
            if (on_edge.len() as i64) < needed {
                return None;
            }
            on_edge.sort_by(|a, b| {
                let (ka, kb) = if plan_only { (a.2, b.2) } else { (a.1, b.1) };
                ka.partial_cmp(&kb).unwrap().then(a.0.cmp(&b.0))
            });
            for (i, cost, _) in on_edge.into_iter().take(needed as usize) {
                taken[i] = true;
                victims.push(RequestId(i as u32));
                victim_cost += cost;
            }
        }
        (!victims.is_empty()).then_some((victims, victim_cost))
    }

    fn resolve(&mut self) {
        let m = self.load.num_edges();
        let mut budget = vec![0.0f64; m];
        for (e, b) in budget.iter_mut().enumerate() {
            let id = acmr_graph::EdgeId(e as u32);
            // Budget against *total* capacity: the plan is enforced by
            // preemption, so currently-held slots are still plannable.
            *b = (1.0 - self.buffer) * self.load.capacity(id) as f64;
        }
        // BTreeMap iteration is key-ordered → variable order (and hence
        // the pivot path and any tie-breaks) is deterministic.
        let classes: Vec<(ClassKey, ClassStats)> =
            self.window.iter().map(|(k, s)| (*k, s.clone())).collect();
        self.plan.clear();
        if classes.is_empty() {
            self.window.clear();
            return;
        }
        // Maximize admitted value → minimize its negation (x ≥ 0 is
        // implicit; x_j ≤ 1 are explicit rows).
        let objective: Vec<f64> = classes.iter().map(|(_, s)| -s.cost_sum).collect();
        let mut lp = Lp::new(objective);
        for (j, _) in classes.iter().enumerate() {
            lp.push(vec![(j, 1.0)], Cmp::Le, 1.0);
        }
        let mut rows: BTreeMap<u32, Vec<(usize, f64)>> = BTreeMap::new();
        for (j, (_, stats)) in classes.iter().enumerate() {
            for (&e, &hits) in &stats.edge_hits {
                rows.entry(e).or_default().push((j, hits as f64));
            }
        }
        for (e, coeffs) in rows {
            lp.push(coeffs, Cmp::Le, budget[e as usize]);
        }
        let Ok(sol) = solve(&lp) else {
            // x = 0 is always feasible, so failure here means a numeric
            // corner; keep no plan and run as preempt-cheapest.
            self.window.clear();
            return;
        };
        let (mut planned_value, mut planned_slots) = (0.0f64, 0.0f64);
        for (j, (key, stats)) in classes.iter().enumerate() {
            let x = sol.x[j].clamp(0.0, 1.0);
            let quota = x * stats.count as f64;
            if quota > 1e-9 {
                planned_value += x * stats.cost_sum;
                planned_slots += quota * key.0.max(1) as f64;
                self.plan.insert(*key, PlanEntry { quota, used: 0 });
            }
        }
        self.price = if planned_slots > 0.0 {
            planned_value / planned_slots
        } else {
            0.0
        };
        self.window.clear();
    }
}

impl OnlineAdmission for LpResolve {
    fn name(&self) -> &'static str {
        "lp-resolve"
    }

    fn on_request(&mut self, id: RequestId, request: &Request) -> Outcome {
        debug_assert_eq!(id.index(), self.accepted.len());
        self.accepted.push(None);
        let key = class_key(request);
        let s = self.window.entry(key).or_default();
        s.count += 1;
        s.cost_sum += request.cost;
        for e in request.footprint.iter() {
            *s.edge_hits.entry(e.0).or_default() += 1;
        }
        self.seen += 1;
        let mut preempted: Vec<RequestId> = Vec::new();
        // Quota lookup by bucketed class — the request's own footprint
        // only matters for the capacity checks.
        let on_plan = matches!(
            self.plan.get(&key),
            Some(entry) if (entry.used as f64) + 1.0 <= entry.quota + 1e-9
        );
        let admit = if self.load.fits(&request.footprint) {
            // Optimistic: whatever fits is admitted — it stays
            // evictable, so accepting is a free option.
            true
        } else {
            // The cost-gated cheapest-first swap (decision-identical
            // to preempt-cheapest) goes first; plan enforcement only
            // rescues admits the myopic gate rejects, and only when
            // the width it frees, valued at the plan's marginal
            // density, earns back the immediate cost deficit.
            let chosen = self
                .victims(request, false)
                .filter(|(_, cost)| *cost < request.cost)
                .or_else(|| {
                    if !on_plan {
                        return None;
                    }
                    self.victims(request, true).filter(|(victims, cost)| {
                        let width: usize = victims
                            .iter()
                            .filter_map(|v| self.accepted[v.index()].as_ref())
                            .map(|(fp, _, _)| fp.len())
                            .sum();
                        let freed = width as f64 - request.footprint.len() as f64;
                        *cost < request.cost + 0.5 * self.price * freed
                    })
                });
            if let Some((victims, _)) = chosen {
                for v in &victims {
                    let (fp, _, _) = self.accepted[v.index()].take().expect("victim accepted");
                    self.load.release(&fp);
                }
                preempted = victims;
                true
            } else {
                false
            }
        };
        if admit {
            if on_plan {
                self.plan.get_mut(&key).expect("on-plan entry").used += 1;
            }
            self.load.admit(&request.footprint);
            self.accepted[id.index()] = Some((request.footprint.clone(), request.cost, key));
        }
        if self.seen.is_multiple_of(self.period) {
            self.resolve();
        }
        Outcome {
            accepted: admit,
            preempted,
        }
    }
}

/// LCB-guarded greedy: admit while the lower confidence bound on
/// future demand keeps every footprint edge feasible; once an edge is
/// contested, hold its remaining slots for above-average-value
/// requests.
///
/// Per edge `e` the policy tracks the empirical arrival frequency
/// `p̂_e` and mean request cost `ĉ_e`. With Hoeffding radius
/// `r = √(ln(1/δ)/2n)` the lower confidence bound is
/// `LCB_e = max(0, p̂_e − r)`; projecting it over a horizon of as many
/// arrivals as seen so far, edge `e` is *contested* when
/// `LCB_e · n > residual_e − 1`. Uncontested footprints are admitted
/// outright; contested ones only when the request's value *density*
/// (cost per edge-slot) is strictly above the contested edges' running
/// mean density — the packing-aware gate: a narrow expensive request
/// outbids a wide cheap one for the last slots.
///
/// At `δ = 0` the radius is infinite, every LCB collapses to zero and
/// the guard never fires — the policy is decision-for-decision the
/// plain FCFS greedy. Confidence ramps in smoothly as `δ` grows.
pub struct LcbGreedy {
    load: LoadTracker,
    delta: f64,
    n: u64,
    hits: Vec<u64>,
    density_sum: Vec<f64>,
}

impl LcbGreedy {
    /// Policy over the given capacities with confidence parameter
    /// `delta` in `[0, 1)`.
    pub fn new(capacities: &[u32], delta: f64) -> Self {
        assert!((0.0..1.0).contains(&delta), "delta must be in [0,1)");
        let m = capacities.len();
        LcbGreedy {
            load: LoadTracker::from_capacities(capacities.to_vec()),
            delta,
            n: 0,
            hits: vec![0; m],
            density_sum: vec![0.0; m],
        }
    }

    /// Lower confidence bound on the arrival frequency of edge `e`.
    fn lcb(&self, e: usize) -> f64 {
        if self.n == 0 || self.delta <= 0.0 {
            return 0.0;
        }
        let p = self.hits[e] as f64 / self.n as f64;
        let radius = ((1.0 / self.delta).ln() / (2.0 * self.n as f64)).sqrt();
        (p - radius).max(0.0)
    }
}

impl OnlineAdmission for LcbGreedy {
    fn name(&self) -> &'static str {
        "lcb-greedy"
    }

    fn on_request(&mut self, _id: RequestId, request: &Request) -> Outcome {
        let admit = if !self.load.fits(&request.footprint) {
            false
        } else if self.delta <= 0.0 {
            true
        } else {
            // Contested edges: projected LCB demand over a horizon of
            // `n` further arrivals exceeds what admitting leaves free.
            let mut contested_mean_density = f64::NEG_INFINITY;
            let mut contested = false;
            for e in request.footprint.iter() {
                let i = e.index();
                let projected = self.lcb(i) * self.n as f64;
                if projected > (self.load.residual(e) as f64) - 1.0 {
                    contested = true;
                    if self.hits[i] > 0 {
                        contested_mean_density =
                            contested_mean_density.max(self.density_sum[i] / self.hits[i] as f64);
                    }
                }
            }
            let density = request.cost / request.footprint.len().max(1) as f64;
            // Strictly above the running mean: ties lose, so a uniform
            // stream cannot grab the slot being held for the tail.
            !contested || density > contested_mean_density
        };
        if admit {
            self.load.admit(&request.footprint);
        }
        self.n += 1;
        let density = request.cost / request.footprint.len().max(1) as f64;
        for e in request.footprint.iter() {
            self.hits[e.index()] += 1;
            self.density_sum[e.index()] += density;
        }
        if admit {
            Outcome::accept()
        } else {
            Outcome::reject()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_graph::EdgeSet;

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| acmr_graph::EdgeId(i)).collect())
    }

    fn drive<A: OnlineAdmission>(alg: &mut A, arrivals: &[(&[u32], f64)]) -> Vec<bool> {
        let mut accepted = vec![false; arrivals.len()];
        for (i, (edges, cost)) in arrivals.iter().enumerate() {
            let req = Request::new(fp(edges), *cost);
            let out = alg.on_request(RequestId(i as u32), &req);
            for p in &out.preempted {
                assert!(accepted[p.index()], "phantom preemption");
                accepted[p.index()] = false;
            }
            accepted[i] = out.accepted;
        }
        accepted
    }

    #[test]
    fn lp_resolve_admits_everything_in_underload() {
        let caps = [4u32, 4];
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0), (&[1], 1.0), (&[0, 1], 2.0)];
        let mut alg = LpResolve::new(&caps, 2, 0.05);
        assert!(drive(&mut alg, &arrivals).iter().all(|&a| a));
    }

    #[test]
    fn lp_resolve_never_over_commits() {
        let caps = [1u32];
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0); 8];
        let mut alg = LpResolve::new(&caps, 3, 0.0);
        let accepted = drive(&mut alg, &arrivals);
        assert_eq!(accepted.iter().filter(|&&a| a).count(), 1);
    }

    #[test]
    fn lp_resolve_learns_to_reserve_for_value() {
        // Two classes sharing edge 0 (capacity 2): wide cheap {0,1}
        // at cost 1 vs narrow expensive {0} at cost 40. After the
        // warm-up window's re-solve the plan must spend edge 0's scarce
        // slots on the expensive class, not first-come-first-served.
        let caps = [2u32, 2];
        let mut arr: Vec<(&[u32], f64)> = Vec::new();
        for _ in 0..2 {
            for _ in 0..4 {
                arr.push((&[0, 1], 1.0));
                arr.push((&[0], 40.0));
            }
        }
        let mut alg = LpResolve::new(&caps, 8, 0.0);
        let accepted = drive(&mut alg, &arr);
        let exp_in: f64 = arr
            .iter()
            .zip(&accepted)
            .filter(|((_, c), &a)| a && *c == 40.0)
            .map(|((_, c), _)| c)
            .sum();
        let cheap_in: f64 = arr
            .iter()
            .zip(&accepted)
            .filter(|((_, c), &a)| a && *c == 1.0)
            .map(|((_, c), _)| c)
            .sum();
        assert!(
            exp_in > cheap_in,
            "plan should favour the expensive class (exp {exp_in}, cheap {cheap_in})"
        );
    }

    #[test]
    fn lcb_zero_delta_is_plain_greedy() {
        let caps = [1u32, 1];
        let arrivals: Vec<(&[u32], f64)> =
            vec![(&[0], 1.0), (&[0], 100.0), (&[1], 1.0), (&[1], 100.0)];
        let lcb = drive(&mut LcbGreedy::new(&caps, 0.0), &arrivals);
        let greedy = drive(&mut crate::GreedyNonPreemptive::new(&caps), &arrivals);
        assert_eq!(lcb, greedy);
    }

    #[test]
    fn lcb_guard_holds_contested_slots_for_value() {
        // Edge 0 capacity 2. A long stream of cheap cost-1 requests
        // establishes high demand and mean cost 1; the guard must then
        // refuse further cheap requests on the contested edge while a
        // cost-50 request still gets a slot.
        let caps = [2u32];
        let mut arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0); 30];
        arrivals.push((&[0], 50.0));
        let mut alg = LcbGreedy::new(&caps, 0.2);
        let accepted = drive(&mut alg, &arrivals);
        assert!(accepted[0], "first request sees an empty edge");
        assert!(
            accepted[30],
            "expensive request must take the reserved slot"
        );
        assert_eq!(accepted.iter().filter(|&&a| a).count(), 2);
    }

    #[test]
    fn both_policies_are_hard_feasible() {
        let caps = [1u32, 2];
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0, 1], 1.0); 6];
        for accepted in [
            drive(&mut LpResolve::new(&caps, 2, 0.1), &arrivals),
            drive(&mut LcbGreedy::new(&caps, 0.05), &arrivals),
        ] {
            assert!(accepted.iter().filter(|&&a| a).count() <= 1);
        }
    }
}
