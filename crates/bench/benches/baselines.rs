//! Bench: baseline admission algorithms vs the paper's (the speed side
//! of E7 — the quality side is `exp_e7`).
//!
//! Every algorithm is addressed through the default registry and driven
//! through a `Session`, so this bench measures exactly the code path
//! the CLI and the harness use — and adding an algorithm to the
//! registry automatically adds it here.

use acmr_core::{AlgorithmSpec, Session};
use acmr_harness::default_registry;
use acmr_workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_baselines(criterion: &mut Criterion) {
    let registry = default_registry();
    let mut group = criterion.benchmark_group("baselines");
    let spec = PathWorkloadSpec {
        topology: Topology::Line { m: 256 },
        capacity: 8,
        overload: 2.0,
        costs: CostModel::Uniform { lo: 1.0, hi: 16.0 },
        max_hops: 8,
    };
    let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(23));
    group.throughput(Throughput::Elements(inst.requests.len() as u64));
    for name in registry.names() {
        let alg_spec = AlgorithmSpec::parse(name).expect("registry name parses");
        group.bench_with_input(BenchmarkId::new(name, "m256"), &inst, |b, inst| {
            b.iter(|| {
                let mut session = Session::from_registry(&registry, &alg_spec, &inst.capacities, 1)
                    .expect("registry build");
                session.run_trace(inst).expect("audited run").rejected_cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
