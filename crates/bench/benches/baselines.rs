//! Bench: baseline admission algorithms vs the paper's (the speed side
//! of E7 — the quality side is `exp_e7`).

use acmr_baselines::{CreditSqrtM, GreedyNonPreemptive, PreemptCheapest};
use acmr_core::{OnlineAdmission, RandConfig, RandomizedAdmission, Request, RequestId};
use acmr_workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drive<A: OnlineAdmission>(alg: &mut A, inst: &acmr_core::AdmissionInstance) -> f64 {
    let mut rejected = 0.0;
    for (i, r) in inst.requests.iter().enumerate() {
        let req = Request::new(r.footprint.clone(), r.cost);
        if !alg.on_request(RequestId(i as u32), &req).accepted {
            rejected += r.cost;
        }
    }
    rejected
}

fn bench_baselines(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("baselines");
    let spec = PathWorkloadSpec {
        topology: Topology::Line { m: 256 },
        capacity: 8,
        overload: 2.0,
        costs: CostModel::Uniform { lo: 1.0, hi: 16.0 },
        max_hops: 8,
    };
    let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(23));
    group.throughput(Throughput::Elements(inst.requests.len() as u64));
    group.bench_with_input(BenchmarkId::new("aag-randomized", "m256"), &inst, |b, inst| {
        b.iter(|| {
            let mut alg = RandomizedAdmission::new(
                &inst.capacities,
                RandConfig::weighted(),
                StdRng::seed_from_u64(1),
            );
            drive(&mut alg, inst)
        })
    });
    group.bench_with_input(BenchmarkId::new("greedy", "m256"), &inst, |b, inst| {
        b.iter(|| drive(&mut GreedyNonPreemptive::new(&inst.capacities), inst))
    });
    group.bench_with_input(BenchmarkId::new("credit-sqrt-m", "m256"), &inst, |b, inst| {
        b.iter(|| drive(&mut CreditSqrtM::new(&inst.capacities), inst))
    });
    group.bench_with_input(BenchmarkId::new("preempt-cheapest", "m256"), &inst, |b, inst| {
        b.iter(|| drive(&mut PreemptCheapest::new(&inst.capacities), inst))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
