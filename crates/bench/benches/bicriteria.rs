//! Bench: §5 deterministic bicriteria algorithm (the engine behind
//! tables E6/E9), across scale and ε.

use acmr_core::setcover::{BicriteriaCover, OnlineSetCover};
use acmr_workloads::{random_arrivals, random_set_system, ArrivalPattern, SetSystemSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bicriteria(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("bicriteria_cover");
    for &(n, m) in &[(16usize, 24usize), (64, 96), (256, 384)] {
        let spec = SetSystemSpec {
            num_elements: n,
            num_sets: m,
            density: 0.25,
            min_degree: 3,
            max_cost: 1,
        };
        let mut rng = StdRng::seed_from_u64(19);
        let system = random_set_system(&spec, &mut rng);
        let arrivals = random_arrivals(&system, ArrivalPattern::RoundRobin, 2, &mut rng);
        for &eps in &[0.25f64, 0.5] {
            group.throughput(Throughput::Elements(arrivals.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("eps{eps}"), format!("n{n}_m{m}")),
                &(system.clone(), arrivals.clone()),
                |b, (system, arrivals)| {
                    b.iter(|| {
                        let mut alg = BicriteriaCover::new(system.clone(), eps);
                        for &j in arrivals {
                            alg.on_arrival(j);
                        }
                        alg.total_cost()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bicriteria);
criterion_main!(benches);
