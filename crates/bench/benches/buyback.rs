//! Bench: **E19** — buyback factor grid × algorithms.
//!
//! Runs the E19 grid (cancellation factors × every registered
//! algorithm, all billed `factor × cost` per preemption on
//! buyback-hostile escalation traces) and times the buyback policy's
//! decision throughput. The machine-readable summary lands in
//! `BENCH_buyback.json` for CI to upload; `docs/OPERATIONS.md`
//! explains how to read it.
//!
//! The summary records, per factor, the mean net objective
//! (`rejected_cost + buyback_paid`) and buyback charges of every
//! algorithm, plus the headline comparison: the buyback policy vs the
//! best non-preempting baseline.

use acmr_harness::experiments::e19_buyback::{
    algorithm_specs, instance_for, run, run_billed, NON_PREEMPTING,
};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::time::Instant;

/// One E19 grid row: a cancellation factor with per-algorithm means.
#[derive(Serialize)]
struct FactorRow {
    factor: f64,
    /// The theorem guarantee `1 + 2f + 2√(f(1+f))` at this factor.
    guarantee: f64,
    /// Mean net objective per algorithm, aligned with `algorithms`.
    net_objective: Vec<f64>,
    /// Mean buyback charges per algorithm, same order.
    buyback_paid: Vec<f64>,
    /// Mean value-competitive ratio vs the exact singleton OPT.
    value_ratio: Vec<f64>,
}

/// Decision throughput of one spec on the timing trace.
#[derive(Serialize)]
struct BuybackTiming {
    spec: String,
    run_ms: f64,
    reqs_per_sec: f64,
}

/// Machine-readable summary of the E19 buyback comparison.
#[derive(Serialize)]
struct BuybackSummary {
    /// Column order for the per-factor vectors (buyback's spec varies
    /// per row — its column is named plain `buyback` here).
    algorithms: Vec<String>,
    factors: Vec<FactorRow>,
    /// Headline at the median factor: the buyback policy's mean net
    /// objective vs the best non-preempting baseline's.
    headline_factor: f64,
    buyback_net_objective: f64,
    best_non_preempting: String,
    best_non_preempting_net_objective: f64,
    /// Decision throughput on one hostile trace.
    timing: Vec<BuybackTiming>,
}

fn buyback_grid() {
    let quick = !acmr_bench::full_grid_requested();
    let cells = run(quick);
    let names: Vec<String> = acmr_harness::default_registry()
        .names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();

    let rows: Vec<FactorRow> = cells
        .iter()
        .map(|c| FactorRow {
            factor: c.factor,
            guarantee: c.guarantee,
            net_objective: c.net.iter().map(|s| s.mean).collect(),
            buyback_paid: c.paid.iter().map(|s| s.mean).collect(),
            value_ratio: c.value_ratios.iter().map(|s| s.mean).collect(),
        })
        .collect();

    // Headline: the middle factor row, buyback vs the best
    // non-preempting baseline.
    let mid = &cells[cells.len() / 2];
    let specs = algorithm_specs(mid.factor);
    let bb = specs
        .iter()
        .position(|s| s.starts_with("buyback?"))
        .expect("buyback column");
    let (best_np, best_np_net) = NON_PREEMPTING
        .iter()
        .map(|name| {
            let k = specs.iter().position(|s| s == name).expect(name);
            (name.to_string(), mid.net[k].mean)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-preempting set");

    // Decision-throughput arm: buyback and the two preemptors it is
    // most often compared against, on one hostile trace.
    let inst = instance_for(24, 6, 3);
    let timing: Vec<BuybackTiming> = ["buyback?factor=0.5", "preempt-cheapest", "greedy"]
        .iter()
        .map(|spec| {
            let start = Instant::now();
            let report = run_billed(spec, &inst, 7, 0.5).expect("billed run");
            let run_ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(report.offered_cost > 0.0, "timing trace must offer load");
            BuybackTiming {
                spec: spec.to_string(),
                run_ms,
                reqs_per_sec: inst.requests.len() as f64 / (run_ms / 1e3),
            }
        })
        .collect();

    let summary = BuybackSummary {
        algorithms: names,
        factors: rows,
        headline_factor: mid.factor,
        buyback_net_objective: mid.net[bb].mean,
        best_non_preempting: best_np,
        best_non_preempting_net_objective: best_np_net,
        timing,
    };
    println!(
        "bench e19_buyback/grid ... at factor {} buyback nets {:.1} vs best non-preempting {} \
         at {:.1} ({} grid)",
        summary.headline_factor,
        summary.buyback_net_objective,
        summary.best_non_preempting,
        summary.best_non_preempting_net_objective,
        if quick { "quick" } else { "full" },
    );
    assert!(
        summary.buyback_net_objective < summary.best_non_preempting_net_objective,
        "buyback must beat every non-preempting baseline on its hostile topology"
    );
    acmr_bench::emit_bench_json("buyback", &summary);
}

fn bench_all(_criterion: &mut Criterion) {
    buyback_grid();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
