//! Bench: **E15** — the cross-process cluster driver against the
//! thread-level sharded driver and the sequential per-job baseline,
//! on the E12 sweep (every registered algorithm over the hostile
//! families), with the numbers persisted to `BENCH_cluster.json`.
//!
//! Three arms over identical jobs:
//!
//! 1. **sequential** — `run_report` per job, one after another (the
//!    pre-driver path: the per-trace OPT bound recomputed per job);
//! 2. **sharded** — `ShardedDriver`: threads + one shared bound per
//!    distinct trace (the PR-2 driver);
//! 3. **cluster** — `ClusterDriver`: the same sweep fanned over
//!    `acmr serve` workers, every decision crossing a real loopback
//!    socket. Workers are separate `acmr serve` **processes** when
//!    the release binary is built (`target/release/acmr`, the CI
//!    case), in-process loopback servers otherwise — the wire path
//!    is identical either way, and the JSON records which ran.
//!
//! The bench doubles as a differential check: all three arms must
//! produce byte-identical job reports, or it panics. The interesting
//! number is the cluster arm's *overhead* over sharded — the price
//! of crossing process boundaries, which buys fan-out beyond one
//! machine (see `docs/OPERATIONS.md`).

use acmr_harness::{
    cross_jobs, default_registry, run_report, BoundBudget, ClusterDriver, ShardedDriver,
};
use acmr_serve::{serve, ServeConfig, ServerHandle, WorkerPool};
use acmr_workloads::{dyadic_admission_instance, nested_intervals, two_phase_squeeze};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::time::{Duration, Instant};

const WORKERS: usize = 3;
const BATCH: usize = 64;
const ROUNDS: usize = 5;

/// Machine-readable summary of the E15 comparison.
#[derive(Serialize)]
struct ClusterSummary {
    sweep: &'static str,
    jobs: usize,
    workers: usize,
    /// `"processes"` (spawned `acmr serve` children) or
    /// `"in-process"` (loopback servers inside the bench process —
    /// same wire path, no process boundary).
    worker_mode: &'static str,
    batch: usize,
    sequential_ms: f64,
    sharded_ms: f64,
    cluster_ms: f64,
    /// Sharded speedup over sequential (shared bounds + threads).
    sharded_speedup: f64,
    /// Cluster speedup over sequential.
    cluster_speedup: f64,
    /// Wire tax: cluster time over sharded time (≥ 1.0 on one host —
    /// the socket hop costs; the payoff is fan-out across hosts).
    cluster_over_sharded: f64,
}

fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

/// Spawn real worker processes when the release binary exists (CI
/// builds it before benching); fall back to in-process loopback
/// servers so the bench always runs.
fn start_workers() -> (Vec<ServerHandle>, WorkerPool, &'static str) {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let release_bin = loop {
        if dir.join("Cargo.lock").exists() {
            break dir.join("target/release/acmr");
        }
        if !dir.pop() {
            break std::path::PathBuf::from("target/release/acmr");
        }
    };
    if release_bin.is_file() {
        if let Ok(pool) = WorkerPool::spawn_local(&release_bin, WORKERS) {
            return (Vec::new(), pool, "processes");
        }
    }
    let handles: Vec<ServerHandle> = (0..WORKERS)
        .map(|_| {
            serve(
                default_registry(),
                ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    ..ServeConfig::default()
                },
            )
            .expect("bind loopback worker")
        })
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.local_addr().to_string()).collect();
    let pool = WorkerPool::connect(&addrs).expect("adopt loopback workers");
    (handles, pool, "in-process")
}

fn cluster_speedups() {
    let registry = default_registry();
    // The E12 sweep shape (quick grid): every registered algorithm ×
    // the hostile families × one seed, greedy-tier bound budget.
    let traces = vec![
        ("nested".to_string(), nested_intervals(16, 2, 2, 2)),
        ("squeeze".to_string(), two_phase_squeeze(12, 3, 4, 3)),
        ("dyadic".to_string(), dyadic_admission_instance(4, 3, 2)),
    ];
    let trace_names: Vec<&str> = traces.iter().map(|(n, _)| n.as_str()).collect();
    let specs: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let jobs = cross_jobs(&trace_names, &spec_refs, &[0, 1]);
    let budget = BoundBudget {
        max_exact_items: 60,
        exact_nodes: 20_000,
        max_lp_items: 0,
    };

    let (handles, pool, worker_mode) = start_workers();
    let sharded_driver = ShardedDriver::new()
        .threads(WORKERS)
        .batch(BATCH)
        .budget(budget);
    let cluster_driver = ClusterDriver::new(&pool).batch(BATCH).budget(budget);

    let mut seq = Vec::with_capacity(ROUNDS);
    let mut sharded = Vec::with_capacity(ROUNDS);
    let mut cluster = Vec::with_capacity(ROUNDS);
    let mut last_seq = Vec::new();
    let mut last_sharded = None;
    let mut last_cluster = None;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        last_seq = jobs
            .iter()
            .map(|job| {
                let inst = &traces.iter().find(|(n, _)| *n == job.trace).unwrap().1;
                run_report(&registry, &job.spec, inst, job.seed, budget).unwrap()
            })
            .collect();
        seq.push(t.elapsed());

        let t = Instant::now();
        last_sharded = Some(sharded_driver.run(&registry, &traces, &jobs).unwrap());
        sharded.push(t.elapsed());

        let t = Instant::now();
        last_cluster = Some(cluster_driver.run(&traces, &jobs).unwrap());
        cluster.push(t.elapsed());
    }

    // Differential guard: three arms, byte-identical job reports.
    let sharded_sweep = last_sharded.expect("sharded ran");
    let cluster_sweep = last_cluster.expect("cluster ran");
    assert_eq!(
        serde_json::to_string_pretty(&cluster_sweep).unwrap(),
        serde_json::to_string_pretty(&sharded_sweep).unwrap(),
        "cluster sweep diverged from sharded"
    );
    for (seq_report, jr) in last_seq.iter().zip(&sharded_sweep.jobs) {
        assert_eq!(&jr.report, seq_report, "sharded diverged from sequential");
    }

    let sequential_ms = median_ms(&mut seq);
    let sharded_ms = median_ms(&mut sharded);
    let cluster_ms = median_ms(&mut cluster);
    let summary = ClusterSummary {
        sweep: "e12-hostile-families-all-algorithms",
        jobs: jobs.len(),
        workers: WORKERS,
        worker_mode,
        batch: BATCH,
        sequential_ms,
        sharded_ms,
        cluster_ms,
        sharded_speedup: sequential_ms / sharded_ms,
        cluster_speedup: sequential_ms / cluster_ms,
        cluster_over_sharded: cluster_ms / sharded_ms,
    };
    println!(
        "bench e15_cluster/{} ... sequential {:.2} ms, sharded {:.2} ms ({:.2}x), \
         cluster {:.2} ms ({:.2}x; {:.2}x over sharded) — {} jobs over {} workers ({})",
        summary.sweep,
        summary.sequential_ms,
        summary.sharded_ms,
        summary.sharded_speedup,
        summary.cluster_ms,
        summary.cluster_speedup,
        summary.cluster_over_sharded,
        summary.jobs,
        summary.workers,
        summary.worker_mode,
    );
    acmr_bench::emit_bench_json("cluster", &summary);

    for handle in handles {
        handle.shutdown();
    }
    pool.shutdown();
}

fn bench_all(_criterion: &mut Criterion) {
    cluster_speedups();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
