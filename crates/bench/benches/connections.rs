//! E17 — connection scale: how many peers one host can hold, and
//! what holding them costs.
//!
//! PR 8 replaced the thread-per-connection server with sharded event
//! loops driving the sans-I/O [`acmr_serve::Connection`] machine.
//! This bench pins the claims that rearchitecture was sold on:
//!
//! 1. **Idle sweep** — open waves of idle connections (each greeted,
//!    so the reactor has fully adopted it) from 1 000 up toward
//!    10 000, recording the cumulative wall-clock per step. The top
//!    of the sweep is clamped to the process fd budget (three fds
//!    per loopback connection: the client end, the server end, and
//!    the shutdown handle in the connection table) and the clamp is
//!    recorded in the summary rather than silently shrinking the
//!    claim.
//! 2. **Active sessions** — ≥ 5 000 *concurrent open sessions* (v1
//!    handshake completed, one audited decision pushed and read back
//!    per session), held simultaneously while a fresh probe session
//!    still gets served. The held count is read back from the
//!    server's own session table, not inferred client-side.
//! 3. **Throughput under load** — the E16 workload (200 000 greedy
//!    requests, batch 512, v2 binary frames in summary mode) replayed
//!    over one connection while 5 000 idle connections stay parked on
//!    the shards. The summary records the ratio against the
//!    unloaded `BENCH_protocol2.json` baseline when that file exists;
//!    the target is within 10% — idle connections must cost O(ready),
//!    not O(connections), per wakeup.
//!
//! Emits `BENCH_connections.json` at the workspace root (the CI
//! artifact) via [`acmr_bench::emit_bench_json`].

use acmr_core::Request;
use acmr_graph::{EdgeId, EdgeSet};
use acmr_harness::{default_registry, run_registered};
use acmr_serve::{serve, serve_trace_v2, ServeConfig, ServerHandle};
use acmr_workloads::trace::write_request_line;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

// The E16 per-connection workload, byte for byte (`protocol2.rs`),
// so the loaded/unloaded throughput ratio compares like with like.
const EDGES: u32 = 512;
const CAPACITY: u32 = 8;
const REQUESTS: usize = 200_000;
const BATCH: usize = 512;
const SPEC: &str = "greedy";

/// The idle sweep's nominal rungs; the fd clamp may cut the top off.
const IDLE_STEPS: [usize; 5] = [1_000, 2_500, 5_000, 7_500, 10_000];
/// The acceptance floor: this many concurrent open sessions.
const ACTIVE_SESSIONS: usize = 5_000;
/// Idle connections parked during the throughput leg.
const LOADED_IDLE: usize = 5_000;
/// Loopback fds consumed per held connection: client end, server
/// end, and the server's shutdown-handle clone in the connection
/// table.
const FDS_PER_CONN: usize = 3;
/// Fds reserved for everything that is not a held connection
/// (listener, pollers, stdio, the throughput client, slack).
const FD_SLACK: usize = 2_048;

fn generate_requests() -> (Vec<u32>, Vec<Request>) {
    let caps = vec![CAPACITY; EDGES as usize];
    let mut rng = StdRng::seed_from_u64(42);
    let requests = (0..REQUESTS)
        .map(|_| {
            let hops = 1 + rng.gen_range(0..4u32);
            let start = rng.gen_range(0..EDGES - hops);
            let edges: Vec<EdgeId> = (start..start + hops).map(EdgeId).collect();
            let cost = 1.0 + f64::from(rng.gen_range(0..4u32));
            Request::new(EdgeSet::new(edges), cost)
        })
        .collect();
    (caps, requests)
}

/// `RLIMIT_NOFILE` (soft), read from `/proc/self/limits` — the
/// workspace is std-only, so no `getrlimit` binding. Conservative
/// fallback when the file is unreadable (non-Linux).
fn fd_limit() -> usize {
    if let Ok(text) = std::fs::read_to_string("/proc/self/limits") {
        for line in text.lines() {
            if line.starts_with("Max open files") {
                if let Some(n) = line.split_whitespace().nth(3).and_then(|w| w.parse().ok()) {
                    return n;
                }
            }
        }
    }
    4_096
}

/// A line-protocol peer on one fd: no `BufReader` clone, no helper
/// crate — each held connection must cost exactly [`FDS_PER_CONN`]
/// fds or the sweep arithmetic above is wrong.
struct LineConn {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl LineConn {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(LineConn {
            stream,
            buf: Vec::new(),
            pos: 0,
        })
    }

    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&self.buf[self.pos..self.pos + nl]).into_owned();
                self.pos += nl + 1;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                }
                return Ok(line);
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

#[derive(Serialize)]
struct IdleStep {
    /// Connections held (cumulative) once this step completed.
    connections: usize,
    /// Cumulative wall-clock to reach this many held, greeted
    /// connections, from an empty server.
    open_ms: f64,
}

/// Machine-readable summary of the E17 connection-scale numbers.
#[derive(Serialize)]
struct ConnectionsSummary {
    workload: &'static str,
    algorithm: &'static str,
    reactor_threads: usize,
    fd_limit: usize,
    fds_per_connection: usize,
    /// Where the idle sweep was cut off by the fd budget
    /// (`min(10_000, (fd_limit - slack) / fds_per_connection)`).
    idle_clamp: usize,
    idle_sweep: Vec<IdleStep>,
    /// `connections_active` read from the server's own counters at
    /// the top of the idle sweep.
    idle_held_server_view: u64,
    /// Concurrent open sessions held (server session-table view).
    active_sessions_held: usize,
    /// Wall-clock to open all held sessions (handshake acknowledged).
    active_open_ms: f64,
    /// One audited decision pushed and read back per held session:
    /// round-trip decisions per second across the whole fleet.
    active_roundtrip_decisions_per_sec: f64,
    /// Idle connections parked during the throughput leg.
    loaded_idle_connections: usize,
    /// E16 workload over one v2 summary-mode connection while the
    /// idle fleet is parked (median of three runs).
    v2_decisions_per_sec_loaded: f64,
    /// `v2_decisions_per_sec` from `BENCH_protocol2.json`, when that
    /// bench has run on this checkout.
    v2_decisions_per_sec_unloaded_baseline: Option<f64>,
    /// loaded / unloaded — the headline; target ≥ 0.9.
    loaded_over_unloaded: Option<f64>,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("throughput is finite"));
    samples[samples.len() / 2]
}

/// Pull `"v2_decisions_per_sec": <n>` out of `BENCH_protocol2.json`
/// at the workspace root, if a protocol2 run left one there.
fn protocol2_baseline() -> Option<f64> {
    let mut dir = std::env::current_dir().ok()?;
    let path = loop {
        if dir.join("Cargo.lock").exists() {
            break dir.join("BENCH_protocol2.json");
        }
        if !dir.pop() {
            return None;
        }
    };
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"v2_decisions_per_sec\"";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn bind_server() -> ServerHandle {
    serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            // The bench *is* the overload: lift the accept-queue cap
            // well above the sweep so `ERR busy` never fires here.
            max_connections: 20_000,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server")
}

fn open_idle(addr: SocketAddr, n: usize) -> Vec<LineConn> {
    (0..n)
        .map(|i| {
            let mut conn =
                LineConn::connect(addr).unwrap_or_else(|e| panic!("idle connect #{i}: {e}"));
            let greeting = conn
                .read_line()
                .unwrap_or_else(|e| panic!("greeting #{i}: {e}"));
            assert!(
                greeting.starts_with("ACMR-SERVE"),
                "unexpected greeting for idle conn #{i}: {greeting:?}"
            );
            conn
        })
        .collect()
}

/// Serve one complete tiny session end to end — the "others are
/// still served" probe run while thousands of peers are held.
fn probe_session(addr: SocketAddr) {
    let mut conn = LineConn::connect(addr).expect("probe connect");
    assert!(conn
        .read_line()
        .expect("probe greeting")
        .starts_with("ACMR-SERVE"));
    conn.send(b"OPEN greedy\nedges 2\ncaps 1 1\n1.0 0\nEND\n")
        .expect("probe script");
    assert!(conn.read_line().expect("probe OK").starts_with("OK "));
    assert!(conn.read_line().expect("probe EVENT").starts_with("EVENT "));
    assert!(conn
        .read_line()
        .expect("probe REPORT")
        .starts_with("REPORT "));
}

fn connections() {
    let fd_limit = fd_limit();
    let idle_clamp = (fd_limit.saturating_sub(FD_SLACK) / FDS_PER_CONN)
        .min(*IDLE_STEPS.last().expect("steps nonempty"));
    let reactor_threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1);

    // --------------------------------------------------------------
    // Leg 1: idle sweep, 1k → 10k (fd-clamped), each wave greeted.
    // --------------------------------------------------------------
    let handle = bind_server();
    let addr = handle.local_addr();
    let mut held: Vec<LineConn> = Vec::with_capacity(idle_clamp);
    let mut idle_sweep = Vec::new();
    let sweep_start = Instant::now();
    for step in IDLE_STEPS {
        let step = step.min(idle_clamp);
        if step > held.len() {
            held.extend(open_idle(addr, step - held.len()));
            idle_sweep.push(IdleStep {
                connections: held.len(),
                open_ms: sweep_start.elapsed().as_secs_f64() * 1e3,
            });
        }
        if step == idle_clamp {
            break;
        }
    }
    let idle_held_server_view = handle
        .counters()
        .connections_active
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        idle_held_server_view as usize >= held.len(),
        "server sees {idle_held_server_view} active connections, client holds {}",
        held.len()
    );
    probe_session(addr);
    drop(held);
    handle.shutdown();

    // --------------------------------------------------------------
    // Leg 2: ≥ 5 000 concurrent open sessions, one decision each.
    // --------------------------------------------------------------
    let handle = bind_server();
    let addr = handle.local_addr();
    let active_n = ACTIVE_SESSIONS.min(idle_clamp);
    let mut request_line = Vec::new();
    write_request_line(
        &mut request_line,
        &Request::new(EdgeSet::new(vec![EdgeId(0)]), 1.0),
    )
    .expect("format request line");

    let t = Instant::now();
    let mut sessions: Vec<LineConn> = (0..active_n)
        .map(|i| {
            let mut conn =
                LineConn::connect(addr).unwrap_or_else(|e| panic!("session connect #{i}: {e}"));
            conn.send(b"OPEN greedy\nedges 4\ncaps 1000000 1000000 1000000 1000000\n")
                .unwrap_or_else(|e| panic!("session handshake #{i}: {e}"));
            let greeting = conn
                .read_line()
                .unwrap_or_else(|e| panic!("greeting #{i}: {e}"));
            assert!(
                greeting.starts_with("ACMR-SERVE"),
                "session #{i}: {greeting:?}"
            );
            let ok = conn.read_line().unwrap_or_else(|e| panic!("OK #{i}: {e}"));
            assert!(ok.starts_with("OK "), "session #{i}: {ok:?}");
            conn
        })
        .collect();
    let active_open_ms = t.elapsed().as_secs_f64() * 1e3;
    let active_sessions_held = handle.manager().active();
    assert!(
        active_sessions_held >= active_n,
        "server session table holds {active_sessions_held}, expected ≥ {active_n}"
    );
    probe_session(addr);

    let t = Instant::now();
    for (i, conn) in sessions.iter_mut().enumerate() {
        conn.send(&request_line)
            .unwrap_or_else(|e| panic!("push #{i}: {e}"));
        let event = conn
            .read_line()
            .unwrap_or_else(|e| panic!("EVENT #{i}: {e}"));
        assert!(event.starts_with("EVENT "), "session #{i}: {event:?}");
    }
    let active_roundtrip_decisions_per_sec = active_n as f64 / t.elapsed().as_secs_f64();
    for (i, conn) in sessions.iter_mut().enumerate() {
        conn.send(b"END\n")
            .unwrap_or_else(|e| panic!("END #{i}: {e}"));
        let report = conn
            .read_line()
            .unwrap_or_else(|e| panic!("REPORT #{i}: {e}"));
        assert!(report.starts_with("REPORT "), "session #{i}: {report:?}");
    }
    drop(sessions);
    handle.shutdown();

    // --------------------------------------------------------------
    // Leg 3: E16 throughput over one connection, 5k idle parked.
    // --------------------------------------------------------------
    let (caps, requests) = generate_requests();
    let registry = default_registry();
    let mut inst = acmr_core::AdmissionInstance::from_capacities(caps.clone());
    for r in &requests {
        inst.push(r.clone());
    }
    let reference = run_registered(&registry, SPEC, &inst, 0).expect("in-memory reference");

    let handle = bind_server();
    let addr = handle.local_addr();
    let loaded_idle = LOADED_IDLE.min(idle_clamp);
    let parked = open_idle(addr, loaded_idle);
    let mut samples = Vec::new();
    for _ in 0..3 {
        let t = Instant::now();
        let report = serve_trace_v2(
            addr,
            SPEC,
            None,
            &caps,
            requests.iter().cloned().map(Ok),
            Some(BATCH),
            false,
            |_| {},
        )
        .expect("v2 replay under load");
        samples.push(REQUESTS as f64 / t.elapsed().as_secs_f64());
        assert_eq!(report, reference, "loaded v2 served report diverged");
    }
    let v2_loaded = median(&mut samples);
    drop(parked);
    handle.shutdown();

    let baseline = protocol2_baseline();
    let summary = ConnectionsSummary {
        workload: "uniform-512-edges-1..4-hops",
        algorithm: SPEC,
        reactor_threads,
        fd_limit,
        fds_per_connection: FDS_PER_CONN,
        idle_clamp,
        idle_sweep,
        idle_held_server_view,
        active_sessions_held,
        active_open_ms,
        active_roundtrip_decisions_per_sec,
        loaded_idle_connections: loaded_idle,
        v2_decisions_per_sec_loaded: v2_loaded,
        v2_decisions_per_sec_unloaded_baseline: baseline,
        loaded_over_unloaded: baseline.map(|b| v2_loaded / b),
    };

    println!(
        "E17 connections: idle sweep to {} (fd limit {}, clamp {}), \
         {} concurrent sessions in {:.0} ms, fleet round-trip {:.0} dec/s, \
         v2 loaded {:.0} dec/s{}",
        summary.idle_held_server_view,
        summary.fd_limit,
        summary.idle_clamp,
        summary.active_sessions_held,
        summary.active_open_ms,
        summary.active_roundtrip_decisions_per_sec,
        summary.v2_decisions_per_sec_loaded,
        match summary.loaded_over_unloaded {
            Some(r) => format!(" ({:.2}x unloaded baseline)", r),
            None => " (no BENCH_protocol2.json baseline found)".to_string(),
        }
    );
    if let Some(ratio) = summary.loaded_over_unloaded {
        assert!(
            ratio >= 0.5,
            "v2 throughput collapsed under 5k idle connections: {ratio:.2}x the unloaded baseline"
        );
    }
    acmr_bench::emit_bench_json("connections", &summary);
}

fn bench_all(_criterion: &mut Criterion) {
    connections();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
