//! Bench: §2 fractional engine — arrival processing throughput across
//! instance scales (supports experiment E1/E2 regeneration at speed).

use acmr_core::{FracConfig, FracEngine};
use acmr_workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fractional(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("fractional_engine");
    for &(m, c) in &[(64u32, 4u32), (256, 8), (1024, 16)] {
        let spec = PathWorkloadSpec {
            topology: Topology::Line { m },
            capacity: c,
            overload: 2.0,
            costs: CostModel::Zipf {
                n_values: 64,
                s: 1.1,
            },
            max_hops: 8,
        };
        let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(7));
        group.throughput(Throughput::Elements(inst.requests.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("weighted", format!("m{m}_c{c}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut eng = FracEngine::new(&inst.capacities, FracConfig::weighted());
                    for r in &inst.requests {
                        eng.on_request(&r.footprint, r.cost);
                    }
                    eng.online_cost()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unweighted", format!("m{m}_c{c}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut eng = FracEngine::new(&inst.capacities, FracConfig::unweighted());
                    for r in &inst.requests {
                        eng.on_request(&r.footprint, 1.0);
                    }
                    eng.online_cost()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fractional);
criterion_main!(benches);
