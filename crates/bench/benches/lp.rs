//! Bench: the LP/ILP substrate — simplex solve time and B&B nodes on
//! covering programs of growing size (supports every OPT bound).

use acmr_harness::admission_covering_problem;
use acmr_lp::{branch_and_bound, BnbLimits};
use acmr_workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_lp(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("lp_substrate");
    group.sample_size(10);
    for &m in &[16u32, 48, 96] {
        let spec = PathWorkloadSpec {
            topology: Topology::Line { m },
            capacity: 4,
            overload: 2.0,
            costs: CostModel::Uniform { lo: 1.0, hi: 8.0 },
            max_hops: 6,
        };
        let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(29));
        let problem = admission_covering_problem(&inst);
        group.bench_with_input(
            BenchmarkId::new("simplex_lp", format!("m{m}_items{}", problem.num_items())),
            &problem,
            |b, p| b.iter(|| p.lp_lower_bound().unwrap()),
        );
        if problem.num_items() <= 120 {
            group.bench_with_input(
                BenchmarkId::new("bnb_exact", format!("m{m}")),
                &problem,
                |b, p| {
                    b.iter(|| branch_and_bound(p, BnbLimits { max_nodes: 5_000 }).map(|r| r.cost))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
