//! Bench: **E18** — arrival models × policy classes.
//!
//! Runs the E18 grid (adversarial + four stochastic arrival models ×
//! every registered algorithm plus the tuned stochastic-policy
//! variants) and times the serving policies on a stochastic trace.
//! The machine-readable summary lands in `BENCH_policies.json` for CI
//! to upload; `docs/OPERATIONS.md` explains how to read it.
//!
//! The summary records, per arrival family, the mean rejection rate of
//! every algorithm, plus the headline comparison: the best stochastic
//! policy vs the best worst-case algorithm on stochastic traffic.

use acmr_harness::experiments::e18_policies::{
    algorithm_specs, instance_for, is_new_policy, run, stochastic_mean_rejection, Family,
};
use acmr_harness::{default_registry, run_registered};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::time::Instant;

/// One E18 grid row: an arrival family with per-algorithm means.
#[derive(Serialize)]
struct FamilyRow {
    family: &'static str,
    /// Mean rejection rate per algorithm, aligned with `algorithms`.
    rejection: Vec<f64>,
    /// Mean ratio vs the OPT bound per algorithm, same order.
    ratio_vs_opt: Vec<f64>,
    /// OPT bound provenance for the family.
    opt_bound: &'static str,
}

/// Decision throughput of one policy on the timing trace.
#[derive(Serialize)]
struct PolicyTiming {
    spec: String,
    run_ms: f64,
    reqs_per_sec: f64,
}

/// Machine-readable summary of the E18 policy comparison.
#[derive(Serialize)]
struct PoliciesSummary {
    /// Column order for the per-family rejection vectors.
    algorithms: Vec<String>,
    families: Vec<FamilyRow>,
    /// Mean rejection rate across the stochastic families per
    /// algorithm, aligned with `algorithms`.
    stochastic_mean_rejection: Vec<f64>,
    /// Best stochastic policy on stochastic traffic.
    best_stochastic_policy: String,
    best_stochastic_policy_rejection: f64,
    /// Best worst-case (paper or baseline) algorithm on the same rows.
    best_worst_case_algorithm: String,
    best_worst_case_rejection: f64,
    /// Decision throughput on a stochastic-iid timing trace.
    timing: Vec<PolicyTiming>,
}

fn policies_grid() {
    let quick = !acmr_bench::full_grid_requested();
    let cells = run(quick);
    let specs = algorithm_specs();

    let families: Vec<FamilyRow> = cells
        .iter()
        .map(|c| FamilyRow {
            family: c.family.label(),
            rejection: c.rejection.iter().map(|s| s.mean).collect(),
            ratio_vs_opt: c.ratios.iter().map(|s| s.mean).collect(),
            opt_bound: c.bound,
        })
        .collect();
    let means: Vec<f64> = (0..specs.len())
        .map(|k| stochastic_mean_rejection(&cells, k))
        .collect();
    let best = |new: bool| {
        specs
            .iter()
            .zip(&means)
            .filter(|(s, _)| is_new_policy(s) == new)
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite means"))
            .map(|(s, m)| (s.clone(), *m))
            .expect("non-empty column set")
    };
    let (best_new, best_new_rej) = best(true);
    let (best_old, best_old_rej) = best(false);

    // Decision-throughput arm: every stochastic policy plus the
    // strongest worst-case preemptor on one stochastic-iid trace.
    let registry = default_registry();
    let inst = instance_for(Family::StochasticIid, 128, 8, 512, 7);
    let timing: Vec<PolicyTiming> = specs
        .iter()
        .filter(|s| is_new_policy(s) || s.as_str() == "preempt-cheapest")
        .map(|spec| {
            let start = Instant::now();
            let report = run_registered(&registry, spec, &inst, 7).expect("registry run");
            let run_ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(report.offered_cost > 0.0, "timing trace must offer load");
            PolicyTiming {
                spec: spec.clone(),
                run_ms,
                reqs_per_sec: inst.requests.len() as f64 / (run_ms / 1e3),
            }
        })
        .collect();

    let summary = PoliciesSummary {
        algorithms: specs,
        families,
        stochastic_mean_rejection: means,
        best_stochastic_policy: best_new,
        best_stochastic_policy_rejection: best_new_rej,
        best_worst_case_algorithm: best_old,
        best_worst_case_rejection: best_old_rej,
        timing,
    };
    println!(
        "bench e18_policies/grid ... best stochastic policy {} at {:.4} vs best worst-case {} \
         at {:.4} (stochastic mean rejection, {} grid)",
        summary.best_stochastic_policy,
        summary.best_stochastic_policy_rejection,
        summary.best_worst_case_algorithm,
        summary.best_worst_case_rejection,
        if quick { "quick" } else { "full" },
    );
    acmr_bench::emit_bench_json("policies", &summary);
}

fn bench_all(_criterion: &mut Criterion) {
    policies_grid();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
