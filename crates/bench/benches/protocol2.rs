//! Bench: **E16** — protocol v2 (binary frames + persistent sessions)
//! against protocol v1 (line frames), persisted to
//! `BENCH_protocol2.json` (`docs/OPERATIONS.md` explains how to read
//! it).
//!
//! Two comparisons:
//!
//! 1. **Loopback decisions/s, one connection** — the E14 workload
//!    (200k requests, 512-edge line) replayed through a live server:
//!    v1 `BATCH` frames with per-arrival JSON events vs v2 binary
//!    record frames with batch-summary acknowledgements (the
//!    pipelined `serve_trace_v2` path the cluster driver uses). This
//!    is the per-connection wire ceiling an operator sizes against.
//! 2. **Cluster vs sharded on the E12 sweep** (3 workers, one host) —
//!    the v1 wire made `ClusterDriver` pay a ~20× wall-clock tax over
//!    `ShardedDriver` on sweep-shaped jobs (many small traces, where
//!    per-arrival round trips and JSON dominate). The v2 arm runs the
//!    same sweep over the same pool in binary-frame persistent-session
//!    mode; `cluster_v2_over_sharded` is the number the tentpole
//!    exists to push to ≤ 1.
//!
//! Both comparisons double as differentials: every v2 report must
//! equal its v1 twin and the in-memory reference, or the bench
//! panics.

use acmr_core::Request;
use acmr_graph::{EdgeId, EdgeSet};
use acmr_harness::{
    cross_jobs, default_registry, run_registered, BoundBudget, ClusterDriver, ShardedDriver,
};
use acmr_serve::{
    serve, serve_trace, serve_trace_v2, ProtoVersion, ServeConfig, ServerHandle, WorkerPool,
};
use acmr_workloads::{dyadic_admission_instance, nested_intervals, two_phase_squeeze};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::{Duration, Instant};

const EDGES: u32 = 512;
const CAPACITY: u32 = 8;
const REQUESTS: usize = 200_000;
const BATCH: usize = 512;
const SPEC: &str = "greedy";

const WORKERS: usize = 3;
const SWEEP_BATCH: usize = 64;
const ROUNDS: usize = 5;

/// The E14 line workload, materialized (same seed, same shape).
fn generate_requests() -> (Vec<u32>, Vec<Request>) {
    let caps = vec![CAPACITY; EDGES as usize];
    let mut rng = StdRng::seed_from_u64(42);
    let requests = (0..REQUESTS)
        .map(|_| {
            let hops = 1 + rng.gen_range(0..4u32);
            let start = rng.gen_range(0..EDGES - hops);
            let edges: Vec<EdgeId> = (start..start + hops).map(EdgeId).collect();
            let cost = 1.0 + f64::from(rng.gen_range(0..4u32));
            Request::new(EdgeSet::new(edges), cost)
        })
        .collect();
    (caps, requests)
}

/// Machine-readable summary of the E16 v1-vs-v2 numbers.
#[derive(Serialize)]
struct Protocol2Summary {
    workload: &'static str,
    algorithm: &'static str,
    requests: usize,
    batch: usize,
    /// One-connection loopback throughput, v1 line protocol
    /// (BATCH frames, per-arrival JSON events).
    v1_decisions_per_sec: f64,
    /// Same connection count and workload, v2 binary frames in
    /// batch-summary mode (the pipelined cluster path).
    v2_decisions_per_sec: f64,
    /// The wire speedup the binary dialect buys per connection.
    v2_over_v1: f64,
    sweep: &'static str,
    jobs: usize,
    workers: usize,
    /// `"processes"` or `"in-process"` (see the cluster bench).
    worker_mode: &'static str,
    sweep_batch: usize,
    sharded_ms: f64,
    cluster_v1_ms: f64,
    cluster_v2_ms: f64,
    /// The v1 wire tax this PR set out to erase (≫ 1 before it).
    cluster_v1_over_sharded: f64,
    /// The headline: cluster wall-clock over sharded with v2
    /// persistent sessions — target ≤ 1.0 on one host.
    cluster_v2_over_sharded: f64,
}

fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

/// Same worker-spawning policy as the cluster bench: real `acmr
/// serve` processes when the release binary exists, in-process
/// loopback servers otherwise. The returned pool (the v2 one — the
/// pool default) owns any spawned children; the v1 pool adopts the
/// same fleet by address.
fn start_workers() -> (Vec<ServerHandle>, WorkerPool, &'static str) {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let release_bin = loop {
        if dir.join("Cargo.lock").exists() {
            break dir.join("target/release/acmr");
        }
        if !dir.pop() {
            break std::path::PathBuf::from("target/release/acmr");
        }
    };
    if release_bin.is_file() {
        if let Ok(pool) = WorkerPool::spawn_local(&release_bin, WORKERS) {
            return (Vec::new(), pool, "processes");
        }
    }
    let handles: Vec<ServerHandle> = (0..WORKERS)
        .map(|_| {
            serve(
                default_registry(),
                ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    ..ServeConfig::default()
                },
            )
            .expect("bind loopback worker")
        })
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.local_addr().to_string()).collect();
    let pool = WorkerPool::connect(&addrs).expect("adopt loopback workers");
    (handles, pool, "in-process")
}

fn protocol2() {
    // ------------------------------------------------------------------
    // Arm 1: per-connection loopback throughput, v1 vs v2.
    // ------------------------------------------------------------------
    let (caps, requests) = generate_requests();
    let registry = default_registry();
    let mut inst = acmr_core::AdmissionInstance::from_capacities(caps.clone());
    for r in &requests {
        inst.push(r.clone());
    }
    let reference = run_registered(&registry, SPEC, &inst, 0).expect("in-memory reference");

    let handle = serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = handle.local_addr();

    let t = Instant::now();
    let v1_report = serve_trace(
        addr,
        SPEC,
        None,
        &caps,
        requests.iter().cloned().map(Ok),
        Some(BATCH),
        |_| {},
    )
    .expect("v1 replay");
    let v1_secs = t.elapsed().as_secs_f64();
    assert_eq!(v1_report, reference, "v1 served report diverged");

    let t = Instant::now();
    let v2_report = serve_trace_v2(
        addr,
        SPEC,
        None,
        &caps,
        requests.iter().cloned().map(Ok),
        Some(BATCH),
        false,
        |_| {},
    )
    .expect("v2 replay");
    let v2_secs = t.elapsed().as_secs_f64();
    assert_eq!(v2_report, reference, "v2 served report diverged");
    handle.shutdown();

    let v1_rps = REQUESTS as f64 / v1_secs;
    let v2_rps = REQUESTS as f64 / v2_secs;

    // ------------------------------------------------------------------
    // Arm 2: the E12 sweep — sharded vs cluster-v1 vs cluster-v2.
    // ------------------------------------------------------------------
    let traces = vec![
        ("nested".to_string(), nested_intervals(16, 2, 2, 2)),
        ("squeeze".to_string(), two_phase_squeeze(12, 3, 4, 3)),
        ("dyadic".to_string(), dyadic_admission_instance(4, 3, 2)),
    ];
    let trace_names: Vec<&str> = traces.iter().map(|(n, _)| n.as_str()).collect();
    let specs: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let jobs = cross_jobs(&trace_names, &spec_refs, &[0, 1]);
    let budget = BoundBudget {
        max_exact_items: 60,
        exact_nodes: 20_000,
        max_lp_items: 0,
    };

    let (handles, pool_v2, worker_mode) = start_workers();
    let addrs: Vec<String> = pool_v2.addrs().iter().map(|a| a.to_string()).collect();
    let pool_v1 = WorkerPool::connect(&addrs)
        .expect("adopt workers (v1)")
        .proto(ProtoVersion::V1);

    let sharded_driver = ShardedDriver::new()
        .threads(WORKERS)
        .batch(SWEEP_BATCH)
        .budget(budget);
    let cluster_v1_driver = ClusterDriver::new(&pool_v1)
        .batch(SWEEP_BATCH)
        .budget(budget);
    let cluster_v2_driver = ClusterDriver::new(&pool_v2)
        .batch(SWEEP_BATCH)
        .budget(budget);

    let mut sharded = Vec::with_capacity(ROUNDS);
    let mut cluster_v1 = Vec::with_capacity(ROUNDS);
    let mut cluster_v2 = Vec::with_capacity(ROUNDS);
    let mut last_sharded = None;
    let mut last_v1 = None;
    let mut last_v2 = None;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        last_sharded = Some(sharded_driver.run(&registry, &traces, &jobs).unwrap());
        sharded.push(t.elapsed());

        let t = Instant::now();
        last_v1 = Some(cluster_v1_driver.run(&traces, &jobs).unwrap());
        cluster_v1.push(t.elapsed());

        let t = Instant::now();
        last_v2 = Some(cluster_v2_driver.run(&traces, &jobs).unwrap());
        cluster_v2.push(t.elapsed());
    }

    // Differential guard: both wire dialects, byte-identical sweeps.
    let sharded_sweep = serde_json::to_string_pretty(&last_sharded.unwrap()).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&last_v1.unwrap()).unwrap(),
        sharded_sweep,
        "cluster v1 sweep diverged from sharded"
    );
    assert_eq!(
        serde_json::to_string_pretty(&last_v2.unwrap()).unwrap(),
        sharded_sweep,
        "cluster v2 sweep diverged from sharded"
    );

    let sharded_ms = median_ms(&mut sharded);
    let cluster_v1_ms = median_ms(&mut cluster_v1);
    let cluster_v2_ms = median_ms(&mut cluster_v2);
    let summary = Protocol2Summary {
        workload: "line-512-cap8-200k",
        algorithm: SPEC,
        requests: REQUESTS,
        batch: BATCH,
        v1_decisions_per_sec: v1_rps,
        v2_decisions_per_sec: v2_rps,
        v2_over_v1: v2_rps / v1_rps,
        sweep: "e12-hostile-families-all-algorithms",
        jobs: jobs.len(),
        workers: WORKERS,
        worker_mode,
        sweep_batch: SWEEP_BATCH,
        sharded_ms,
        cluster_v1_ms,
        cluster_v2_ms,
        cluster_v1_over_sharded: cluster_v1_ms / sharded_ms,
        cluster_v2_over_sharded: cluster_v2_ms / sharded_ms,
    };
    println!(
        "bench e16_protocol2/loopback ... v1 {:.0} dec/s, v2 {:.0} dec/s ({:.1}x); \
         sweep sharded {:.2} ms, cluster v1 {:.2} ms ({:.2}x), cluster v2 {:.2} ms ({:.2}x) \
         — {} jobs over {} workers ({})",
        summary.v1_decisions_per_sec,
        summary.v2_decisions_per_sec,
        summary.v2_over_v1,
        summary.sharded_ms,
        summary.cluster_v1_ms,
        summary.cluster_v1_over_sharded,
        summary.cluster_v2_ms,
        summary.cluster_v2_over_sharded,
        summary.jobs,
        summary.workers,
        summary.worker_mode,
    );
    acmr_bench::emit_bench_json("protocol2", &summary);

    pool_v1.shutdown();
    pool_v2.shutdown();
    for handle in handles {
        handle.shutdown();
    }
}

fn bench_all(_criterion: &mut Criterion) {
    protocol2();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
