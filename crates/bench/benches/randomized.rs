//! Bench: §3 randomized algorithm — end-to-end run cost across scales
//! (the engine behind tables E3/E4).

use acmr_core::{OnlineAdmission, RandConfig, RandomizedAdmission, Request, RequestId};
use acmr_workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drive(inst: &acmr_core::AdmissionInstance, cfg: RandConfig, seed: u64) -> f64 {
    let mut alg = RandomizedAdmission::new(&inst.capacities, cfg, StdRng::seed_from_u64(seed));
    let mut rejected = 0.0;
    for (i, r) in inst.requests.iter().enumerate() {
        let req = Request::new(r.footprint.clone(), r.cost);
        let out = alg.on_request(RequestId(i as u32), &req);
        if !out.accepted {
            rejected += r.cost;
        }
    }
    rejected
}

fn bench_randomized(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("randomized_admission");
    for &(m, c) in &[(64u32, 4u32), (256, 8), (1024, 16)] {
        for (label, costs, cfg) in [
            (
                "weighted",
                CostModel::Zipf {
                    n_values: 64,
                    s: 1.1,
                },
                RandConfig::weighted(),
            ),
            ("unweighted", CostModel::Unit, RandConfig::unweighted()),
        ] {
            let spec = PathWorkloadSpec {
                topology: Topology::Line { m },
                capacity: c,
                overload: 2.0,
                costs,
                max_hops: 8,
            };
            let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(11));
            group.throughput(Throughput::Elements(inst.requests.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(label, format!("m{m}_c{c}")),
                &inst,
                |b, inst| b.iter(|| drive(inst, cfg, 99)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_randomized);
criterion_main!(benches);
