//! Bench: **E14** — the live serving front end on loopback.
//!
//! Starts an in-process `acmr-serve` server on an ephemeral loopback
//! port and measures the two numbers an operator sizes a deployment
//! by (`docs/OPERATIONS.md` explains how to read them):
//!
//! 1. **Sustained throughput**: one connection replaying a 200k-request
//!    trace as `BATCH 512` frames — requests/second through handshake,
//!    wire parse, engine decision, event serialization and reply.
//! 2. **Per-decision latency**: single-request frames, one round trip
//!    per arrival (write → decide → event reply), p50/p99 over a
//!    5 000-arrival sample.
//!
//! The throughput arm doubles as a large differential check: the
//! served report must equal the in-memory `run_registered` report for
//! the same trace and seed. Results land in `BENCH_serving.json` for
//! CI to upload.

use acmr_core::Request;
use acmr_graph::{EdgeId, EdgeSet};
use acmr_harness::{default_registry, run_registered};
use acmr_serve::{serve, ServeClient, ServeConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::{Duration, Instant};

const EDGES: u32 = 512;
const CAPACITY: u32 = 8;
const REQUESTS: usize = 200_000;
const BATCH: usize = 512;
const LATENCY_SAMPLES: usize = 5_000;
const SPEC: &str = "greedy";

/// The line workload of the streaming bench, materialized: short
/// contiguous footprints, small integer-ish costs.
fn generate_requests() -> (Vec<u32>, Vec<Request>) {
    let caps = vec![CAPACITY; EDGES as usize];
    let mut rng = StdRng::seed_from_u64(42);
    let requests = (0..REQUESTS)
        .map(|_| {
            let hops = 1 + rng.gen_range(0..4u32);
            let start = rng.gen_range(0..EDGES - hops);
            let edges: Vec<EdgeId> = (start..start + hops).map(EdgeId).collect();
            let cost = 1.0 + f64::from(rng.gen_range(0..4u32));
            Request::new(EdgeSet::new(edges), cost)
        })
        .collect();
    (caps, requests)
}

/// Machine-readable summary of the E14 serving numbers.
#[derive(Serialize)]
struct ServingSummary {
    workload: &'static str,
    algorithm: &'static str,
    edges: u32,
    requests: usize,
    batch: usize,
    /// Wall-clock of the batched replay, connection setup included.
    served_batched_ms: f64,
    /// Sustained loopback throughput of the batched replay.
    served_reqs_per_sec: f64,
    /// Arrivals in the single-frame latency sample.
    latency_samples: usize,
    /// Median single-frame round trip (µs): write, decide, event back.
    latency_p50_us: f64,
    /// 99th-percentile single-frame round trip (µs).
    latency_p99_us: f64,
}

fn serving_loopback() {
    let (caps, requests) = generate_requests();
    let registry = default_registry();
    let reference = run_registered(&registry, SPEC, &to_instance(&caps, &requests), 0)
        .expect("in-memory reference run");

    let handle = serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = handle.local_addr();

    // Arm 1: sustained throughput, BATCH frames over one connection.
    let t = Instant::now();
    let mut client = ServeClient::connect(addr, SPEC, None, &caps).expect("connect");
    let mut served_events = 0usize;
    for chunk in requests.chunks(BATCH) {
        served_events += client.push_batch(chunk).expect("batch frame").len();
    }
    let served = client.finish().expect("final report");
    let served_batched_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(served_events, REQUESTS);
    // Differential guard: the wire changes nothing.
    assert_eq!(served, reference, "served report diverged from in-memory");

    // Arm 2: per-decision latency, one round trip per arrival.
    let mut client = ServeClient::connect(addr, SPEC, None, &caps).expect("connect");
    let mut samples: Vec<Duration> = Vec::with_capacity(LATENCY_SAMPLES);
    for request in requests.iter().take(LATENCY_SAMPLES) {
        let t = Instant::now();
        client.push(request).expect("single frame");
        samples.push(t.elapsed());
    }
    let _ = client.finish().expect("latency session report");
    handle.shutdown();

    samples.sort();
    let percentile = |p: f64| -> f64 {
        let idx = ((samples.len() as f64 * p).ceil() as usize).clamp(1, samples.len()) - 1;
        samples[idx].as_secs_f64() * 1e6
    };
    let summary = ServingSummary {
        workload: "line-512-cap8-200k",
        algorithm: SPEC,
        edges: EDGES,
        requests: REQUESTS,
        batch: BATCH,
        served_batched_ms,
        served_reqs_per_sec: REQUESTS as f64 / (served_batched_ms / 1e3),
        latency_samples: LATENCY_SAMPLES,
        latency_p50_us: percentile(0.50),
        latency_p99_us: percentile(0.99),
    };
    println!(
        "bench e14_serving/loopback ... batched {:.0} ms ({:.0} req/s sustained); \
         single-frame p50 {:.1} µs, p99 {:.1} µs over {} samples",
        summary.served_batched_ms,
        summary.served_reqs_per_sec,
        summary.latency_p50_us,
        summary.latency_p99_us,
        summary.latency_samples,
    );
    acmr_bench::emit_bench_json("serving", &summary);
}

fn to_instance(caps: &[u32], requests: &[Request]) -> acmr_core::AdmissionInstance {
    let mut inst = acmr_core::AdmissionInstance::from_capacities(caps.to_vec());
    for r in requests {
        inst.push(r.clone());
    }
    inst
}

fn bench_all(_criterion: &mut Criterion) {
    serving_loopback();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
