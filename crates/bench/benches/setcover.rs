//! Bench: §4 reduction — online set cover with repetitions end-to-end
//! (the engine behind table E5), including phase-1 construction.

use acmr_core::setcover::{OnlineSetCover, ReductionCover};
use acmr_core::RandConfig;
use acmr_workloads::{random_arrivals, random_set_system, ArrivalPattern, SetSystemSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_reduction(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("setcover_reduction");
    for &(n, m) in &[(16usize, 24usize), (64, 96), (256, 384)] {
        let spec = SetSystemSpec {
            num_elements: n,
            num_sets: m,
            density: 0.25,
            min_degree: 3,
            max_cost: 1,
        };
        let mut rng = StdRng::seed_from_u64(13);
        let system = random_set_system(&spec, &mut rng);
        let arrivals = random_arrivals(&system, ArrivalPattern::RoundRobin, 2, &mut rng);
        group.throughput(Throughput::Elements(arrivals.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("reduction", format!("n{n}_m{m}")),
            &(system, arrivals),
            |b, (system, arrivals)| {
                b.iter(|| {
                    let mut red = ReductionCover::randomized(
                        system.clone(),
                        RandConfig::unweighted(),
                        StdRng::seed_from_u64(17),
                    );
                    for &j in arrivals {
                        red.on_arrival(j);
                    }
                    red.total_cost()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
