//! Bench: **E13** — streamed trace ingestion vs in-memory
//! materialization on a trace bigger than anything `acmr gen`
//! previously produced in one piece.
//!
//! The trace (1M requests over a 4096-edge line, ~14 MB on disk) is
//! *generated incrementally* straight to a temp file through
//! `TraceWriter` — it never exists in memory — then ingested three
//! ways with the same algorithm:
//!
//! 1. **streamed** (`run_stream_registered`, per-push off the chunked
//!    `TraceReader`),
//! 2. **streamed batched** (chunks of 256 through `push_batch`),
//! 3. **in-memory** (read the whole file, materialize the
//!    `AdmissionInstance`, `run_trace`) — the pre-PR-3 baseline.
//!
//! Besides wall-clock throughput, the bench records the process's
//! **peak RSS** (`VmHWM`) after the streamed passes and again after
//! the in-memory pass: the streamed paths keep the high-water mark
//! flat while materialization visibly raises it. All three arms must
//! produce the identical report (asserted — this bench doubles as a
//! large-scale differential check). Results land in
//! `BENCH_streaming.json` for CI to upload.

use acmr_bench::e13::{self, BATCH, EDGES, REQUESTS, SPEC};
use acmr_harness::{default_registry, run_stream_registered};
use acmr_workloads::trace::{read_trace, TraceReader};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::time::Instant;

/// Machine-readable summary of the E13 comparison.
#[derive(Serialize)]
struct StreamingSummary {
    workload: &'static str,
    algorithm: &'static str,
    edges: u32,
    requests: usize,
    trace_bytes: u64,
    batch: usize,
    streamed_ms: f64,
    streamed_reqs_per_sec: f64,
    streamed_batched_ms: f64,
    streamed_batched_reqs_per_sec: f64,
    in_memory_ms: f64,
    /// Peak RSS (KiB) after both streamed passes — the streaming
    /// high-water mark.
    peak_rss_after_streamed_kb: u64,
    /// Peak RSS (KiB) after the in-memory pass: materializing the
    /// instance is what moves this.
    peak_rss_after_in_memory_kb: u64,
}

fn streaming_ingestion() {
    let registry = default_registry();
    let path =
        std::env::temp_dir().join(format!("acmr-bench-streaming-{}.trace", std::process::id()));
    let trace_bytes = e13::generate_trace(&path).expect("generate bench trace");

    // Arm 1: streamed, per-push.
    let t = Instant::now();
    let streamed = run_stream_registered(
        &registry,
        SPEC,
        TraceReader::open(&path).expect("open trace"),
        0,
        None,
    )
    .expect("streamed run");
    let streamed_ms = t.elapsed().as_secs_f64() * 1e3;

    // Arm 2: streamed, batched.
    let t = Instant::now();
    let streamed_batched = run_stream_registered(
        &registry,
        SPEC,
        TraceReader::open(&path).expect("open trace"),
        0,
        Some(BATCH),
    )
    .expect("streamed batched run");
    let streamed_batched_ms = t.elapsed().as_secs_f64() * 1e3;
    let peak_rss_after_streamed_kb = e13::peak_rss_kb().unwrap_or(0);

    // Arm 3: the pre-streaming baseline — slurp, materialize, run.
    let t = Instant::now();
    let text = std::fs::read_to_string(&path).expect("slurp trace");
    let inst = read_trace(&text).expect("parse trace");
    let in_memory = acmr_harness::run_registered(&registry, SPEC, &inst, 0).expect("in-memory run");
    let in_memory_ms = t.elapsed().as_secs_f64() * 1e3;
    let peak_rss_after_in_memory_kb = e13::peak_rss_kb().unwrap_or(0);
    drop((text, inst));

    // Differential guard: all arms agree to the byte.
    assert_eq!(streamed, in_memory, "streamed diverged from in-memory");
    assert_eq!(streamed_batched, in_memory, "batched diverged");

    let _ = std::fs::remove_file(&path);

    let summary = StreamingSummary {
        workload: e13::LABEL,
        algorithm: SPEC,
        edges: EDGES,
        requests: REQUESTS,
        trace_bytes,
        batch: BATCH,
        streamed_ms,
        streamed_reqs_per_sec: REQUESTS as f64 / (streamed_ms / 1e3),
        streamed_batched_ms,
        streamed_batched_reqs_per_sec: REQUESTS as f64 / (streamed_batched_ms / 1e3),
        in_memory_ms,
        peak_rss_after_streamed_kb,
        peak_rss_after_in_memory_kb,
    };
    println!(
        "bench e13_streaming/line4096 ... streamed {:.0} ms ({:.0} req/s), batched {:.0} ms \
         ({:.0} req/s), in-memory {:.0} ms; peak RSS {} KiB streamed vs {} KiB after materialize",
        summary.streamed_ms,
        summary.streamed_reqs_per_sec,
        summary.streamed_batched_ms,
        summary.streamed_batched_reqs_per_sec,
        summary.in_memory_ms,
        summary.peak_rss_after_streamed_kb,
        summary.peak_rss_after_in_memory_kb,
    );
    acmr_bench::emit_bench_json("streaming", &summary);
}

fn bench_all(_criterion: &mut Criterion) {
    streaming_ingestion();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
