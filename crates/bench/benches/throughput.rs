//! Bench: **E10** — requests/second scaling of every online algorithm
//! on a common workload series (the systems dimension: all algorithms
//! must stay practical as instances grow).

use acmr_core::setcover::{BicriteriaCover, OnlineSetCover, ReductionCover};
use acmr_core::{AlgorithmSpec, RandConfig, Session};
use acmr_harness::default_registry;
use acmr_workloads::{
    random_arrivals, random_path_workload, random_set_system, ArrivalPattern, CostModel,
    PathWorkloadSpec, SetSystemSpec, Topology,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_throughput(criterion: &mut Criterion) {
    let registry = default_registry();
    let mut group = criterion.benchmark_group("e10_throughput");
    for &m in &[128u32, 512, 2048] {
        let spec = PathWorkloadSpec {
            topology: Topology::Line { m },
            capacity: 8,
            overload: 1.5,
            costs: CostModel::Unit,
            max_hops: 8,
        };
        let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(31));
        group.throughput(Throughput::Elements(inst.requests.len() as u64));
        for name in ["aag-unweighted", "greedy"] {
            let alg_spec = AlgorithmSpec::parse(name).expect("registry name parses");
            group.bench_with_input(BenchmarkId::new(name, format!("m{m}")), &inst, |b, inst| {
                b.iter(|| {
                    let mut session =
                        Session::from_registry(&registry, &alg_spec, &inst.capacities, 3)
                            .expect("registry build");
                    session.run_trace(inst).expect("audited run").accepted_count
                })
            });
        }
    }
    for &(n, m) in &[(64usize, 96usize), (256, 384)] {
        let spec = SetSystemSpec {
            num_elements: n,
            num_sets: m,
            density: 0.2,
            min_degree: 3,
            max_cost: 1,
        };
        let mut rng = StdRng::seed_from_u64(37);
        let system = random_set_system(&spec, &mut rng);
        let arrivals = random_arrivals(&system, ArrivalPattern::UniformRandom, 2, &mut rng);
        group.throughput(Throughput::Elements(arrivals.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("setcover_reduction", format!("n{n}")),
            &(system.clone(), arrivals.clone()),
            |b, (system, arrivals)| {
                b.iter(|| {
                    let mut alg = ReductionCover::randomized(
                        system.clone(),
                        RandConfig::unweighted(),
                        StdRng::seed_from_u64(5),
                    );
                    for &j in arrivals {
                        alg.on_arrival(j);
                    }
                    alg.total_cost()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("setcover_bicriteria", format!("n{n}")),
            &(system, arrivals),
            |b, (system, arrivals)| {
                b.iter(|| {
                    let mut alg = BicriteriaCover::new(system.clone(), 0.25);
                    for &j in arrivals {
                        alg.on_arrival(j);
                    }
                    alg.total_cost()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
