//! Bench: **E10** — requests/second scaling of every online algorithm
//! on a common workload series (the systems dimension: all algorithms
//! must stay practical as instances grow), plus **E10b**: the batched
//! sharded sweep against the sequential per-push baseline on the
//! 64-node grid workload, with the speedups persisted to
//! `BENCH_throughput.json` (see [`throughput_speedups`]).

use acmr_core::setcover::{BicriteriaCover, OnlineSetCover, ReductionCover};
use acmr_core::{AlgorithmSpec, RandConfig, Session};
use acmr_harness::{cross_jobs, default_registry, run_report, BoundBudget, ShardedDriver};
use acmr_workloads::{
    random_arrivals, random_path_workload, random_set_system, ArrivalPattern, CostModel,
    PathWorkloadSpec, SetSystemSpec, Topology,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::{Duration, Instant};

fn bench_throughput(criterion: &mut Criterion) {
    let registry = default_registry();
    let mut group = criterion.benchmark_group("e10_throughput");
    for &m in &[128u32, 512, 2048] {
        let spec = PathWorkloadSpec {
            topology: Topology::Line { m },
            capacity: 8,
            overload: 1.5,
            costs: CostModel::Unit,
            max_hops: 8,
        };
        let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(31));
        group.throughput(Throughput::Elements(inst.requests.len() as u64));
        for name in ["aag-unweighted", "greedy"] {
            let alg_spec = AlgorithmSpec::parse(name).expect("registry name parses");
            group.bench_with_input(BenchmarkId::new(name, format!("m{m}")), &inst, |b, inst| {
                b.iter(|| {
                    let mut session =
                        Session::from_registry(&registry, &alg_spec, &inst.capacities, 3)
                            .expect("registry build");
                    session.run_trace(inst).expect("audited run").accepted_count
                })
            });
        }
    }
    for &(n, m) in &[(64usize, 96usize), (256, 384)] {
        let spec = SetSystemSpec {
            num_elements: n,
            num_sets: m,
            density: 0.2,
            min_degree: 3,
            max_cost: 1,
        };
        let mut rng = StdRng::seed_from_u64(37);
        let system = random_set_system(&spec, &mut rng);
        let arrivals = random_arrivals(&system, ArrivalPattern::UniformRandom, 2, &mut rng);
        group.throughput(Throughput::Elements(arrivals.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("setcover_reduction", format!("n{n}")),
            &(system.clone(), arrivals.clone()),
            |b, (system, arrivals)| {
                b.iter(|| {
                    let mut alg = ReductionCover::randomized(
                        system.clone(),
                        RandConfig::unweighted(),
                        StdRng::seed_from_u64(5),
                    );
                    for &j in arrivals {
                        alg.on_arrival(j);
                    }
                    alg.total_cost()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("setcover_bicriteria", format!("n{n}")),
            &(system, arrivals),
            |b, (system, arrivals)| {
                b.iter(|| {
                    let mut alg = BicriteriaCover::new(system.clone(), 0.25);
                    for &j in arrivals {
                        alg.on_arrival(j);
                    }
                    alg.total_cost()
                })
            },
        );
    }
    group.finish();
}

/// Machine-readable summary of the E10b comparison.
#[derive(Serialize)]
struct SpeedupSummary {
    workload: &'static str,
    edges: usize,
    requests: usize,
    jobs: usize,
    threads: usize,
    batch: usize,
    /// Per-job `run_report` (streaming push + per-job OPT bound), one
    /// job after another — the pre-driver sequential path.
    sequential_per_push_ms: f64,
    /// `ShardedDriver`: per-trace OPT computed once and shared, jobs
    /// fanned over threads, arrivals through `push_batch`.
    sharded_batched_ms: f64,
    sweep_speedup: f64,
    /// Engine only (no OPT): one algorithm over the trace, per-push
    /// streaming vs batched session path.
    engine_per_push_ms: f64,
    engine_batched_ms: f64,
    engine_batch_speedup: f64,
}

fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

/// E10b: batched sharded sweep vs sequential per-push on the 64-node
/// grid workload (8×8 grid, the acceptance workload).
///
/// Both arms produce byte-identical reports (asserted below — this
/// bench is also a differential check); the driver wins on work shape:
/// the offline-optimum bound of the shared trace is computed **once**
/// instead of once per job, jobs shard across worker threads, and
/// arrivals flow through `push_batch`. The bound budget is the
/// greedy-over-H tier so one arm stays bench-sized (the default LP
/// budget takes ~15 s per pass on this trace — same shape, larger
/// margin).
fn throughput_speedups() {
    let spec = PathWorkloadSpec {
        topology: Topology::Grid { rows: 8, cols: 8 },
        capacity: 8,
        overload: 1.5,
        costs: CostModel::Uniform { lo: 1.0, hi: 6.0 },
        max_hops: 8,
    };
    let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(31));
    let registry = default_registry();
    let specs: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let seeds: Vec<u64> = (0..3).collect();
    let jobs = cross_jobs(&["grid64"], &spec_refs, &seeds);
    let traces = vec![("grid64".to_string(), inst.clone())];
    let budget = BoundBudget {
        max_exact_items: 0,
        exact_nodes: 0,
        max_lp_items: 0,
    };
    let driver = ShardedDriver::new().batch(64).budget(budget);

    const ROUNDS: usize = 7;
    let mut seq = Vec::with_capacity(ROUNDS);
    let mut sharded = Vec::with_capacity(ROUNDS);
    let mut last_seq_reports = Vec::new();
    let mut last_sweep = None;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        last_seq_reports = jobs
            .iter()
            .map(|job| run_report(&registry, &job.spec, &inst, job.seed, budget).unwrap())
            .collect();
        seq.push(t.elapsed());

        let t = Instant::now();
        last_sweep = Some(driver.run(&registry, &traces, &jobs).unwrap());
        sharded.push(t.elapsed());
    }
    // Differential guard: the two arms must agree job for job.
    let sweep = last_sweep.expect("sweep ran");
    for (seq_report, job) in last_seq_reports.iter().zip(&sweep.jobs) {
        assert_eq!(&job.report, seq_report, "sweep diverged from sequential");
    }

    // Engine-only comparison (no OPT): streaming vs batched session.
    let alg = AlgorithmSpec::parse("aag-weighted?seed=3").unwrap();
    let mut engine_push = Vec::with_capacity(ROUNDS);
    let mut engine_batch = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t = Instant::now();
        let mut session = Session::from_registry(&registry, &alg, &inst.capacities, 0).unwrap();
        for r in &inst.requests {
            criterion::black_box(session.push(r).unwrap());
        }
        engine_push.push(t.elapsed());

        let t = Instant::now();
        let mut session = Session::from_registry(&registry, &alg, &inst.capacities, 0).unwrap();
        let mut events = Vec::new();
        for chunk in inst.requests.chunks(64) {
            session.push_batch_into(chunk, &mut events).unwrap();
            criterion::black_box(&events);
        }
        engine_batch.push(t.elapsed());
    }

    let sequential_per_push_ms = median_ms(&mut seq);
    let sharded_batched_ms = median_ms(&mut sharded);
    let engine_per_push_ms = median_ms(&mut engine_push);
    let engine_batched_ms = median_ms(&mut engine_batch);
    let summary = SpeedupSummary {
        workload: "grid-8x8-cap8-overload1.5",
        edges: inst.num_edges(),
        requests: inst.requests.len(),
        jobs: jobs.len(),
        threads: sweep.threads,
        batch: sweep.batch,
        sequential_per_push_ms,
        sharded_batched_ms,
        sweep_speedup: sequential_per_push_ms / sharded_batched_ms,
        engine_per_push_ms,
        engine_batched_ms,
        engine_batch_speedup: engine_per_push_ms / engine_batched_ms,
    };
    println!(
        "bench e10b_speedup/grid64 ... sequential {:.2} ms, sharded+batched {:.2} ms ({:.2}x); \
         engine per-push {:.3} ms vs batched {:.3} ms ({:.2}x)",
        summary.sequential_per_push_ms,
        summary.sharded_batched_ms,
        summary.sweep_speedup,
        summary.engine_per_push_ms,
        summary.engine_batched_ms,
        summary.engine_batch_speedup,
    );
    acmr_bench::emit_bench_json("throughput", &summary);
}

fn bench_all(criterion: &mut Criterion) {
    bench_throughput(criterion);
    throughput_speedups();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
