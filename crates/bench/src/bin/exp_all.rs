//! Regenerates every experiment table in sequence. `--quick` shrinks grids.
use acmr_harness::experiments as ex;

fn main() {
    let quick = !acmr_bench::full_grid_requested();
    acmr_bench::emit(
        &ex::e1_fractional::table(&ex::e1_fractional::run(quick)),
        "e1",
    );
    acmr_bench::emit(
        &ex::e2_augmentations::table(&ex::e2_augmentations::run(quick)),
        "e2",
    );
    acmr_bench::emit(
        &ex::e3_randomized_weighted::table(&ex::e3_randomized_weighted::run(quick)),
        "e3",
    );
    acmr_bench::emit(
        &ex::e4_randomized_unweighted::table(&ex::e4_randomized_unweighted::run(quick)),
        "e4",
    );
    acmr_bench::emit(
        &ex::e5_reduction::table(&ex::e5_reduction::run(quick)),
        "e5",
    );
    acmr_bench::emit(
        &ex::e6_bicriteria::table(&ex::e6_bicriteria::run(quick)),
        "e6",
    );
    acmr_bench::emit(
        &ex::e7_baselines::table(&ex::e7_baselines::run(quick)),
        "e7",
    );
    acmr_bench::emit(
        &ex::e8_ablations::table(&ex::e8_ablations::run(quick)),
        "e8",
    );
    acmr_bench::emit(
        &ex::e9_potential::table(&ex::e9_potential::run(quick)),
        "e9",
    );
    acmr_bench::emit(
        &ex::e11_frontier::table(&ex::e11_frontier::run(quick)),
        "e11",
    );
}
