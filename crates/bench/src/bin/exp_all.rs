//! Regenerates every experiment table in sequence. `--quick` shrinks grids.
use acmr_harness::experiments as ex;
use acmr_harness::{cross_jobs, default_registry, BoundBudget, ShardedDriver, Table};
use acmr_workloads::{
    dyadic_admission_instance, nested_intervals, random_path_workload, two_phase_squeeze,
    CostModel, PathWorkloadSpec, Topology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E12: every registered algorithm over the hostile families plus (in
/// full mode) the 64-node grid workload, as one sharded sweep — the
/// multi-trace driver is itself part of the experiment surface now.
fn sweep_table(quick: bool) -> Table {
    let registry = default_registry();
    let mut traces = vec![
        ("nested".to_string(), nested_intervals(16, 2, 2, 2)),
        ("squeeze".to_string(), two_phase_squeeze(12, 3, 4, 3)),
        ("dyadic".to_string(), dyadic_admission_instance(4, 3, 2)),
    ];
    if !quick {
        let spec = PathWorkloadSpec {
            topology: Topology::Grid { rows: 8, cols: 8 },
            capacity: 8,
            overload: 1.5,
            costs: CostModel::Uniform { lo: 1.0, hi: 6.0 },
            max_hops: 8,
        };
        let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(31));
        traces.push(("grid64".to_string(), inst));
    }
    let trace_names: Vec<&str> = traces.iter().map(|(n, _)| n.as_str()).collect();
    let specs: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let seeds: Vec<u64> = if quick { vec![0] } else { vec![0, 1, 2] };
    let jobs = cross_jobs(&trace_names, &spec_refs, &seeds);
    // Greedy-tier budget: the full-mode grid64 trace is too large for
    // the LP, and one shared bound per trace is the point of the
    // driver anyway.
    let budget = BoundBudget {
        max_exact_items: 60,
        exact_nodes: 20_000,
        max_lp_items: 0,
    };
    let sweep = ShardedDriver::new()
        .batch(64)
        .budget(budget)
        .run(&registry, &traces, &jobs)
        .expect("sweep runs");
    acmr_bench::emit_bench_json("sweep", &sweep);
    let mut table = Table::new(
        "E12: sharded multi-trace sweep (batched sessions, shared per-trace OPT bounds)",
        &[
            "trace",
            "algorithm",
            "seed",
            "rejected cost",
            "preempt",
            "ratio",
        ],
    );
    for job in &sweep.jobs {
        let r = &job.report;
        table.push_row(vec![
            job.trace.clone(),
            r.algorithm.clone(),
            r.seed.map(|s| s.to_string()).unwrap_or_default(),
            format!("{:.2}", r.rejected_cost),
            r.preemptions.to_string(),
            r.ratio()
                .map(|x| format!("{x:.3}"))
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    table
}

fn main() {
    let quick = !acmr_bench::full_grid_requested();
    acmr_bench::emit(
        &ex::e1_fractional::table(&ex::e1_fractional::run(quick)),
        "e1",
    );
    acmr_bench::emit(
        &ex::e2_augmentations::table(&ex::e2_augmentations::run(quick)),
        "e2",
    );
    acmr_bench::emit(
        &ex::e3_randomized_weighted::table(&ex::e3_randomized_weighted::run(quick)),
        "e3",
    );
    acmr_bench::emit(
        &ex::e4_randomized_unweighted::table(&ex::e4_randomized_unweighted::run(quick)),
        "e4",
    );
    acmr_bench::emit(
        &ex::e5_reduction::table(&ex::e5_reduction::run(quick)),
        "e5",
    );
    acmr_bench::emit(
        &ex::e6_bicriteria::table(&ex::e6_bicriteria::run(quick)),
        "e6",
    );
    acmr_bench::emit(
        &ex::e7_baselines::table(&ex::e7_baselines::run(quick)),
        "e7",
    );
    acmr_bench::emit(
        &ex::e8_ablations::table(&ex::e8_ablations::run(quick)),
        "e8",
    );
    acmr_bench::emit(
        &ex::e9_potential::table(&ex::e9_potential::run(quick)),
        "e9",
    );
    acmr_bench::emit(
        &ex::e11_frontier::table(&ex::e11_frontier::run(quick)),
        "e11",
    );
    acmr_bench::emit(&sweep_table(quick), "e12");
}
