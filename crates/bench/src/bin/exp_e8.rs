//! Regenerates the E8 table. Writes CSV when `ACMR_RESULTS_DIR` is set. `--quick` shrinks the grid.
use acmr_harness::experiments::e8_ablations as exp;

fn main() {
    let quick = !acmr_bench::full_grid_requested();
    let cells = exp::run(quick);
    acmr_bench::emit(&exp::table(&cells), "e8");
}
