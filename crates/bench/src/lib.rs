//! # acmr-bench
//!
//! Criterion benchmarks and the `exp_*` experiment binaries that
//! regenerate the paper-validation tables (CSV via `ACMR_RESULTS_DIR`,
//! machine-readable summaries via [`emit_bench_json`]).
//!
//! Binaries (all support `--quick` for a reduced grid):
//!
//! ```text
//! cargo run -p acmr-bench --release --bin exp_e1   # … through exp_e9
//! cargo run -p acmr-bench --release --bin exp_all  # everything
//! ```
//!
//! Benches (`cargo bench -p acmr-bench`): `fractional`, `randomized`,
//! `setcover`, `bicriteria`, `baselines`, `lp`, and `throughput`
//! (experiment E10 — requests/second scaling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shared CLI plumbing for the `exp_*` binaries: returns `true` when
/// the full grid was requested (no `--quick` flag).
pub fn full_grid_requested() -> bool {
    !std::env::args().any(|a| a == "--quick")
}

/// The **E13** workload shared by the `streaming` and `trace2`
/// benches: 1M requests over a 4096-edge line (capacity 8), generated
/// incrementally straight to disk through [`TraceWriter`] so the
/// instance never exists in memory. Both benches must replay the
/// byte-identical trace — the generator lives here so they cannot
/// drift apart.
///
/// [`TraceWriter`]: acmr_workloads::trace::TraceWriter
pub mod e13 {
    use acmr_core::Request;
    use acmr_graph::{EdgeId, EdgeSet};
    use acmr_workloads::trace::TraceWriter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::io::BufWriter;

    /// Edges in the line network.
    pub const EDGES: u32 = 4096;
    /// Requests in the trace.
    pub const REQUESTS: usize = 1_000_000;
    /// Uniform edge capacity.
    pub const CAPACITY: u32 = 8;
    /// Batch size for the batched streaming arm.
    pub const BATCH: usize = 256;
    /// Algorithm every arm replays with.
    pub const SPEC: &str = "greedy";
    /// Workload label recorded in the bench summaries.
    pub const LABEL: &str = "line-4096-cap8-1M";

    /// Stream-generate the E13 trace to `path` (text `ACMR-TRACE v1`):
    /// unit-ish costs, short contiguous footprints on a line — the
    /// scale-up of the CLI's line workload. Returns the file size.
    pub fn generate_trace(path: &std::path::Path) -> std::io::Result<u64> {
        let file = std::fs::File::create(path)?;
        let caps = vec![CAPACITY; EDGES as usize];
        let mut w = TraceWriter::new(BufWriter::new(file), &caps, REQUESTS)?;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..REQUESTS {
            let hops = 1 + rng.gen_range(0..4u32);
            let start = rng.gen_range(0..EDGES - hops);
            let edges: Vec<EdgeId> = (start..start + hops).map(EdgeId).collect();
            let cost = 1.0 + f64::from(rng.gen_range(0..4u32));
            w.push(&Request::new(EdgeSet::new(edges), cost))?;
        }
        w.finish()?;
        std::fs::metadata(path).map(|m| m.len())
    }

    /// Peak resident set size in KiB (`VmHWM`), Linux only.
    pub fn peak_rss_kb() -> Option<u64> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        status
            .lines()
            .find(|l| l.starts_with("VmHWM:"))?
            .split_whitespace()
            .nth(1)?
            .parse()
            .ok()
    }
}

/// Print a table and optionally persist its CSV next to the repo
/// results (path taken from `ACMR_RESULTS_DIR` if set).
pub fn emit(table: &acmr_harness::Table, name: &str) {
    println!("{}", table.to_markdown());
    if let Ok(dir) = std::env::var("ACMR_RESULTS_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) =
            std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, table.to_csv()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Serialize `value` to `BENCH_<name>.json` — in `ACMR_RESULTS_DIR`
/// when set, the workspace root otherwise — and echo the path. The
/// throughput bench and `exp_all` persist their machine-readable
/// summaries through this.
///
/// The workspace root is found by walking up from the current
/// directory to the nearest `Cargo.lock`: `cargo bench` starts bench
/// binaries in the *package* directory while `cargo run` keeps the
/// caller's, and the artifact must land in one predictable place for
/// CI to upload.
pub fn emit_bench_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::env::var("ACMR_RESULTS_DIR").unwrap_or_else(|_| {
        let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
        loop {
            if dir.join("Cargo.lock").exists() {
                break dir.display().to_string();
            }
            if !dir.pop() {
                break ".".to_string();
            }
        }
    });
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let json = match serde_json::to_string_pretty(value) {
        Ok(j) => j + "\n",
        Err(e) => {
            eprintln!("warning: could not serialize BENCH_{name}: {e}");
            return;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, json)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
