//! # acmr-bench
//!
//! Criterion benchmarks and the `exp_*` experiment binaries that
//! regenerate every table in `EXPERIMENTS.md`.
//!
//! Binaries (all support `--quick` for a reduced grid):
//!
//! ```text
//! cargo run -p acmr-bench --release --bin exp_e1   # … through exp_e9
//! cargo run -p acmr-bench --release --bin exp_all  # everything
//! ```
//!
//! Benches (`cargo bench -p acmr-bench`): `fractional`, `randomized`,
//! `setcover`, `bicriteria`, `baselines`, `lp`, and `throughput`
//! (experiment E10 — requests/second scaling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shared CLI plumbing for the `exp_*` binaries: returns `true` when
/// the full grid was requested (no `--quick` flag).
pub fn full_grid_requested() -> bool {
    !std::env::args().any(|a| a == "--quick")
}

/// Print a table and optionally persist its CSV next to the repo
/// results (path taken from `ACMR_RESULTS_DIR` if set).
pub fn emit(table: &acmr_harness::Table, name: &str) {
    println!("{}", table.to_markdown());
    if let Ok(dir) = std::env::var("ACMR_RESULTS_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) =
            std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, table.to_csv()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}
