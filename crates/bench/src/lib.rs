//! # acmr-bench
//!
//! Criterion benchmarks and the `exp_*` experiment binaries that
//! regenerate the paper-validation tables (CSV via `ACMR_RESULTS_DIR`,
//! machine-readable summaries via [`emit_bench_json`]).
//!
//! Binaries (all support `--quick` for a reduced grid):
//!
//! ```text
//! cargo run -p acmr-bench --release --bin exp_e1   # … through exp_e9
//! cargo run -p acmr-bench --release --bin exp_all  # everything
//! ```
//!
//! Benches (`cargo bench -p acmr-bench`): `fractional`, `randomized`,
//! `setcover`, `bicriteria`, `baselines`, `lp`, and `throughput`
//! (experiment E10 — requests/second scaling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shared CLI plumbing for the `exp_*` binaries: returns `true` when
/// the full grid was requested (no `--quick` flag).
pub fn full_grid_requested() -> bool {
    !std::env::args().any(|a| a == "--quick")
}

/// Print a table and optionally persist its CSV next to the repo
/// results (path taken from `ACMR_RESULTS_DIR` if set).
pub fn emit(table: &acmr_harness::Table, name: &str) {
    println!("{}", table.to_markdown());
    if let Ok(dir) = std::env::var("ACMR_RESULTS_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) =
            std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, table.to_csv()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Serialize `value` to `BENCH_<name>.json` — in `ACMR_RESULTS_DIR`
/// when set, the workspace root otherwise — and echo the path. The
/// throughput bench and `exp_all` persist their machine-readable
/// summaries through this.
///
/// The workspace root is found by walking up from the current
/// directory to the nearest `Cargo.lock`: `cargo bench` starts bench
/// binaries in the *package* directory while `cargo run` keeps the
/// caller's, and the artifact must land in one predictable place for
/// CI to upload.
pub fn emit_bench_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::env::var("ACMR_RESULTS_DIR").unwrap_or_else(|_| {
        let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
        loop {
            if dir.join("Cargo.lock").exists() {
                break dir.display().to_string();
            }
            if !dir.pop() {
                break ".".to_string();
            }
        }
    });
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let json = match serde_json::to_string_pretty(value) {
        Ok(j) => j + "\n",
        Err(e) => {
            eprintln!("warning: could not serialize BENCH_{name}: {e}");
            return;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, json)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
