//! Tunable constants of the paper's algorithms.
//!
//! The paper fixes explicit constants (`12 log(mc)` thresholds, `4 log m`
//! unweighted, doubling at `Θ(α log(mc))`, pruning at `4mc²`). Those hide
//! inside O(·) in the theorems; we expose them so experiment **E8**
//! can ablate them. Defaults reproduce the paper's text with `log = ln`.

use serde::{Deserialize, Serialize};

/// Weighted vs unweighted parameterization.
///
/// The paper proves `O(log²(mc))` for arbitrary costs and the sharper
/// `O(log m · log c)` when all costs are 1 (different constants in
/// steps 2–3 of the randomized algorithm).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Weighting {
    /// Arbitrary positive costs: thresholds scale with `log(mc)`.
    Weighted,
    /// All costs are 1: thresholds scale with `log m`, and the
    /// fractional engine uses `g = 1` (no cost normalization).
    Unweighted,
}

/// Configuration of the §2 fractional engine.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FracConfig {
    /// Weighted or unweighted parameterization.
    pub weighting: Weighting,
    /// Multiplier `K_d` in the doubling trigger
    /// `phase cost > K_d · α · ln(2gc)`: when exceeded, the guess `α`
    /// doubles (paper §2, "guess and double").
    pub doubling_factor: f64,
    /// Enable the `R_big`/`R_small` cost-class preprocessing. The
    /// competitive proof needs it; turning it off is an E8 ablation.
    pub cost_classes: bool,
}

impl FracConfig {
    /// Paper defaults, weighted.
    pub fn weighted() -> Self {
        FracConfig {
            weighting: Weighting::Weighted,
            doubling_factor: 8.0,
            cost_classes: true,
        }
    }

    /// Paper defaults, unweighted.
    pub fn unweighted() -> Self {
        FracConfig {
            weighting: Weighting::Unweighted,
            doubling_factor: 8.0,
            cost_classes: true,
        }
    }
}

impl Default for FracConfig {
    fn default() -> Self {
        FracConfig::weighted()
    }
}

/// Configuration of the §3 randomized rounding layer.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RandConfig {
    /// Fractional-engine configuration underneath.
    pub frac: FracConfig,
    /// `K_t`: reject every request whose weight reaches
    /// `1/(K_t · L)` (paper: 12 weighted, 4 unweighted), where `L` is
    /// the scale logarithm below.
    pub threshold_const: f64,
    /// `K_p`: on a weight increase `δ`, reject with probability
    /// `K_p · δ · L` (paper: 12 weighted, 4 unweighted).
    pub prob_const: f64,
    /// Enable the `|REQ_e| ≥ 4mc²` safeguard of §3 (reject everything
    /// on pathologically over-requested edges).
    pub prune_hot_edges: bool,
}

impl RandConfig {
    /// Paper defaults for the weighted case: `L = ln(mc)`, constants 12.
    pub fn weighted() -> Self {
        RandConfig {
            frac: FracConfig::weighted(),
            threshold_const: 12.0,
            prob_const: 12.0,
            prune_hot_edges: true,
        }
    }

    /// Paper defaults for the unweighted case: `L = ln m`, constants 4.
    pub fn unweighted() -> Self {
        RandConfig {
            frac: FracConfig::unweighted(),
            threshold_const: 4.0,
            prob_const: 4.0,
            prune_hot_edges: true,
        }
    }

    /// The scale logarithm `L`: `ln(mc)` weighted, `ln(m)` unweighted,
    /// floored at 1 so degenerate tiny instances stay sane.
    pub fn scale_log(&self, m: usize, c: u32) -> f64 {
        let v = match self.frac.weighting {
            Weighting::Weighted => (m as f64 * c as f64).ln(),
            Weighting::Unweighted => (m as f64).ln(),
        };
        v.max(1.0)
    }
}

impl Default for RandConfig {
    fn default() -> Self {
        RandConfig::weighted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let w = RandConfig::weighted();
        assert_eq!(w.threshold_const, 12.0);
        assert_eq!(w.prob_const, 12.0);
        let u = RandConfig::unweighted();
        assert_eq!(u.threshold_const, 4.0);
        assert_eq!(u.frac.weighting, Weighting::Unweighted);
    }

    #[test]
    fn scale_log_floors_at_one() {
        let u = RandConfig::unweighted();
        assert_eq!(u.scale_log(2, 1), 1.0); // ln 2 < 1 → floored
        assert!(u.scale_log(100, 9) > 1.0);
        let w = RandConfig::weighted();
        assert!(w.scale_log(100, 16) > u.scale_log(100, 16));
    }
}
