//! The typed error surface of the public API.
//!
//! The harness historically treated every contract violation as a
//! panic ("the harness is the referee"). That remains true for the
//! audited batch runners — a buggy algorithm should abort an
//! experiment — but the streaming [`crate::Session`] API converts the
//! same violations into [`AcmrError`] values so that services embedding
//! the engine can reject one misbehaving stream without crashing the
//! process.

use std::fmt;

/// Everything that can go wrong at the public API boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AcmrError {
    /// An algorithm spec string (e.g. `aag-weighted?seed=7`) failed to
    /// parse.
    SpecParse {
        /// The offending input.
        input: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A spec named an algorithm no registry entry matches.
    UnknownAlgorithm {
        /// The requested name.
        name: String,
        /// Names that are registered, for the error message.
        known: Vec<String>,
    },
    /// A spec parameter existed but its value could not be used.
    BadParam {
        /// Parameter key.
        key: String,
        /// Offending value.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An online algorithm broke its contract mid-stream (capacity
    /// violation, phantom preemption, accept-after-reject). The message
    /// is phrased exactly like the historical harness panics so logs
    /// stay greppable.
    ContractViolation {
        /// Name of the offending algorithm.
        algorithm: String,
        /// Violation description.
        detail: String,
    },
    /// The session was already poisoned by an earlier contract
    /// violation; no further arrivals are accepted.
    SessionPoisoned,
    /// An instance or request was structurally invalid for this
    /// session (e.g. an edge id beyond the capacity vector).
    InvalidRequest {
        /// What was wrong.
        reason: String,
    },
    /// A trace stream failed to parse (see `docs/TRACE_FORMAT.md` for
    /// the grammar). Produced by streaming trace readers; carries the
    /// 1-based line number so a multi-gigabyte input is still
    /// debuggable.
    TraceParse {
        /// 1-based line of the offending input.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// An underlying I/O operation failed while streaming a trace
    /// (read error, unreadable file, failed spill). The `io::Error` is
    /// carried as text so this type stays `Clone + PartialEq`.
    Io {
        /// Human-readable description including the OS error.
        message: String,
    },
    /// A serving endpoint refused new work because it is over its
    /// configured capacity (connection cap, accept-queue cap). Clients
    /// should treat this as transient back-pressure — retry later or
    /// against another worker — unlike the other variants, which are
    /// either permanent or caller bugs.
    Busy {
        /// What capacity was exhausted.
        message: String,
    },
    /// An `acmr serve` peer replied with a protocol-level `ERR` frame
    /// (see `docs/SERVING.md`). The server maps its own [`AcmrError`]
    /// onto a stable wire code; the client surfaces the reply as this
    /// variant, so a remote failure is still a typed error.
    Remote {
        /// Stable wire error code (e.g. `parse`, `violation`, `proto`).
        code: String,
        /// The server's human-readable description.
        message: String,
    },
}

impl fmt::Display for AcmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcmrError::SpecParse { input, reason } => {
                write!(f, "cannot parse algorithm spec {input:?}: {reason}")
            }
            AcmrError::UnknownAlgorithm { name, known } => {
                write!(
                    f,
                    "unknown algorithm {name:?} (registered: {})",
                    known.join(", ")
                )
            }
            AcmrError::BadParam { key, value, reason } => {
                write!(f, "bad parameter {key}={value:?}: {reason}")
            }
            AcmrError::ContractViolation { algorithm, detail } => {
                write!(f, "{algorithm}: {detail}")
            }
            AcmrError::SessionPoisoned => {
                write!(f, "session poisoned by an earlier contract violation")
            }
            AcmrError::InvalidRequest { reason } => {
                write!(f, "invalid request: {reason}")
            }
            AcmrError::TraceParse { line, message } => {
                write!(
                    f,
                    "trace parse error at line {line}: {message} (format spec: docs/TRACE_FORMAT.md)"
                )
            }
            AcmrError::Io { message } => {
                write!(f, "trace i/o error: {message}")
            }
            AcmrError::Busy { message } => {
                write!(f, "server over capacity: {message}")
            }
            AcmrError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl From<std::io::Error> for AcmrError {
    fn from(e: std::io::Error) -> Self {
        AcmrError::Io {
            message: e.to_string(),
        }
    }
}

impl std::error::Error for AcmrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_greppable() {
        let e = AcmrError::ContractViolation {
            algorithm: "aag".into(),
            detail: "accepting request 3 violates a capacity".into(),
        };
        assert!(e.to_string().contains("violates a capacity"));
        let e = AcmrError::UnknownAlgorithm {
            name: "nope".into(),
            known: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("nope"));
        assert!(e.to_string().contains("a, b"));
    }

    #[test]
    fn trace_errors_carry_line_and_format_pointer() {
        let e = AcmrError::TraceParse {
            line: 41,
            message: "bad cost NaN".into(),
        };
        assert!(e.to_string().contains("line 41"));
        assert!(e.to_string().contains("docs/TRACE_FORMAT.md"));
        let e: AcmrError =
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "pipe closed").into();
        assert!(matches!(&e, AcmrError::Io { message } if message.contains("pipe closed")));
    }

    #[test]
    fn remote_errors_carry_wire_code() {
        let e = AcmrError::Remote {
            code: "violation".into(),
            message: "accepting request 3 violates a capacity".into(),
        };
        assert!(e.to_string().contains("server error [violation]"));
        assert!(e.to_string().contains("violates a capacity"));
    }
}
