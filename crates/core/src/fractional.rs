//! The paper's §2 online **fractional** algorithm.
//!
//! A fractional algorithm may reject a fraction `f_i ∈ [0, 1]` of each
//! request; `f_i ≥ 1` means fully rejected. Writing `ALIVE_e` for the
//! not-fully-rejected requests through edge `e` and
//! `n_e = |ALIVE_e| − c_e` for the edge's excess, the output must
//! satisfy `Σ_{i ∈ ALIVE_e} f_i ≥ n_e` for every edge, and the cost is
//! `Σ_i min(f_i, 1)·p_i`.
//!
//! The algorithm (paper §2):
//!
//! * **Guess-and-double**: the OPT cost guess `α` starts at the first
//!   forced rejection as the cheapest alive cost on the overloaded
//!   edge and doubles whenever the current phase spends more than
//!   `Θ(α·log(gc))`.
//! * **Cost classes**: requests costing more than `2α` (`R_big`) are
//!   accepted permanently and the capacities of their edges reduced;
//!   requests cheaper than `α/(mc)` (`R_small`) are rejected outright.
//!   Remaining costs normalize into `[1, g]`, `g ≤ 2mc`.
//! * **Weight augmentation**: when an edge `e` violates the covering
//!   condition, repeatedly (a) give zero-weight alive requests the
//!   seed weight `1/(gc)`, (b) multiply every alive weight by
//!   `(1 + 1/(n_e·p_i))`, (c) refresh `ALIVE_e`, `n_e` — until
//!   `Σ f_i ≥ n_e`.
//!
//! Theorem 2: this is `O(log(mc))`-competitive (weighted) and
//! `O(log c)`-competitive (unweighted) **against the fractional
//! optimum**; Lemma 1 bounds total augmentations by `O(α·log(gc))`.
//!
//! ### Implementation notes
//!
//! * Consecutive augmentation rounds on one edge with no saturation
//!   multiply each weight by a constant factor, so we **batch** them:
//!   binary-search the smallest round count `t` that either satisfies
//!   the covering condition or saturates some request, then apply
//!   `f_i ← f_i·mult_i^t` in one pass. This is bit-identical in effect
//!   to looping the paper's step 2 and keeps adversarial instances
//!   polynomial. The reported augmentation counter counts the paper's
//!   rounds (i.e. `t`, not 1) so Lemma 1 can be validated.
//! * On an α-doubling we keep accumulated weights (they are sunk,
//!   monotone cost) and only reset the *phase* spend; the paper's
//!   "forget" step is an accounting device in the proof — keeping the
//!   weights preserves the covering invariant at all times and never
//!   increases the cost relative to the paper's scheme by more than
//!   the same factor-2 argument.

use crate::config::{FracConfig, Weighting};
use crate::instance::RequestId;
use acmr_graph::EdgeSet;

/// Preprocessing class assigned to an arrival (paper §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Classification {
    /// Cost `< α/(mc)`: rejected immediately and permanently.
    Small,
    /// Cost `> 2α`: accepted permanently; its edges' capacities shrink.
    Big,
    /// Everything else: participates in weight augmentation.
    Mid,
}

/// What happened while processing one arrival.
#[derive(Clone, Debug)]
pub struct ArrivalReport {
    /// The id assigned to the arrival (dense arrival index).
    pub id: RequestId,
    /// Its preprocessing class.
    pub class: Classification,
    /// `(request, weight increase)` for every request whose weight grew
    /// during this arrival, **including** the arrival itself. Feeds
    /// step 3 of the §3 randomized rounding.
    pub deltas: Vec<(RequestId, f64)>,
    /// Paper-rounds of weight augmentation performed for this arrival.
    pub augmentations: u64,
    /// Did `α` double while processing this arrival?
    pub doubled: bool,
}

struct ReqState {
    footprint: EdgeSet,
    cost: f64,
    /// The paper's weight `f_i`; monotone non-decreasing, may slightly
    /// exceed 1 (a request saturates when `f_i ≥ 1`).
    f: f64,
    /// Current class; re-evaluated whenever `α` is set or doubles
    /// (the paper's guess-and-double implicitly re-runs preprocessing).
    class: Classification,
}

struct EdgeState {
    /// Capacity after permanent `R_big` acceptances; may go negative,
    /// in which case every alive request on the edge must saturate.
    cap_adj: i64,
    /// Mid requests through this edge with `f < 1`, pruned lazily.
    alive: Vec<u32>,
    /// Total arrivals touching this edge (the paper's `|REQ_e|`).
    req_count: u64,
}

/// The online fractional admission-control algorithm of §2.
pub struct FracEngine {
    cfg: FracConfig,
    m: usize,
    c_max: f64,
    /// Normalized cost ceiling `g` (`2mc` weighted, `1` unweighted).
    g: f64,
    /// Current OPT guess; `0` until the first forced rejection.
    alpha: f64,
    requests: Vec<ReqState>,
    edges: Vec<EdgeState>,
    /// Running `Σ min(f_i,1)·p_i` (real cost units).
    cost_now: f64,
    /// Spend since the last doubling (drives the doubling trigger).
    phase_cost: f64,
    total_augmentations: u64,
    doublings: u32,
    /// Scratch: ids touched this arrival and their pre-arrival weights.
    touched: Vec<u32>,
    f_before: Vec<f64>,
    touched_stamp: Vec<u32>,
    stamp: u32,
    /// Set by `ensure_covered` when it initializes `α`, consumed by
    /// `on_request` to trigger re-classification.
    alpha_just_set: bool,
}

impl FracEngine {
    /// Engine over the given edge capacities.
    pub fn new(capacities: &[u32], cfg: FracConfig) -> Self {
        let m = capacities.len();
        let c_max = capacities.iter().copied().max().unwrap_or(1).max(1) as f64;
        let g = match cfg.weighting {
            Weighting::Weighted => (2.0 * m as f64 * c_max).max(1.0),
            Weighting::Unweighted => 1.0,
        };
        FracEngine {
            cfg,
            m,
            c_max,
            g,
            alpha: 0.0,
            requests: Vec::new(),
            edges: capacities
                .iter()
                .map(|&c| EdgeState {
                    cap_adj: c as i64,
                    alive: Vec::new(),
                    req_count: 0,
                })
                .collect(),
            cost_now: 0.0,
            phase_cost: 0.0,
            total_augmentations: 0,
            doublings: 0,
            touched: Vec::new(),
            f_before: Vec::new(),
            touched_stamp: Vec::new(),
            stamp: 0,
            alpha_just_set: false,
        }
    }

    /// Number of edges `m`.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Current fractional online cost `Σ min(f_i,1)·p_i`.
    pub fn online_cost(&self) -> f64 {
        self.cost_now
    }

    /// Total paper-rounds of weight augmentation so far (Lemma 1).
    pub fn augmentations(&self) -> u64 {
        self.total_augmentations
    }

    /// Current guess `α` of the optimum (0 before any forced rejection).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// How many times `α` doubled.
    pub fn doublings(&self) -> u32 {
        self.doublings
    }

    /// Current weight `f_i` of a request.
    pub fn weight(&self, id: RequestId) -> f64 {
        self.requests[id.index()].f
    }

    /// Number of requests seen.
    pub fn num_requests(&self) -> usize {
        self.requests.len()
    }

    /// The paper's `|REQ_e|` for edge index `e`.
    pub fn requests_on_edge(&self, e: usize) -> u64 {
        self.edges[e].req_count
    }

    /// The normalized-cost ceiling `g`.
    pub fn g(&self) -> f64 {
        self.g
    }

    /// Verify the fractional covering invariant
    /// `Σ_{i ∈ ALIVE_e} f_i ≥ n_e` on every edge. Used by tests and the
    /// harness audit; `O(Σ|alive|)`.
    pub fn covering_invariant_holds(&self) -> bool {
        self.edges.iter().all(|es| {
            let mut alive = 0i64;
            let mut sum = 0.0f64;
            for &i in &es.alive {
                let r = &self.requests[i as usize];
                if r.f < 1.0 && r.class == Classification::Mid {
                    alive += 1;
                    sum += r.f;
                }
            }
            let ne = alive - es.cap_adj;
            ne <= 0 || sum >= ne as f64 - 1e-6
        })
    }

    /// Normalized cost used in the multiplicative update (paper: costs
    /// scaled so the minimum handled cost is 1 and the maximum `g`).
    fn p_norm(&self, cost: f64) -> f64 {
        match self.cfg.weighting {
            Weighting::Unweighted => 1.0,
            Weighting::Weighted => {
                if self.alpha > 0.0 && self.cfg.cost_classes {
                    (cost * self.m as f64 * self.c_max / self.alpha).clamp(1.0, self.g)
                } else {
                    // Before α exists there is no scale; treat as unit.
                    1.0
                }
            }
        }
    }

    fn classify(&self, cost: f64) -> Classification {
        if !self.cfg.cost_classes || self.alpha <= 0.0 {
            return Classification::Mid;
        }
        if cost > 2.0 * self.alpha {
            Classification::Big
        } else if cost < self.alpha / (self.m as f64 * self.c_max) {
            Classification::Small
        } else {
            Classification::Mid
        }
    }

    /// Record the pre-arrival weight of `i` the first time it is touched
    /// during the current arrival.
    fn touch(&mut self, i: u32) {
        if self.touched_stamp[i as usize] != self.stamp {
            self.touched_stamp[i as usize] = self.stamp;
            self.touched.push(i);
            self.f_before[i as usize] = self.requests[i as usize].f;
        }
    }

    /// Set request `i`'s weight to `v` (monotone), updating cost books.
    fn set_weight(&mut self, i: u32, v: f64) {
        let r = &mut self.requests[i as usize];
        debug_assert!(v >= r.f - 1e-12, "weights are monotone");
        let inc = (v.min(1.0) - r.f.min(1.0)).max(0.0) * r.cost;
        r.f = v;
        self.cost_now += inc;
        self.phase_cost += inc;
    }

    /// Process one arriving request; returns what happened.
    pub fn on_request(&mut self, footprint: &EdgeSet, cost: f64) -> ArrivalReport {
        assert!(cost > 0.0, "request cost must be positive");
        let id = RequestId(self.requests.len() as u32);
        self.stamp = self.stamp.wrapping_add(1);
        self.touched.clear();
        self.f_before.push(0.0);
        self.touched_stamp.push(self.stamp.wrapping_sub(1));

        let class = self.classify(cost);
        self.requests.push(ReqState {
            footprint: footprint.clone(),
            cost,
            f: 0.0,
            class,
        });
        let idx = id.0;
        match class {
            Classification::Small => {
                // Fully rejected on arrival; never alive anywhere.
                self.touch(idx);
                self.set_weight(idx, 1.0);
                for e in footprint.iter() {
                    self.edges[e.index()].req_count += 1;
                }
            }
            Classification::Big => {
                // Permanently accepted: consume capacity — but only if
                // every edge still has an uncommitted unit. The paper
                // adjusts capacities implicitly assuming big requests
                // fit; adversarially they may not (an edge can see more
                // than c_e big requests), in which case acceptance is
                // impossible and the request is rejected outright
                // (mirrors step 4 of the §3 integral algorithm).
                let fits = footprint.iter().all(|e| self.edges[e.index()].cap_adj >= 1);
                for e in footprint.iter() {
                    let es = &mut self.edges[e.index()];
                    es.req_count += 1;
                    if fits {
                        es.cap_adj -= 1;
                    }
                }
                if !fits {
                    self.touch(idx);
                    self.set_weight(idx, 1.0);
                }
            }
            Classification::Mid => {
                for e in footprint.iter() {
                    let es = &mut self.edges[e.index()];
                    es.req_count += 1;
                    es.alive.push(idx);
                }
            }
        }

        // Restore the covering invariant edge by edge, in footprint
        // order (the paper: "in an arbitrary order" — we fix arrival
        // order for reproducibility). When an edge's first violation
        // initializes α, classes are re-evaluated under the fresh guess
        // and the *same edge* is retried before moving on.
        let mut aug_rounds = 0u64;
        if class != Classification::Small {
            for e in footprint.iter() {
                loop {
                    aug_rounds += self.ensure_covered(e.index());
                    if self.alpha_just_set {
                        self.alpha_just_set = false;
                        let affected = self.reclassify_alive();
                        for a in affected {
                            aug_rounds += self.ensure_covered(a);
                        }
                        continue; // retry this edge under the new classes
                    }
                    break;
                }
            }
        }

        // Guess-and-double: when the phase spend exceeds Θ(α·log(gc)),
        // double α and re-run the cost-class preprocessing (the paper
        // restarts the algorithm with the new guess; re-classifying in
        // place is the incremental equivalent).
        let mut doubled = false;
        for _guard in 0..200 {
            if self.alpha <= 0.0 {
                break;
            }
            let threshold =
                self.cfg.doubling_factor * self.alpha * (2.0 * self.g * self.c_max).ln().max(1.0);
            if self.phase_cost <= threshold {
                break;
            }
            self.alpha *= 2.0;
            self.doublings += 1;
            self.phase_cost = 0.0;
            doubled = true;
            let affected = self.reclassify_alive();
            for e in affected {
                aug_rounds += self.ensure_covered(e);
            }
            for e in footprint.iter() {
                aug_rounds += self.ensure_covered(e.index());
            }
        }
        self.total_augmentations += aug_rounds;

        let deltas: Vec<(RequestId, f64)> = self
            .touched
            .iter()
            .map(|&i| {
                (
                    RequestId(i),
                    self.requests[i as usize].f - self.f_before[i as usize],
                )
            })
            .filter(|&(_, d)| d > 0.0)
            .collect();
        ArrivalReport {
            id,
            // Report the class after any re-classification this arrival
            // triggered (e.g. the newcomer became Big when α was set).
            class: self.requests[id.index()].class,
            deltas,
            augmentations: aug_rounds,
            doubled,
        }
    }

    /// Re-run the §2 cost-class preprocessing over alive Mid requests
    /// after `α` changed. `Mid → Big` (cost `> 2α`): permanently
    /// accepted, capacity consumed on its edges — those edges may now
    /// violate covering and are returned for re-augmentation.
    /// `Mid → Small` (cost `< α/(mc)`): fully rejected (saturated);
    /// this only slackens covering constraints, no re-augmentation
    /// needed.
    fn reclassify_alive(&mut self) -> Vec<usize> {
        let mut affected: Vec<usize> = Vec::new();
        if !self.cfg.cost_classes || self.alpha <= 0.0 {
            return affected;
        }
        for i in 0..self.requests.len() {
            let (cost, f, class) = {
                let r = &self.requests[i];
                (r.cost, r.f, r.class)
            };
            if class != Classification::Mid || f >= 1.0 {
                continue;
            }
            match self.classify(cost) {
                Classification::Big => {
                    // Promote only if fractional capacity remains on
                    // every edge (see the Big-arrival path); otherwise
                    // the request stays Mid and competes by weight.
                    let fp = self.requests[i].footprint.clone();
                    if fp.iter().all(|e| self.edges[e.index()].cap_adj >= 1) {
                        self.requests[i].class = Classification::Big;
                        for e in fp.iter() {
                            self.edges[e.index()].cap_adj -= 1;
                            affected.push(e.index());
                        }
                    }
                }
                Classification::Small => {
                    self.requests[i].class = Classification::Small;
                    self.touch(i as u32);
                    self.set_weight(i as u32, 1.0);
                }
                Classification::Mid => {}
            }
        }
        affected.sort_unstable();
        affected.dedup();
        affected
    }

    /// Restore `Σ_{alive} f ≥ n_e` on edge `e`; returns paper-rounds
    /// performed.
    fn ensure_covered(&mut self, e: usize) -> u64 {
        let mut rounds = 0u64;
        loop {
            // (c) refresh ALIVE_e (drop saturated and re-classified).
            {
                let reqs = &self.requests;
                self.edges[e].alive.retain(|&i| {
                    let r = &reqs[i as usize];
                    r.f < 1.0 && r.class == Classification::Mid
                });
            }
            let alive_len = self.edges[e].alive.len() as i64;
            let ne = alive_len - self.edges[e].cap_adj;
            if ne <= 0 {
                return rounds;
            }
            if ne >= alive_len {
                // Adjusted capacity ≤ 0: the covering condition can only
                // be met by fully rejecting every alive request.
                let ids: Vec<u32> = self.edges[e].alive.clone();
                if ids.is_empty() {
                    // No alive mass left to shed: the constraint is
                    // vacuously binding (cap_adj never goes negative, so
                    // this cannot occur; kept as a progress guarantee).
                    debug_assert!(self.edges[e].cap_adj >= 0);
                    return rounds;
                }
                for i in ids {
                    self.touch(i);
                    self.set_weight(i, 1.0);
                }
                rounds += 1;
                continue;
            }
            let ne_f = ne as f64;
            let sum: f64 = self.edges[e]
                .alive
                .iter()
                .map(|&i| self.requests[i as usize].f)
                .sum();
            if sum >= ne_f {
                return rounds;
            }

            // First forced rejection fixes the initial α guess (paper:
            // the cheapest cost among the edge's requests).
            if self.alpha <= 0.0 {
                let min_cost = self.edges[e]
                    .alive
                    .iter()
                    .map(|&i| self.requests[i as usize].cost)
                    .fold(f64::INFINITY, f64::min);
                if min_cost.is_finite() {
                    self.alpha = min_cost;
                    self.alpha_just_set = true;
                    // Classes must be re-evaluated under the fresh α
                    // before any weight is pumped; the caller
                    // re-classifies and re-invokes us.
                    return rounds;
                }
            }

            // Round 1 of this batch: seed zero weights, multiply once.
            let ids: Vec<u32> = self.edges[e].alive.clone();
            let seed = 1.0 / (self.g * self.c_max);
            for &i in &ids {
                self.touch(i);
                let r = &self.requests[i as usize];
                let base = if r.f == 0.0 { seed } else { r.f };
                let mult = 1.0 + 1.0 / (ne_f * self.p_norm(r.cost));
                let v = base * mult;
                self.set_weight(i, v);
            }
            rounds += 1;

            // Batch further rounds while nothing saturates and n_e is
            // unchanged: find max t with no f crossing 1, then binary
            // search the smallest t achieving coverage.
            let mut fs: Vec<f64> = Vec::with_capacity(ids.len());
            let mut mults: Vec<f64> = Vec::with_capacity(ids.len());
            let mut any_saturated = false;
            for &i in &ids {
                let r = &self.requests[i as usize];
                if r.f >= 1.0 {
                    any_saturated = true;
                }
                fs.push(r.f);
                mults.push(1.0 + 1.0 / (ne_f * self.p_norm(r.cost)));
            }
            if any_saturated {
                continue; // ALIVE changed; recompute from scratch.
            }
            let sum_now: f64 = fs.iter().sum();
            if sum_now >= ne_f {
                continue; // covering met; outer loop will confirm & exit.
            }
            // Rounds until the first saturation.
            let mut t_cross = u64::MAX;
            for (f, m) in fs.iter().zip(&mults) {
                let t = ((1.0 / f).ln() / m.ln()).ceil().max(1.0);
                t_cross = t_cross.min(t as u64);
            }
            let sum_at = |t: u64| -> f64 {
                fs.iter()
                    .zip(&mults)
                    .map(|(f, m)| f * m.powf(t as f64))
                    .sum()
            };
            let t_apply = if sum_at(t_cross) < ne_f {
                t_cross // saturate someone, then re-derive n_e
            } else {
                // Smallest t in [1, t_cross] with sum ≥ n_e.
                let (mut lo, mut hi) = (1u64, t_cross);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if sum_at(mid) >= ne_f {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            };
            for (k, &i) in ids.iter().enumerate() {
                let v = fs[k] * mults[k].powf(t_apply as f64);
                self.set_weight(i, v);
            }
            rounds += t_apply;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_graph::EdgeId;

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    fn unit_engine(caps: &[u32]) -> FracEngine {
        FracEngine::new(caps, FracConfig::unweighted())
    }

    #[test]
    fn no_overload_costs_nothing() {
        // Paper: the algorithm must reject 0 when OPT rejects 0.
        let mut eng = unit_engine(&[2, 2]);
        for _ in 0..2 {
            let rep = eng.on_request(&fp(&[0, 1]), 1.0);
            assert_eq!(rep.class, Classification::Mid);
            assert_eq!(rep.augmentations, 0);
        }
        assert_eq!(eng.online_cost(), 0.0);
        assert_eq!(eng.alpha(), 0.0);
        assert!(eng.covering_invariant_holds());
    }

    #[test]
    fn single_edge_overload_triggers_augmentation() {
        let mut eng = unit_engine(&[1]);
        eng.on_request(&fp(&[0]), 1.0);
        let rep = eng.on_request(&fp(&[0]), 1.0);
        assert!(rep.augmentations > 0);
        assert!(eng.online_cost() > 0.0);
        assert!(eng.covering_invariant_holds());
        // Covering: n_e = 1, so Σf ≥ 1.
        let total: f64 = (0..2).map(|i| eng.weight(RequestId(i))).sum();
        assert!(total >= 1.0 - 1e-9, "total weight {total}");
    }

    #[test]
    fn alpha_initialized_to_cheapest_on_edge() {
        let mut eng = FracEngine::new(&[1], FracConfig::weighted());
        eng.on_request(&fp(&[0]), 5.0);
        eng.on_request(&fp(&[0]), 3.0);
        assert_eq!(eng.alpha(), 3.0);
    }

    #[test]
    fn weights_are_monotone_and_invariant_maintained() {
        let mut eng = unit_engine(&[1, 1, 2]);
        let mut prev = vec![0.0f64; 0];
        for k in 0..8 {
            let footprint = fp(&[k % 3, (k + 1) % 3]);
            eng.on_request(&footprint, 1.0);
            assert!(
                eng.covering_invariant_holds(),
                "invariant after arrival {k}"
            );
            let cur: Vec<f64> = (0..eng.num_requests())
                .map(|i| eng.weight(RequestId(i as u32)))
                .collect();
            for (i, &p) in prev.iter().enumerate() {
                assert!(cur[i] >= p - 1e-12, "weight {i} decreased");
            }
            prev = cur;
        }
    }

    #[test]
    fn fractional_cost_is_logarithmically_competitive_on_hot_edge() {
        // k unit requests on one edge of capacity 1: OPT rejects k−1
        // (cost k−1). Fractional online must be within O(log c)=O(1).
        let k = 64;
        let mut eng = unit_engine(&[1]);
        for _ in 0..k {
            eng.on_request(&fp(&[0]), 1.0);
        }
        let opt = (k - 1) as f64;
        let ratio = eng.online_cost() / opt;
        assert!(ratio >= 0.9, "online below opt? ratio {ratio}"); // sanity: must reject ≈ everything
        assert!(
            ratio <= 4.0,
            "unweighted single-edge ratio too big: {ratio}"
        );
        assert!(eng.covering_invariant_holds());
    }

    #[test]
    fn augmentations_bounded_by_lemma1() {
        // Lemma 1: rounds ≤ O(α_norm · log(gc)). Unweighted: costs are
        // 1 so α_norm = OPT. Overload one capacity-c edge with 2c
        // requests: OPT = c, log(gc) = log(c) ⇒ rounds = O(c log c).
        for &c in &[1u32, 2, 4, 8, 16] {
            let mut eng = unit_engine(&[c]);
            for _ in 0..2 * c {
                eng.on_request(&fp(&[0]), 1.0);
            }
            let opt = c as f64;
            let bound = 40.0 * opt * ((2.0 * c as f64).ln() + 1.0);
            assert!(
                (eng.augmentations() as f64) <= bound,
                "c={c}: {} rounds > bound {bound}",
                eng.augmentations()
            );
        }
    }

    #[test]
    fn big_requests_accepted_and_capacity_adjusted() {
        let mut eng = FracEngine::new(&[2], FracConfig::weighted());
        // Force α to exist: two cheap conflicting requests.
        eng.on_request(&fp(&[0]), 1.0);
        eng.on_request(&fp(&[0]), 1.0);
        eng.on_request(&fp(&[0]), 1.0);
        let alpha = eng.alpha();
        assert!(alpha > 0.0);
        // A very expensive request is Big: accepted, f stays 0.
        let rep = eng.on_request(&fp(&[0]), 100.0 * alpha);
        assert_eq!(rep.class, Classification::Big);
        assert_eq!(eng.weight(rep.id), 0.0);
        assert!(eng.covering_invariant_holds());
    }

    #[test]
    fn small_requests_rejected_outright() {
        let mut eng = FracEngine::new(&[1], FracConfig::weighted());
        eng.on_request(&fp(&[0]), 8.0);
        eng.on_request(&fp(&[0]), 8.0); // α = 8
        assert!(eng.alpha() > 0.0);
        let tiny = eng.alpha() / (1.0 * 1.0 * 1e6); // « α/(mc)
        let rep = eng.on_request(&fp(&[0]), tiny);
        assert_eq!(rep.class, Classification::Small);
        assert!(eng.weight(rep.id) >= 1.0);
    }

    #[test]
    fn capacity_exhausted_by_big_saturates_alive() {
        let mut eng = FracEngine::new(&[1], FracConfig::weighted());
        eng.on_request(&fp(&[0]), 1.0);
        eng.on_request(&fp(&[0]), 1.0); // α = 1, overload
        let alpha = eng.alpha();
        // Big request eats the only capacity unit: every alive mid
        // request must saturate (cap_adj 0).
        eng.on_request(&fp(&[0]), 10.0 * alpha.max(1.0));
        assert!(eng.covering_invariant_holds());
        let w0 = eng.weight(RequestId(0));
        let w1 = eng.weight(RequestId(1));
        assert!(w0 >= 1.0 && w1 >= 1.0, "w0={w0} w1={w1}");
    }

    #[test]
    fn deltas_reported_for_touched_requests() {
        let mut eng = unit_engine(&[1]);
        eng.on_request(&fp(&[0]), 1.0);
        let rep = eng.on_request(&fp(&[0]), 1.0);
        assert!(!rep.deltas.is_empty());
        let total: f64 = rep.deltas.iter().map(|&(_, d)| d).sum();
        assert!(total > 0.0);
        // Every delta is positive and belongs to a known request.
        for &(r, d) in &rep.deltas {
            assert!(d > 0.0);
            assert!(r.index() < eng.num_requests());
        }
    }

    #[test]
    fn disjoint_edges_do_not_interact() {
        let mut eng = unit_engine(&[1, 1]);
        eng.on_request(&fp(&[0]), 1.0);
        eng.on_request(&fp(&[1]), 1.0);
        assert_eq!(eng.online_cost(), 0.0);
        // Overload edge 0 only; edge-1 request untouched.
        eng.on_request(&fp(&[0]), 1.0);
        assert_eq!(eng.weight(RequestId(1)), 0.0);
    }

    #[test]
    fn batched_rounds_match_cost_semantics() {
        // Large capacity: many rounds needed; the batcher must yield a
        // covering solution with cost ≈ n_e (each overload unit costs
        // about 1 unit of fractional mass by construction).
        let c = 32u32;
        let mut eng = unit_engine(&[c]);
        for _ in 0..c + 5 {
            eng.on_request(&fp(&[0]), 1.0);
        }
        assert!(eng.covering_invariant_holds());
        let sum: f64 = (0..eng.num_requests())
            .map(|i| eng.weight(RequestId(i as u32)).min(1.0))
            .sum();
        assert!(sum >= 5.0 - 1e-9, "covering mass {sum} < n_e");
        assert!(sum <= 5.0 * 4.0, "covering mass {sum} wildly above n_e");
    }
}
