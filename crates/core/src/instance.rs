//! Requests and admission-control instances.

use acmr_graph::{CapGraph, EdgeSet, Path};
use serde::{Deserialize, Serialize};

/// Dense request identifier: index into the arrival order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RequestId(pub u32);

impl RequestId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One communication request: its edge footprint and its rejection cost
/// `p_i > 0`.
///
/// Per the paper's concluding remark the algorithms treat the request
/// as an arbitrary edge subset; [`Request::from_path`] builds one from
/// an actual routed path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// The set of edges the request occupies while accepted.
    pub footprint: EdgeSet,
    /// Cost paid by the algorithm iff the request is rejected
    /// (immediately or by preemption).
    pub cost: f64,
}

impl Request {
    /// A request with the given footprint and cost.
    pub fn new(footprint: EdgeSet, cost: f64) -> Self {
        assert!(
            cost > 0.0 && cost.is_finite(),
            "request cost must be positive and finite"
        );
        Request { footprint, cost }
    }

    /// A unit-cost request (the paper's unweighted case).
    pub fn unit(footprint: EdgeSet) -> Self {
        Request {
            footprint,
            cost: 1.0,
        }
    }

    /// Build from a routed path.
    pub fn from_path(path: &Path, cost: f64) -> Self {
        Request::new(path.edge_set(), cost)
    }
}

/// A complete offline view of an instance: capacities plus the arrival
/// sequence. Online algorithms only ever see one request at a time; the
/// instance exists so the harness can compute offline optima and replay
/// runs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AdmissionInstance {
    /// Edge capacities, indexed by `EdgeId` (dense).
    pub capacities: Vec<u32>,
    /// Requests in arrival order; `RequestId(i)` is `requests[i]`.
    pub requests: Vec<Request>,
}

impl AdmissionInstance {
    /// Empty instance over the edges of `g`.
    pub fn from_graph(g: &CapGraph) -> Self {
        AdmissionInstance {
            capacities: g.capacities(),
            requests: Vec::new(),
        }
    }

    /// Empty instance over raw capacities (used by the §4 reduction).
    pub fn from_capacities(capacities: Vec<u32>) -> Self {
        AdmissionInstance {
            capacities,
            requests: Vec::new(),
        }
    }

    /// Number of edges `m`.
    pub fn num_edges(&self) -> usize {
        self.capacities.len()
    }

    /// The paper's `c = max_e c_e`.
    pub fn max_capacity(&self) -> u32 {
        self.capacities.iter().copied().max().unwrap_or(0)
    }

    /// Append a request, returning its id.
    pub fn push(&mut self, r: Request) -> RequestId {
        let id = RequestId(self.requests.len() as u32);
        self.requests.push(r);
        id
    }

    /// True iff all costs are exactly 1 (the paper's unweighted case).
    pub fn is_unweighted(&self) -> bool {
        self.requests.iter().all(|r| r.cost == 1.0)
    }

    /// Total cost of all requests.
    pub fn total_cost(&self) -> f64 {
        self.requests.iter().map(|r| r.cost).sum()
    }

    /// Number of requests whose footprint contains edge `e` —
    /// the paper's `|REQ_e|` at the end of the sequence.
    pub fn requests_on_edge(&self, e: acmr_graph::EdgeId) -> usize {
        self.requests
            .iter()
            .filter(|r| r.footprint.contains(e))
            .count()
    }

    /// Maximum final excess `Q = max_e (|REQ_e| − c_e)`, clamped at 0.
    /// Theorem 4's proof notes OPT must reject at least `Q` requests.
    pub fn max_excess(&self) -> u32 {
        let mut load = vec![0u32; self.capacities.len()];
        for r in &self.requests {
            for e in r.footprint.iter() {
                load[e.index()] += 1;
            }
        }
        load.iter()
            .zip(&self.capacities)
            .map(|(&l, &c)| l.saturating_sub(c))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_graph::EdgeId;

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn push_assigns_dense_ids() {
        let mut inst = AdmissionInstance::from_capacities(vec![1, 1]);
        let a = inst.push(Request::unit(fp(&[0])));
        let b = inst.push(Request::unit(fp(&[1])));
        assert_eq!(a, RequestId(0));
        assert_eq!(b, RequestId(1));
        assert_eq!(inst.requests.len(), 2);
    }

    #[test]
    fn unweighted_detection() {
        let mut inst = AdmissionInstance::from_capacities(vec![1]);
        inst.push(Request::unit(fp(&[0])));
        assert!(inst.is_unweighted());
        inst.push(Request::new(fp(&[0]), 2.5));
        assert!(!inst.is_unweighted());
        assert_eq!(inst.total_cost(), 3.5);
    }

    #[test]
    fn excess_computation() {
        let mut inst = AdmissionInstance::from_capacities(vec![1, 3]);
        for _ in 0..4 {
            inst.push(Request::unit(fp(&[0, 1])));
        }
        // edge0: 4 - 1 = 3; edge1: 4 - 3 = 1.
        assert_eq!(inst.max_excess(), 3);
        assert_eq!(inst.requests_on_edge(EdgeId(0)), 4);
    }

    #[test]
    #[should_panic(expected = "cost must be positive")]
    fn zero_cost_rejected() {
        Request::new(fp(&[0]), 0.0);
    }

    #[test]
    fn instance_from_graph() {
        let g = acmr_graph::generators::line(4, 5);
        let inst = AdmissionInstance::from_graph(&g);
        assert_eq!(inst.num_edges(), 3);
        assert_eq!(inst.max_capacity(), 5);
    }
}
