//! # acmr-core
//!
//! Reference implementation of **Alon, Azar & Gutner, "Admission Control
//! to Minimize Rejections and Online Set Cover with Repetitions"**
//! (SPAA 2005).
//!
//! The paper's four contributions, in the order it presents them:
//!
//! 1. **§2 — Fractional algorithm** ([`fractional::FracEngine`]): an
//!    online `O(log(mc))`-competitive fractional rejection scheme based
//!    on multiplicative weight augmentation, with the paper's
//!    preprocessing (guess-and-double on `α = C_OPT`, permanent
//!    acceptance of `R_big`, immediate rejection of `R_small`, cost
//!    normalization to `[1, g]`, `g ≤ 2mc`).
//! 2. **§3 — Randomized rounding** ([`randomized::RandomizedAdmission`]):
//!    converts the fractional solution into an integral preemptive
//!    algorithm; `O(log²(mc))`-competitive weighted,
//!    `O(log m · log c)` unweighted.
//! 3. **§4 — Reduction** ([`setcover::reduction`]): online set cover
//!    with repetitions solved through any admission-control algorithm
//!    (one edge per element, capacity = element degree; *rejected*
//!    phase-1 requests are the bought sets).
//! 4. **§5 — Deterministic bicriteria set cover**
//!    ([`setcover::bicriteria`]): covers every element `(1−ε)k` times at
//!    `O(log m log n)` times the optimal k-cover cost, derandomized by
//!    the method of conditional probabilities on the potential
//!    `Φ = Σ_j n^{2(w_j − cover_j)}`.
//!
//! The crate is deliberately **instance-in, decisions-out**: algorithms
//! consume [`Request`]s one at a time through [`OnlineAdmission`] /
//! [`setcover::OnlineSetCover`] and report decisions; all cost
//! accounting and feasibility auditing is replayable by the caller,
//! so an algorithm bug cannot silently misreport its own score.
//!
//! ## The engine API
//!
//! Applications address algorithms through the **registry** and drive
//! them through a streaming **session**:
//!
//! * [`registry::AlgorithmSpec`] — parsed from strings like
//!   `aag-weighted?seed=7`; the single name→constructor table
//!   ([`registry::Registry`]) replaces per-consumer dispatch.
//! * [`session::Session`] — owns the algorithm, the
//!   [`acmr_graph::LoadTracker`] audit, and incremental statistics;
//!   `push(request)` yields one audited [`session::ArrivalEvent`] per
//!   arrival, `push_batch` feeds a slice of arrivals with identical
//!   per-arrival semantics but amortized bookkeeping, and
//!   `run_trace` / `run_trace_batched` subsume the old batch runners.
//! * [`report::RunReport`] — the serde-backed result schema shared by
//!   the CLI (`acmr run --format json`), the experiment harness, and
//!   the benches.
//! * [`error::AcmrError`] — contract violations and bad specs as typed
//!   errors at the API boundary (the batch harness still panics; a
//!   streaming service should not).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod fractional;
pub mod instance;
pub mod online;
pub mod randomized;
pub mod registry;
pub mod report;
pub mod session;
pub mod setcover;
pub mod source;

pub use config::{FracConfig, RandConfig, Weighting};
pub use error::AcmrError;
pub use fractional::{ArrivalReport, Classification, FracEngine};
pub use instance::{AdmissionInstance, Request, RequestId};
pub use online::{OnlineAdmission, Outcome};
pub use randomized::RandomizedAdmission;
pub use registry::{register_core, AlgorithmSpec, BuildCtx, Registry, DEFAULT_ALGORITHM};
pub use report::{OptSummary, RunReport};
pub use session::{ArrivalEvent, RunStats, Session};
pub use source::RequestSource;
