//! The online admission-control interface.

use crate::instance::{Request, RequestId};

/// What an algorithm did with one arrival.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Was the arriving request accepted (and still accepted at the end
    /// of this arrival's processing)?
    pub accepted: bool,
    /// Previously accepted requests preempted during this arrival.
    /// Preemption is rejection: their cost is paid, and they can never
    /// be re-accepted.
    pub preempted: Vec<RequestId>,
}

impl Outcome {
    /// Reject the newcomer, preempt nothing.
    pub fn reject() -> Self {
        Outcome {
            accepted: false,
            preempted: Vec::new(),
        }
    }

    /// Accept the newcomer, preempt nothing.
    pub fn accept() -> Self {
        Outcome {
            accepted: true,
            preempted: Vec::new(),
        }
    }
}

/// A preemptive online admission-control algorithm.
///
/// The driver calls [`OnlineAdmission::on_request`] once per arrival,
/// in order; `id` is the dense arrival index. Contract (audited by the
/// harness):
///
/// * the set of accepted requests must satisfy every edge capacity
///   **after every call** (feasibility at all times);
/// * a request rejected (or preempted) earlier may never be accepted
///   later — `preempted` may only contain currently-accepted ids.
pub trait OnlineAdmission {
    /// Short stable name for tables.
    fn name(&self) -> &'static str;

    /// Process one arrival and decide.
    fn on_request(&mut self, id: RequestId, request: &Request) -> Outcome;

    /// Cancellation-cost factor `f` this algorithm expects to be
    /// charged: every preemption of an admitted request of cost `c`
    /// costs an extra `f × c` ("buyback"). The [`crate::Session`]
    /// adopts this at construction so the charge shows up in
    /// [`crate::RunReport::buyback_paid`] on every execution path.
    /// The paper's free-preemption algorithms keep the default `0.0`.
    fn buyback_factor(&self) -> f64 {
        0.0
    }
}

impl<A: OnlineAdmission + ?Sized> OnlineAdmission for Box<A> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_request(&mut self, id: RequestId, request: &Request) -> Outcome {
        (**self).on_request(id, request)
    }

    fn buyback_factor(&self) -> f64 {
        (**self).buyback_factor()
    }
}

impl<A: OnlineAdmission + ?Sized> OnlineAdmission for &mut A {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_request(&mut self, id: RequestId, request: &Request) -> Outcome {
        (**self).on_request(id, request)
    }

    fn buyback_factor(&self) -> f64 {
        (**self).buyback_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_constructors() {
        assert!(!Outcome::reject().accepted);
        assert!(Outcome::accept().accepted);
        assert!(Outcome::accept().preempted.is_empty());
    }
}
