//! The paper's §3 **randomized** integral algorithm.
//!
//! Runs the §2 fractional engine underneath and rounds online:
//!
//! 1. perform the fractional weight augmentations for the arrival;
//! 2. reject every request whose weight reached `1/(K_t·L)`
//!    (`K_t = 12`, `L = ln(mc)` weighted; `K_t = 4`, `L = ln m`
//!    unweighted);
//! 3. for every request whose weight rose by `δ` this arrival, reject
//!    it with probability `K_p·δ·L`;
//! 4. if the arriving request still does not fit within the remaining
//!    capacity, reject it; otherwise accept.
//!
//! Theorem 3: `O(log²(mc))`-competitive for arbitrary costs.
//! Theorem 4: `O(log m · log c)`-competitive for unit costs.
//!
//! §3 also prunes pathological edges: once an edge has seen `≥ 4mc²`
//! requests, rejecting everything through it is 2-competitive on those
//! requests; [`RandConfig::prune_hot_edges`] enables that safeguard.
//!
//! Two small implementation clarifications (documented deviations —
//! both only *strengthen* feasibility, neither affects the guarantee):
//!
//! * `R_big` arrivals are "always accepted" in the paper's fractional
//!   preprocessing; integrally we can only accept one if it physically
//!   fits, so a Big arrival that does not fit is rejected (step 4
//!   applied to it).
//! * Requests whose weight saturates (`f ≥ 1`, fully rejected
//!   fractionally) are always rejected integrally; the paper's step 2
//!   subsumes this since `1 > 1/(K_t·L)`.

use crate::config::RandConfig;
use crate::fractional::{Classification, FracEngine};
use crate::instance::{Request, RequestId};
use crate::online::{OnlineAdmission, Outcome};
use acmr_graph::{EdgeSet, LoadTracker};
use rand::Rng;

/// Integral status of a request inside [`RandomizedAdmission`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Accepted,
    Rejected,
}

/// The randomized preemptive admission-control algorithm (paper §3).
pub struct RandomizedAdmission<R: Rng> {
    cfg: RandConfig,
    frac: FracEngine,
    load: LoadTracker,
    status: Vec<Status>,
    footprints: Vec<EdgeSet>,
    /// Rejection threshold `1/(K_t·L)` (fixed per instance scale).
    threshold: f64,
    /// Probability multiplier `K_p·L`.
    prob_mult: f64,
    /// `4mc²` hot-edge cut-off (u64 to avoid overflow at large scales).
    hot_edge_cutoff: u64,
    /// Edges past the cut-off: everything touching them is rejected.
    poisoned: Vec<bool>,
    rng: R,
    preempted_scratch: Vec<RequestId>,
}

impl<R: Rng> RandomizedAdmission<R> {
    /// Algorithm over the given capacities.
    pub fn new(capacities: &[u32], cfg: RandConfig, rng: R) -> Self {
        let m = capacities.len();
        let c = capacities.iter().copied().max().unwrap_or(1).max(1);
        let scale_log = cfg.scale_log(m, c);
        RandomizedAdmission {
            frac: FracEngine::new(capacities, cfg.frac),
            load: LoadTracker::from_capacities(capacities.to_vec()),
            status: Vec::new(),
            footprints: Vec::new(),
            threshold: 1.0 / (cfg.threshold_const * scale_log),
            prob_mult: cfg.prob_const * scale_log,
            hot_edge_cutoff: 4 * (m as u64) * (c as u64) * (c as u64),
            poisoned: vec![false; m],
            rng,
            cfg,
            preempted_scratch: Vec::new(),
        }
    }

    /// Read-only view of the underlying fractional engine.
    pub fn fractional(&self) -> &FracEngine {
        &self.frac
    }

    /// The step-2 weight threshold in effect.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Reject `id` if currently accepted, releasing its load.
    fn reject(&mut self, id: RequestId) {
        if self.status[id.index()] == Status::Accepted {
            self.status[id.index()] = Status::Rejected;
            self.load.release(&self.footprints[id.index()]);
            self.preempted_scratch.push(id);
        }
    }
}

impl<R: Rng> OnlineAdmission for RandomizedAdmission<R> {
    fn name(&self) -> &'static str {
        match self.cfg.frac.weighting {
            crate::config::Weighting::Weighted => "aag-randomized-weighted",
            crate::config::Weighting::Unweighted => "aag-randomized-unweighted",
        }
    }

    fn on_request(&mut self, id: RequestId, request: &Request) -> Outcome {
        debug_assert_eq!(id.index(), self.status.len(), "arrivals must be dense");
        self.preempted_scratch.clear();
        self.footprints.push(request.footprint.clone());
        // Tentatively rejected until step 4 decides.
        self.status.push(Status::Rejected);

        // Step 1: fractional augmentation.
        let report = self.frac.on_request(&request.footprint, request.cost);

        // Hot-edge safeguard (§3: |REQ_e| < 4mc² may be assumed).
        if self.cfg.prune_hot_edges {
            for e in request.footprint.iter() {
                if !self.poisoned[e.index()]
                    && self.frac.requests_on_edge(e.index()) >= self.hot_edge_cutoff
                {
                    self.poisoned[e.index()] = true;
                    // Preempt everything currently accepted through e.
                    let victims: Vec<RequestId> = (0..self.status.len() as u32)
                        .map(RequestId)
                        .filter(|r| {
                            self.status[r.index()] == Status::Accepted
                                && self.footprints[r.index()].contains(e)
                        })
                        .collect();
                    for v in victims {
                        self.reject(v);
                    }
                }
            }
            if request.footprint.iter().any(|e| self.poisoned[e.index()]) {
                // Newcomer rides a poisoned edge: rejected outright.
                let preempted = std::mem::take(&mut self.preempted_scratch);
                return Outcome {
                    accepted: false,
                    preempted,
                };
            }
        }

        // Steps 2–3 run for every arrival, whatever the newcomer's
        // class: the weight increases in `report.deltas` belong to
        // *previously accepted* requests (e.g. a Big arrival squeezes
        // the capacity and pumps incumbent weights — they must get
        // their rejection chance now, or step 4 starves).
        //
        // Step 2: reject requests whose weight crossed the threshold.
        // Only requests touched this arrival can have crossed it.
        let mut newcomer_dead = false;
        for &(r, _) in &report.deltas {
            if self.frac.weight(r) >= self.threshold {
                if r == id {
                    newcomer_dead = true;
                } else {
                    self.reject(r);
                }
            }
        }

        // Step 3: probabilistic rejection proportional to the increase.
        for &(r, delta) in &report.deltas {
            if r == id && newcomer_dead {
                continue;
            }
            if r != id && self.status[r.index()] != Status::Accepted {
                continue;
            }
            let p = (self.prob_mult * delta).min(1.0);
            if p > 0.0 && self.rng.gen_bool(p) {
                if r == id {
                    newcomer_dead = true;
                } else {
                    self.reject(r);
                }
            }
        }

        // Newcomer's fate by class:
        // * Small — fractionally fully rejected ⇒ rejected integrally
        //   (its own delta of 1.0 also lands in step 2 above);
        // * Big — the paper accepts permanently; integrally it must
        //   also physically fit (after step-2/3 preemptions freed room);
        // * Mid — step 4: accept iff it fits and steps 2–3 spared it.
        let accepted = match report.class {
            Classification::Small => false,
            Classification::Big | Classification::Mid => {
                if (report.class == Classification::Big || !newcomer_dead)
                    && self.load.fits(&request.footprint)
                {
                    self.status[id.index()] = Status::Accepted;
                    self.load.admit(&request.footprint);
                    true
                } else {
                    false
                }
            }
        };
        let preempted = std::mem::take(&mut self.preempted_scratch);
        Outcome {
            accepted,
            preempted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RandConfig;
    use acmr_graph::EdgeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    fn run(
        caps: &[u32],
        arrivals: &[(&[u32], f64)],
        cfg: RandConfig,
        seed: u64,
    ) -> (Vec<bool>, f64) {
        let mut alg = RandomizedAdmission::new(caps, cfg, StdRng::seed_from_u64(seed));
        let mut accepted = vec![false; arrivals.len()];
        let mut audit = LoadTracker::from_capacities(caps.to_vec());
        for (i, (edges, cost)) in arrivals.iter().enumerate() {
            let req = Request::new(fp(edges), *cost);
            let out = alg.on_request(RequestId(i as u32), &req);
            for p in &out.preempted {
                assert!(accepted[p.index()], "preempted a non-accepted request");
                accepted[p.index()] = false;
                audit.release(&fp(arrivals[p.index()].0));
            }
            if out.accepted {
                accepted[i] = true;
                audit.admit(&req.footprint); // panics on violation
            }
        }
        let rejected_cost = arrivals
            .iter()
            .enumerate()
            .filter(|(i, _)| !accepted[*i])
            .map(|(_, (_, c))| *c)
            .sum();
        (accepted, rejected_cost)
    }

    #[test]
    fn accepts_everything_when_capacity_suffices() {
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0, 1], 1.0); 3];
        let (accepted, cost) = run(&[3, 3], &arrivals, RandConfig::unweighted(), 1);
        assert!(accepted.iter().all(|&a| a));
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn never_violates_capacity_under_heavy_overload() {
        // 40 requests on a single capacity-2 edge, many seeds; the run
        // helper's audit panics on any violation.
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0); 40];
        for seed in 0..20 {
            let (accepted, _) = run(&[2], &arrivals, RandConfig::unweighted(), seed);
            assert!(accepted.iter().filter(|&&a| a).count() <= 2);
        }
    }

    #[test]
    fn rejection_cost_scales_with_excess_not_total() {
        // Two disjoint edges: hot edge gets 30 requests (cap 1), cold
        // edge gets 30 requests (cap 30). The cold requests must
        // survive: rejections concentrate on the hot edge.
        let mut arrivals: Vec<(&[u32], f64)> = Vec::new();
        for _ in 0..30 {
            arrivals.push((&[0], 1.0));
            arrivals.push((&[1], 1.0));
        }
        let (accepted, cost) = run(&[1, 30], &arrivals, RandConfig::unweighted(), 7);
        // Every odd index (edge 1) should be accepted.
        let cold_accepted = accepted.iter().skip(1).step_by(2).filter(|&&a| a).count();
        assert_eq!(cold_accepted, 30, "cold-edge requests were preempted");
        assert!(cost <= 31.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let arrivals: Vec<(&[u32], f64)> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    (&[0][..], 1.0)
                } else {
                    (&[0, 1][..], 2.0)
                }
            })
            .collect();
        let a = run(&[2, 3], &arrivals, RandConfig::weighted(), 123);
        let b = run(&[2, 3], &arrivals, RandConfig::weighted(), 123);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn weighted_prefers_rejecting_cheap() {
        // Capacity 1; one expensive request then many cheap ones.
        // Expected: the expensive one is Big (cost » α) and survives.
        let mut arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1000.0)];
        for _ in 0..20 {
            arrivals.push((&[0], 1.0));
        }
        // m = c = 1 makes the 4mc² hot-edge cutoff fire after 4
        // arrivals (correct per §3 but not what this test probes), so
        // disable it here.
        let mut cfg = RandConfig::weighted();
        cfg.prune_hot_edges = false;
        let mut survived = 0;
        for seed in 0..10 {
            let (accepted, _) = run(&[1], &arrivals, cfg, seed);
            if accepted[0] {
                survived += 1;
            }
        }
        assert!(
            survived >= 8,
            "expensive request survived only {survived}/10 runs"
        );
    }

    #[test]
    fn hot_edge_pruning_fires_on_tiny_instance() {
        // m = 1, c = 1 ⇒ cutoff 4·1·1 = 4 requests. The 5th arrival and
        // beyond must all be rejected outright.
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0); 8];
        let mut cfg = RandConfig::unweighted();
        cfg.prune_hot_edges = true;
        let (accepted, _) = run(&[1], &arrivals, cfg, 3);
        for (i, &a) in accepted.iter().enumerate() {
            if i >= 4 {
                assert!(!a, "arrival {i} accepted after poisoning");
            }
        }
    }

    #[test]
    fn pruning_can_be_disabled() {
        let arrivals: Vec<(&[u32], f64)> = vec![(&[0], 1.0); 8];
        let mut cfg = RandConfig::unweighted();
        cfg.prune_hot_edges = false;
        // Without pruning the algorithm still never violates capacity
        // (run() audits) and typically keeps one request accepted.
        let (_accepted, cost) = run(&[1], &arrivals, cfg, 3);
        assert!(cost >= 7.0, "cost {cost} below forced minimum");
    }

    #[test]
    fn unweighted_competitive_on_random_interval_workload() {
        // Line of 32 edges, capacity 4; random intervals, 3× overload.
        // Competitive ratio vs the trivial lower bound Q must be a
        // small multiple of ln m · ln c.
        use rand::Rng as _;
        let m = 32usize;
        let cap = 4u32;
        let mut wl_rng = StdRng::seed_from_u64(99);
        let mut arrivals_store: Vec<(Vec<u32>, f64)> = Vec::new();
        for _ in 0..cap as usize * m {
            let a = wl_rng.gen_range(0..m as u32 - 1);
            let len = wl_rng.gen_range(1..=6u32).min(m as u32 - a);
            let edges: Vec<u32> = (a..a + len).collect();
            arrivals_store.push((edges, 1.0));
        }
        let arrivals: Vec<(&[u32], f64)> = arrivals_store
            .iter()
            .map(|(e, c)| (e.as_slice(), *c))
            .collect();
        let caps = vec![cap; m];
        let (_, online) = run(&caps, &arrivals, RandConfig::unweighted(), 5);
        // Lower bound on OPT: max edge excess.
        let mut load = vec![0u32; m];
        for (e, _) in &arrivals {
            for &i in *e {
                load[i as usize] += 1;
            }
        }
        let q = load.iter().map(|&l| l.saturating_sub(cap)).max().unwrap() as f64;
        if q > 0.0 {
            let bound = ((m as f64).ln() * (cap as f64).ln().max(1.0)) * 20.0;
            assert!(
                online / q <= bound,
                "ratio {} exceeds generous bound {bound}",
                online / q
            );
        }
    }
}
