//! The algorithm registry: one name→constructor table for the whole
//! workspace.
//!
//! Algorithms are addressed by **spec strings** like
//! `aag-weighted?seed=7&threshold=6`, parsed into [`AlgorithmSpec`].
//! Each crate that defines algorithms registers constructor closures
//! into a [`Registry`] (this crate registers the paper's algorithms via
//! [`register_core`]; `acmr-baselines` registers its baselines;
//! `acmr-harness::default_registry` assembles the full set). The CLI,
//! the experiment suite, and the benches all dispatch through a
//! registry — the per-consumer `match name { … }` tables the seed tree
//! carried are gone.
//!
//! Registered constructors receive the parsed spec plus a [`BuildCtx`]
//! (capacities and a caller-provided base seed) and return a boxed
//! [`OnlineAdmission`]. A spec's own `seed` parameter overrides the
//! context seed, so `acmr run --alg 'aag-weighted?seed=7'` is fully
//! reproducible from the spec string alone.

use crate::config::RandConfig;
use crate::error::AcmrError;
use crate::online::OnlineAdmission;
use crate::randomized::RandomizedAdmission;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// The registry name consumers fall back to when no algorithm is
/// specified: the paper's weighted randomized algorithm.
pub const DEFAULT_ALGORITHM: &str = "aag-weighted";

/// A parsed algorithm spec: a registry name plus `key=value` options.
///
/// Grammar: `name[?key[=value][&key[=value]]…]`. A key without `=`
/// gets the value `"true"`, so boolean switches read naturally:
/// `aag-weighted?no-prune`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlgorithmSpec {
    /// Registry name (everything before `?`).
    pub name: String,
    /// Options in spec order.
    pub params: Vec<(String, String)>,
}

impl AlgorithmSpec {
    /// Spec with no options.
    pub fn bare(name: impl Into<String>) -> Self {
        AlgorithmSpec {
            name: name.into(),
            params: Vec::new(),
        }
    }

    /// Parse a spec string.
    pub fn parse(input: &str) -> Result<Self, AcmrError> {
        let bad = |reason: &str| AcmrError::SpecParse {
            input: input.to_string(),
            reason: reason.to_string(),
        };
        let (name, query) = match input.split_once('?') {
            None => (input, ""),
            Some((n, q)) => (n, q),
        };
        if name.is_empty() {
            return Err(bad("empty algorithm name"));
        }
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(bad("name may contain only [A-Za-z0-9_-]"));
        }
        let mut params = Vec::new();
        if !query.is_empty() {
            for pair in query.split('&') {
                let (k, v) = match pair.split_once('=') {
                    Some((k, v)) => (k, v),
                    None => (pair, "true"),
                };
                if k.is_empty() {
                    return Err(bad("empty parameter key"));
                }
                params.push((k.to_string(), v.to_string()));
            }
        }
        Ok(AlgorithmSpec {
            name: name.to_string(),
            params,
        })
    }

    /// Raw value of `key`, if present (last occurrence wins).
    pub fn raw(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed value of `key`, if present.
    pub fn get<T: FromStr>(&self, key: &str) -> Result<Option<T>, AcmrError> {
        match self.raw(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| AcmrError::BadParam {
                key: key.to_string(),
                value: v.to_string(),
                reason: format!("expected a {}", std::any::type_name::<T>()),
            }),
        }
    }

    /// The spec's `seed` override, if any.
    pub fn seed(&self) -> Result<Option<u64>, AcmrError> {
        self.get::<u64>("seed")
    }

    /// A boolean switch: absent → `false`, bare key or `=true` →
    /// `true`, `=false` → `false`; anything else is a [`AcmrError::BadParam`].
    pub fn flag(&self, key: &str) -> Result<bool, AcmrError> {
        Ok(self.get::<bool>(key)?.unwrap_or(false))
    }

    /// Render back to the `name?k=v&…` string form. For any spec
    /// produced by [`AlgorithmSpec::parse`], parsing the result yields
    /// this spec again (the round-trip the registry tests pin). The
    /// grammar has no escaping, so a hand-constructed spec whose param
    /// keys or values contain `?`, `&`, or `=` cannot be represented
    /// and will not round-trip — parse-derived specs never do.
    pub fn canonical(&self) -> String {
        if self.params.is_empty() {
            return self.name.clone();
        }
        let query: Vec<String> = self
            .params
            .iter()
            .map(|(k, v)| {
                if v == "true" {
                    k.clone()
                } else {
                    format!("{k}={v}")
                }
            })
            .collect();
        format!("{}?{}", self.name, query.join("&"))
    }

    /// Error for a parameter this algorithm does not understand; used
    /// by constructors to reject typos instead of ignoring them.
    pub fn reject_unknown_params(&self, known: &[&str]) -> Result<(), AcmrError> {
        for (k, v) in &self.params {
            if !known.contains(&k.as_str()) {
                return Err(AcmrError::BadParam {
                    key: k.clone(),
                    value: v.clone(),
                    reason: format!(
                        "unknown parameter for {} (known: {})",
                        self.name,
                        known.join(", ")
                    ),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for AlgorithmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl FromStr for AlgorithmSpec {
    type Err = AcmrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlgorithmSpec::parse(s)
    }
}

/// Everything a constructor needs besides the spec itself.
#[derive(Clone, Copy, Debug)]
pub struct BuildCtx<'a> {
    /// Edge capacities of the instance the algorithm will face.
    pub capacities: &'a [u32],
    /// Base RNG seed; a spec `seed=` parameter takes precedence.
    pub seed: u64,
}

impl<'a> BuildCtx<'a> {
    /// Context from capacities with seed 0.
    pub fn new(capacities: &'a [u32]) -> Self {
        BuildCtx {
            capacities,
            seed: 0,
        }
    }

    /// Same context with a different base seed.
    pub fn with_seed(self, seed: u64) -> Self {
        BuildCtx { seed, ..self }
    }

    /// The seed the constructor should actually use: the spec override
    /// when present, the context seed otherwise.
    pub fn effective_seed(&self, spec: &AlgorithmSpec) -> Result<u64, AcmrError> {
        Ok(spec.seed()?.unwrap_or(self.seed))
    }
}

/// Constructor closure stored per registry entry.
pub type Constructor = Box<
    dyn Fn(&AlgorithmSpec, &BuildCtx<'_>) -> Result<Box<dyn OnlineAdmission>, AcmrError>
        + Send
        + Sync,
>;

struct Entry {
    summary: &'static str,
    ctor: Constructor,
}

/// The name→constructor table.
///
/// Deliberately an explicit value (not a global): tests can build
/// scratch registries, and crates register into whichever registry the
/// application assembles.
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<String, Entry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register `name`. Panics if the name is already taken — two
    /// crates claiming one name is a programming error worth failing
    /// loudly at startup.
    pub fn register(&mut self, name: &str, summary: &'static str, ctor: Constructor) {
        let prev = self
            .entries
            .insert(name.to_string(), Entry { summary, ctor });
        assert!(prev.is_none(), "algorithm {name:?} registered twice");
    }

    /// Sorted registered names.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// One-line description of a registered algorithm.
    pub fn summary(&self, name: &str) -> Option<&'static str> {
        self.entries.get(name).map(|e| e.summary)
    }

    /// Build from a parsed spec.
    pub fn build_spec(
        &self,
        spec: &AlgorithmSpec,
        ctx: &BuildCtx<'_>,
    ) -> Result<Box<dyn OnlineAdmission>, AcmrError> {
        let entry = self
            .entries
            .get(&spec.name)
            .ok_or_else(|| AcmrError::UnknownAlgorithm {
                name: spec.name.clone(),
                known: self.entries.keys().cloned().collect(),
            })?;
        (entry.ctor)(spec, ctx)
    }

    /// Parse a spec string and build it.
    pub fn build(
        &self,
        spec_str: &str,
        ctx: &BuildCtx<'_>,
    ) -> Result<Box<dyn OnlineAdmission>, AcmrError> {
        self.build_spec(&AlgorithmSpec::parse(spec_str)?, ctx)
    }
}

/// Apply the shared `aag-*` tuning parameters onto a base config.
///
/// * `threshold` / `prob` — override the step-2/3 rounding constants
/// * `doubling` — override the α-doubling trigger factor
/// * `no-prune` — disable the `4mc²` hot-edge safeguard
/// * `no-classes` — disable `R_big`/`R_small` preprocessing
fn tuned_config(base: RandConfig, spec: &AlgorithmSpec) -> Result<RandConfig, AcmrError> {
    spec.reject_unknown_params(&[
        "seed",
        "threshold",
        "prob",
        "doubling",
        "no-prune",
        "no-classes",
    ])?;
    let mut cfg = base;
    if let Some(t) = spec.get::<f64>("threshold")? {
        cfg.threshold_const = t;
    }
    if let Some(p) = spec.get::<f64>("prob")? {
        cfg.prob_const = p;
    }
    if let Some(d) = spec.get::<f64>("doubling")? {
        cfg.frac.doubling_factor = d;
    }
    if spec.flag("no-prune")? {
        cfg.prune_hot_edges = false;
    }
    if spec.flag("no-classes")? {
        cfg.frac.cost_classes = false;
    }
    for (key, field) in [
        ("threshold", cfg.threshold_const),
        ("prob", cfg.prob_const),
        ("doubling", cfg.frac.doubling_factor),
    ] {
        if !(field > 0.0 && field.is_finite()) {
            return Err(AcmrError::BadParam {
                key: key.to_string(),
                value: field.to_string(),
                reason: "must be positive and finite".to_string(),
            });
        }
    }
    Ok(cfg)
}

/// Register the paper's §3 algorithms: `aag-weighted` and
/// `aag-unweighted`. Both accept the shared tuning parameters
/// (`threshold`, `prob`, `doubling`, `no-prune`, `no-classes`) on top
/// of the universal `seed`; unknown keys are rejected with a typed
/// error.
///
/// ```
/// use acmr_core::{register_core, BuildCtx, Registry};
///
/// let mut registry = Registry::new();
/// register_core(&mut registry);
/// assert_eq!(registry.names(), vec!["aag-unweighted", "aag-weighted"]);
///
/// // Build by spec string; parameters are validated.
/// let caps = vec![2u32, 2];
/// let ctx = BuildCtx::new(&caps).with_seed(7);
/// let alg = registry.build("aag-weighted?threshold=6", &ctx)?;
/// assert_eq!(alg.name(), "aag-randomized-weighted");
/// assert!(registry.build("aag-weighted?typo=1", &ctx).is_err());
/// # Ok::<(), acmr_core::AcmrError>(())
/// ```
pub fn register_core(reg: &mut Registry) {
    reg.register(
        "aag-weighted",
        "AAG §3 randomized preemptive admission, weighted constants (O(log²(mc))-competitive)",
        Box::new(|spec, ctx| {
            let cfg = tuned_config(RandConfig::weighted(), spec)?;
            let seed = ctx.effective_seed(spec)?;
            Ok(Box::new(RandomizedAdmission::new(
                ctx.capacities,
                cfg,
                StdRng::seed_from_u64(seed),
            )))
        }),
    );
    reg.register(
        "aag-unweighted",
        "AAG §3 randomized preemptive admission, unweighted constants (O(log m log c)-competitive)",
        Box::new(|spec, ctx| {
            let cfg = tuned_config(RandConfig::unweighted(), spec)?;
            let seed = ctx.effective_seed(spec)?;
            Ok(Box::new(RandomizedAdmission::new(
                ctx.capacities,
                cfg,
                StdRng::seed_from_u64(seed),
            )))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_and_canonical_round_trip() {
        let s = AlgorithmSpec::parse("aag-weighted?seed=7&no-prune&threshold=6.5").unwrap();
        assert_eq!(s.name, "aag-weighted");
        assert_eq!(s.seed().unwrap(), Some(7));
        assert_eq!(s.raw("no-prune"), Some("true"));
        assert!(s.flag("no-prune").unwrap());
        assert!(!s.flag("no-classes").unwrap()); // absent → false
        assert_eq!(s.get::<f64>("threshold").unwrap(), Some(6.5));
        let again = AlgorithmSpec::parse(&s.canonical()).unwrap();
        assert_eq!(again, s);

        // Explicit =false disables a switch; garbage is an error.
        let off = AlgorithmSpec::parse("aag-weighted?no-prune=false").unwrap();
        assert!(!off.flag("no-prune").unwrap());
        let bad = AlgorithmSpec::parse("aag-weighted?no-prune=maybe").unwrap();
        assert!(bad.flag("no-prune").is_err());

        let bare = AlgorithmSpec::parse("greedy").unwrap();
        assert_eq!(bare.canonical(), "greedy");
        assert_eq!(bare.seed().unwrap(), None);
    }

    #[test]
    fn spec_parse_rejects_malformed_input() {
        assert!(AlgorithmSpec::parse("").is_err());
        assert!(AlgorithmSpec::parse("?seed=1").is_err());
        assert!(AlgorithmSpec::parse("has space").is_err());
        assert!(AlgorithmSpec::parse("x?=v").is_err());
        let s = AlgorithmSpec::parse("x?seed=banana").unwrap();
        assert!(s.seed().is_err());
    }

    #[test]
    fn registry_builds_core_algorithms() {
        let mut reg = Registry::new();
        register_core(&mut reg);
        assert_eq!(reg.names(), vec!["aag-unweighted", "aag-weighted"]);
        assert!(reg.summary("aag-weighted").unwrap().contains("§3"));
        let caps = vec![2u32, 2];
        let ctx = BuildCtx::new(&caps).with_seed(3);
        let alg = reg
            .build("aag-weighted?threshold=6&no-prune", &ctx)
            .unwrap();
        assert_eq!(alg.name(), "aag-randomized-weighted");
        match reg.build("nope", &ctx) {
            Err(AcmrError::UnknownAlgorithm { name, known }) => {
                assert_eq!(name, "nope");
                assert_eq!(known.len(), 2);
            }
            Err(other) => panic!("expected UnknownAlgorithm, got {other:?}"),
            Ok(_) => panic!("expected UnknownAlgorithm, got a built algorithm"),
        }
    }

    #[test]
    fn unknown_and_invalid_params_are_rejected() {
        let mut reg = Registry::new();
        register_core(&mut reg);
        let caps = vec![1u32];
        let ctx = BuildCtx::new(&caps);
        assert!(matches!(
            reg.build("aag-weighted?typo=1", &ctx),
            Err(AcmrError::BadParam { .. })
        ));
        assert!(matches!(
            reg.build("aag-weighted?threshold=-2", &ctx),
            Err(AcmrError::BadParam { .. })
        ));
        assert!(matches!(
            reg.build("aag-weighted?threshold=zero", &ctx),
            Err(AcmrError::BadParam { .. })
        ));
    }

    #[test]
    fn seed_param_overrides_ctx_seed() {
        let caps = vec![1u32];
        let ctx = BuildCtx::new(&caps).with_seed(5);
        let spec = AlgorithmSpec::parse("aag-weighted?seed=9").unwrap();
        assert_eq!(ctx.effective_seed(&spec).unwrap(), 9);
        let spec = AlgorithmSpec::parse("aag-weighted").unwrap();
        assert_eq!(ctx.effective_seed(&spec).unwrap(), 5);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let mut reg = Registry::new();
        register_core(&mut reg);
        register_core(&mut reg);
    }
}
