//! Structured run reports: the one schema the CLI, the experiment
//! harness, and the benches all consume.
//!
//! A [`RunReport`] is produced by [`crate::Session::report`] and
//! optionally enriched with an offline-optimum bound
//! ([`OptSummary`], filled in by `acmr-harness`). It is serde-backed,
//! so `acmr run --format json` emits it verbatim and
//! `serde_json::from_str` round-trips it.

use serde::{Deserialize, Serialize};

/// Offline-optimum context attached to a run by the harness.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptSummary {
    /// The bound's value (a lower bound on OPT unless `kind` is
    /// `"exact"`).
    pub value: f64,
    /// Provenance: `exact`, `lp-lower-bound`, `greedy-over-H`, or
    /// `trivial(Q)`.
    pub kind: String,
    /// Conservative competitive ratio of the run against this bound
    /// (`None` when the bound is 0 and the run rejected nothing —
    /// a perfect run with no finite ratio to report).
    pub ratio: Option<f64>,
}

/// Everything one audited run produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Canonical spec the algorithm was built from (e.g.
    /// `aag-weighted?seed=7`), or the algorithm's name for sessions
    /// constructed directly from a value.
    pub algorithm: String,
    /// The algorithm's own stable `name()`.
    pub algorithm_name: String,
    /// RNG seed actually used, when the algorithm was registry-built.
    /// Always echoed so any printed report reproduces the run.
    pub seed: Option<u64>,
    /// Number of edges `m`.
    pub edges: usize,
    /// The paper's `c = max_e c_e`.
    pub max_capacity: u32,
    /// Arrivals processed.
    pub requests: usize,
    /// Requests still accepted at the end.
    pub accepted_count: usize,
    /// Requests rejected (immediately or by preemption).
    pub rejected_count: usize,
    /// Total rejected cost — the paper's objective.
    pub rejected_cost: f64,
    /// Preemptions performed.
    pub preemptions: usize,
    /// Cancellation charges paid: the session's buyback factor `f`
    /// times the summed cost of every preempted request (0 when the
    /// factor is 0 or nothing was preempted).
    pub buyback_paid: f64,
    /// The run's full bill: `rejected_cost + buyback_paid`. Equals
    /// `rejected_cost` (the paper's objective) when preemption is free.
    pub net_objective: f64,
    /// Total cost of all arrivals.
    pub offered_cost: f64,
    /// Offline-optimum context, when the harness computed one.
    pub opt: Option<OptSummary>,
}

impl RunReport {
    /// Conservative competitive ratio against the attached bound, if
    /// both exist and are meaningful.
    pub fn ratio(&self) -> Option<f64> {
        self.opt.as_ref().and_then(|o| o.ratio)
    }

    /// Render the human-readable text form the CLI prints (`--format
    /// text`). Keys are stable: scripts may grep them.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("algorithm      : {}\n", self.algorithm));
        if let Some(seed) = self.seed {
            out.push_str(&format!("seed           : {seed}\n"));
        }
        out.push_str(&format!("requests       : {}\n", self.requests));
        out.push_str(&format!("rejected cost  : {:.2}\n", self.rejected_cost));
        out.push_str(&format!("rejected count : {}\n", self.rejected_count));
        out.push_str(&format!("preemptions    : {}\n", self.preemptions));
        if self.buyback_paid != 0.0 {
            out.push_str(&format!("buyback paid   : {:.2}\n", self.buyback_paid));
            out.push_str(&format!("net objective  : {:.2}\n", self.net_objective));
        }
        if let Some(opt) = &self.opt {
            out.push_str(&format!(
                "opt bound      : {:.2} ({})\n",
                opt.value, opt.kind
            ));
            match opt.ratio {
                Some(r) => out.push_str(&format!("ratio          : {r:.3}\n")),
                None => out.push_str("ratio          : n/a (OPT = 0, nothing rejected)\n"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            algorithm: "aag-weighted?seed=7".into(),
            algorithm_name: "aag-randomized-weighted".into(),
            seed: Some(7),
            edges: 16,
            max_capacity: 4,
            requests: 100,
            accepted_count: 90,
            rejected_count: 10,
            rejected_cost: 12.5,
            preemptions: 3,
            buyback_paid: 1.5,
            net_objective: 14.0,
            offered_cost: 250.0,
            opt: Some(OptSummary {
                value: 6.25,
                kind: "exact".into(),
                ratio: Some(2.0),
            }),
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // And the pretty form too.
        let pretty = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&pretty).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn text_form_reports_seed_and_ratio() {
        let text = sample().to_text();
        assert!(text.contains("seed           : 7"));
        assert!(text.contains("ratio          : 2.000"));
        assert!(text.contains("opt bound      : 6.25 (exact)"));
        assert!(text.contains("buyback paid   : 1.50"));
        assert!(text.contains("net objective  : 14.00"));

        let mut no_opt = sample();
        no_opt.opt = None;
        no_opt.seed = None;
        no_opt.buyback_paid = 0.0;
        let text = no_opt.to_text();
        assert!(!text.contains("seed           :"));
        assert!(!text.contains("ratio          :"));
        // Free preemption keeps the classic report shape.
        assert!(!text.contains("buyback paid"));
        assert!(!text.contains("net objective"));
    }

    #[test]
    fn ratio_accessor() {
        assert_eq!(sample().ratio(), Some(2.0));
        let mut r = sample();
        r.opt.as_mut().unwrap().ratio = None;
        assert_eq!(r.ratio(), None);
        r.opt = None;
        assert_eq!(r.ratio(), None);
    }
}
