//! The streaming `Session` driver: one incremental entry point for
//! every consumer of an online admission algorithm.
//!
//! The seed tree drove algorithms through a batch-only free function
//! (`harness::run_admission`) that needed the whole
//! [`AdmissionInstance`] up front and panicked on contract violations.
//! A [`Session`] instead owns the algorithm, the
//! [`acmr_graph::LoadTracker`] audit, and running statistics, and
//! exposes [`Session::push`]: feed one arrival, get one audited
//! [`ArrivalEvent`] back. That is the shape batched arrivals, async
//! sharding, and live serving all build on — and the batch runners are
//! now thin wrappers over it.
//!
//! ## Batched arrivals
//!
//! [`Session::push_batch`] feeds a slice of arrivals at once. Its
//! semantics are pinned to the streaming path — the event stream it
//! returns is **identical, arrival for arrival**, to what the same
//! requests would produce through [`Session::push`] (a property the
//! harness's differential suite asserts for every registered
//! algorithm) — while the batch shape lets the session amortize what
//! per-push calls cannot: footprints are validated in one upfront pass
//! before the algorithm sees anything, per-arrival bookkeeping vectors
//! are grown once per batch, the load-audit coherence sweep runs once
//! per batch instead of once per arrival, and
//! [`Session::push_batch_into`] reuses a caller-owned event buffer so
//! steady-state batch processing performs no per-event allocations in
//! this layer.
//!
//! ## Streaming ingestion
//!
//! [`Session::run_stream`] / [`Session::run_stream_batched`] drive the
//! session off a fallible request iterator — the shape a chunked trace
//! parser (`acmr_workloads::trace::TraceReader`) yields — so a run
//! never materializes its instance: this layer buffers at most one
//! request (respectively one batch) of the stream. What remains is the
//! referee's own audit state — footprints of *currently accepted*
//! requests plus a few bytes of accept/reject bookkeeping per arrival
//! — which is why `acmr run --stream`'s peak RSS is a small fraction
//! of the materialized instance's (the streaming bench records both),
//! not `O(1)`.
//!
//! Contract violations (capacity overflow, phantom preemption,
//! accept-after-reject) surface as
//! [`AcmrError::ContractViolation`] with the same wording the harness
//! panics always used; after one violation the session is *poisoned*
//! and every further push fails fast.

use crate::error::AcmrError;
use crate::instance::{AdmissionInstance, Request, RequestId};
use crate::online::OnlineAdmission;
use crate::registry::{AlgorithmSpec, BuildCtx, Registry};
use crate::report::RunReport;
use acmr_graph::LoadTracker;
use serde::{Deserialize, Serialize};

/// What one arrival did to the stream — the audited, serializable
/// superset of the algorithm-facing [`crate::Outcome`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrivalEvent {
    /// Dense id assigned to the arriving request.
    pub id: RequestId,
    /// Was the newcomer accepted (and still accepted once this
    /// arrival's preemptions settled)?
    pub accepted: bool,
    /// Previously accepted requests preempted by this arrival.
    pub preempted: Vec<RequestId>,
    /// Cost of the arriving request.
    pub cost: f64,
    /// Rejection cost newly incurred by this arrival: the newcomer's
    /// cost if rejected, plus the costs of everything preempted.
    pub rejected_cost_delta: f64,
    /// Running total of rejected cost after this arrival.
    pub total_rejected_cost: f64,
}

/// Running statistics a session maintains incrementally.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Arrivals processed.
    pub arrivals: usize,
    /// Requests currently accepted.
    pub currently_accepted: usize,
    /// Requests rejected or preempted so far.
    pub rejected_count: usize,
    /// Total cost of rejected/preempted requests (the paper's
    /// objective).
    pub rejected_cost: f64,
    /// Preemptions so far (every preemption is also a rejection).
    pub preemptions: usize,
    /// Cancellation charges so far: the session's buyback factor times
    /// the summed cost of every preempted request.
    pub buyback_paid: f64,
    /// Total cost of all arrivals seen.
    pub offered_cost: f64,
}

/// A streaming run of one online admission algorithm over one arrival
/// sequence, with the harness's referee audit applied per arrival.
pub struct Session<A: OnlineAdmission = Box<dyn OnlineAdmission>> {
    alg: A,
    /// Owns the capacity vector; edge counts and capacities are always
    /// read back from here so there is one source of truth.
    audit: LoadTracker,
    /// Per-request live state: footprint retained while accepted.
    accepted: Vec<Option<Request>>,
    ever_rejected: Vec<bool>,
    stats: RunStats,
    poisoned: bool,
    /// Cancellation-cost factor `f`: every preemption of an admitted
    /// request of cost `c` is charged an extra `f × c` into
    /// `stats.buyback_paid`. Adopted from the algorithm's
    /// [`OnlineAdmission::buyback_factor`] at construction; scenario
    /// runs (E19) may override it to bill free-preemption algorithms
    /// under the same cost model.
    buyback_factor: f64,
    /// Spec string the algorithm was built from, when registry-built.
    spec: Option<String>,
    /// Seed the algorithm was built with, when registry-built.
    seed: Option<u64>,
}

impl Session<Box<dyn OnlineAdmission>> {
    /// Build the algorithm named by `spec` from `registry` and open a
    /// session over `capacities`. `base_seed` feeds randomized
    /// algorithms unless the spec carries its own `seed=`.
    pub fn from_registry(
        registry: &Registry,
        spec: &AlgorithmSpec,
        capacities: &[u32],
        base_seed: u64,
    ) -> Result<Self, AcmrError> {
        let ctx = BuildCtx::new(capacities).with_seed(base_seed);
        let alg = registry.build_spec(spec, &ctx)?;
        let mut session = Session::new(alg, capacities);
        session.spec = Some(spec.canonical());
        session.seed = Some(ctx.effective_seed(spec)?);
        Ok(session)
    }
}

impl<A: OnlineAdmission> Session<A> {
    /// Open a session driving `alg` over edges with the given
    /// capacities.
    pub fn new(alg: A, capacities: &[u32]) -> Self {
        let buyback_factor = alg.buyback_factor();
        Session {
            alg,
            audit: LoadTracker::from_capacities(capacities.to_vec()),
            accepted: Vec::new(),
            ever_rejected: Vec::new(),
            stats: RunStats::default(),
            poisoned: false,
            buyback_factor,
            spec: None,
            seed: None,
        }
    }

    /// Override the cancellation-cost factor this session charges per
    /// preemption (default: the algorithm's own
    /// [`OnlineAdmission::buyback_factor`], `0.0` for the paper's
    /// free-preemption algorithms). Must be finite and non-negative,
    /// and can only be set before the first arrival — the charge
    /// stream would otherwise be retroactively inconsistent.
    pub fn with_buyback_factor(mut self, factor: f64) -> Result<Self, AcmrError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(AcmrError::InvalidRequest {
                reason: format!("buyback factor must be finite and >= 0, got {factor}"),
            });
        }
        self.check_fresh("with_buyback_factor")?;
        self.buyback_factor = factor;
        Ok(self)
    }

    /// The cancellation-cost factor this session charges per
    /// preemption.
    pub fn buyback_factor(&self) -> f64 {
        self.buyback_factor
    }

    /// The driven algorithm's stable name.
    pub fn algorithm_name(&self) -> &'static str {
        self.alg.name()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Final acceptance state per arrival so far.
    pub fn accepted_mask(&self) -> Vec<bool> {
        self.accepted.iter().map(Option::is_some).collect()
    }

    /// Has a contract violation poisoned this session?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn violation(&mut self, detail: String) -> AcmrError {
        self.poisoned = true;
        AcmrError::ContractViolation {
            algorithm: self.alg.name().to_string(),
            detail,
        }
    }

    /// Feed one arrival; audit and apply the algorithm's decision.
    ///
    /// Errors with [`AcmrError::InvalidRequest`] if the footprint
    /// references an edge outside the capacity vector (the request is
    /// not shown to the algorithm), and with
    /// [`AcmrError::ContractViolation`] if the algorithm breaks the
    /// online contract (the session is then poisoned).
    ///
    /// ```
    /// use acmr_core::{register_core, AlgorithmSpec, Registry, Request, Session};
    /// use acmr_graph::{EdgeId, EdgeSet};
    ///
    /// let mut registry = Registry::new();
    /// register_core(&mut registry);
    /// let spec = AlgorithmSpec::parse("aag-weighted?seed=42")?;
    /// let mut session = Session::from_registry(&registry, &spec, &[1, 1], 0)?;
    ///
    /// let request = Request::new(EdgeSet::new(vec![EdgeId(0), EdgeId(1)]), 5.0);
    /// let event = session.push(&request)?;   // one audited ArrivalEvent
    /// assert!(event.accepted);               // plenty of room: base case
    /// assert_eq!(session.stats().arrivals, 1);
    /// # Ok::<(), acmr_core::AcmrError>(())
    /// ```
    pub fn push(&mut self, request: &Request) -> Result<ArrivalEvent, AcmrError> {
        if self.poisoned {
            return Err(AcmrError::SessionPoisoned);
        }
        self.validate(request)?;
        let event = self.push_validated(request)?;
        debug_assert!(self.audit.is_feasible());
        Ok(event)
    }

    /// Range-check a footprint against the session's edge universe
    /// without showing the request to the algorithm.
    fn validate(&self, request: &Request) -> Result<(), AcmrError> {
        let num_edges = self.audit.num_edges();
        if let Some(e) = request.footprint.iter().find(|e| e.index() >= num_edges) {
            return Err(AcmrError::InvalidRequest {
                reason: format!("footprint edge {e:?} out of range for {num_edges} edges"),
            });
        }
        Ok(())
    }

    /// The arrival body shared by [`Session::push`] and the batch path:
    /// assumes the footprint was already validated and the session is
    /// not poisoned; can still fail with a contract violation.
    fn push_validated(&mut self, request: &Request) -> Result<ArrivalEvent, AcmrError> {
        // Dense u32 ids: refuse the 2^32-th arrival instead of silently
        // wrapping and aliasing old slots — reachable in principle now
        // that `run_stream` advertises unbounded input.
        let Ok(raw_id) = u32::try_from(self.accepted.len()) else {
            return Err(AcmrError::InvalidRequest {
                reason: format!(
                    "session reached the RequestId limit of {} arrivals",
                    u32::MAX
                ),
            });
        };
        let id = RequestId(raw_id);
        let out = self.alg.on_request(id, request);

        // Referee phase 1: preemptions must name currently-accepted
        // requests.
        let mut rejected_cost_delta = 0.0;
        for p in &out.preempted {
            let slot = self.accepted.get_mut(p.index()).and_then(Option::take);
            let Some(victim) = slot else {
                return Err(
                    self.violation(format!("preempted request {p:?} is not currently accepted"))
                );
            };
            self.audit.release(&victim.footprint);
            self.ever_rejected[p.index()] = true;
            self.stats.currently_accepted -= 1;
            self.stats.rejected_count += 1;
            self.stats.rejected_cost += victim.cost;
            self.stats.preemptions += 1;
            self.stats.buyback_paid += self.buyback_factor * victim.cost;
            rejected_cost_delta += victim.cost;
        }

        // Referee phase 2: acceptance must be fresh and feasible.
        self.accepted.push(None);
        self.ever_rejected.push(false);
        if out.accepted {
            if self.ever_rejected[id.index()] {
                return Err(self.violation("accepted a previously rejected request".to_string()));
            }
            if !self.audit.fits(&request.footprint) {
                return Err(self.violation(format!(
                    "accepting request {} violates a capacity",
                    id.index()
                )));
            }
            self.audit.admit(&request.footprint);
            self.accepted[id.index()] = Some(request.clone());
            self.stats.currently_accepted += 1;
        } else {
            self.ever_rejected[id.index()] = true;
            self.stats.rejected_count += 1;
            self.stats.rejected_cost += request.cost;
            rejected_cost_delta += request.cost;
        }
        self.stats.arrivals += 1;
        self.stats.offered_cost += request.cost;

        Ok(ArrivalEvent {
            id,
            accepted: out.accepted,
            preempted: out.preempted,
            cost: request.cost,
            rejected_cost_delta,
            total_rejected_cost: self.stats.rejected_cost,
        })
    }

    /// Feed a slice of arrivals at once; equivalent to pushing each
    /// request through [`Session::push`] in order, and returns the same
    /// events the per-push calls would have.
    ///
    /// The batch shape buys three amortizations over the per-push loop:
    /// the whole batch is range-validated **upfront** (an invalid
    /// footprint anywhere rejects the batch with
    /// [`AcmrError::InvalidRequest`] before *any* arrival is shown to
    /// the algorithm — no partial application on bad input), the
    /// per-arrival bookkeeping vectors are reserved once, and the
    /// load-audit coherence sweep runs once per batch.
    ///
    /// Contract violations keep streaming semantics: arrivals before
    /// the violation are applied and counted, the violation poisons the
    /// session, and the error is returned (use
    /// [`Session::push_batch_into`] to also keep the events preceding
    /// the violation).
    ///
    /// ```
    /// use acmr_core::{register_core, AlgorithmSpec, Registry, Request, Session};
    /// use acmr_graph::{EdgeId, EdgeSet};
    ///
    /// let mut registry = Registry::new();
    /// register_core(&mut registry);
    /// let spec = AlgorithmSpec::parse("aag-unweighted?seed=7")?;
    /// let mut session = Session::from_registry(&registry, &spec, &[2], 0)?;
    ///
    /// let batch: Vec<Request> = (0..3)
    ///     .map(|_| Request::unit(EdgeSet::singleton(EdgeId(0))))
    ///     .collect();
    /// let events = session.push_batch(&batch)?;  // same events `push` yields
    /// assert_eq!(events.len(), 3);
    /// assert_eq!(session.stats().arrivals, 3);
    /// # Ok::<(), acmr_core::AcmrError>(())
    /// ```
    pub fn push_batch(&mut self, batch: &[Request]) -> Result<Vec<ArrivalEvent>, AcmrError> {
        let mut events = Vec::new();
        self.push_batch_into(batch, &mut events)?;
        Ok(events)
    }

    /// [`Session::push_batch`] writing into a caller-owned buffer so a
    /// steady-state batch loop allocates no event storage per batch.
    ///
    /// `events` is cleared first; on success it holds one event per
    /// request in `batch`, and on a mid-batch contract violation it
    /// holds the events of the arrivals that were applied before the
    /// violation (the session is poisoned either way).
    pub fn push_batch_into(
        &mut self,
        batch: &[Request],
        events: &mut Vec<ArrivalEvent>,
    ) -> Result<(), AcmrError> {
        events.clear();
        if self.poisoned {
            return Err(AcmrError::SessionPoisoned);
        }
        // Upfront validation: all-or-nothing, and the algorithm sees
        // nothing unless the whole batch is well-formed.
        for request in batch {
            self.validate(request)?;
        }
        events.reserve(batch.len());
        self.accepted.reserve(batch.len());
        self.ever_rejected.reserve(batch.len());
        for request in batch {
            events.push(self.push_validated(request)?);
        }
        debug_assert!(self.audit.is_feasible());
        Ok(())
    }

    fn check_fresh(&self, caller: &str) -> Result<(), AcmrError> {
        if self.stats.arrivals > 0 {
            return Err(AcmrError::InvalidRequest {
                reason: format!(
                    "{caller} requires a fresh session, but {} arrivals were already pushed",
                    self.stats.arrivals
                ),
            });
        }
        Ok(())
    }

    fn check_fresh_for(&self, inst: &AdmissionInstance) -> Result<(), AcmrError> {
        self.check_fresh("run_trace")?;
        let same_capacities = inst.capacities.len() == self.audit.num_edges()
            && inst
                .capacities
                .iter()
                .enumerate()
                .all(|(i, &c)| self.audit.capacity(acmr_graph::EdgeId(i as u32)) == c);
        if !same_capacities {
            return Err(AcmrError::InvalidRequest {
                reason: "instance capacities do not match the session's".to_string(),
            });
        }
        Ok(())
    }

    /// Drive a whole instance through [`Session::push`] and summarize.
    ///
    /// Requires a **fresh** session (no arrivals pushed yet) whose
    /// capacities match the instance's exactly; its arrival order is
    /// replayed verbatim. This is the convenience the batch runners
    /// and the CLI use.
    pub fn run_trace(&mut self, inst: &AdmissionInstance) -> Result<RunReport, AcmrError> {
        self.check_fresh_for(inst)?;
        for request in &inst.requests {
            self.push(request)?;
        }
        Ok(self.report())
    }

    /// [`Session::run_trace`] through the batch path: the arrival
    /// sequence is cut into chunks of `batch` requests and fed through
    /// [`Session::push_batch_into`] with one reused event buffer.
    /// Produces the identical [`RunReport`] (the decision stream is the
    /// same); `batch` must be at least 1.
    pub fn run_trace_batched(
        &mut self,
        inst: &AdmissionInstance,
        batch: usize,
    ) -> Result<RunReport, AcmrError> {
        if batch == 0 {
            return Err(AcmrError::InvalidRequest {
                reason: "batch size must be at least 1".to_string(),
            });
        }
        self.check_fresh_for(inst)?;
        let mut events = Vec::new();
        for chunk in inst.requests.chunks(batch) {
            self.push_batch_into(chunk, &mut events)?;
        }
        Ok(self.report())
    }

    /// Drive an arrival stream of unknown (unbounded) length through
    /// [`Session::push`] and summarize — the streaming twin of
    /// [`Session::run_trace`]: this layer buffers only the in-flight
    /// request, never the instance. Memory is therefore dominated by
    /// the referee's audit state (live footprints + per-arrival
    /// bookkeeping bytes), a small fraction of a materialized
    /// instance but still linear in very long streams.
    ///
    /// `arrivals` yields `Result<Request, AcmrError>` so a streaming
    /// parser (e.g. `acmr_workloads::trace::TraceReader`, which
    /// implements exactly this iterator shape) can surface I/O and
    /// parse errors mid-stream; the first error aborts the run and is
    /// returned as-is. Requires a fresh session whose capacities match
    /// the stream's universe (the caller builds the session from the
    /// stream's header — the session cannot see it).
    ///
    /// ```
    /// use acmr_core::{register_core, AlgorithmSpec, Registry, Request, Session};
    /// use acmr_graph::{EdgeId, EdgeSet};
    ///
    /// let mut registry = Registry::new();
    /// register_core(&mut registry);
    /// let spec = AlgorithmSpec::parse("aag-weighted?seed=3")?;
    /// let mut session = Session::from_registry(&registry, &spec, &[1], 0)?;
    ///
    /// // Any fallible iterator of requests works — here an in-memory
    /// // stand-in for a chunked trace reader.
    /// let stream = (0..100).map(|_| Ok(Request::unit(EdgeSet::singleton(EdgeId(0)))));
    /// let report = session.run_stream(stream)?;
    /// assert_eq!(report.requests, 100);
    /// assert!(report.rejected_count >= 99); // capacity 1: at most one held
    /// # Ok::<(), acmr_core::AcmrError>(())
    /// ```
    pub fn run_stream<I>(&mut self, arrivals: I) -> Result<RunReport, AcmrError>
    where
        I: IntoIterator<Item = Result<Request, AcmrError>>,
    {
        self.check_fresh("run_stream")?;
        for request in arrivals {
            self.push(&request?)?;
        }
        Ok(self.report())
    }

    /// [`Session::run_stream`] through the batch path: arrivals are
    /// buffered into chunks of `batch` requests and fed through
    /// [`Session::push_batch_into`] with one reused request buffer and
    /// one reused event buffer — this layer buffers `O(batch)` of the
    /// stream, and the decision stream is identical (the differential
    /// suite pins streamed ≡ batched for every registered algorithm).
    /// `batch` must be at least 1.
    ///
    /// A source error (I/O, parse) aborts before the partially filled
    /// chunk is shown to the algorithm — arrivals already fed in
    /// complete chunks stay applied, exactly as if the stream had been
    /// pushed arrival by arrival up to the last complete chunk.
    pub fn run_stream_batched<I>(
        &mut self,
        arrivals: I,
        batch: usize,
    ) -> Result<RunReport, AcmrError>
    where
        I: IntoIterator<Item = Result<Request, AcmrError>>,
    {
        if batch == 0 {
            return Err(AcmrError::InvalidRequest {
                reason: "batch size must be at least 1".to_string(),
            });
        }
        self.check_fresh("run_stream_batched")?;
        let mut chunk: Vec<Request> = Vec::with_capacity(batch);
        let mut events = Vec::new();
        for request in arrivals {
            chunk.push(request?);
            if chunk.len() == batch {
                self.push_batch_into(&chunk, &mut events)?;
                chunk.clear();
            }
        }
        if !chunk.is_empty() {
            self.push_batch_into(&chunk, &mut events)?;
        }
        Ok(self.report())
    }

    /// Snapshot the session as a structured [`RunReport`].
    pub fn report(&self) -> RunReport {
        RunReport {
            algorithm: self
                .spec
                .clone()
                .unwrap_or_else(|| self.alg.name().to_string()),
            algorithm_name: self.alg.name().to_string(),
            seed: self.seed,
            edges: self.audit.num_edges(),
            max_capacity: (0..self.audit.num_edges())
                .map(|i| self.audit.capacity(acmr_graph::EdgeId(i as u32)))
                .max()
                .unwrap_or(0),
            requests: self.stats.arrivals,
            accepted_count: self.stats.currently_accepted,
            rejected_count: self.stats.rejected_count,
            rejected_cost: self.stats.rejected_cost,
            preemptions: self.stats.preemptions,
            buyback_paid: self.stats.buyback_paid,
            net_objective: self.stats.rejected_cost + self.stats.buyback_paid,
            offered_cost: self.stats.offered_cost,
            opt: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::Outcome;
    use crate::registry::{register_core, Registry};
    use acmr_graph::{EdgeId, EdgeSet};

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    /// Accepts everything, capacity be damned.
    struct AcceptAll;
    impl OnlineAdmission for AcceptAll {
        fn name(&self) -> &'static str {
            "accept-all"
        }
        fn on_request(&mut self, _id: RequestId, _r: &Request) -> Outcome {
            Outcome::accept()
        }
    }

    /// Preempts a request that was never accepted.
    struct PhantomPreempt;
    impl OnlineAdmission for PhantomPreempt {
        fn name(&self) -> &'static str {
            "phantom"
        }
        fn on_request(&mut self, id: RequestId, _r: &Request) -> Outcome {
            if id.0 == 0 {
                Outcome::reject()
            } else {
                Outcome {
                    accepted: false,
                    preempted: vec![RequestId(0)],
                }
            }
        }
    }

    #[test]
    fn streaming_stats_accumulate() {
        let mut reg = Registry::new();
        register_core(&mut reg);
        let caps = vec![1u32];
        let spec = AlgorithmSpec::parse("aag-weighted?seed=4").unwrap();
        let mut session = Session::from_registry(&reg, &spec, &caps, 0).unwrap();
        assert_eq!(session.stats().arrivals, 0);
        for _ in 0..5 {
            let ev = session.push(&Request::new(fp(&[0]), 2.0)).unwrap();
            assert_eq!(ev.cost, 2.0);
            assert!(ev.total_rejected_cost <= session.stats().rejected_cost + 1e-12);
        }
        let stats = session.stats().clone();
        assert_eq!(stats.arrivals, 5);
        assert_eq!(stats.offered_cost, 10.0);
        // Capacity 1: at most one live acceptance.
        assert!(stats.currently_accepted <= 1);
        // Every arrival is either still accepted or was rejected
        // (immediately or by preemption) exactly once.
        assert_eq!(stats.rejected_count + stats.currently_accepted, 5);
        let report = session.report();
        assert_eq!(report.algorithm, "aag-weighted?seed=4");
        assert_eq!(report.seed, Some(4));
        assert_eq!(report.requests, 5);
    }

    /// Always upgrades: preempts whatever it holds, accepts the
    /// newcomer. Advertises a buyback factor so the session bills it.
    struct UpgradeAlways {
        held: Option<RequestId>,
        factor: f64,
    }
    impl OnlineAdmission for UpgradeAlways {
        fn name(&self) -> &'static str {
            "upgrade-always"
        }
        fn on_request(&mut self, id: RequestId, _r: &Request) -> Outcome {
            let preempted = self.held.take().into_iter().collect();
            self.held = Some(id);
            Outcome {
                accepted: true,
                preempted,
            }
        }
        fn buyback_factor(&self) -> f64 {
            self.factor
        }
    }

    #[test]
    fn buyback_factor_is_adopted_and_charged_per_preemption() {
        let caps = vec![1u32];
        let alg = UpgradeAlways {
            held: None,
            factor: 0.5,
        };
        let mut session = Session::new(alg, &caps);
        assert_eq!(session.buyback_factor(), 0.5);
        let costs = [1.0, 2.0, 4.0];
        for &c in &costs {
            session.push(&Request::new(fp(&[0]), c)).unwrap();
        }
        // Arrivals 1 and 2 each preempted the previous holder, so the
        // charge is 0.5 × (1.0 + 2.0).
        let report = session.report();
        assert_eq!(report.preemptions, 2);
        assert_eq!(report.buyback_paid, 1.5);
        assert_eq!(report.rejected_cost, 3.0);
        assert_eq!(report.net_objective, 4.5);
        assert_eq!(session.stats().buyback_paid, 1.5);
    }

    #[test]
    fn buyback_factor_override_bills_free_preemption_algorithms() {
        let caps = vec![1u32];
        let alg = UpgradeAlways {
            held: None,
            factor: 0.0,
        };
        let mut session = Session::new(alg, &caps).with_buyback_factor(2.0).unwrap();
        assert_eq!(session.buyback_factor(), 2.0);
        session.push(&Request::new(fp(&[0]), 1.0)).unwrap();
        session.push(&Request::new(fp(&[0]), 3.0)).unwrap();
        let report = session.report();
        assert_eq!(report.buyback_paid, 2.0);
        assert_eq!(report.net_objective, 1.0 + 2.0);

        // Bad factors are typed errors; so is setting one mid-stream.
        let alg = UpgradeAlways {
            held: None,
            factor: 0.0,
        };
        assert!(Session::new(alg, &caps).with_buyback_factor(-1.0).is_err());
        let alg = UpgradeAlways {
            held: None,
            factor: 0.0,
        };
        assert!(Session::new(alg, &caps)
            .with_buyback_factor(f64::NAN)
            .is_err());
        let alg = UpgradeAlways {
            held: None,
            factor: 0.0,
        };
        let mut started = Session::new(alg, &caps);
        started.push(&Request::new(fp(&[0]), 1.0)).unwrap();
        assert!(started.with_buyback_factor(1.0).is_err());
    }

    #[test]
    fn free_preemption_reports_zero_buyback() {
        let mut reg = Registry::new();
        register_core(&mut reg);
        let spec = AlgorithmSpec::parse("aag-weighted?seed=4").unwrap();
        let mut session = Session::from_registry(&reg, &spec, &[1], 0).unwrap();
        for _ in 0..6 {
            session.push(&Request::new(fp(&[0]), 2.0)).unwrap();
        }
        let report = session.report();
        assert_eq!(report.buyback_paid, 0.0);
        assert_eq!(report.net_objective, report.rejected_cost);
    }

    #[test]
    fn capacity_violation_poisons_session() {
        let caps = vec![1u32];
        let mut session = Session::new(AcceptAll, &caps);
        assert!(session.push(&Request::unit(fp(&[0]))).unwrap().accepted);
        let err = session.push(&Request::unit(fp(&[0]))).unwrap_err();
        assert!(err.to_string().contains("violates a capacity"), "{err}");
        assert!(session.is_poisoned());
        assert_eq!(
            session.push(&Request::unit(fp(&[0]))),
            Err(AcmrError::SessionPoisoned)
        );
    }

    #[test]
    fn phantom_preemption_is_reported() {
        let caps = vec![1u32];
        let mut session = Session::new(PhantomPreempt, &caps);
        session.push(&Request::unit(fp(&[0]))).unwrap();
        let err = session.push(&Request::unit(fp(&[0]))).unwrap_err();
        assert!(err.to_string().contains("not currently accepted"), "{err}");
    }

    #[test]
    fn out_of_range_footprint_is_rejected_without_poisoning() {
        let caps = vec![1u32];
        let mut session = Session::new(AcceptAll, &caps);
        let err = session.push(&Request::unit(fp(&[7]))).unwrap_err();
        assert!(matches!(err, AcmrError::InvalidRequest { .. }));
        assert!(!session.is_poisoned());
        assert!(session.push(&Request::unit(fp(&[0]))).unwrap().accepted);
    }

    #[test]
    fn run_trace_matches_incremental_pushes() {
        let mut inst = AdmissionInstance::from_capacities(vec![1, 1]);
        inst.push(Request::new(fp(&[0]), 1.0));
        inst.push(Request::new(fp(&[0, 1]), 5.0));
        inst.push(Request::new(fp(&[1]), 2.0));

        let mut reg = Registry::new();
        register_core(&mut reg);
        let spec = AlgorithmSpec::parse("aag-weighted?seed=11").unwrap();
        let report = Session::from_registry(&reg, &spec, &inst.capacities, 0)
            .unwrap()
            .run_trace(&inst)
            .unwrap();

        let mut session = Session::from_registry(&reg, &spec, &inst.capacities, 0).unwrap();
        for r in &inst.requests {
            session.push(r).unwrap();
        }
        assert_eq!(session.report(), report);
        assert_eq!(report.requests, 3);
    }

    #[test]
    fn run_trace_validates_capacity_match() {
        let mut reg = Registry::new();
        register_core(&mut reg);
        let spec = AlgorithmSpec::bare("aag-weighted");
        let caps = vec![1u32];
        let mut session = Session::from_registry(&reg, &spec, &caps, 0).unwrap();
        let other = AdmissionInstance::from_capacities(vec![1, 1]);
        assert!(matches!(
            session.run_trace(&other),
            Err(AcmrError::InvalidRequest { .. })
        ));
        // Same length, different values: also rejected — the audit
        // would otherwise silently use the session's capacities.
        let mut session = Session::from_registry(&reg, &spec, &[2], 0).unwrap();
        let other = AdmissionInstance::from_capacities(vec![1]);
        assert!(matches!(
            session.run_trace(&other),
            Err(AcmrError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn push_batch_matches_streaming_pushes() {
        let mut reg = Registry::new();
        register_core(&mut reg);
        let spec = AlgorithmSpec::parse("aag-weighted?seed=7").unwrap();
        let caps = vec![2u32, 1, 2];
        let requests: Vec<Request> = (0..12)
            .map(|i| {
                let fp = match i % 3 {
                    0 => fp(&[0]),
                    1 => fp(&[0, 1]),
                    _ => fp(&[1, 2]),
                };
                Request::new(fp, 1.0 + (i % 4) as f64)
            })
            .collect();

        let mut streaming = Session::from_registry(&reg, &spec, &caps, 0).unwrap();
        let expected: Vec<ArrivalEvent> = requests
            .iter()
            .map(|r| streaming.push(r).unwrap())
            .collect();

        for batch_size in [1usize, 2, 5, 12, 100] {
            let mut batched = Session::from_registry(&reg, &spec, &caps, 0).unwrap();
            let mut events = Vec::new();
            let mut buf = Vec::new();
            for chunk in requests.chunks(batch_size) {
                batched.push_batch_into(chunk, &mut buf).unwrap();
                events.extend(buf.iter().cloned());
            }
            assert_eq!(events, expected, "batch size {batch_size}");
            assert_eq!(batched.report(), streaming.report());
        }
    }

    #[test]
    fn push_batch_returns_owned_events() {
        let caps = vec![4u32];
        let mut session = Session::new(AcceptAll, &caps);
        let batch = vec![Request::unit(fp(&[0])), Request::unit(fp(&[0]))];
        let events = session.push_batch(&batch).unwrap();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.accepted));
        assert_eq!(session.stats().arrivals, 2);
        // Empty batch: no-op, no events.
        assert!(session.push_batch(&[]).unwrap().is_empty());
        assert_eq!(session.stats().arrivals, 2);
    }

    #[test]
    fn push_batch_validates_upfront_without_partial_application() {
        let caps = vec![2u32];
        let mut session = Session::new(AcceptAll, &caps);
        // Second request is out of range: the whole batch is rejected
        // and the first request was never shown to the algorithm.
        let batch = vec![Request::unit(fp(&[0])), Request::unit(fp(&[9]))];
        let err = session.push_batch(&batch).unwrap_err();
        assert!(matches!(err, AcmrError::InvalidRequest { .. }));
        assert!(!session.is_poisoned());
        assert_eq!(session.stats().arrivals, 0);
        // The session is still usable.
        assert_eq!(session.push_batch(&batch[..1]).unwrap().len(), 1);
    }

    #[test]
    fn push_batch_keeps_prefix_events_on_mid_batch_violation() {
        let caps = vec![1u32];
        let mut session = Session::new(AcceptAll, &caps);
        let batch = vec![Request::unit(fp(&[0])), Request::unit(fp(&[0]))];
        let mut events = Vec::new();
        let err = session.push_batch_into(&batch, &mut events).unwrap_err();
        assert!(err.to_string().contains("violates a capacity"), "{err}");
        // The first arrival was applied before the violation.
        assert_eq!(events.len(), 1);
        assert!(events[0].accepted);
        assert_eq!(session.stats().arrivals, 1);
        assert!(session.is_poisoned());
        assert_eq!(session.push_batch(&batch), Err(AcmrError::SessionPoisoned));
    }

    #[test]
    fn run_trace_batched_matches_run_trace() {
        let mut inst = AdmissionInstance::from_capacities(vec![1, 1]);
        inst.push(Request::new(fp(&[0]), 1.0));
        inst.push(Request::new(fp(&[0, 1]), 5.0));
        inst.push(Request::new(fp(&[1]), 2.0));
        inst.push(Request::new(fp(&[0]), 3.0));

        let mut reg = Registry::new();
        register_core(&mut reg);
        let spec = AlgorithmSpec::parse("aag-weighted?seed=3").unwrap();
        let reference = Session::from_registry(&reg, &spec, &inst.capacities, 0)
            .unwrap()
            .run_trace(&inst)
            .unwrap();
        for batch in [1usize, 2, 3, 64] {
            let report = Session::from_registry(&reg, &spec, &inst.capacities, 0)
                .unwrap()
                .run_trace_batched(&inst, batch)
                .unwrap();
            assert_eq!(report, reference, "batch {batch}");
        }
        // Batch 0 is a usage error, reported before any state changes.
        let err = Session::from_registry(&reg, &spec, &inst.capacities, 0)
            .unwrap()
            .run_trace_batched(&inst, 0)
            .unwrap_err();
        assert!(err.to_string().contains("batch size"), "{err}");
    }

    #[test]
    fn run_stream_matches_run_trace() {
        let mut inst = AdmissionInstance::from_capacities(vec![1, 1]);
        inst.push(Request::new(fp(&[0]), 1.0));
        inst.push(Request::new(fp(&[0, 1]), 5.0));
        inst.push(Request::new(fp(&[1]), 2.0));
        inst.push(Request::new(fp(&[0]), 3.0));

        let mut reg = Registry::new();
        register_core(&mut reg);
        let spec = AlgorithmSpec::parse("aag-weighted?seed=6").unwrap();
        let reference = Session::from_registry(&reg, &spec, &inst.capacities, 0)
            .unwrap()
            .run_trace(&inst)
            .unwrap();

        let streamed = Session::from_registry(&reg, &spec, &inst.capacities, 0)
            .unwrap()
            .run_stream(inst.requests.iter().cloned().map(Ok))
            .unwrap();
        assert_eq!(streamed, reference);

        for batch in [1usize, 2, 3, 64] {
            let batched = Session::from_registry(&reg, &spec, &inst.capacities, 0)
                .unwrap()
                .run_stream_batched(inst.requests.iter().cloned().map(Ok), batch)
                .unwrap();
            assert_eq!(batched, reference, "batch {batch}");
        }
        let err = Session::from_registry(&reg, &spec, &inst.capacities, 0)
            .unwrap()
            .run_stream_batched(inst.requests.iter().cloned().map(Ok), 0)
            .unwrap_err();
        assert!(err.to_string().contains("batch size"), "{err}");
    }

    #[test]
    fn run_stream_propagates_source_errors_after_applied_prefix() {
        let caps = vec![4u32];
        let boom = || AcmrError::TraceParse {
            line: 9,
            message: "bad cost".into(),
        };
        // Two good arrivals, then a source failure.
        let stream = |n: usize| {
            let boom = boom();
            (0..n)
                .map(|_| Ok(Request::unit(fp(&[0]))))
                .chain(std::iter::once(Err(boom)))
                .collect::<Vec<_>>()
        };
        let mut session = Session::new(AcceptAll, &caps);
        let err = session.run_stream(stream(2)).unwrap_err();
        assert_eq!(err, boom());
        assert_eq!(session.stats().arrivals, 2, "prefix stays applied");
        assert!(!session.is_poisoned(), "source error is not a violation");

        // Batched: the error arrives mid-chunk; complete chunks stay
        // applied, the partial chunk is never shown to the algorithm.
        let mut session = Session::new(AcceptAll, &caps);
        let err = session.run_stream_batched(stream(3), 2).unwrap_err();
        assert_eq!(err, boom());
        assert_eq!(session.stats().arrivals, 2, "only the complete chunk");
    }

    #[test]
    fn run_stream_requires_a_fresh_session() {
        let caps = vec![1u32];
        let mut session = Session::new(AcceptAll, &caps);
        session.push(&Request::unit(fp(&[0]))).unwrap();
        let err = session.run_stream(std::iter::empty()).unwrap_err();
        assert!(err.to_string().contains("fresh session"), "{err}");
        let err = session
            .run_stream_batched(std::iter::empty(), 8)
            .unwrap_err();
        assert!(err.to_string().contains("fresh session"), "{err}");
    }

    #[test]
    fn run_trace_requires_a_fresh_session() {
        let mut reg = Registry::new();
        register_core(&mut reg);
        let spec = AlgorithmSpec::bare("aag-weighted");
        let mut inst = AdmissionInstance::from_capacities(vec![2]);
        inst.push(Request::unit(fp(&[0])));
        let mut session = Session::from_registry(&reg, &spec, &inst.capacities, 0).unwrap();
        session.run_trace(&inst).unwrap();
        // A second replay would silently merge two streams; rejected.
        let err = session.run_trace(&inst).unwrap_err();
        assert!(err.to_string().contains("fresh session"), "{err}");
        // Likewise after any manual push.
        let mut session = Session::from_registry(&reg, &spec, &inst.capacities, 0).unwrap();
        session.push(&Request::unit(fp(&[0]))).unwrap();
        assert!(session.run_trace(&inst).is_err());
    }
}
