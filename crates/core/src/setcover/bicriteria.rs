//! §5 — the deterministic bicriteria algorithm for online set cover
//! with repetitions.
//!
//! For a fixed `ε > 0` the algorithm covers every element at least
//! `(1−ε)k` times after its `k`-th arrival, buying
//! `O(log m · log n) · OPT_k` sets, where `OPT_k` is the optimal cost of
//! a full `k`-times cover (Theorem 7). Unit set costs, as in the paper.
//!
//! Machinery:
//!
//! * every set `S` holds a weight `w_S`, initially `1/(2m)`; an
//!   element's weight is `w_j = Σ_{S ∈ S_j} w_S`;
//! * potential `Φ = Σ_j n^{2(w_j − cover_j)}`, where `cover_j` counts
//!   bought sets containing `j` — at most `n²` at all times (Lemma 6);
//! * on the `k`-th arrival of `j`, while `cover_j < (1−ε)k`:
//!   (a) multiply `w_S` by `(1 + 1/2k)` for every unbought `S ∈ S_j`;
//!   (b) buy every set whose weight reached 1;
//!   (c) buy at most `⌈2·ln n⌉` sets from `S_j`, chosen by the method
//!   of conditional probabilities so that `Φ` does not exceed its value
//!   before (a).
//!
//! Step (c) is derandomized exactly as the paper prescribes
//! ("greedily add sets to C one by one, making sure that the potential
//! function will decrease as much as possible"): buying `S` multiplies
//! the contribution of each `j' ∈ S` by `n^{−2}`, so the greedy picks
//! the set with the largest current contribution mass. Lemma 6
//! guarantees some ≤ `⌈2 ln n⌉`-pick sequence restores `Φ`; if greedy
//! ever fell short the loop keeps buying (counted in
//! [`BicriteriaCover::fallback_picks`], asserted zero in tests).

use crate::setcover::types::{SetId, SetSystem};
use crate::setcover::OnlineSetCover;

/// Deterministic bicriteria online set cover (paper §5).
pub struct BicriteriaCover {
    system: SetSystem,
    epsilon: f64,
    /// Weighted generalization (the paper: "easily generalized for the
    /// weighted case using techniques from \[2\]"): weight growth and
    /// the step-(c) greedy become cost-aware.
    cost_aware: bool,
    /// Per-set weight `w_S`.
    w: Vec<f64>,
    in_cover: Vec<bool>,
    bought_order: Vec<SetId>,
    /// Per-element `w_j = Σ_{S ∋ j} w_S`, maintained incrementally.
    w_elem: Vec<f64>,
    /// Per-element `cover_j = |S_j ∩ C|`.
    cover: Vec<u32>,
    /// Per-element arrival count `k_j`.
    arrivals: Vec<u32>,
    /// `⌈2 ln n⌉` — the step-(c) pick budget.
    pick_budget: usize,
    ln_n: f64,
    augmentations: u64,
    fallback_picks: u64,
}

impl BicriteriaCover {
    /// New algorithm over `system` with slack `ε ∈ (0, 1)` (unit-cost
    /// setting, as in the paper's §5).
    pub fn new(system: SetSystem, epsilon: f64) -> Self {
        Self::build(system, epsilon, false)
    }

    /// The weighted generalization the paper sketches: set weights grow
    /// inversely to cost (`w_S ← w_S·(1 + 1/(2k·c_S))`) and the
    /// step-(c) greedy maximizes covered potential **per unit cost**,
    /// so cheap sets are preferred. Coverage guarantees are identical;
    /// the cost bound carries the same `O(log m log n)` shape via the
    /// techniques of \[2\] (Alon et al., STOC 2003).
    ///
    /// # Panics
    /// If any set costs less than 1 — the weighted analysis normalizes
    /// costs to `≥ 1` (as the admission-control side of the paper does
    /// in §2); rescale the instance first.
    pub fn new_weighted(system: SetSystem, epsilon: f64) -> Self {
        assert!(
            (0..system.num_sets()).all(|i| system.cost(SetId(i as u32)) >= 1.0),
            "weighted bicriteria requires costs ≥ 1 (normalize first)"
        );
        Self::build(system, epsilon, true)
    }

    fn build(system: SetSystem, epsilon: f64, cost_aware: bool) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "ε must be in (0,1), got {epsilon}"
        );
        let m = system.num_sets().max(1);
        let n = system.num_elements().max(2);
        let ln_n = (n as f64).ln();
        let w0 = 1.0 / (2.0 * m as f64);
        let w_elem = (0..system.num_elements() as u32)
            .map(|j| system.degree(j) as f64 * w0)
            .collect();
        BicriteriaCover {
            epsilon,
            cost_aware,
            w: vec![w0; system.num_sets()],
            in_cover: vec![false; system.num_sets()],
            bought_order: Vec::new(),
            w_elem,
            cover: vec![0; system.num_elements()],
            arrivals: vec![0; system.num_elements()],
            pick_budget: (2.0 * ln_n).ceil().max(1.0) as usize,
            ln_n,
            augmentations: 0,
            fallback_picks: 0,
            system,
        }
    }

    /// The slack parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Sets bought so far, in purchase order.
    pub fn bought(&self) -> &[SetId] {
        &self.bought_order
    }

    /// Cost so far: sum of bought set costs (= number of bought sets
    /// in the unit-cost setting).
    pub fn total_cost(&self) -> f64 {
        self.system.total_cost(&self.bought_order)
    }

    /// Coverage count of an element.
    pub fn coverage(&self, element: u32) -> u32 {
        self.cover[element as usize]
    }

    /// Weight-augmentation count (Lemma 5 bounds it by `O(OPT·log m)`).
    pub fn augmentations(&self) -> u64 {
        self.augmentations
    }

    /// Step-(c) picks beyond the `⌈2 ln n⌉` budget (Lemma 6 says a
    /// within-budget sequence always exists; this counts greedy's
    /// shortfalls — expected 0).
    pub fn fallback_picks(&self) -> u64 {
        self.fallback_picks
    }

    /// The potential `Φ = Σ_j n^{2(w_j − cover_j)}` (Lemma 6 invariant:
    /// never exceeds `n²`, up to float slack).
    pub fn potential(&self) -> f64 {
        (0..self.system.num_elements())
            .map(|j| self.elem_contribution(j))
            .sum()
    }

    /// `n^{2(w_j − cover_j)}` for one element.
    fn elem_contribution(&self, j: usize) -> f64 {
        let exponent = 2.0 * (self.w_elem[j] - self.cover[j] as f64);
        (exponent * self.ln_n).exp()
    }

    /// The underlying system.
    pub fn system(&self) -> &SetSystem {
        &self.system
    }

    fn buy(&mut self, s: SetId) {
        debug_assert!(!self.in_cover[s.index()]);
        self.in_cover[s.index()] = true;
        self.bought_order.push(s);
        for &j in self.system.elements_of(s) {
            self.cover[j as usize] += 1;
        }
    }

    /// One weight augmentation for element `j` on its `k`-th arrival
    /// (steps (a)–(c)).
    fn augment(&mut self, j: u32, k: u32) {
        self.augmentations += 1;
        let phi_start = self.potential();

        // (a) multiply unbought weights of S_j by (1 + 1/2k) — or, in
        // the weighted generalization, by (1 + 1/(2k·c_S)) so cheap
        // sets approach the buy threshold faster.
        let candidates: Vec<SetId> = self
            .system
            .sets_containing(j)
            .iter()
            .filter(|s| !self.in_cover[s.index()])
            .copied()
            .collect();
        for &s in &candidates {
            let rate = if self.cost_aware {
                2.0 * k as f64 * self.system.cost(s)
            } else {
                2.0 * k as f64
            };
            let delta = self.w[s.index()] / rate;
            self.w[s.index()] += delta;
            for &el in self.system.elements_of(s) {
                self.w_elem[el as usize] += delta;
            }
        }

        // (b) buy sets whose weight reached 1.
        for &s in &candidates {
            if self.w[s.index()] >= 1.0 && !self.in_cover[s.index()] {
                self.buy(s);
            }
        }

        // (c) conditional-probabilities picks: buying S multiplies each
        // j' ∈ S contribution by n^{-2}, i.e. removes
        // (1 − n^{-2})·contribution from Φ — greedily take the set with
        // the largest covered contribution mass until Φ ≤ Φ_start or the
        // budget runs out (then fall back, counting).
        let mut picks = 0usize;
        while self.potential() > phi_start {
            let best = self
                .system
                .sets_containing(j)
                .iter()
                .filter(|s| !self.in_cover[s.index()])
                .copied()
                .max_by(|a, b| {
                    // Weighted: potential removed per unit cost.
                    let ma = self.contribution_mass(*a)
                        / if self.cost_aware {
                            self.system.cost(*a)
                        } else {
                            1.0
                        };
                    let mb = self.contribution_mass(*b)
                        / if self.cost_aware {
                            self.system.cost(*b)
                        } else {
                            1.0
                        };
                    ma.partial_cmp(&mb).unwrap()
                });
            let Some(s) = best else {
                break; // S_j exhausted: cover_j = deg(j) ≥ k, done.
            };
            self.buy(s);
            picks += 1;
            if picks > self.pick_budget {
                self.fallback_picks += 1;
            }
        }
    }

    /// `Σ_{j' ∈ S} n^{2(w_{j'} − cover_{j'})}` — what buying `S` scales
    /// down by `n^{-2}`.
    fn contribution_mass(&self, s: SetId) -> f64 {
        self.system
            .elements_of(s)
            .iter()
            .map(|&j| self.elem_contribution(j as usize))
            .sum()
    }
}

impl OnlineSetCover for BicriteriaCover {
    fn name(&self) -> &'static str {
        "aag-bicriteria"
    }

    fn on_arrival(&mut self, element: u32) -> Vec<SetId> {
        assert!(
            (element as usize) < self.system.num_elements(),
            "unknown element"
        );
        self.arrivals[element as usize] += 1;
        let k = self.arrivals[element as usize];
        assert!(
            k as usize <= self.system.degree(element),
            "element {element} arrived more times than its degree — uncoverable"
        );
        let before = self.bought_order.len();
        let target = (1.0 - self.epsilon) * k as f64;
        while (self.cover[element as usize] as f64) < target {
            self.augment(element, k);
        }
        self.bought_order[before..].to_vec()
    }

    fn coverage_slack(&self) -> f64 {
        1.0 - self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SetSystem {
        SetSystem::unit(
            6,
            vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![0, 5],
                vec![1, 4],
                vec![0, 1, 2, 3, 4, 5],
            ],
        )
    }

    #[test]
    fn covers_on_first_arrival() {
        let mut alg = BicriteriaCover::new(sys(), 0.5);
        let bought = alg.on_arrival(0);
        // (1-ε)k = 0.5 ⇒ needs cover ≥ 1 (integer coverage of 0.5).
        assert!(!bought.is_empty());
        assert!(alg.coverage(0) >= 1);
    }

    #[test]
    fn bicriteria_coverage_invariant() {
        // After every arrival: cover_j ≥ (1-ε)·k_j for all j.
        let eps = 0.25;
        let mut alg = BicriteriaCover::new(sys(), eps);
        let arrivals = [0u32, 1, 2, 3, 0, 4, 5, 2, 0, 3];
        let mut k = [0u32; 6];
        for &j in &arrivals {
            if (k[j as usize] + 1) as usize > alg.system().degree(j) {
                continue;
            }
            k[j as usize] += 1;
            alg.on_arrival(j);
            for (el, &kk) in k.iter().enumerate() {
                let need = (1.0 - eps) * kk as f64;
                assert!(
                    alg.coverage(el as u32) as f64 >= need,
                    "element {el}: cover {} < (1-ε)k = {need}",
                    alg.coverage(el as u32)
                );
            }
        }
    }

    #[test]
    fn potential_never_exceeds_n_squared() {
        let mut alg = BicriteriaCover::new(sys(), 0.3);
        let n2 = (6.0f64).powi(2);
        assert!(alg.potential() <= n2 + 1e-6);
        for &j in &[0u32, 1, 2, 3, 4, 5, 0, 2, 4] {
            if (alg.arrivals[j as usize] + 1) as usize > alg.system().degree(j) {
                continue;
            }
            alg.on_arrival(j);
            assert!(
                alg.potential() <= n2 + 1e-6,
                "Φ = {} > n² after arrival of {j}",
                alg.potential()
            );
        }
    }

    #[test]
    fn greedy_never_needs_fallback_here() {
        let mut alg = BicriteriaCover::new(sys(), 0.25);
        for &j in &[0u32, 1, 2, 3, 4, 5, 0, 1, 2, 3] {
            if (alg.arrivals[j as usize] + 1) as usize > alg.system().degree(j) {
                continue;
            }
            alg.on_arrival(j);
        }
        assert_eq!(alg.fallback_picks(), 0);
    }

    #[test]
    fn repeated_arrivals_accumulate_distinct_sets() {
        // Element 0 lives in sets {0, 3, 5}: degree 3.
        let mut alg = BicriteriaCover::new(sys(), 0.1);
        alg.on_arrival(0);
        alg.on_arrival(0);
        alg.on_arrival(0);
        // (1-0.1)·3 = 2.7 ⇒ at least 3 distinct covering sets.
        assert!(alg.coverage(0) >= 3);
        // Distinctness is structural: cover counts bought sets once.
        let covering = alg
            .bought()
            .iter()
            .filter(|s| alg.system().elements_of(**s).contains(&0))
            .count();
        assert_eq!(covering as u32, alg.coverage(0));
    }

    #[test]
    fn cost_reasonable_vs_opt_on_star_system() {
        // Universal set present: OPT for one round of all elements = 1.
        let mut alg = BicriteriaCover::new(sys(), 0.5);
        for j in 0..6u32 {
            alg.on_arrival(j);
        }
        // O(log m log n) with tiny constants here; certainly ≤ m.
        assert!(alg.total_cost() <= 6.0);
        assert!(alg.total_cost() >= 1.0);
    }

    #[test]
    fn weights_bounded_by_1_5() {
        // Lemma 5's proof uses w_S ≤ 1.5: weights only grow while < 1
        // and by ≤ ×1.5.
        let mut alg = BicriteriaCover::new(sys(), 0.25);
        for &j in &[0u32, 1, 2, 3, 4, 5, 0, 1] {
            if (alg.arrivals[j as usize] + 1) as usize > alg.system().degree(j) {
                continue;
            }
            alg.on_arrival(j);
            assert!(alg.w.iter().all(|&w| w <= 1.5 + 1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "ε must be in (0,1)")]
    fn bad_epsilon_rejected() {
        BicriteriaCover::new(sys(), 1.5);
    }

    #[test]
    fn weighted_variant_prefers_cheap_sets() {
        // Element 0 coverable by a cheap singleton (cost 1) or an
        // expensive big set (cost 50).
        let system = SetSystem::new(2, vec![vec![0], vec![0, 1], vec![1]], vec![1.0, 50.0, 1.0]);
        let mut alg = BicriteriaCover::new_weighted(system, 0.25);
        alg.on_arrival(0);
        alg.on_arrival(1);
        // Coverage contract still audited.
        assert!(alg.coverage(0) >= 1);
        assert!(alg.coverage(1) >= 1);
        // Cost-aware picks must avoid the 50-cost set here.
        assert!(
            alg.total_cost() <= 2.0 + 1e-9,
            "weighted bicriteria paid {}",
            alg.total_cost()
        );
    }

    #[test]
    fn weighted_variant_keeps_coverage_invariant() {
        let system = SetSystem::new(
            4,
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![0, 3],
                vec![0, 1, 2, 3],
            ],
            vec![3.0, 1.0, 4.0, 1.0, 9.0],
        );
        let eps = 0.3;
        let mut alg = BicriteriaCover::new_weighted(system.clone(), eps);
        let mut k = [0u32; 4];
        for &j in &[0u32, 1, 2, 3, 0, 2, 1, 3] {
            if (k[j as usize] + 1) as usize > system.degree(j) {
                continue;
            }
            k[j as usize] += 1;
            alg.on_arrival(j);
            for (el, &kk) in k.iter().enumerate() {
                assert!(
                    alg.coverage(el as u32) as f64 >= (1.0 - eps) * kk as f64,
                    "element {el} under-covered"
                );
            }
        }
        assert_eq!(alg.fallback_picks(), 0);
    }

    #[test]
    fn epsilon_tradeoff_more_slack_fewer_sets() {
        let run = |eps: f64| {
            let mut alg = BicriteriaCover::new(sys(), eps);
            for &j in &[0u32, 1, 2, 3, 4, 5, 0, 1, 2] {
                if (alg.arrivals[j as usize] + 1) as usize > alg.system().degree(j) {
                    continue;
                }
                alg.on_arrival(j);
            }
            alg.total_cost()
        };
        // More slack can only (weakly) reduce the number of sets.
        assert!(run(0.5) <= run(0.05) + 1e-9);
    }
}
