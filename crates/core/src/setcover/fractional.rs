//! Online **fractional** set cover with repetitions.
//!
//! The §5 deterministic algorithm is analyzed through an implicit
//! fractional weight process; this module exposes that process as a
//! standalone solver, in the style of Alon–Awerbuch–Azar–Buchbinder–
//! Naor \[2\] (the paper's reference for the underlying framework):
//! each set holds a fraction `x_S ∈ [0, 1]`, and after the `k`-th
//! arrival of element `j` the fractional covering constraint
//! `Σ_{S ∋ j} x_S ≥ k` must hold (capped by `x_S ≤ 1`, i.e. repetitions
//! must be spread over distinct sets).
//!
//! Cost-aware multiplicative updates: on a violated element, every
//! unsaturated set `S ∋ j` is updated
//! `x_S ← x_S·(1 + 1/(2·c_S·d_j)) + 1/(|S_j|·c_S·d_j)` with
//! `d_j = |S_j|`, the classic increment that is `O(log m)`-competitive
//! against the fractional optimum per unit of demand.
//!
//! Useful for (a) comparing the integral algorithms' cost against the
//! fractional frontier in experiments, and (b) as the starting point
//! for rounding schemes beyond the paper's.

use crate::setcover::types::{SetId, SetSystem};

/// Online fractional set cover with repetitions.
pub struct FractionalCover {
    system: SetSystem,
    x: Vec<f64>,
    demand: Vec<u32>,
    augmentations: u64,
}

impl FractionalCover {
    /// New fractional solver over `system`.
    pub fn new(system: SetSystem) -> Self {
        FractionalCover {
            x: vec![0.0; system.num_sets()],
            demand: vec![0; system.num_elements()],
            augmentations: 0,
            system,
        }
    }

    /// Current fraction bought of set `s`.
    pub fn fraction(&self, s: SetId) -> f64 {
        self.x[s.index()].min(1.0)
    }

    /// Fractional cost `Σ x_S·c_S`.
    pub fn cost(&self) -> f64 {
        (0..self.x.len())
            .map(|i| self.x[i].min(1.0) * self.system.cost(SetId(i as u32)))
            .sum()
    }

    /// Augmentation rounds so far.
    pub fn augmentations(&self) -> u64 {
        self.augmentations
    }

    /// Fractional coverage of `element`: `Σ_{S ∋ j} min(x_S, 1)`.
    pub fn coverage(&self, element: u32) -> f64 {
        self.system
            .sets_containing(element)
            .iter()
            .map(|s| self.x[s.index()].min(1.0))
            .sum()
    }

    /// True iff every element's fractional coverage meets its demand.
    pub fn is_feasible(&self) -> bool {
        (0..self.system.num_elements() as u32)
            .all(|j| self.coverage(j) >= self.demand[j as usize] as f64 - 1e-9)
    }

    /// Process the arrival of `element` (its `k`-th, tracked
    /// internally); augments fractions until coverage ≥ `k`.
    ///
    /// # Panics
    /// If the element arrives more times than its degree (uncoverable).
    pub fn on_arrival(&mut self, element: u32) {
        let j = element as usize;
        assert!(j < self.system.num_elements(), "unknown element");
        self.demand[j] += 1;
        let k = self.demand[j] as f64;
        let sj = self.system.sets_containing(element).to_vec();
        assert!(
            self.demand[j] as usize <= sj.len(),
            "element {element} arrived more times than its degree"
        );
        let d = sj.len() as f64;
        let mut guard = 0u64;
        while self.coverage(element) < k {
            self.augmentations += 1;
            guard += 1;
            for &s in &sj {
                let i = s.index();
                if self.x[i] >= 1.0 {
                    continue; // saturated: repetitions need other sets
                }
                let c = self.system.cost(s);
                self.x[i] = self.x[i] * (1.0 + 1.0 / (2.0 * c * d)) + 1.0 / (d * d * c);
            }
            // Saturation makes progress even for huge costs; the guard
            // is a defensive backstop (cannot fire for finite costs).
            assert!(guard < 1_000_000, "fractional set cover failed to converge");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SetSystem {
        SetSystem::new(
            4,
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![0, 3],
                vec![0, 1, 2, 3],
            ],
            vec![1.0, 1.0, 1.0, 1.0, 2.0],
        )
    }

    #[test]
    fn single_arrival_covers_fractionally() {
        let mut f = FractionalCover::new(sys());
        f.on_arrival(0);
        assert!(f.coverage(0) >= 1.0 - 1e-9);
        assert!(f.is_feasible());
        assert!(f.cost() > 0.0);
    }

    #[test]
    fn repetitions_accumulate_demand() {
        let mut f = FractionalCover::new(sys());
        f.on_arrival(0);
        f.on_arrival(0);
        f.on_arrival(0); // deg(0) = 3
        assert!(f.coverage(0) >= 3.0 - 1e-9);
        // Coverage 3 with x ≤ 1 forces all three sets saturated.
        for s in sys().sets_containing(0) {
            assert!(f.fraction(*s) >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn fractional_cost_at_most_integral() {
        // Fractional frontier ≤ any integral solution: covering all
        // four elements once costs ≤ 2 (the big set).
        let mut f = FractionalCover::new(sys());
        for j in 0..4 {
            f.on_arrival(j);
        }
        assert!(f.is_feasible());
        assert!(f.cost() <= 4.0 + 1e-9, "cost {}", f.cost());
    }

    #[test]
    fn cheap_sets_preferred() {
        // Element 0 coverable by cost-1 sets or the cost-2 set; the
        // cost-aware update grows cheap fractions faster.
        let mut f = FractionalCover::new(sys());
        f.on_arrival(0);
        let cheap = f.fraction(SetId(0)).max(f.fraction(SetId(3)));
        let dear = f.fraction(SetId(4));
        assert!(cheap >= dear - 1e-9, "cheap {cheap} vs dear {dear}");
    }

    #[test]
    #[should_panic(expected = "more times than its degree")]
    fn uncoverable_panics() {
        let system = SetSystem::unit(1, vec![vec![0]]);
        let mut f = FractionalCover::new(system);
        f.on_arrival(0);
        f.on_arrival(0);
    }

    #[test]
    fn monotone_fractions() {
        let mut f = FractionalCover::new(sys());
        let mut prev = [0.0; 5];
        for &j in &[0u32, 1, 2, 3, 0, 1] {
            f.on_arrival(j);
            for (i, p) in prev.iter_mut().enumerate() {
                let cur = f.x[i];
                assert!(cur >= *p - 1e-12);
                *p = cur;
            }
        }
    }
}
