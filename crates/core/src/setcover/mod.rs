//! Online set cover **with repetitions** (paper §§1, 4, 5).
//!
//! Ground set `X` of `n` elements, family `S` of `m` subsets with
//! costs. Elements arrive online, possibly repeatedly; after the `k`-th
//! arrival of element `j` it must be covered by `k` **distinct** sets.
//!
//! * [`reduction`] — §4: solve it through *any* admission-control
//!   algorithm. Randomized: `O(log m log n)`-competitive unweighted,
//!   `O(log²(mn))` weighted.
//! * [`bicriteria`] — §5: deterministic `O(log m log n)`-competitive
//!   algorithm covering each element `(1−ε)k` times.

pub mod bicriteria;
pub mod fractional;
pub mod reduction;
pub mod types;

pub use bicriteria::BicriteriaCover;
pub use fractional::FractionalCover;
pub use reduction::ReductionCover;
pub use types::{SetId, SetSystem};

/// An online set-cover-with-repetitions algorithm.
///
/// The driver announces one element arrival at a time; the algorithm
/// returns the sets it buys *now* (possibly none). Bought sets are
/// permanent. Contract (audited by the harness): after the `k`-th
/// arrival of element `j`, the sets bought so far must include at least
/// `k` distinct sets containing `j` (or `(1−ε)k` for a bicriteria
/// algorithm — see [`OnlineSetCover::coverage_slack`]).
pub trait OnlineSetCover {
    /// Short stable name for tables.
    fn name(&self) -> &'static str;

    /// Process the arrival of `element`; returns newly bought sets.
    fn on_arrival(&mut self, element: u32) -> Vec<SetId>;

    /// The guaranteed coverage fraction (1.0 for exact algorithms,
    /// `1−ε` for the bicriteria algorithm).
    fn coverage_slack(&self) -> f64 {
        1.0
    }
}
