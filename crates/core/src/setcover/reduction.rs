//! §4 — reducing online set cover with repetitions to admission control.
//!
//! Given a set system, build an admission instance with **one edge per
//! element** whose capacity is the element's degree `deg(j) = |S_j|`
//! (so `c ≤ m`). Two phases:
//!
//! * **Phase 1** (at construction): one request per set `S`, with
//!   footprint `{e_j : j ∈ S}` and cost `c_S`. The admission algorithm
//!   can accept them all — edges land exactly at capacity.
//! * **Phase 2** (arrivals): the `k`-th arrival of element `j` emits a
//!   single-edge request on `e_j` with a *protected* (huge) cost. The
//!   edge goes over capacity, forcing the algorithm to preempt phase-1
//!   requests — and **a preempted set-request is a bought set**.
//!
//! After `k` arrivals of `j`, feasibility on `e_j` forces at least `k`
//! of the sets containing `j` to be rejected, i.e. bought: the rejected
//! phase-1 requests always form a valid multicover.
//!
//! The paper notes the footprints need not be simple paths (its
//! concluding remark) — we feed edge subsets directly.
//!
//! **Safety net.** With a randomized admission algorithm the protected
//! phase-2 request could in principle be rejected (the paper argues
//! this never needs to happen; our huge cost makes it measure-zero in
//! practice). If after an arrival the bought sets do not yet cover `j`
//! enough times, the reduction buys the cheapest missing sets directly.
//! The repair counter is exposed and asserted zero in tests of the
//! paper's algorithm; baselines routed through the reduction lean on it
//! by design.

use crate::config::RandConfig;
use crate::instance::{Request, RequestId};
use crate::online::OnlineAdmission;
use crate::randomized::RandomizedAdmission;
use crate::setcover::types::{SetId, SetSystem};
use crate::setcover::OnlineSetCover;
use acmr_graph::{EdgeId, EdgeSet};
use rand::Rng;

/// Online set cover with repetitions via any admission-control
/// algorithm (paper §4).
pub struct ReductionCover<A: OnlineAdmission> {
    system: SetSystem,
    admission: A,
    bought: Vec<bool>,
    bought_order: Vec<SetId>,
    arrival_count: Vec<u32>,
    next_request: u32,
    protected_cost: f64,
    repairs: u64,
}

impl<A: OnlineAdmission> ReductionCover<A> {
    /// Build the reduction; `make` receives the per-edge capacities
    /// (`deg(j)` for element `j`) and returns the admission algorithm.
    /// Phase 1 (the `m` set-requests) runs inside this constructor.
    pub fn new(system: SetSystem, make: impl FnOnce(&[u32]) -> A) -> Self {
        let capacities: Vec<u32> = (0..system.num_elements() as u32)
            .map(|j| system.degree(j) as u32)
            .collect();
        let admission = make(&capacities);
        let total: f64 = (0..system.num_sets())
            .map(|i| system.cost(SetId(i as u32)))
            .sum();
        let protected_cost = (total.max(1.0)) * 1e9;
        let mut red = ReductionCover {
            bought: vec![false; system.num_sets()],
            bought_order: Vec::new(),
            arrival_count: vec![0; system.num_elements()],
            next_request: 0,
            protected_cost,
            repairs: 0,
            system,
            admission,
        };
        // Phase 1: one request per set.
        for i in 0..red.system.num_sets() {
            let sid = SetId(i as u32);
            let fp: EdgeSet = red
                .system
                .elements_of(sid)
                .iter()
                .map(|&j| EdgeId(j))
                .collect();
            let req = Request::new(fp, red.system.cost(sid));
            let id = red.next_id();
            let out = red.admission.on_request(id, &req);
            if !out.accepted {
                red.buy(sid);
            }
            for p in out.preempted {
                red.buy_from_request(p);
            }
        }
        red
    }

    fn next_id(&mut self) -> RequestId {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        id
    }

    /// Phase-1 request ids coincide with set ids.
    fn buy_from_request(&mut self, r: RequestId) {
        if (r.0 as usize) < self.system.num_sets() {
            self.buy(SetId(r.0));
        }
        // Preempting a protected phase-2 request has no set-cover
        // meaning; the repair pass below restores coverage if needed.
    }

    fn buy(&mut self, s: SetId) {
        if !self.bought[s.index()] {
            self.bought[s.index()] = true;
            self.bought_order.push(s);
        }
    }

    /// Sets bought so far, in purchase order.
    pub fn bought(&self) -> &[SetId] {
        &self.bought_order
    }

    /// Total cost of the bought sets.
    pub fn total_cost(&self) -> f64 {
        self.system.total_cost(&self.bought_order)
    }

    /// Times the coverage safety-net had to buy a set directly (0 when
    /// the admission algorithm does its job).
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// How many distinct bought sets contain `element`.
    pub fn coverage(&self, element: u32) -> usize {
        self.system
            .sets_containing(element)
            .iter()
            .filter(|s| self.bought[s.index()])
            .count()
    }

    /// The underlying admission algorithm (for inspection).
    pub fn admission(&self) -> &A {
        &self.admission
    }

    /// The set system.
    pub fn system(&self) -> &SetSystem {
        &self.system
    }
}

impl<R: Rng> ReductionCover<RandomizedAdmission<R>> {
    /// The paper's intended composition: the §3 randomized algorithm
    /// under the §4 reduction. Unweighted systems get the
    /// `O(log m log n)` configuration, weighted ones `O(log²(mn))`.
    pub fn randomized(system: SetSystem, cfg: RandConfig, rng: R) -> Self {
        ReductionCover::new(system, |caps| RandomizedAdmission::new(caps, cfg, rng))
    }
}

impl<A: OnlineAdmission> OnlineSetCover for ReductionCover<A> {
    fn name(&self) -> &'static str {
        "aag-reduction"
    }

    fn on_arrival(&mut self, element: u32) -> Vec<SetId> {
        assert!(
            (element as usize) < self.system.num_elements(),
            "unknown element"
        );
        self.arrival_count[element as usize] += 1;
        let k = self.arrival_count[element as usize] as usize;
        assert!(
            k <= self.system.degree(element),
            "element {element} arrived more times than its degree — uncoverable"
        );
        let before = self.bought_order.len();

        // Phase-2 request: single protected edge.
        let req = Request::new(EdgeSet::singleton(EdgeId(element)), self.protected_cost);
        let id = self.next_id();
        let out = self.admission.on_request(id, &req);
        for p in out.preempted {
            self.buy_from_request(p);
        }

        // Safety net: guarantee k distinct covering sets.
        let mut covered = self.coverage(element);
        if covered < k {
            // Buy cheapest missing sets containing the element.
            let mut candidates: Vec<SetId> = self
                .system
                .sets_containing(element)
                .iter()
                .filter(|s| !self.bought[s.index()])
                .copied()
                .collect();
            candidates.sort_by(|a, b| {
                self.system
                    .cost(*a)
                    .partial_cmp(&self.system.cost(*b))
                    .unwrap()
            });
            for s in candidates {
                if covered >= k {
                    break;
                }
                self.buy(s);
                self.repairs += 1;
                covered += 1;
            }
        }
        self.bought_order[before..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sys() -> SetSystem {
        // 4 elements; 5 sets.
        SetSystem::unit(
            4,
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![0, 3],
                vec![0, 1, 2, 3],
            ],
        )
    }

    fn reduction(seed: u64) -> ReductionCover<RandomizedAdmission<StdRng>> {
        ReductionCover::randomized(sys(), RandConfig::unweighted(), StdRng::seed_from_u64(seed))
    }

    #[test]
    fn phase1_buys_nothing() {
        let red = reduction(1);
        assert!(red.bought().is_empty(), "phase 1 should accept all sets");
        assert_eq!(red.total_cost(), 0.0);
    }

    #[test]
    fn single_arrival_covers_once() {
        let mut red = reduction(2);
        red.on_arrival(0);
        assert!(red.coverage(0) >= 1);
        assert!(red.total_cost() >= 1.0);
    }

    #[test]
    fn repeated_arrivals_force_distinct_sets() {
        let mut red = reduction(3);
        // Element 0 is in sets {0, 3, 4}: degree 3.
        red.on_arrival(0);
        red.on_arrival(0);
        red.on_arrival(0);
        assert_eq!(
            red.coverage(0),
            3,
            "three arrivals need three distinct sets"
        );
    }

    #[test]
    fn coverage_invariant_over_random_sequences() {
        for seed in 0..10u64 {
            let mut red = reduction(seed);
            let arrivals = [0u32, 1, 2, 0, 3, 2, 1, 0];
            let mut counts = [0usize; 4];
            for &j in &arrivals {
                if counts[j as usize] + 1 > red.system().degree(j) {
                    continue;
                }
                counts[j as usize] += 1;
                red.on_arrival(j);
                for (el, &k) in counts.iter().enumerate() {
                    assert!(
                        red.coverage(el as u32) >= k,
                        "seed {seed}: element {el} covered {} < {k}",
                        red.coverage(el as u32)
                    );
                }
            }
        }
    }

    #[test]
    fn cost_is_competitive_on_easy_instance() {
        // One arrival each of elements 0..4: the big set 4 covers all,
        // OPT = 1. Online should pay O(log m log n) ≈ small.
        let mut best = f64::INFINITY;
        for seed in 0..10 {
            let mut red = reduction(seed);
            for j in 0..4u32 {
                red.on_arrival(j);
            }
            best = best.min(red.total_cost());
            // Never more than buying every set.
            assert!(red.total_cost() <= 5.0);
        }
        assert!(best <= 5.0);
    }

    #[test]
    fn weighted_system_prefers_cheap_sets() {
        // Two sets cover element 0: cost 1 and cost 100.
        let system = SetSystem::new(1, vec![vec![0], vec![0]], vec![1.0, 100.0]);
        let mut total = 0.0;
        for seed in 0..20 {
            let mut red = ReductionCover::randomized(
                system.clone(),
                RandConfig::weighted(),
                StdRng::seed_from_u64(seed),
            );
            red.on_arrival(0);
            total += red.total_cost();
        }
        // Average cost must be far below always-buying the expensive set.
        assert!(total / 20.0 < 60.0, "avg cost {}", total / 20.0);
    }

    #[test]
    #[should_panic(expected = "more times than its degree")]
    fn infeasible_arrivals_panic() {
        let system = SetSystem::unit(1, vec![vec![0]]);
        let mut red =
            ReductionCover::randomized(system, RandConfig::unweighted(), StdRng::seed_from_u64(0));
        red.on_arrival(0);
        red.on_arrival(0);
    }
}
