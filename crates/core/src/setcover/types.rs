//! Set systems for online set cover with repetitions.

use serde::{Deserialize, Serialize};

/// Identifier of a set in a [`SetSystem`] (dense, `0..m`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SetId(pub u32);

impl SetId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A ground set of `n` elements and `m` costed subsets, with an
/// inverted element → sets index.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SetSystem {
    num_elements: usize,
    /// Sorted, deduplicated member lists per set.
    sets: Vec<Vec<u32>>,
    costs: Vec<f64>,
    /// `sets_of[j]` = ids of sets containing element `j` (the paper's
    /// `S_j`), sorted.
    sets_of: Vec<Vec<SetId>>,
}

impl SetSystem {
    /// Build a system; `sets[i]` lists the elements of set `i`.
    ///
    /// # Panics
    /// If any element id is out of range or any cost is not positive.
    pub fn new(num_elements: usize, sets: Vec<Vec<u32>>, costs: Vec<f64>) -> Self {
        assert_eq!(sets.len(), costs.len(), "one cost per set");
        assert!(costs.iter().all(|&c| c > 0.0), "set costs must be positive");
        let mut canon: Vec<Vec<u32>> = Vec::with_capacity(sets.len());
        for mut s in sets {
            s.sort_unstable();
            s.dedup();
            assert!(
                s.iter().all(|&e| (e as usize) < num_elements),
                "element id out of range"
            );
            canon.push(s);
        }
        let mut sets_of = vec![Vec::new(); num_elements];
        for (i, s) in canon.iter().enumerate() {
            for &e in s {
                sets_of[e as usize].push(SetId(i as u32));
            }
        }
        SetSystem {
            num_elements,
            sets: canon,
            costs,
            sets_of,
        }
    }

    /// Unit-cost system (the paper's §5 setting).
    pub fn unit(num_elements: usize, sets: Vec<Vec<u32>>) -> Self {
        let m = sets.len();
        SetSystem::new(num_elements, sets, vec![1.0; m])
    }

    /// `n`, the number of ground elements.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// `m`, the number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Elements of set `s`, sorted.
    pub fn elements_of(&self, s: SetId) -> &[u32] {
        &self.sets[s.index()]
    }

    /// Cost of set `s`.
    pub fn cost(&self, s: SetId) -> f64 {
        self.costs[s.index()]
    }

    /// The paper's `S_j`: ids of sets containing `j`.
    pub fn sets_containing(&self, element: u32) -> &[SetId] {
        &self.sets_of[element as usize]
    }

    /// Element degree `deg(j) = |S_j|` — the §4 reduction's capacity.
    pub fn degree(&self, element: u32) -> usize {
        self.sets_of[element as usize].len()
    }

    /// Total cost of a collection of sets.
    pub fn total_cost(&self, chosen: &[SetId]) -> f64 {
        chosen.iter().map(|&s| self.cost(s)).sum()
    }

    /// True iff all costs are 1.
    pub fn is_unit_cost(&self) -> bool {
        self.costs.iter().all(|&c| c == 1.0)
    }

    /// Check that an arrival sequence is *coverable*: no element arrives
    /// more times than its degree.
    pub fn arrivals_feasible(&self, arrivals: &[u32]) -> bool {
        let mut count = vec![0usize; self.num_elements];
        for &e in arrivals {
            if e as usize >= self.num_elements {
                return false;
            }
            count[e as usize] += 1;
            if count[e as usize] > self.degree(e) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SetSystem {
        SetSystem::unit(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]])
    }

    #[test]
    fn inverted_index() {
        let s = sys();
        assert_eq!(s.num_elements(), 4);
        assert_eq!(s.num_sets(), 4);
        assert_eq!(s.sets_containing(1), &[SetId(0), SetId(1)]);
        assert_eq!(s.degree(2), 2);
    }

    #[test]
    fn dedup_and_sort_members() {
        let s = SetSystem::unit(3, vec![vec![2, 0, 2, 1]]);
        assert_eq!(s.elements_of(SetId(0)), &[0, 1, 2]);
    }

    #[test]
    fn arrivals_feasibility() {
        let s = sys();
        assert!(s.arrivals_feasible(&[0, 0, 1, 2]));
        assert!(!s.arrivals_feasible(&[0, 0, 0])); // deg(0) = 2
        assert!(!s.arrivals_feasible(&[9]));
    }

    #[test]
    fn costs() {
        let s = SetSystem::new(2, vec![vec![0], vec![1]], vec![2.0, 3.0]);
        assert_eq!(s.cost(SetId(1)), 3.0);
        assert_eq!(s.total_cost(&[SetId(0), SetId(1)]), 5.0);
        assert!(!s.is_unit_cost());
    }

    #[test]
    #[should_panic(expected = "element id out of range")]
    fn out_of_range_element() {
        SetSystem::unit(2, vec![vec![5]]);
    }
}
