//! The reader seam between trace storage and the streaming engine.
//!
//! [`Session::run_stream`](crate::Session::run_stream) accepts any
//! fallible iterator of requests, but the harness's two-pass runners
//! need a little more than arrivals: the capacity table (to build the
//! session) and the declared request count (to size buffers and detect
//! truncation). [`RequestSource`] names exactly that contract, so the
//! harness can be generic over *how a trace is stored* — plain-text
//! lines, binary records streamed off any `io::Read`, or a zero-copy
//! memory mapping — while every storage format keeps one behavior:
//! header metadata up front, then one `Result<Request, _>` per arrival,
//! with typed errors and never a panic on malformed input.
//!
//! Implementations live in `acmr-workloads` (`TraceReader`,
//! `BinTraceReader`, `BinMapReader`, and the format-sniffing
//! `AnyTraceReader`); this crate only defines the seam so the engine
//! does not depend on any particular format.

use crate::error::AcmrError;
use crate::instance::Request;

/// A streaming source of admission requests with header metadata.
///
/// The iterator contract matches what
/// [`Session::run_stream`](crate::Session::run_stream) expects: one
/// `Ok(request)` per arrival, a typed `Err` on malformed input or I/O
/// failure (after which the source is poisoned and repeats the error),
/// and `None` only at a *clean* end of trace.
pub trait RequestSource: Iterator<Item = Result<Request, AcmrError>> {
    /// Edge capacities from the trace header — what a session over
    /// this source must be built with.
    fn capacities(&self) -> &[u32];

    /// Request count declared by the trace header. The body is still
    /// verified against it while iterating (a short stream is a
    /// truncation error, extra content a trailing-content error).
    fn declared_requests(&self) -> u64;

    /// Pull the next request, `Ok(None)` at a clean end of trace — the
    /// `Result`-first shape of [`Iterator::next`].
    fn next_request(&mut self) -> Result<Option<Request>, AcmrError> {
        self.next().transpose()
    }
}

impl<S: RequestSource + ?Sized> RequestSource for &mut S {
    fn capacities(&self) -> &[u32] {
        (**self).capacities()
    }

    fn declared_requests(&self) -> u64 {
        (**self).declared_requests()
    }
}
