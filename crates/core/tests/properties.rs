//! Property-based tests for the paper's algorithms.
//!
//! These check the *invariants the proofs rely on* over randomized
//! instances: the fractional covering condition, weight monotonicity,
//! integral feasibility at every step, no accept-after-reject, the §4
//! reduction's coverage guarantee, and the §5 potential bound.

use acmr_core::setcover::{BicriteriaCover, OnlineSetCover, ReductionCover, SetSystem};
use acmr_core::{
    FracConfig, FracEngine, OnlineAdmission, RandConfig, RandomizedAdmission, Request, RequestId,
};
use acmr_graph::{EdgeId, EdgeSet, LoadTracker};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fp(ids: &[u32]) -> EdgeSet {
    EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
}

/// Arbitrary small workload: capacities plus arrivals (footprint, cost).
fn workload_strategy() -> impl Strategy<Value = (Vec<u32>, Vec<(Vec<u32>, f64)>)> {
    (2usize..8).prop_flat_map(|m| {
        let caps = proptest::collection::vec(1u32..4, m..=m);
        let arrivals = proptest::collection::vec(
            (
                proptest::collection::vec(0u32..m as u32, 1..=m.min(4)),
                prop_oneof![Just(1.0f64), (1u32..100).prop_map(|c| c as f64)],
            ),
            1..30,
        );
        (caps, arrivals)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §2: after every arrival the fractional covering invariant holds
    /// and weights are monotone non-decreasing.
    #[test]
    fn fractional_invariants((caps, arrivals) in workload_strategy()) {
        for cfg in [FracConfig::weighted(), FracConfig::unweighted()] {
            let mut eng = FracEngine::new(&caps, cfg);
            let mut prev: Vec<f64> = Vec::new();
            for (edges, cost) in &arrivals {
                let cost = if cfg.weighting == acmr_core::Weighting::Unweighted { 1.0 } else { *cost };
                eng.on_request(&fp(edges), cost);
                prop_assert!(eng.covering_invariant_holds());
                let cur: Vec<f64> = (0..eng.num_requests())
                    .map(|i| eng.weight(RequestId(i as u32)))
                    .collect();
                for (i, &p) in prev.iter().enumerate() {
                    prop_assert!(cur[i] >= p - 1e-12, "weight {i} decreased: {p} -> {}", cur[i]);
                }
                prev = cur;
            }
            // Cost is the min(f,1)-weighted sum: never negative, never
            // more than the total cost of all requests.
            let total: f64 = arrivals.iter().map(|(_, c)| {
                if cfg.weighting == acmr_core::Weighting::Unweighted { 1.0 } else { *c }
            }).sum();
            prop_assert!(eng.online_cost() >= -1e-9);
            prop_assert!(eng.online_cost() <= total + 1e-6);
        }
    }

    /// §3: the integral algorithm never violates capacities (audited by
    /// an external LoadTracker), never resurrects a rejected request,
    /// and only preempts currently-accepted requests.
    #[test]
    fn randomized_feasibility((caps, arrivals) in workload_strategy(), seed in 0u64..1000) {
        for cfg in [RandConfig::weighted(), RandConfig::unweighted()] {
            let mut alg = RandomizedAdmission::new(&caps, cfg, StdRng::seed_from_u64(seed));
            let mut audit = LoadTracker::from_capacities(caps.clone());
            let mut state: Vec<Option<bool>> = Vec::new(); // None=never seen
            for (i, (edges, cost)) in arrivals.iter().enumerate() {
                let cost = if cfg.frac.weighting == acmr_core::Weighting::Unweighted { 1.0 } else { *cost };
                let req = Request::new(fp(edges), cost);
                let out = alg.on_request(RequestId(i as u32), &req);
                for p in &out.preempted {
                    prop_assert_eq!(state[p.index()], Some(true), "preempted non-accepted request");
                    state[p.index()] = Some(false);
                    audit.release(&fp(&arrivals[p.index()].0));
                }
                state.push(Some(out.accepted));
                if out.accepted {
                    prop_assert!(audit.fits(&req.footprint), "accept violates capacity");
                    audit.admit(&req.footprint);
                }
                prop_assert!(audit.is_feasible());
            }
        }
    }

    /// §4: the reduction always maintains exact multicover coverage,
    /// regardless of seed, and never buys the same set twice.
    #[test]
    fn reduction_coverage(
        seed in 0u64..1000,
        n in 2usize..6,
        m in 2usize..8,
        arrivals in proptest::collection::vec(0u32..6, 1..20),
    ) {
        // Random system: set i contains element j iff hash-ish predicate.
        let sets: Vec<Vec<u32>> = (0..m)
            .map(|i| (0..n as u32).filter(|&j| !(i as u32 * 7 + j * 13 + 3).is_multiple_of(3)).collect())
            .collect();
        let system = SetSystem::unit(n, sets);
        let mut red = ReductionCover::randomized(
            system.clone(),
            RandConfig::unweighted(),
            StdRng::seed_from_u64(seed),
        );
        let mut counts = vec![0usize; n];
        for &a in &arrivals {
            let j = a % n as u32;
            if counts[j as usize] + 1 > system.degree(j) {
                continue; // keep the sequence coverable
            }
            counts[j as usize] += 1;
            red.on_arrival(j);
            for (el, &k) in counts.iter().enumerate() {
                prop_assert!(red.coverage(el as u32) >= k);
            }
        }
        // No duplicate purchases.
        let mut seen = std::collections::HashSet::new();
        for s in red.bought() {
            prop_assert!(seen.insert(*s), "set bought twice");
        }
    }

    /// §5: bicriteria coverage `cover_j ≥ (1−ε)k_j` after every arrival,
    /// the potential never exceeds n², and greedy never needs fallback.
    #[test]
    fn bicriteria_invariants(
        n in 3usize..8,
        m in 3usize..10,
        eps_pct in 1u32..60,
        arrivals in proptest::collection::vec(0u32..8, 1..25),
    ) {
        let eps = eps_pct as f64 / 100.0;
        let sets: Vec<Vec<u32>> = (0..m)
            .map(|i| (0..n as u32).filter(|&j| !(i as u32 * 5 + j * 11 + 1).is_multiple_of(3)).collect())
            .collect();
        if sets.iter().any(|s| s.is_empty()) {
            return Ok(());
        }
        let system = SetSystem::unit(n, sets);
        let mut alg = BicriteriaCover::new(system.clone(), eps);
        let n2 = (n as f64).powi(2);
        let mut counts = vec![0u32; n];
        for &a in &arrivals {
            let j = a % n as u32;
            if (counts[j as usize] + 1) as usize > system.degree(j) {
                continue;
            }
            counts[j as usize] += 1;
            alg.on_arrival(j);
            for (el, &k) in counts.iter().enumerate() {
                let need = (1.0 - eps) * k as f64;
                prop_assert!(
                    (alg.coverage(el as u32) as f64) >= need,
                    "element {el}: {} < {need}", alg.coverage(el as u32)
                );
            }
            prop_assert!(alg.potential() <= n2 * (1.0 + 1e-9), "Φ = {}", alg.potential());
        }
        prop_assert_eq!(alg.fallback_picks(), 0);
    }
}

/// Unit-style cross-check: the §3 algorithm on a workload where OPT = 0
/// must reject nothing (the paper's zero-cost base case).
#[test]
fn zero_opt_means_zero_rejections() {
    for seed in 0..30u64 {
        let caps = vec![3u32; 6];
        let mut alg =
            RandomizedAdmission::new(&caps, RandConfig::weighted(), StdRng::seed_from_u64(seed));
        // 3 requests per edge, disjoint: exactly at capacity.
        let mut i = 0u32;
        for e in 0..6u32 {
            for _ in 0..3 {
                let out = alg.on_request(RequestId(i), &Request::new(fp(&[e]), 5.0));
                assert!(out.accepted, "seed {seed}: rejected despite OPT = 0");
                assert!(out.preempted.is_empty());
                i += 1;
            }
        }
    }
}
