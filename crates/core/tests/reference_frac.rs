//! Reference-model equivalence for the §2 fractional engine.
//!
//! `FracEngine` batches consecutive augmentation rounds (binary search
//! on the round count) for speed. This test implements the paper's
//! pseudocode *literally* — one multiplicative round at a time, no
//! batching, no reclassification shortcuts — and checks the production
//! engine produces the same weights (within float slack) on unweighted
//! instances where the two specifications coincide exactly.

use acmr_core::{FracConfig, FracEngine, RequestId};
use acmr_graph::{EdgeId, EdgeSet};
use proptest::prelude::*;

/// Literal transcription of the paper's §2 algorithm (unweighted case:
/// g = 1, p_i = 1, no cost classes).
struct ReferenceFrac {
    caps: Vec<i64>,
    /// (footprint, weight)
    reqs: Vec<(Vec<usize>, f64)>,
    augmentations: u64,
}

impl ReferenceFrac {
    fn new(caps: &[u32]) -> Self {
        ReferenceFrac {
            caps: caps.iter().map(|&c| c as i64).collect(),
            reqs: Vec::new(),
            augmentations: 0,
        }
    }

    fn on_request(&mut self, edges: &[usize]) {
        let c_max = *self.caps.iter().max().unwrap() as f64;
        self.reqs.push((edges.to_vec(), 0.0));
        for &e in edges {
            loop {
                // ALIVE_e and n_e per the definitions.
                let alive: Vec<usize> = (0..self.reqs.len())
                    .filter(|&i| self.reqs[i].1 < 1.0 && self.reqs[i].0.contains(&e))
                    .collect();
                let ne = alive.len() as i64 - self.caps[e];
                if ne <= 0 {
                    break;
                }
                let sum: f64 = alive.iter().map(|&i| self.reqs[i].1).sum();
                if sum >= ne as f64 {
                    break;
                }
                // One weight augmentation (steps 2a, 2b of the paper).
                self.augmentations += 1;
                if ne >= alive.len() as i64 {
                    // Degenerate: capacity ≤ 0 after adjustments cannot
                    // happen in this unweighted reference (no R_big).
                    for &i in &alive {
                        self.reqs[i].1 = 1.0;
                    }
                    continue;
                }
                let ne_f = ne as f64;
                for &i in &alive {
                    let f = &mut self.reqs[i].1;
                    if *f == 0.0 {
                        *f = 1.0 / c_max; // 1/(gc), g = 1
                    }
                    *f *= 1.0 + 1.0 / ne_f; // p_i = 1
                }
            }
        }
    }

    fn online_cost(&self) -> f64 {
        self.reqs.iter().map(|(_, f)| f.min(1.0)).sum()
    }
}

fn fp(edges: &[usize]) -> EdgeSet {
    EdgeSet::new(edges.iter().map(|&e| EdgeId(e as u32)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Production engine ≡ literal paper pseudocode on random
    /// unweighted instances: same weights, same cost, same round count.
    #[test]
    fn engine_matches_reference(
        caps in proptest::collection::vec(1u32..4, 2..6),
        arrivals in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 1..4), 1..25),
    ) {
        let m = caps.len();
        let arrivals: Vec<Vec<usize>> = arrivals
            .into_iter()
            .map(|edges| {
                let mut e: Vec<usize> = edges.into_iter().map(|x| x % m).collect();
                e.sort_unstable();
                e.dedup();
                e
            })
            .collect();
        let mut reference = ReferenceFrac::new(&caps);
        // Disable the cost-class preprocessing: with unit costs it is
        // inert until α doubles past mc, at which point the paper's
        // R_small rule (correctly) fires — but the literal reference
        // above does not model classes, so equivalence is tested with
        // classes off.
        let mut cfg = FracConfig::unweighted();
        cfg.cost_classes = false;
        let mut engine = FracEngine::new(&caps, cfg);
        for edges in &arrivals {
            reference.on_request(edges);
            engine.on_request(&fp(edges), 1.0);
        }
        prop_assert_eq!(reference.reqs.len(), engine.num_requests());
        for i in 0..reference.reqs.len() {
            let want = reference.reqs[i].1;
            let got = engine.weight(RequestId(i as u32));
            prop_assert!(
                (want - got).abs() <= 1e-6 * (1.0 + want.abs()),
                "request {i}: reference {want} vs engine {got}"
            );
        }
        prop_assert!((reference.online_cost() - engine.online_cost()).abs() <= 1e-6);
        prop_assert_eq!(reference.augmentations, engine.augmentations());
    }
}
