//! Theorem-level statistical tests: run the paper's algorithms on
//! calibrated instances where OPT is known in closed form and check
//! the competitive envelopes with explicit constants.
//!
//! These complement `properties.rs` (invariants) by checking the
//! *quantities the theorems bound*.

use acmr_core::setcover::{BicriteriaCover, OnlineSetCover, ReductionCover, SetSystem};
use acmr_core::{
    FracConfig, FracEngine, OnlineAdmission, RandConfig, RandomizedAdmission, Request, RequestId,
};
use acmr_graph::{EdgeId, EdgeSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fp(ids: &[u32]) -> EdgeSet {
    EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
}

/// Theorem 2 (unweighted): on the hot-edge family the fractional cost
/// is within O(log c) of OPT = total − c, across two orders of
/// magnitude of c.
#[test]
fn theorem2_unweighted_envelope_on_hot_edge() {
    for &c in &[1u32, 4, 16, 64, 256] {
        let total = 3 * c;
        let mut eng = FracEngine::new(&[c], FracConfig::unweighted());
        for _ in 0..total {
            eng.on_request(&fp(&[0]), 1.0);
        }
        let opt = (total - c) as f64;
        let ratio = eng.online_cost() / opt;
        let bound = 4.0 * (c as f64).ln().max(1.0) + 4.0;
        assert!(ratio <= bound, "c={c}: fractional ratio {ratio} > {bound}");
    }
}

/// Theorem 2 (weighted): with costs spanning 3 decades on one edge,
/// the fractional algorithm stays within O(log(mc)) — crucially *not*
/// within O(cost spread), which is what a naive algorithm pays.
#[test]
fn theorem2_weighted_envelope_with_cost_spread() {
    let c = 4u32;
    let mut eng = FracEngine::new(&[c], FracConfig::weighted());
    let mut total_cost = 0.0;
    let mut costs: Vec<f64> = Vec::new();
    for i in 0..(6 * c) as usize {
        // Costs cycle through 1, 10, 100.
        let cost = [1.0, 10.0, 100.0][i % 3];
        costs.push(cost);
        total_cost += cost;
        eng.on_request(&fp(&[0]), cost);
    }
    // OPT keeps the c most expensive: rejects everything else.
    let mut sorted = costs.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let opt: f64 = total_cost - sorted[..c as usize].iter().sum::<f64>();
    let ratio = eng.online_cost() / opt;
    let bound = 8.0 * ((1.0_f64 * c as f64).ln().max(1.0) + (2.0 * c as f64).ln()) + 8.0;
    assert!(ratio <= bound, "ratio {ratio} > {bound}");
    assert!(eng.covering_invariant_holds());
}

/// Theorem 4: expected cost of the unweighted randomized algorithm on
/// the hot-edge family, averaged over seeds, is within
/// O(log m · log c) of OPT.
#[test]
fn theorem4_expected_ratio_on_hot_edge() {
    let m = 16usize;
    for &c in &[2u32, 8, 32] {
        let total = 3 * c;
        let caps = vec![c; m];
        let opt = (total - c) as f64;
        let mut sum_cost = 0.0;
        let seeds = 12;
        for seed in 0..seeds {
            let mut alg = RandomizedAdmission::new(
                &caps,
                RandConfig::unweighted(),
                StdRng::seed_from_u64(seed),
            );
            let mut rejected = 0u32;
            for i in 0..total {
                let req = Request::unit(fp(&[0]));
                let out = alg.on_request(RequestId(i), &req);
                if !out.accepted {
                    rejected += 1;
                }
                rejected += out.preempted.len() as u32;
            }
            sum_cost += rejected as f64;
        }
        let mean_ratio = sum_cost / seeds as f64 / opt;
        let bound = 10.0 * (m as f64).ln() * (c as f64).ln().max(1.0) + 10.0;
        assert!(
            mean_ratio <= bound,
            "c={c}: mean ratio {mean_ratio} > {bound}"
        );
    }
}

/// §4 reduction composed with Theorem 4: unweighted set cover ratio on
/// the partition-gap system stays well below the naive m/OPT gap.
#[test]
fn reduction_beats_gap_on_partition_system() {
    // 4 groups × 3 copies + global set: m = 13, OPT(one round) = 1.
    let n = 16usize;
    let mut members: Vec<Vec<u32>> = Vec::new();
    for g in 0..4u32 {
        let block: Vec<u32> = (0..n as u32).filter(|j| j % 4 == g).collect();
        for _ in 0..3 {
            members.push(block.clone());
        }
    }
    members.push((0..n as u32).collect());
    let system = SetSystem::unit(n, members);
    let mut worst = 0.0f64;
    for seed in 0..8u64 {
        let mut red = ReductionCover::randomized(
            system.clone(),
            RandConfig::unweighted(),
            StdRng::seed_from_u64(seed),
        );
        for j in 0..n as u32 {
            red.on_arrival(j);
        }
        assert_eq!(red.repairs(), 0);
        worst = worst.max(red.total_cost());
    }
    // OPT = 1; naive per-element buying pays ≥ 4. The reduction must
    // stay within the theorem envelope (log m · log n ≈ 7.1) even in
    // the worst seed.
    assert!(
        worst <= 13.0,
        "reduction bought every set ({worst}) — no better than trivial"
    );
}

/// Theorem 7 cost scaling: bicriteria total sets across rounds scale
/// like OPT·log m·log n, not like n.
#[test]
fn theorem7_cost_scaling_on_partition_system() {
    for &groups in &[2usize, 4, 8] {
        let n = 32usize;
        let mut members: Vec<Vec<u32>> = Vec::new();
        for g in 0..groups {
            let block: Vec<u32> = (0..n as u32)
                .filter(|j| (*j as usize) % groups == g)
                .collect();
            for _ in 0..2 {
                members.push(block.clone());
            }
        }
        members.push((0..n as u32).collect());
        let system = SetSystem::unit(n, members.clone());
        let m = members.len() as f64;
        let mut alg = BicriteriaCover::new(system, 0.25);
        for j in 0..n as u32 {
            alg.on_arrival(j);
        }
        // OPT = 1 (global set). Envelope with explicit constant.
        let bound = 4.0 * m.ln().max(1.0) * (n as f64).ln() + 4.0;
        assert!(
            alg.total_cost() <= bound,
            "groups={groups}: cost {} > {bound}",
            alg.total_cost()
        );
        assert_eq!(alg.fallback_picks(), 0);
    }
}

/// The randomized algorithm's expected cost bound is *per-instance*
/// (Theorem 3's proof is oblivious to arrival order): shuffling the
/// arrival order must keep the ratio inside the same envelope.
#[test]
fn theorem3_order_insensitivity() {
    use rand::seq::SliceRandom;
    let caps = vec![2u32; 8];
    // Base instance: every pair of adjacent edges overloaded ×3.
    let mut arrivals: Vec<(Vec<u32>, f64)> = Vec::new();
    for e in 0..7u32 {
        for k in 0..6u32 {
            arrivals.push((vec![e, e + 1], 1.0 + k as f64));
        }
    }
    let mut ratios = Vec::new();
    for seed in 0..6u64 {
        let mut order = arrivals.clone();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut alg = RandomizedAdmission::new(
            &caps,
            RandConfig::weighted(),
            StdRng::seed_from_u64(seed ^ 0xAA),
        );
        let mut rejected = 0.0;
        let mut accepted: Vec<(usize, f64)> = Vec::new();
        for (i, (edges, cost)) in order.iter().enumerate() {
            let req = Request::new(fp(edges), *cost);
            let out = alg.on_request(RequestId(i as u32), &req);
            for p in &out.preempted {
                if let Some(pos) = accepted.iter().position(|&(id, _)| id == p.index()) {
                    rejected += accepted.remove(pos).1;
                }
            }
            if out.accepted {
                accepted.push((i, *cost));
            } else {
                rejected += *cost;
            }
        }
        // A crude OPT lower bound: each edge pair must shed 4 of its 6
        // requests; cheapest 4 cost 1+2+3+4 = 10... shared between
        // overlapping pairs, so use the single-edge bound: edge e sits
        // in 12 requests (two windows) minus capacity 2 ⇒ ≥ 10 sheds.
        // Keep it simple: OPT ≥ 7·(1+2+3+4)/2.
        let opt_lb = 7.0 * 10.0 / 2.0;
        ratios.push(rejected / opt_lb);
    }
    let worst = ratios.iter().cloned().fold(0.0, f64::max);
    let envelope = 20.0 * (8.0f64 * 2.0).ln().powi(2);
    assert!(
        worst <= envelope,
        "worst shuffled ratio {worst} > {envelope}"
    );
}
