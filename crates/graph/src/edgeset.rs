//! Request footprints as sorted, deduplicated edge-id sets.
//!
//! The paper's concluding remark: *"All the algorithms treated a request
//! as an arbitrary subset of edges"* — [`EdgeSet`] is that subset. It is
//! kept sorted so that membership tests are `O(log k)` and intersection
//! / iteration are cache-friendly linear scans over a boxed slice.

use crate::ids::EdgeId;
use serde::{Deserialize, Serialize};

/// A sorted, deduplicated, immutable set of edge ids — the footprint of
/// one request.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct EdgeSet {
    edges: Box<[EdgeId]>,
}

impl EdgeSet {
    /// Build from an arbitrary list of edges; sorts and deduplicates.
    pub fn new(mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        EdgeSet {
            edges: edges.into_boxed_slice(),
        }
    }

    /// Build from a slice that is already sorted and strictly increasing.
    ///
    /// # Panics
    /// In debug builds, if the invariant does not hold.
    pub fn from_sorted(edges: Vec<EdgeId>) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "must be strictly sorted"
        );
        EdgeSet {
            edges: edges.into_boxed_slice(),
        }
    }

    /// A set with a single edge (used by phase-2 requests of the set
    /// cover reduction, §4 of the paper).
    pub fn singleton(e: EdgeId) -> Self {
        EdgeSet {
            edges: vec![e].into_boxed_slice(),
        }
    }

    /// Number of edges in the footprint.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the footprint is empty (such a request can always be
    /// accepted; generators never emit one, but the algebra permits it).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges, sorted ascending.
    #[inline]
    pub fn as_slice(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Iterate over the edges.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().copied()
    }

    /// Membership test, `O(log len)`.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// Number of edges shared with `other` (linear merge).
    pub fn intersection_size(&self, other: &EdgeSet) -> usize {
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        while i < self.edges.len() && j < other.edges.len() {
            match self.edges[i].cmp(&other.edges[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    k += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        k
    }

    /// True if the two footprints share at least one edge.
    pub fn intersects(&self, other: &EdgeSet) -> bool {
        self.intersection_size_early_exit(other)
    }

    fn intersection_size_early_exit(&self, other: &EdgeSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.edges.len() && j < other.edges.len() {
            match self.edges[i].cmp(&other.edges[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl<'a> IntoIterator for &'a EdgeSet {
    type Item = EdgeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, EdgeId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter().copied()
    }
}

impl FromIterator<EdgeId> for EdgeSet {
    fn from_iter<T: IntoIterator<Item = EdgeId>>(iter: T) -> Self {
        EdgeSet::new(iter.into_iter().collect())
    }
}

impl From<Vec<EdgeId>> for EdgeSet {
    fn from(v: Vec<EdgeId>) -> Self {
        EdgeSet::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn es(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn sorts_and_dedups() {
        let s = es(&[3, 1, 2, 3, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_slice(), &[EdgeId(1), EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn membership() {
        let s = es(&[0, 2, 4]);
        assert!(s.contains(EdgeId(2)));
        assert!(!s.contains(EdgeId(3)));
    }

    #[test]
    fn intersections() {
        let a = es(&[0, 1, 2, 5]);
        let b = es(&[2, 3, 5, 7]);
        assert_eq!(a.intersection_size(&b), 2);
        assert!(a.intersects(&b));
        let c = es(&[10, 11]);
        assert_eq!(a.intersection_size(&c), 0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn singleton_and_empty() {
        let s = EdgeSet::singleton(EdgeId(9));
        assert_eq!(s.len(), 1);
        assert!(s.contains(EdgeId(9)));
        let e = es(&[]);
        assert!(e.is_empty());
        assert!(!e.intersects(&s));
    }

    #[test]
    fn from_iterator() {
        let s: EdgeSet = (0..4u32).map(EdgeId).collect();
        assert_eq!(s.len(), 4);
    }
}
