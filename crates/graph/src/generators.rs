//! Standard graph families used by the experiment suite.
//!
//! Topologies mirror those in the admission-control literature the
//! paper cites: the **line** (Adler–Azar), **trees** (Awerbuch et al.),
//! and **general graphs** (Awerbuch–Azar–Plotkin). All generators take
//! explicit capacities and, where random, a caller-supplied RNG for
//! reproducibility.

use crate::graph::CapGraph;
use crate::ids::NodeId;
use rand::Rng;

/// Directed line `0 → 1 → … → n-1` with `n-1` edges of capacity `cap`.
///
/// The classic call-control topology: requests are intervals.
pub fn line(n: u32, cap: u32) -> CapGraph {
    assert!(n >= 2, "line needs at least 2 nodes");
    let mut b = CapGraph::builder(n);
    for i in 0..n - 1 {
        b.add_edge(NodeId(i), NodeId(i + 1), cap);
    }
    b.build()
}

/// Directed ring `0 → 1 → … → n-1 → 0` with `n` edges of capacity `cap`.
pub fn ring(n: u32, cap: u32) -> CapGraph {
    assert!(n >= 2, "ring needs at least 2 nodes");
    let mut b = CapGraph::builder(n);
    for i in 0..n {
        b.add_edge(NodeId(i), NodeId((i + 1) % n), cap);
    }
    b.build()
}

/// Star with a hub (node 0) and `leaves` leaves; bidirectional spokes of
/// capacity `cap` (`2·leaves` edges). Models a single switch.
pub fn star(leaves: u32, cap: u32) -> CapGraph {
    assert!(leaves >= 1, "star needs at least 1 leaf");
    let mut b = CapGraph::builder(leaves + 1);
    for i in 1..=leaves {
        b.add_bidirectional(NodeId(0), NodeId(i), cap);
    }
    b.build()
}

/// Complete balanced binary tree with `levels` levels (`2^levels − 1`
/// nodes), bidirectional edges of capacity `cap`. Node 0 is the root.
pub fn balanced_binary_tree(levels: u32, cap: u32) -> CapGraph {
    assert!((1..=24).contains(&levels), "levels must be in 1..=24");
    let n: u32 = (1 << levels) - 1;
    let mut b = CapGraph::builder(n);
    for v in 1..n {
        let parent = (v - 1) / 2;
        b.add_bidirectional(NodeId(parent), NodeId(v), cap);
    }
    b.build()
}

/// `rows × cols` grid, bidirectional horizontal and vertical edges of
/// capacity `cap`. Models a mesh/NoC-style fabric.
pub fn grid(rows: u32, cols: u32, cap: u32) -> CapGraph {
    assert!(rows >= 1 && cols >= 1, "grid must be non-empty");
    let id = |r: u32, c: u32| NodeId(r * cols + c);
    let mut b = CapGraph::builder(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_bidirectional(id(r, c), id(r, c + 1), cap);
            }
            if r + 1 < rows {
                b.add_bidirectional(id(r, c), id(r + 1, c), cap);
            }
        }
    }
    b.build()
}

/// Complete directed graph on `n` nodes (`n(n−1)` edges) of capacity
/// `cap`.
pub fn complete(n: u32, cap: u32) -> CapGraph {
    assert!(n >= 2, "complete graph needs at least 2 nodes");
    let mut b = CapGraph::builder(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_edge(NodeId(i), NodeId(j), cap);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each ordered pair `(i, j)`, `i ≠ j`, gets an
/// edge independently with probability `p`, capacity `cap`.
///
/// To keep workloads routable the generator additionally threads a
/// directed Hamiltonian backbone `0 → 1 → … → n−1 → 0` (so the graph is
/// strongly connected); this mirrors how evaluation topologies are
/// usually built for routing papers.
pub fn erdos_renyi<R: Rng>(n: u32, p: f64, cap: u32, rng: &mut R) -> CapGraph {
    assert!(n >= 2, "G(n,p) needs at least 2 nodes");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = CapGraph::builder(n);
    for i in 0..n {
        b.add_edge(NodeId(i), NodeId((i + 1) % n), cap);
    }
    for i in 0..n {
        for j in 0..n {
            // Skip self-loops and backbone duplicates.
            if i == j || (i + 1) % n == j {
                continue;
            }
            if rng.gen_bool(p) {
                b.add_edge(NodeId(i), NodeId(j), cap);
            }
        }
    }
    b.build()
}

/// A line graph whose edge count is exactly `m` (so `m+1` nodes); the
/// experiment sweeps parameterize directly on `m = |E|`.
pub fn line_with_edges(m: u32, cap: u32) -> CapGraph {
    line(m + 1, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_counts() {
        let g = line(5, 3);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_capacity(), 3);
        // Every interior node has out-degree 1; the last has 0.
        assert_eq!(g.out_degree(NodeId(4)), 0);
    }

    #[test]
    fn ring_counts() {
        let g = ring(6, 1);
        assert_eq!(g.num_edges(), 6);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 1);
        }
    }

    #[test]
    fn star_counts() {
        let g = star(4, 2);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.out_degree(NodeId(0)), 4);
        assert_eq!(g.out_degree(NodeId(1)), 1);
    }

    #[test]
    fn tree_counts() {
        let g = balanced_binary_tree(3, 1);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 12); // 6 undirected edges, both directions
    }

    #[test]
    fn grid_counts() {
        let g = grid(2, 3, 1);
        assert_eq!(g.num_nodes(), 6);
        // Undirected edges: horizontal 2*2=4, vertical 3 → 7; doubled = 14.
        assert_eq!(g.num_edges(), 14);
    }

    #[test]
    fn complete_counts() {
        let g = complete(4, 2);
        assert_eq!(g.num_edges(), 12);
    }

    #[test]
    fn gnp_has_backbone_and_is_reproducible() {
        let mut rng = StdRng::seed_from_u64(42);
        let g1 = erdos_renyi(10, 0.3, 2, &mut rng);
        let mut rng = StdRng::seed_from_u64(42);
        let g2 = erdos_renyi(10, 0.3, 2, &mut rng);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert!(g1.num_edges() >= 10); // backbone always present
        for v in g1.nodes() {
            assert!(g1.out_degree(v) >= 1);
        }
    }

    #[test]
    fn gnp_density_scales_with_p() {
        let mut rng = StdRng::seed_from_u64(7);
        let sparse = erdos_renyi(30, 0.05, 1, &mut rng);
        let dense = erdos_renyi(30, 0.8, 1, &mut rng);
        assert!(dense.num_edges() > sparse.num_edges());
    }

    #[test]
    fn line_with_edges_matches_m() {
        let g = line_with_edges(17, 2);
        assert_eq!(g.num_edges(), 17);
    }
}
