//! The capacitated directed multigraph.

use crate::ids::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// Metadata of a single directed edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeInfo {
    /// Tail (source) node.
    pub from: NodeId,
    /// Head (target) node.
    pub to: NodeId,
    /// Integer capacity `c_e > 0` — the maximum number of simultaneously
    /// accepted requests whose footprint contains this edge.
    pub capacity: u32,
}

/// A directed multigraph with integer edge capacities.
///
/// This is the paper's `G = (V, E)` with `|E| = m` and
/// `c = max_e c_e`. Edges are stored densely (ids `0..m`) so per-edge
/// algorithm state can live in flat vectors; adjacency lists are built
/// once via [`CapGraphBuilder::build`] in CSR-like form for cheap
/// iteration.
///
/// Parallel edges and self-loops are permitted (the admission-control
/// algorithms never care); generators avoid them unless asked.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CapGraph {
    num_nodes: u32,
    edges: Vec<EdgeInfo>,
    /// CSR offsets into `out_edges`, length `num_nodes + 1`.
    out_offsets: Vec<u32>,
    /// Edge ids grouped by tail node.
    out_edges: Vec<EdgeId>,
}

impl CapGraph {
    /// Start building a graph with `num_nodes` nodes.
    pub fn builder(num_nodes: u32) -> CapGraphBuilder {
        CapGraphBuilder {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The paper's `c = max_e c_e`. Zero on an edgeless graph.
    pub fn max_capacity(&self) -> u32 {
        self.edges.iter().map(|e| e.capacity).max().unwrap_or(0)
    }

    /// Smallest edge capacity. Zero on an edgeless graph.
    pub fn min_capacity(&self) -> u32 {
        self.edges.iter().map(|e| e.capacity).min().unwrap_or(0)
    }

    /// Edge metadata.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> EdgeInfo {
        self.edges[e.index()]
    }

    /// Capacity of edge `e`.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> u32 {
        self.edges[e.index()].capacity
    }

    /// All edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, EdgeInfo)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &info)| (EdgeId(i as u32), info))
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes).map(NodeId)
    }

    /// Out-edges of `v` (edge ids; look up heads via [`Self::edge`]).
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        &self.out_edges[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges(v).len()
    }

    /// Returns a copy of this graph with every capacity replaced by `cap`.
    pub fn with_uniform_capacity(&self, cap: u32) -> CapGraph {
        assert!(cap > 0, "capacities must be positive");
        let mut g = self.clone();
        for e in &mut g.edges {
            e.capacity = cap;
        }
        g
    }

    /// Vector of all capacities, indexed by edge id. Handy for solvers.
    pub fn capacities(&self) -> Vec<u32> {
        self.edges.iter().map(|e| e.capacity).collect()
    }
}

/// Incremental builder for [`CapGraph`].
#[derive(Clone, Debug)]
pub struct CapGraphBuilder {
    num_nodes: u32,
    edges: Vec<EdgeInfo>,
}

impl CapGraphBuilder {
    /// Add a directed edge `from → to` with the given capacity and
    /// return its id.
    ///
    /// # Panics
    /// If either endpoint is out of range or `capacity == 0` (the paper
    /// requires `c_e > 0`).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, capacity: u32) -> EdgeId {
        assert!(from.0 < self.num_nodes, "node {from} out of range");
        assert!(to.0 < self.num_nodes, "node {to} out of range");
        assert!(
            capacity > 0,
            "edge capacity must be positive (paper: c_e > 0)"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeInfo { from, to, capacity });
        id
    }

    /// Add both `a → b` and `b → a` with the same capacity; returns the
    /// pair of ids. Convenience for "undirected" topologies.
    pub fn add_bidirectional(&mut self, a: NodeId, b: NodeId, capacity: u32) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b, capacity), self.add_edge(b, a, capacity))
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalize: compute CSR adjacency.
    pub fn build(self) -> CapGraph {
        let n = self.num_nodes as usize;
        let mut counts = vec![0u32; n + 1];
        for e in &self.edges {
            counts[e.from.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let out_offsets = counts.clone();
        let mut cursor = counts;
        let mut out_edges = vec![EdgeId(0); self.edges.len()];
        for (i, e) in self.edges.iter().enumerate() {
            let slot = cursor[e.from.index()] as usize;
            out_edges[slot] = EdgeId(i as u32);
            cursor[e.from.index()] += 1;
        }
        CapGraph {
            num_nodes: self.num_nodes,
            edges: self.edges,
            out_offsets,
            out_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CapGraph {
        let mut b = CapGraph::builder(3);
        b.add_edge(NodeId(0), NodeId(1), 2);
        b.add_edge(NodeId(1), NodeId(2), 3);
        b.add_edge(NodeId(2), NodeId(0), 1);
        b.build()
    }

    #[test]
    fn builds_and_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_capacity(), 3);
        assert_eq!(g.min_capacity(), 1);
    }

    #[test]
    fn adjacency_is_correct() {
        let g = triangle();
        assert_eq!(g.out_edges(NodeId(0)), &[EdgeId(0)]);
        assert_eq!(g.out_edges(NodeId(1)), &[EdgeId(1)]);
        assert_eq!(g.out_edges(NodeId(2)), &[EdgeId(2)]);
        assert_eq!(g.out_degree(NodeId(0)), 1);
        assert_eq!(g.edge(EdgeId(1)).to, NodeId(2));
    }

    #[test]
    fn multi_edges_allowed() {
        let mut b = CapGraph::builder(2);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(0), NodeId(1), 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.max_capacity(), 5);
    }

    #[test]
    fn bidirectional_adds_two() {
        let mut b = CapGraph::builder(2);
        let (ab, ba) = b.add_bidirectional(NodeId(0), NodeId(1), 4);
        let g = b.build();
        assert_eq!(g.edge(ab).from, NodeId(0));
        assert_eq!(g.edge(ba).from, NodeId(1));
        assert_eq!(g.capacity(ab), 4);
    }

    #[test]
    fn uniform_capacity_rewrite() {
        let g = triangle().with_uniform_capacity(7);
        assert_eq!(g.min_capacity(), 7);
        assert_eq!(g.max_capacity(), 7);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut b = CapGraph::builder(2);
        b.add_edge(NodeId(0), NodeId(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_rejected() {
        let mut b = CapGraph::builder(2);
        b.add_edge(NodeId(0), NodeId(9), 1);
    }

    #[test]
    fn empty_graph() {
        let g = CapGraph::builder(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_capacity(), 0);
    }

    #[test]
    fn capacities_vector_matches() {
        let g = triangle();
        assert_eq!(g.capacities(), vec![2, 3, 1]);
    }
}
