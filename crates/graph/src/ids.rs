//! Strongly-typed node and edge identifiers.
//!
//! Both are thin `u32` newtypes (per the HPC sizing guidance: indices
//! stored small, widened to `usize` at use sites).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`crate::CapGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an edge in a [`crate::CapGraph`].
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`, which
/// lets per-edge state live in flat `Vec`s throughout the workspace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId(7);
        assert_eq!(n.index(), 7);
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(format!("{n:?}"), "n7");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId(11);
        assert_eq!(e.index(), 11);
        assert_eq!(format!("{e}"), "e11");
        assert_eq!(EdgeId::from(11u32), e);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(1));
    }
}
