//! # acmr-graph
//!
//! Capacitated directed multigraph substrate for the admission-control
//! experiments of Alon, Azar & Gutner, *"Admission Control to Minimize
//! Rejections and Online Set Cover with Repetitions"* (SPAA 2005).
//!
//! The paper's model is a directed graph `G = (V, E)` with an integer
//! capacity `c_e > 0` on every edge; communication requests are simple
//! paths (the paper's concluding remark notes the algorithms only ever
//! treat a request as an arbitrary *subset of edges*, and this crate
//! supports both views).
//!
//! Provided here:
//!
//! * [`CapGraph`] — the capacitated multigraph with adjacency indexing.
//! * [`Path`] / [`EdgeSet`] — request footprints, with simple-path
//!   validation.
//! * [`load::LoadTracker`] — exact per-edge load accounting used by the
//!   harness to *audit* that online algorithms never violate capacities.
//! * [`generators`] — the standard graph families used by the
//!   experiment suite (line, ring, star, balanced tree, grid, complete,
//!   Erdős–Rényi `G(n,p)`).
//! * [`routing`] — BFS/Dijkstra shortest paths and seeded random simple
//!   path sampling, used by workload generators.
//!
//! All randomness is taken through caller-supplied [`rand::Rng`]
//! instances so that every experiment is reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edgeset;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod load;
pub mod path;
pub mod routing;

pub use edgeset::EdgeSet;
pub use graph::{CapGraph, EdgeInfo};
pub use ids::{EdgeId, NodeId};
pub use load::LoadTracker;
pub use path::Path;
