//! Exact per-edge load accounting.
//!
//! [`LoadTracker`] is the referee: the harness replays every
//! accept/preempt decision an online algorithm makes through a tracker
//! and verifies that **at every point in time** no edge carries more
//! accepted requests than its capacity — the feasibility condition of
//! the paper's problem definition. Algorithms also use it internally to
//! answer "would accepting this request overflow some edge?".

use crate::edgeset::EdgeSet;
use crate::graph::CapGraph;
use crate::ids::EdgeId;

/// Mutable per-edge load vector with capacity checks.
#[derive(Clone, Debug)]
pub struct LoadTracker {
    capacities: Vec<u32>,
    load: Vec<u32>,
}

impl LoadTracker {
    /// Tracker for `g`, all loads zero.
    pub fn new(g: &CapGraph) -> Self {
        LoadTracker {
            capacities: g.capacities(),
            load: vec![0; g.num_edges()],
        }
    }

    /// Tracker from a raw capacity vector (used by the set cover
    /// reduction, where the "graph" is one edge per element).
    pub fn from_capacities(capacities: Vec<u32>) -> Self {
        let n = capacities.len();
        LoadTracker {
            capacities,
            load: vec![0; n],
        }
    }

    /// Number of tracked edges.
    pub fn num_edges(&self) -> usize {
        self.capacities.len()
    }

    /// Current load on `e`.
    #[inline]
    pub fn load(&self, e: EdgeId) -> u32 {
        self.load[e.index()]
    }

    /// Capacity of `e`.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> u32 {
        self.capacities[e.index()]
    }

    /// Remaining slots on `e` (`capacity − load`), saturating at zero.
    #[inline]
    pub fn residual(&self, e: EdgeId) -> u32 {
        self.capacities[e.index()].saturating_sub(self.load[e.index()])
    }

    /// Would adding one unit on every edge of `fp` keep all loads within
    /// capacity?
    pub fn fits(&self, fp: &EdgeSet) -> bool {
        fp.iter()
            .all(|e| self.load[e.index()] < self.capacities[e.index()])
    }

    /// Add one unit of load on every edge of `fp`.
    ///
    /// # Panics
    /// If any edge would exceed its capacity — callers must check
    /// [`Self::fits`] first; the panic is the feasibility audit.
    pub fn admit(&mut self, fp: &EdgeSet) {
        for e in fp.iter() {
            assert!(
                self.load[e.index()] < self.capacities[e.index()],
                "capacity violated on {e}: load {} = capacity {}",
                self.load[e.index()],
                self.capacities[e.index()],
            );
            self.load[e.index()] += 1;
        }
    }

    /// Remove one unit of load on every edge of `fp` (a preemption).
    ///
    /// # Panics
    /// If some edge of `fp` has zero load (double-release bug).
    pub fn release(&mut self, fp: &EdgeSet) {
        for e in fp.iter() {
            assert!(self.load[e.index()] > 0, "releasing unloaded edge {e}");
            self.load[e.index()] -= 1;
        }
    }

    /// True if every edge satisfies `load ≤ capacity`. Always true
    /// unless internal state was corrupted externally; exposed for
    /// audits and property tests.
    pub fn is_feasible(&self) -> bool {
        self.load
            .iter()
            .zip(&self.capacities)
            .all(|(&l, &c)| l <= c)
    }

    /// Sum of loads over all edges.
    pub fn total_load(&self) -> u64 {
        self.load.iter().map(|&l| l as u64).sum()
    }

    /// Maximum `load/capacity` ratio over edges with positive capacity.
    pub fn max_utilization(&self) -> f64 {
        self.load
            .iter()
            .zip(&self.capacities)
            .filter(|(_, &c)| c > 0)
            .map(|(&l, &c)| l as f64 / c as f64)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CapGraph;
    use crate::ids::NodeId;

    fn two_edge_graph() -> CapGraph {
        let mut b = CapGraph::builder(3);
        b.add_edge(NodeId(0), NodeId(1), 2);
        b.add_edge(NodeId(1), NodeId(2), 1);
        b.build()
    }

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn admit_and_release_roundtrip() {
        let g = two_edge_graph();
        let mut t = LoadTracker::new(&g);
        let f = fp(&[0, 1]);
        assert!(t.fits(&f));
        t.admit(&f);
        assert_eq!(t.load(EdgeId(0)), 1);
        assert_eq!(t.load(EdgeId(1)), 1);
        assert!(!t.fits(&f)); // edge 1 is now full
        t.release(&f);
        assert_eq!(t.total_load(), 0);
        assert!(t.is_feasible());
    }

    #[test]
    fn residuals() {
        let g = two_edge_graph();
        let mut t = LoadTracker::new(&g);
        assert_eq!(t.residual(EdgeId(0)), 2);
        t.admit(&fp(&[0]));
        assert_eq!(t.residual(EdgeId(0)), 1);
        assert_eq!(t.max_utilization(), 0.5);
    }

    #[test]
    #[should_panic(expected = "capacity violated")]
    fn over_admit_panics() {
        let g = two_edge_graph();
        let mut t = LoadTracker::new(&g);
        t.admit(&fp(&[1]));
        t.admit(&fp(&[1])); // capacity 1 exceeded
    }

    #[test]
    #[should_panic(expected = "releasing unloaded")]
    fn double_release_panics() {
        let g = two_edge_graph();
        let mut t = LoadTracker::new(&g);
        t.release(&fp(&[0]));
    }

    #[test]
    fn from_capacities_vector() {
        let mut t = LoadTracker::from_capacities(vec![3, 1]);
        assert_eq!(t.num_edges(), 2);
        t.admit(&fp(&[0]));
        t.admit(&fp(&[0]));
        assert_eq!(t.residual(EdgeId(0)), 1);
    }
}
