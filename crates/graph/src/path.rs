//! Simple paths in a capacitated graph.
//!
//! The paper's requests "arrive together with the path" they should be
//! routed on. [`Path`] stores the ordered edge sequence and validates
//! simplicity (no repeated node); [`Path::edge_set`] converts to the
//! footprint the algorithms actually consume.

use crate::edgeset::EdgeSet;
use crate::graph::CapGraph;
use crate::ids::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// Errors produced by [`Path::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The path has no edges.
    Empty,
    /// Consecutive edges do not share a node (`edge[i].to != edge[i+1].from`).
    Disconnected {
        /// Index of the first edge of the mismatching pair.
        at: usize,
    },
    /// A node occurs twice, so the path is not simple.
    RepeatedNode(NodeId),
    /// An edge id is out of range for the graph.
    UnknownEdge(EdgeId),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Empty => write!(f, "path has no edges"),
            PathError::Disconnected { at } => {
                write!(f, "edges {at} and {} do not share a node", at + 1)
            }
            PathError::RepeatedNode(v) => write!(f, "node {v} repeats; path is not simple"),
            PathError::UnknownEdge(e) => write!(f, "edge {e} is not in the graph"),
        }
    }
}

impl std::error::Error for PathError {}

/// An ordered sequence of edges forming a directed walk; see
/// [`Path::validate`] for the simple-path check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    edges: Vec<EdgeId>,
}

impl Path {
    /// Wrap an edge sequence without validation.
    pub fn new(edges: Vec<EdgeId>) -> Self {
        Path { edges }
    }

    /// The edges in order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges (hops).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the path has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The request footprint: the set of edges, unordered.
    pub fn edge_set(&self) -> EdgeSet {
        EdgeSet::new(self.edges.clone())
    }

    /// First node of the walk, if non-empty.
    pub fn source(&self, g: &CapGraph) -> Option<NodeId> {
        self.edges.first().map(|&e| g.edge(e).from)
    }

    /// Last node of the walk, if non-empty.
    pub fn target(&self, g: &CapGraph) -> Option<NodeId> {
        self.edges.last().map(|&e| g.edge(e).to)
    }

    /// Check that this is a *simple* directed path in `g`: non-empty,
    /// consecutive edges chained head-to-tail, and no node visited twice.
    pub fn validate(&self, g: &CapGraph) -> Result<(), PathError> {
        if self.edges.is_empty() {
            return Err(PathError::Empty);
        }
        for &e in &self.edges {
            if e.index() >= g.num_edges() {
                return Err(PathError::UnknownEdge(e));
            }
        }
        for (i, w) in self.edges.windows(2).enumerate() {
            if g.edge(w[0]).to != g.edge(w[1]).from {
                return Err(PathError::Disconnected { at: i });
            }
        }
        // Node simplicity: source plus every head must be distinct.
        let mut seen: Vec<NodeId> = Vec::with_capacity(self.edges.len() + 1);
        seen.push(g.edge(self.edges[0]).from);
        for &e in &self.edges {
            let v = g.edge(e).to;
            if seen.contains(&v) {
                return Err(PathError::RepeatedNode(v));
            }
            seen.push(v);
        }
        Ok(())
    }
}

impl From<Vec<EdgeId>> for Path {
    fn from(edges: Vec<EdgeId>) -> Self {
        Path::new(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CapGraph;

    /// 0 → 1 → 2 → 3 line plus a chord 0 → 2.
    fn line_with_chord() -> CapGraph {
        let mut b = CapGraph::builder(4);
        b.add_edge(NodeId(0), NodeId(1), 1); // e0
        b.add_edge(NodeId(1), NodeId(2), 1); // e1
        b.add_edge(NodeId(2), NodeId(3), 1); // e2
        b.add_edge(NodeId(0), NodeId(2), 1); // e3 chord
        b.build()
    }

    #[test]
    fn valid_simple_path() {
        let g = line_with_chord();
        let p = Path::new(vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert_eq!(p.validate(&g), Ok(()));
        assert_eq!(p.source(&g), Some(NodeId(0)));
        assert_eq!(p.target(&g), Some(NodeId(3)));
        assert_eq!(p.edge_set().len(), 3);
    }

    #[test]
    fn empty_path_invalid() {
        let g = line_with_chord();
        assert_eq!(Path::new(vec![]).validate(&g), Err(PathError::Empty));
    }

    #[test]
    fn disconnected_detected() {
        let g = line_with_chord();
        let p = Path::new(vec![EdgeId(0), EdgeId(2)]);
        assert_eq!(p.validate(&g), Err(PathError::Disconnected { at: 0 }));
    }

    #[test]
    fn unknown_edge_detected() {
        let g = line_with_chord();
        let p = Path::new(vec![EdgeId(99)]);
        assert_eq!(p.validate(&g), Err(PathError::UnknownEdge(EdgeId(99))));
    }

    #[test]
    fn cycle_not_simple() {
        let mut b = CapGraph::builder(2);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(0), 1);
        let g = b.build();
        let p = Path::new(vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(p.validate(&g), Err(PathError::RepeatedNode(NodeId(0))));
    }

    #[test]
    fn chord_path_valid() {
        let g = line_with_chord();
        let p = Path::new(vec![EdgeId(3), EdgeId(2)]); // 0→2→3
        assert_eq!(p.validate(&g), Ok(()));
    }
}
