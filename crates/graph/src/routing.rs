//! Shortest paths and random simple-path sampling.
//!
//! Workload generators need concrete request paths: [`bfs_path`] gives
//! the fewest-hop route (requests "arrive together with the path it
//! should be routed on"), and [`random_simple_path`] performs a seeded
//! self-avoiding walk for diverse footprints.

use crate::graph::CapGraph;
use crate::ids::NodeId;
use crate::path::Path;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

/// Fewest-hop path from `src` to `dst` via BFS, or `None` if `dst` is
/// unreachable. Deterministic: ties are broken by edge-id order.
pub fn bfs_path(g: &CapGraph, src: NodeId, dst: NodeId) -> Option<Path> {
    if src == dst {
        return None; // a request must traverse at least one edge
    }
    let n = g.num_nodes();
    // parent_edge[v] = edge used to first reach v.
    let mut parent_edge = vec![u32::MAX; n];
    let mut visited = vec![false; n];
    visited[src.index()] = true;
    let mut queue = VecDeque::with_capacity(n);
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &e in g.out_edges(v) {
            let w = g.edge(e).to;
            if !visited[w.index()] {
                visited[w.index()] = true;
                parent_edge[w.index()] = e.0;
                if w == dst {
                    queue.clear();
                    break;
                }
                queue.push_back(w);
            }
        }
    }
    if !visited[dst.index()] {
        return None;
    }
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        let e = crate::ids::EdgeId(parent_edge[cur.index()]);
        edges.push(e);
        cur = g.edge(e).from;
    }
    edges.reverse();
    Some(Path::new(edges))
}

/// Hop distances from `src` to every node (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &CapGraph, src: NodeId) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![u32::MAX; n];
    dist[src.index()] = 0;
    let mut queue = VecDeque::with_capacity(n);
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &e in g.out_edges(v) {
            let w = g.edge(e).to;
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Random self-avoiding walk from `src` of up to `max_hops` hops.
///
/// At each step a random outgoing edge to an unvisited node is taken;
/// the walk stops early when stuck. Returns `None` only if not even one
/// hop was possible. The result is always a valid simple path.
pub fn random_simple_path<R: Rng>(
    g: &CapGraph,
    src: NodeId,
    max_hops: usize,
    rng: &mut R,
) -> Option<Path> {
    assert!(max_hops >= 1, "a path needs at least one hop");
    let mut visited = vec![false; g.num_nodes()];
    visited[src.index()] = true;
    let mut cur = src;
    let mut edges = Vec::with_capacity(max_hops.min(16));
    let mut candidates = Vec::new();
    for _ in 0..max_hops {
        candidates.clear();
        candidates.extend(
            g.out_edges(cur)
                .iter()
                .copied()
                .filter(|&e| !visited[g.edge(e).to.index()]),
        );
        let Some(&e) = candidates.choose(rng) else {
            break;
        };
        edges.push(e);
        cur = g.edge(e).to;
        visited[cur.index()] = true;
    }
    if edges.is_empty() {
        None
    } else {
        Some(Path::new(edges))
    }
}

/// Sample a uniformly random ordered node pair `(src, dst)`, `src ≠ dst`.
pub fn random_node_pair<R: Rng>(g: &CapGraph, rng: &mut R) -> (NodeId, NodeId) {
    let n = g.num_nodes() as u32;
    assert!(n >= 2, "need at least 2 nodes");
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (NodeId(a), NodeId(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bfs_on_line_is_the_line() {
        let g = generators::line(6, 1);
        let p = bfs_path(&g, NodeId(1), NodeId(4)).unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.source(&g), Some(NodeId(1)));
        assert_eq!(p.target(&g), Some(NodeId(4)));
    }

    #[test]
    fn bfs_unreachable_on_line_backwards() {
        let g = generators::line(4, 1);
        assert!(bfs_path(&g, NodeId(3), NodeId(0)).is_none());
    }

    #[test]
    fn bfs_same_node_is_none() {
        let g = generators::line(4, 1);
        assert!(bfs_path(&g, NodeId(2), NodeId(2)).is_none());
    }

    #[test]
    fn bfs_shortest_via_grid() {
        let g = generators::grid(3, 3, 1);
        // Corner to corner on a 3x3 grid: 4 hops.
        let p = bfs_path(&g, NodeId(0), NodeId(8)).unwrap();
        assert_eq!(p.len(), 4);
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn distances_on_ring() {
        let g = generators::ring(5, 1);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_paths_are_simple_and_seeded() {
        let g = generators::grid(4, 4, 2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            if let Some(p) = random_simple_path(&g, NodeId(0), 6, &mut rng) {
                assert!(p.validate(&g).is_ok());
                assert!(p.len() <= 6);
            }
        }
        // Determinism.
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let p1 = random_simple_path(&g, NodeId(5), 8, &mut r1);
        let p2 = random_simple_path(&g, NodeId(5), 8, &mut r2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn random_pair_distinct() {
        let g = generators::line(3, 1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let (a, b) = random_node_pair(&g, &mut rng);
            assert_ne!(a, b);
        }
    }
}
