//! Property-based tests for the graph substrate.

use acmr_graph::{generators, routing, CapGraph, EdgeId, EdgeSet, LoadTracker, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// EdgeSet construction is canonical: any permutation with
    /// duplicates yields the same sorted, deduplicated set.
    #[test]
    fn edgeset_canonical(mut ids in proptest::collection::vec(0u32..500, 0..40)) {
        let a = EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect());
        ids.reverse();
        ids.extend(ids.clone()); // duplicates
        let b = EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect());
        prop_assert_eq!(a.clone(), b);
        prop_assert!(a.as_slice().windows(2).all(|w| w[0] < w[1]));
    }

    /// Intersection size is symmetric and bounded by both set sizes.
    #[test]
    fn intersection_symmetric(
        xs in proptest::collection::vec(0u32..100, 0..30),
        ys in proptest::collection::vec(0u32..100, 0..30),
    ) {
        let a = EdgeSet::new(xs.iter().map(|&i| EdgeId(i)).collect());
        let b = EdgeSet::new(ys.iter().map(|&i| EdgeId(i)).collect());
        let ab = a.intersection_size(&b);
        prop_assert_eq!(ab, b.intersection_size(&a));
        prop_assert!(ab <= a.len() && ab <= b.len());
        prop_assert_eq!(ab > 0, a.intersects(&b));
    }

    /// BFS paths on G(n,p) validate as simple paths and have length
    /// equal to the BFS distance.
    #[test]
    fn bfs_paths_are_shortest(seed in 0u64..500, n in 4u32..24, p in 0.05f64..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, 1, &mut rng);
        let dist = routing::bfs_distances(&g, NodeId(0));
        for v in 1..n {
            let d = dist[v as usize];
            prop_assert_ne!(d, u32::MAX); // backbone ⇒ strongly connected
            let path = routing::bfs_path(&g, NodeId(0), NodeId(v)).unwrap();
            prop_assert!(path.validate(&g).is_ok());
            prop_assert_eq!(path.len() as u32, d);
        }
    }

    /// Random simple paths validate on every topology we generate.
    #[test]
    fn random_walks_validate(seed in 0u64..500, rows in 2u32..5, cols in 2u32..5) {
        let g = generators::grid(rows, cols, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        for start in 0..(rows * cols) {
            if let Some(p) = routing::random_simple_path(&g, NodeId(start), 5, &mut rng) {
                prop_assert!(p.validate(&g).is_ok());
            }
        }
    }

    /// LoadTracker: any admit/release sequence that respects `fits`
    /// keeps the tracker feasible, and releasing everything returns all
    /// loads to zero.
    #[test]
    fn load_tracker_invariants(
        seed in 0u64..500,
        footprints in proptest::collection::vec(
            proptest::collection::vec(0u32..20, 1..6), 1..40),
    ) {
        let _ = seed;
        let mut t = LoadTracker::from_capacities(vec![3; 20]);
        let mut admitted: Vec<EdgeSet> = Vec::new();
        for ids in footprints {
            let fp = EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect());
            if t.fits(&fp) {
                t.admit(&fp);
                admitted.push(fp);
            }
            prop_assert!(t.is_feasible());
        }
        for fp in admitted.iter().rev() {
            t.release(fp);
        }
        prop_assert_eq!(t.total_load(), 0);
    }
}

#[test]
fn generators_produce_positive_capacities() {
    let gs: Vec<CapGraph> = vec![
        generators::line(5, 2),
        generators::ring(5, 2),
        generators::star(4, 2),
        generators::balanced_binary_tree(3, 2),
        generators::grid(3, 3, 2),
        generators::complete(4, 2),
    ];
    for g in gs {
        assert!(g.min_capacity() >= 1);
        for (_, info) in g.edges() {
            assert!(info.from.index() < g.num_nodes());
            assert!(info.to.index() < g.num_nodes());
        }
    }
}
