//! The cross-process sweep driver: [`crate::ShardedDriver`]'s
//! surface, but every worker slot is a remote `acmr serve` process.
//!
//! [`ClusterDriver`] takes the same `(spec, trace)` [`SweepJob`]s and
//! produces the same serde-backed [`SweepReport`] as the thread-level
//! [`crate::ShardedDriver`] — **byte-identical**, pinned by
//! `crates/harness/tests/cluster_differential.rs` — while the jobs
//! themselves run out-of-process: each job runs an `ACMR-SERVE`
//! session against a worker from an [`acmr_serve::WorkerPool`]
//! (spawned `acmr serve` children or adopted remote addresses),
//! replays its trace over the wire in `BATCH` frames, and reads the
//! final [`RunReport`] back. By default the pool negotiates the v2
//! binary-frame dialect and keeps one **persistent session** per
//! worker slot: consecutive jobs reuse the connection via `RESET`
//! frames, the whole trace is pipelined (record-byte arrivals,
//! batch-summary acknowledgements, one round trip per job), and the
//! whole-trace retry contract below is unchanged — a retry always
//! replays from the first arrival on a fresh session
//! (`WorkerPool::proto` drops back to the v1 line protocol for
//! fleets that predate v2; `docs/SERVING.md` specifies both).
//!
//! Division of labor, by design:
//!
//! * **Decisions are remote.** The algorithm runs inside the worker
//!   process, exactly as live traffic would drive it; the serving
//!   differential suite guarantees the wire path is decision-for-
//!   decision identical to an in-process session.
//! * **Bounds are local.** The offline-optimum bound of each distinct
//!   trace is computed **once** on the driver — the same shared
//!   bound-computation phase `ShardedDriver` runs — because a live
//!   worker cannot see the future and the
//!   driver already has the trace. This keeps cluster reports
//!   carrying the same OPT context as sharded ones.
//! * **Failures are typed.** A worker dying mid-job is retried as a
//!   whole-trace replay on a surviving worker (bounded, see
//!   [`WorkerPool`]'s contract); exhaustion surfaces one
//!   [`acmr_core::AcmrError::Remote`] with code
//!   [`acmr_serve::CLUSTER_ERROR_CODE`] and fails the sweep with no
//!   partial report — mirroring how a sharded sweep fails on the
//!   earliest failing job.

use crate::opt::BoundBudget;
use crate::parallel::parallel_map;
use crate::runner::opt_summary;
use crate::shard::{
    aggregate_sweep, compute_shared_bounds, resolve_jobs, SourceRef, SweepJob, SweepReport,
    TraceSource,
};
use acmr_core::RequestSource as _;
use acmr_core::{AcmrError, AdmissionInstance, Request, RunReport};
use acmr_serve::WorkerPool;
use acmr_workloads::open_trace;

/// A fresh per-attempt arrival stream for one job: borrowed from the
/// in-memory instance, or a newly opened chunked reader for a
/// path-backed trace.
type Arrivals<'a> = Box<dyn Iterator<Item = Result<Request, AcmrError>> + 'a>;

/// Open a job's trace source from the top: capacities plus a fresh
/// arrival iterator. Called once per delivery attempt — a retry after
/// a severed connection replays the whole trace, never a suffix.
fn open_arrivals<'a>(source: &SourceRef<'a>) -> Result<(Vec<u32>, Arrivals<'a>), AcmrError> {
    match source {
        SourceRef::Mem(inst) => Ok((
            inst.capacities.clone(),
            Box::new(inst.requests.iter().cloned().map(Ok)),
        )),
        SourceRef::Path(path) => {
            let reader = open_trace(path)?;
            Ok((reader.capacities().to_vec(), Box::new(reader)))
        }
    }
}

/// Fans a set of `(spec, trace)` jobs across the worker processes of
/// an [`acmr_serve::WorkerPool`], replaying each job's trace through
/// a remote `acmr serve` session and aggregating the reports into the
/// same [`SweepReport`] a [`ShardedDriver`] produces — byte-identical
/// for the same jobs, batch, and worker count.
///
/// ```no_run
/// use acmr_harness::{ClusterDriver, SweepJob};
/// use acmr_core::{AdmissionInstance, Request};
/// use acmr_graph::{EdgeId, EdgeSet};
/// use acmr_serve::WorkerPool;
///
/// let mut inst = AdmissionInstance::from_capacities(vec![1]);
/// inst.push(Request::unit(EdgeSet::singleton(EdgeId(0))));
/// // Two pre-started `acmr serve` workers…
/// let pool = WorkerPool::connect(&["10.0.0.1:4790", "10.0.0.2:4790"])?;
/// let sweep = ClusterDriver::new(&pool)
///     .batch(16)
///     .run(
///         &[("t0".to_string(), inst)],
///         &[SweepJob::new("t0", "greedy", 0)],
///     )?;
/// assert_eq!(sweep.totals.jobs, 1);
/// # Ok::<(), acmr_core::AcmrError>(())
/// ```
///
/// [`ShardedDriver`]: crate::ShardedDriver
#[derive(Clone, Copy)]
pub struct ClusterDriver<'p> {
    pool: &'p WorkerPool,
    batch: usize,
    budget: Option<BoundBudget>,
}

impl<'p> ClusterDriver<'p> {
    /// A driver over `pool` with batch size 64 (the [`crate::ShardedDriver`]
    /// default) and no offline-optimum bounds.
    pub fn new(pool: &'p WorkerPool) -> Self {
        ClusterDriver {
            pool,
            batch: 64,
            budget: None,
        }
    }

    /// Set the `BATCH` frame size every job's wire replay uses
    /// (clamped to at least 1; the wire additionally caps frames at
    /// [`acmr_serve::protocol::MAX_BATCH`], which never changes
    /// results — only framing).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Attach offline-optimum context to every job's report, computed
    /// **locally, once per distinct trace** and shared — exactly like
    /// [`crate::ShardedDriver::budget`], so cluster and sharded
    /// reports stay byte-identical.
    pub fn budget(mut self, budget: BoundBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Run `jobs` over the named in-memory `traces` across the worker
    /// pool — the cross-process twin of [`crate::ShardedDriver::run`].
    /// Results are returned in submission order; bad inputs fail fast
    /// before any connection is opened; a job that exhausts its
    /// retries fails the whole sweep with one typed error and no
    /// partial report.
    pub fn run(
        &self,
        traces: &[(String, AdmissionInstance)],
        jobs: &[SweepJob],
    ) -> Result<SweepReport, AcmrError> {
        let names: Vec<&str> = traces.iter().map(|(n, _)| n.as_str()).collect();
        let sources: Vec<SourceRef<'_>> = traces
            .iter()
            .map(|(_, inst)| SourceRef::Mem(inst))
            .collect();
        self.run_refs(&names, &sources, jobs)
    }

    /// [`ClusterDriver::run`] over [`TraceSource`]s: a
    /// [`TraceSource::Path`] job streams its trace file chunk by
    /// chunk straight onto the wire (the driver never materializes
    /// it), and the trace's offline-optimum bound uses the two-pass
    /// streamed scheme — the cross-process twin of
    /// [`crate::ShardedDriver::run_sources`].
    pub fn run_sources(
        &self,
        traces: &[(String, TraceSource)],
        jobs: &[SweepJob],
    ) -> Result<SweepReport, AcmrError> {
        let names: Vec<&str> = traces.iter().map(|(n, _)| n.as_str()).collect();
        let sources: Vec<SourceRef<'_>> = traces
            .iter()
            .map(|(_, s)| match s {
                TraceSource::InMemory(inst) => SourceRef::Mem(inst),
                TraceSource::Path(path) => SourceRef::Path(path),
            })
            .collect();
        self.run_refs(&names, &sources, jobs)
    }

    fn run_refs(
        &self,
        names: &[&str],
        sources: &[SourceRef<'_>],
        jobs: &[SweepJob],
    ) -> Result<SweepReport, AcmrError> {
        // Same fail-fast phase as the sharded driver: unknown traces,
        // duplicate names, malformed specs — all before any socket.
        let resolved = resolve_jobs(names, jobs)?;

        // Phase 1 (local): shared offline-optimum bounds, one per
        // distinct referenced trace, fanned over local threads.
        let workers = self.pool.len();
        let bounds = compute_shared_bounds(sources, &resolved, self.budget, workers)?;

        // Phase 2 (remote): the jobs, fanned over one local driver
        // thread per worker slot; job `i` starts on worker `i % W` so
        // load spreads round-robin, and the pool reroutes on failure.
        let batch = self.batch;
        let pool = self.pool;
        let indexed: Vec<(usize, usize, &SweepJob)> = resolved
            .iter()
            .enumerate()
            .map(|(i, (trace_idx, _, job))| (i, *trace_idx, *job))
            .collect();
        let results: Vec<Result<RunReport, AcmrError>> =
            parallel_map(indexed, workers, |(i, trace_idx, job)| {
                let mut report =
                    pool.run_job(*i, &job.spec, Some(job.seed), Some(batch), || {
                        open_arrivals(&sources[*trace_idx])
                    })?;
                if let Some(bound) = &bounds[*trace_idx] {
                    report.opt = Some(opt_summary(bound, report.rejected_cost));
                }
                Ok(report)
            });

        // The report's `threads` is the fan-out width — worker
        // processes here, exactly as worker threads there — so a
        // cluster sweep over W workers serializes identically to a
        // sharded sweep over W threads.
        aggregate_sweep(self.batch, workers, jobs, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_core::AcmrError;

    #[test]
    fn bad_jobs_fail_fast_before_any_connection() {
        // The pool points at a port nothing listens on; fail-fast
        // validation must reject bad jobs without ever touching it.
        let pool = WorkerPool::connect(&["127.0.0.1:1"]).unwrap();
        let driver = ClusterDriver::new(&pool);
        let traces = vec![("t".to_string(), AdmissionInstance::from_capacities(vec![1]))];
        let err = driver
            .run(&traces, &[SweepJob::new("nope", "greedy", 0)])
            .unwrap_err();
        assert!(err.to_string().contains("unknown trace"), "{err}");
        let err = driver
            .run(&traces, &[SweepJob::new("t", "???", 0)])
            .unwrap_err();
        assert!(matches!(err, AcmrError::SpecParse { .. }), "{err}");
        // All alive workers untouched: validation never connected.
        assert_eq!(pool.alive(), 1);
    }

    #[test]
    fn empty_job_list_is_an_empty_sweep_without_connections() {
        let pool = WorkerPool::connect(&["127.0.0.1:1"]).unwrap();
        let sweep = ClusterDriver::new(&pool)
            .batch(8)
            .run(
                &[("t".to_string(), AdmissionInstance::from_capacities(vec![1]))],
                &[],
            )
            .unwrap();
        assert!(sweep.jobs.is_empty());
        assert_eq!(sweep.batch, 8);
        assert_eq!(sweep.threads, 1);
    }
}
