//! **E11 — the fractional frontier** (extension beyond the paper's
//! tables): for set cover with repetitions, sandwich every algorithm
//! between the online fractional cost and the integral OPT:
//!
//! `OPT_LP ≤ OPT ≤ bicriteria/reduction ≤ naive`, and the online
//! *fractional* solver sits within `O(log m)` of `OPT_LP`.
//!
//! This measures the price of each step of the paper's pipeline:
//! fractionality (online fractional vs LP), integrality (rounding vs
//! fractional), and determinism (bicriteria vs randomized reduction).

use crate::experiments::seed_for;
use crate::opt::{setcover_opt, BoundBudget};
use crate::parallel::{default_threads, parallel_map};
use crate::runner::run_set_cover;
use crate::stats::Summary;
use crate::table::Table;
use acmr_core::setcover::{BicriteriaCover, FractionalCover, ReductionCover};
use acmr_core::RandConfig;
use acmr_workloads::{random_arrivals, random_set_system, ArrivalPattern, SetSystemSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXP_ID: u64 = 11;

/// One sweep cell: mean cost of each layer of the pipeline.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Ground-set size.
    pub n: usize,
    /// Family size.
    pub m: usize,
    /// OPT bound (LP / exact) mean.
    pub opt: Summary,
    /// Online fractional cost mean.
    pub fractional: Summary,
    /// Randomized reduction cost mean.
    pub reduction: Summary,
    /// Deterministic bicriteria (ε = 0.25) cost mean.
    pub bicriteria: Summary,
}

/// Run the sweep.
pub fn run(quick: bool) -> Vec<Cell> {
    let (grid, seeds): (Vec<(usize, usize)>, u64) = if quick {
        (vec![(8, 12), (16, 24)], 3)
    } else {
        (vec![(8, 12), (16, 24), (32, 48), (64, 96)], 8)
    };
    parallel_map(grid, default_threads(), |&(n, m)| {
        let mut opt_v = Vec::new();
        let mut frac_v = Vec::new();
        let mut red_v = Vec::new();
        let mut bi_v = Vec::new();
        for rep in 0..seeds {
            let seed = seed_for(EXP_ID, (n as u64) << 32 | m as u64, rep);
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = SetSystemSpec {
                num_elements: n,
                num_sets: m,
                density: 0.25,
                min_degree: 3,
                max_cost: 1,
            };
            let system = random_set_system(&spec, &mut rng);
            let arrivals = random_arrivals(&system, ArrivalPattern::RoundRobin, 2, &mut rng);
            opt_v.push(setcover_opt(&system, &arrivals, BoundBudget::default()).value);

            let mut frac = FractionalCover::new(system.clone());
            for &j in &arrivals {
                frac.on_arrival(j);
            }
            assert!(frac.is_feasible());
            frac_v.push(frac.cost());

            let mut red = ReductionCover::randomized(
                system.clone(),
                RandConfig::unweighted(),
                StdRng::seed_from_u64(seed ^ 0x11),
            );
            red_v.push(run_set_cover(&mut red, &system, &arrivals).cost);

            let mut bi = BicriteriaCover::new(system.clone(), 0.25);
            bi_v.push(run_set_cover(&mut bi, &system, &arrivals).cost);
        }
        Cell {
            n,
            m,
            opt: Summary::of(&opt_v),
            fractional: Summary::of(&frac_v),
            reduction: Summary::of(&red_v),
            bicriteria: Summary::of(&bi_v),
        }
    })
}

/// Render the E11 table.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "E11 — fractional frontier: cost of each pipeline layer (mean over seeds)",
        &[
            "n",
            "m",
            "OPT bound",
            "online fractional",
            "reduction (rand.)",
            "bicriteria ε=0.25",
        ],
    );
    for cell in cells {
        t.push_row(vec![
            cell.n.to_string(),
            cell.m.to_string(),
            format!("{:.2}", cell.opt.mean),
            format!("{:.2}", cell.fractional.mean),
            format!("{:.2}", cell.reduction.mean),
            format!("{:.2}", cell.bicriteria.mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_ordering_holds() {
        for cell in run(true) {
            // The online fractional solution is feasible for the LP, so
            // it costs at least the LP optimum (≤ OPT bound when bound
            // is LP; allow slack for the exact-bound case).
            assert!(
                cell.fractional.mean >= cell.opt.mean * 0.49,
                "n={} fractional {} far below opt {}",
                cell.n,
                cell.fractional.mean,
                cell.opt.mean
            );
            // Integral algorithms cost at least the integral OPT bound.
            assert!(cell.reduction.mean >= cell.opt.mean - 1e-6);
            // And no layer is absurdly above the theorem envelope.
            let env = 25.0 * (cell.m as f64).ln().max(1.0) * (cell.n as f64).ln().max(1.0);
            assert!(cell.reduction.mean <= env * cell.opt.mean.max(1.0));
            assert!(cell.bicriteria.mean <= env * cell.opt.mean.max(1.0));
        }
    }
}
