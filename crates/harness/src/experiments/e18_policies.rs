//! **E18 — arrival models × policy classes**: rejection rate vs OPT
//! across {adversarial, stochastic-iid, mmpp, diurnal, flash-crowd} ×
//! {paper algorithms, worst-case baselines, stochastic policies}.
//!
//! The scenario-diversity experiment: the paper's algorithms defend a
//! worst-case guarantee, the stochastic policies (`lp-resolve`,
//! `lcb-greedy`) exploit distributional structure. The validated shape
//! is the trade-off itself — on stochastic traffic at least one
//! stochastic policy beats every worst-case algorithm on rejection
//! rate, while on adversarial traces the paper algorithms' theorem
//! envelopes still hold.

use crate::experiments::e1_fractional::kind_label;
use crate::experiments::seed_for;
use crate::opt::{admission_opt, BoundBudget};
use crate::parallel::{default_threads, parallel_map};
use crate::registry::default_registry;
use crate::runner::run_registered;
use crate::stats::Summary;
use crate::table::Table;
use acmr_core::AdmissionInstance;
use acmr_workloads::adversarial::nested_intervals;
use acmr_workloads::stochastic::{stochastic_workload, StochasticSpec, TrafficModel};
use acmr_workloads::{CostModel, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXP_ID: u64 = 18;

/// Arrival-model family for a row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Nested-interval adversarial instance (the paper's home turf).
    Adversarial,
    /// Constant-rate i.i.d. stochastic traffic.
    StochasticIid,
    /// Markov-modulated demand.
    Mmpp,
    /// Diurnal (sinusoidal) cycle.
    Diurnal,
    /// Flash crowds.
    FlashCrowd,
}

impl Family {
    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Family::Adversarial => "adversarial",
            Family::StochasticIid => "stochastic-iid",
            Family::Mmpp => "mmpp",
            Family::Diurnal => "diurnal",
            Family::FlashCrowd => "flash-crowd",
        }
    }

    /// True for the stochastic arrival models.
    pub fn is_stochastic(self) -> bool {
        !matches!(self, Family::Adversarial)
    }

    /// All five families.
    pub const ALL: [Family; 5] = [
        Family::Adversarial,
        Family::StochasticIid,
        Family::Mmpp,
        Family::Diurnal,
        Family::FlashCrowd,
    ];
}

/// The stochastic policies under test (beyond the registry defaults,
/// one explicitly tuned variant each).
pub const NEW_POLICIES: [&str; 2] = ["lp-resolve", "lcb-greedy"];

/// Column order: every registered algorithm under its default spec,
/// plus tuned variants of the stochastic policies.
pub fn algorithm_specs() -> Vec<String> {
    let reg = default_registry();
    let mut specs: Vec<String> = reg.names().iter().map(|s| s.to_string()).collect();
    specs.push("lp-resolve?period=32&buffer=0.02".into());
    specs.push("lcb-greedy?delta=0.2".into());
    specs
}

/// True iff `spec` names one of the stochastic policies.
pub fn is_new_policy(spec: &str) -> bool {
    NEW_POLICIES
        .iter()
        .any(|p| spec == *p || spec.starts_with(&format!("{p}?")))
}

/// One cell: every algorithm on one arrival model.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Arrival model.
    pub family: Family,
    /// Mean rejection rate (rejected cost / offered cost) per
    /// algorithm, in [`algorithm_specs`] order.
    pub rejection: Vec<Summary>,
    /// Ratio vs the OPT bound per algorithm, same order.
    pub ratios: Vec<Summary>,
    /// OPT bound provenance.
    pub bound: &'static str,
}

fn stochastic_model(family: Family) -> TrafficModel {
    match family {
        Family::StochasticIid => TrafficModel::Iid,
        Family::Mmpp => TrafficModel::mmpp_default(),
        Family::Diurnal => TrafficModel::Diurnal {
            period: 64,
            amplitude: 0.8,
        },
        Family::FlashCrowd => TrafficModel::Flash {
            period: 64,
            width: 8,
            boost: 6.0,
        },
        Family::Adversarial => unreachable!("adversarial has no traffic model"),
    }
}

/// The instance behind one `(family, rep)` point.
pub fn instance_for(
    family: Family,
    m: u32,
    cap: u32,
    duration: u32,
    seed: u64,
) -> AdmissionInstance {
    match family {
        Family::Adversarial => nested_intervals(m, 2, 1.max(m / 16), 3),
        _ => {
            let spec = StochasticSpec {
                topology: Topology::Line { m },
                capacity: cap,
                model: stochastic_model(family),
                // ~2× overload: sessions/slot × requests/session (~1.35)
                // × edges/request (~4 under width_alpha 1.1) × duration
                // ≈ 2 · m · cap.
                arrival_rate: 2.0 * (m as f64) * (cap as f64) / (duration as f64 * 1.35 * 4.0),
                duration,
                // Heavy-tailed costs and widths: the value-density
                // spread the stochastic policies are built to exploit.
                costs: CostModel::Zipf {
                    n_values: 64,
                    s: 1.1,
                },
                max_hops: 24,
                session_alpha: 2.2,
                session_max: 8,
                width_alpha: 1.05,
            };
            stochastic_workload(&spec, &mut StdRng::seed_from_u64(seed)).1
        }
    }
}

/// Run the grid.
pub fn run(quick: bool) -> Vec<Cell> {
    let (m, cap, duration, reps) = if quick {
        (96, 6, 256, 3)
    } else {
        (128, 8, 512, 8)
    };
    let specs = algorithm_specs();
    let registry = default_registry();
    let registry = &registry;
    let specs_ref = &specs;
    parallel_map(Family::ALL.to_vec(), default_threads(), move |&family| {
        let mut rej: Vec<Vec<f64>> = vec![Vec::new(); specs_ref.len()];
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); specs_ref.len()];
        let mut bound = "exact";
        for rep in 0..reps {
            let seed = seed_for(EXP_ID, family as u64, rep);
            let inst = instance_for(family, m, cap, duration, seed);
            let opt = admission_opt(&inst, BoundBudget::default());
            bound = kind_label(opt.kind);
            for (k, spec) in specs_ref.iter().enumerate() {
                let report = run_registered(registry, spec, &inst, seed ^ 0xE18 ^ (k as u64) << 16)
                    .expect("registry run");
                if report.offered_cost > 0.0 {
                    rej[k].push(report.rejected_cost / report.offered_cost);
                }
                let r = opt.ratio(report.rejected_cost);
                if r.is_finite() {
                    ratios[k].push(r);
                }
            }
        }
        Cell {
            family,
            rejection: rej.iter().map(|v| Summary::of(v)).collect(),
            ratios: ratios.iter().map(|v| Summary::of(v)).collect(),
            bound,
        }
    })
}

/// Mean rejection rate of algorithm column `k` across the stochastic
/// families of `cells`.
pub fn stochastic_mean_rejection(cells: &[Cell], k: usize) -> f64 {
    let picked: Vec<f64> = cells
        .iter()
        .filter(|c| c.family.is_stochastic())
        .map(|c| c.rejection[k].mean)
        .collect();
    picked.iter().sum::<f64>() / picked.len().max(1) as f64
}

/// Render the E18 table.
pub fn table(cells: &[Cell]) -> Table {
    let specs = algorithm_specs();
    let mut headers: Vec<&str> = vec!["family"];
    headers.extend(specs.iter().map(|s| s.as_str()));
    headers.push("opt bound");
    let mut t = Table::new(
        "E18 — rejection rate: arrival models × policy classes",
        &headers,
    );
    for cell in cells {
        let mut row = vec![cell.family.label().to_string()];
        for s in &cell.rejection {
            row.push(if s.n == 0 {
                "—".into()
            } else {
                format!("{:.3}", s.mean)
            });
        }
        row.push(cell.bound.into());
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_every_family_and_algorithm() {
        let cells = run(true);
        let specs = algorithm_specs();
        assert_eq!(cells.len(), Family::ALL.len());
        // All 8 registered algorithms plus the tuned variants ran over
        // ≥ 4 stochastic arrival models.
        assert!(specs.len() >= 10);
        assert!(cells.iter().filter(|c| c.family.is_stochastic()).count() >= 4);
        for cell in &cells {
            assert_eq!(cell.rejection.len(), specs.len());
            for (k, s) in cell.rejection.iter().enumerate() {
                assert!(s.n > 0, "{} empty on {:?}", specs[k], cell.family);
                assert!(
                    (0.0..=1.0).contains(&s.mean),
                    "{} rejection rate {} out of range",
                    specs[k],
                    s.mean
                );
            }
        }
    }

    #[test]
    fn a_stochastic_policy_beats_every_worst_case_algorithm_on_stochastic_traffic() {
        let cells = run(true);
        let specs = algorithm_specs();
        let best_new = specs
            .iter()
            .enumerate()
            .filter(|(_, s)| is_new_policy(s))
            .map(|(k, _)| stochastic_mean_rejection(&cells, k))
            .fold(f64::INFINITY, f64::min);
        for (k, spec) in specs.iter().enumerate() {
            if is_new_policy(spec) {
                continue;
            }
            let old = stochastic_mean_rejection(&cells, k);
            assert!(
                best_new < old,
                "stochastic policy (rate {best_new:.4}) must beat {spec} (rate {old:.4}) \
                 on stochastic traffic"
            );
        }
    }

    #[test]
    #[ignore = "debug dump"]
    fn dump_table() {
        let cells = run(true);
        println!("{}", table(&cells).to_markdown());
        let specs = algorithm_specs();
        for (k, s) in specs.iter().enumerate() {
            println!(
                "{s}: stochastic mean {:.4}",
                stochastic_mean_rejection(&cells, k)
            );
        }
    }

    #[test]
    fn paper_envelopes_hold_on_adversarial_traces() {
        let cells = run(true);
        let specs = algorithm_specs();
        let adv = cells
            .iter()
            .find(|c| c.family == Family::Adversarial)
            .expect("adversarial row");
        // Theorem envelope on the quick grid: m=48, c=2.
        let envelope = 30.0 * (48.0f64 * 2.0).ln().powi(2);
        for (k, spec) in specs.iter().enumerate() {
            if spec.starts_with("aag-") {
                assert!(
                    adv.ratios[k].n > 0,
                    "{spec} produced no finite adversarial ratios"
                );
                assert!(
                    adv.ratios[k].mean <= envelope,
                    "{spec} adversarial ratio {} above envelope {envelope}",
                    adv.ratios[k].mean
                );
            }
        }
    }
}
