//! **E19 — buyback factor grid × algorithms**: net objective under
//! paid cancellation on buyback-hostile escalation traces.
//!
//! The cancellation-cost scenario axis: every run is billed
//! `factor × cost` per preemption (the session charges it uniformly
//! via `Session::with_buyback_factor`, so free-preemption algorithms
//! pay for their evictions too), and the scored quantity is the *net
//! objective* `rejected_cost + buyback_paid`. The validated shape: on
//! geometric cost-escalation traces the `buyback` policy — which prices
//! its upgrades against the `(1 + δ)` margin, `δ = f + √(f(1+f))` —
//! beats every non-preempting baseline (they keep wave-0 squatters and
//! reject all later, pricier waves), while staying inside its
//! `1 + 2f + 2√(f(1+f))` value-competitive guarantee.

use crate::experiments::seed_for;
use crate::parallel::{default_threads, parallel_map};
use crate::registry::default_registry;
use crate::stats::Summary;
use crate::table::Table;
use acmr_core::{AdmissionInstance, AlgorithmSpec, RunReport, Session};
use acmr_workloads::adversarial::buyback_hostile;

const EXP_ID: u64 = 19;

/// Wave-to-wave price multiplier of the hostile traces. Must clear the
/// buyback rule's `1 + δ` margin for every factor in [`factors`]
/// (`f = 2` needs `> 1 + 2 + √6 ≈ 5.45`) or the policy correctly sits
/// tight and the grid degenerates.
pub const GROWTH: f64 = 8.0;

/// Registered baselines that never preempt — the algorithms the
/// buyback policy must beat on escalation traces (they cannot trade
/// squatters for the pricier waves at any cancellation price).
pub const NON_PREEMPTING: [&str; 3] = ["greedy", "credit-sqrt-m", "lcb-greedy"];

/// The cancellation-factor grid (rows).
pub fn factors(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.25, 1.0]
    } else {
        vec![0.1, 0.25, 0.5, 1.0, 2.0]
    }
}

/// Column order for one grid row: every registered algorithm under its
/// default spec, with `buyback` pinned to the row's factor so its
/// margin matches the price it is billed.
pub fn algorithm_specs(factor: f64) -> Vec<String> {
    default_registry()
        .names()
        .iter()
        .map(|name| {
            if *name == "buyback" {
                format!("buyback?factor={factor}")
            } else {
                (*name).to_string()
            }
        })
        .collect()
}

/// Exact offline-optimal rejected cost for an all-singleton instance:
/// edges are independent, so OPT keeps each edge's `cap` most
/// expensive requests and rejects the rest. Panics if any footprint
/// spans more than one edge.
pub fn exact_singleton_opt(inst: &AdmissionInstance) -> f64 {
    let mut per_edge: Vec<Vec<f64>> = vec![Vec::new(); inst.capacities.len()];
    for r in &inst.requests {
        assert_eq!(r.footprint.len(), 1, "exact_singleton_opt needs singletons");
        per_edge[r.footprint.iter().next().unwrap().index()].push(r.cost);
    }
    let mut rejected = 0.0;
    for (e, costs) in per_edge.iter_mut().enumerate() {
        costs.sort_by(f64::total_cmp);
        let keep = inst.capacities[e] as usize;
        let cut = costs.len().saturating_sub(keep);
        rejected += costs[..cut].iter().sum::<f64>();
    }
    rejected
}

/// Run `spec` over `inst` with the session billing `factor × cost` per
/// preemption, regardless of what the algorithm itself advertises —
/// the uniform scenario charge of the E19 grid.
pub fn run_billed(
    spec: &str,
    inst: &AdmissionInstance,
    base_seed: u64,
    factor: f64,
) -> Result<RunReport, acmr_core::AcmrError> {
    let registry = default_registry();
    let parsed = AlgorithmSpec::parse(spec)?;
    let mut session = Session::from_registry(&registry, &parsed, &inst.capacities, base_seed)?
        .with_buyback_factor(factor)?;
    session.run_trace(inst)
}

/// One grid row: every algorithm billed at one cancellation factor.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Cancellation factor `f` of this row.
    pub factor: f64,
    /// The theorem guarantee `1 + 2f + 2√(f(1+f))` for this factor.
    pub guarantee: f64,
    /// Mean net objective (`rejected_cost + buyback_paid`) per
    /// algorithm, in [`algorithm_specs`] order.
    pub net: Vec<Summary>,
    /// Mean buyback charges per algorithm, same order.
    pub paid: Vec<Summary>,
    /// Value-competitive ratio `(offered − OPT_rej) / (offered − net)`
    /// vs the exact singleton OPT, same order (only finite, positive
    /// denominators are summarized).
    pub value_ratios: Vec<Summary>,
}

/// The hostile instance behind one `(factor-row, rep)` point: reps
/// vary the wave count so rows aggregate over several escalation
/// depths (the traces are deterministic; randomized algorithms draw
/// their seeds from [`seed_for`]).
pub fn instance_for(m: u32, cap: u32, rep: u64) -> AdmissionInstance {
    buyback_hostile(m, cap, 4 + rep as u32, GROWTH)
}

/// Run the grid.
pub fn run(quick: bool) -> Vec<Cell> {
    let (m, cap, reps) = if quick { (6, 3, 2) } else { (12, 4, 3) };
    let rows = factors(quick);
    parallel_map(rows, default_threads(), move |&factor| {
        let specs = algorithm_specs(factor);
        let mut net: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
        let mut paid: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
        for rep in 0..reps {
            let inst = instance_for(m, cap, rep);
            let opt_rejected = exact_singleton_opt(&inst);
            for (k, spec) in specs.iter().enumerate() {
                let seed = seed_for(EXP_ID, (factor * 1000.0) as u64, rep ^ ((k as u64) << 8));
                let report = run_billed(spec, &inst, seed, factor).expect("billed run");
                net[k].push(report.net_objective);
                paid[k].push(report.buyback_paid);
                let kept = report.offered_cost - report.net_objective;
                if kept > 0.0 {
                    ratios[k].push((report.offered_cost - opt_rejected) / kept);
                }
            }
        }
        Cell {
            factor,
            guarantee: acmr_baselines::Buyback::guarantee(factor),
            net: net.iter().map(|v| Summary::of(v)).collect(),
            paid: paid.iter().map(|v| Summary::of(v)).collect(),
            value_ratios: ratios.iter().map(|v| Summary::of(v)).collect(),
        }
    })
}

/// Render the E19 table (net objective per algorithm × factor).
pub fn table(cells: &[Cell]) -> Table {
    let mut headers: Vec<String> = vec!["factor".into()];
    headers.extend(default_registry().names().iter().map(|s| (*s).to_string()));
    headers.push("guarantee".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "E19 — net objective (rejected + buyback) on buyback-hostile escalation",
        &header_refs,
    );
    for cell in cells {
        let mut row = vec![format!("{:.2}", cell.factor)];
        for s in &cell.net {
            row.push(if s.n == 0 {
                "—".into()
            } else {
                format!("{:.1}", s.mean)
            });
        }
        row.push(format!("{:.2}", cell.guarantee));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_every_factor_and_algorithm() {
        let cells = run(true);
        assert_eq!(cells.len(), factors(true).len());
        for cell in &cells {
            let specs = algorithm_specs(cell.factor);
            assert_eq!(cell.net.len(), specs.len());
            assert!(specs.iter().any(|s| s.starts_with("buyback?factor=")));
            for (k, s) in cell.net.iter().enumerate() {
                assert!(s.n > 0, "{} produced no runs", specs[k]);
                assert!(s.mean.is_finite() && s.mean >= 0.0, "{}", specs[k]);
            }
            // Non-preemptors are never charged: zero buyback paid.
            for (k, spec) in specs.iter().enumerate() {
                if NON_PREEMPTING.contains(&spec.as_str()) {
                    assert_eq!(cell.paid[k].mean, 0.0, "{spec} paid buyback");
                }
            }
        }
    }

    #[test]
    fn buyback_beats_every_non_preempting_baseline_on_hostile_traces() {
        let cells = run(true);
        for cell in &cells {
            let specs = algorithm_specs(cell.factor);
            let bb = specs
                .iter()
                .position(|s| s.starts_with("buyback?"))
                .expect("buyback column");
            for name in NON_PREEMPTING {
                let k = specs.iter().position(|s| s == name).expect(name);
                assert!(
                    cell.net[bb].mean < cell.net[k].mean,
                    "factor {}: buyback net {} must beat {name} net {}",
                    cell.factor,
                    cell.net[bb].mean,
                    cell.net[k].mean
                );
            }
        }
    }

    #[test]
    fn buyback_stays_inside_its_guarantee_on_the_grid() {
        let cells = run(true);
        for cell in &cells {
            let specs = algorithm_specs(cell.factor);
            let bb = specs
                .iter()
                .position(|s| s.starts_with("buyback?"))
                .expect("buyback column");
            let ratios = &cell.value_ratios[bb];
            assert!(ratios.n > 0, "no finite value ratios at {}", cell.factor);
            assert!(
                ratios.max <= cell.guarantee + 1e-9,
                "factor {}: value ratio {} above guarantee {}",
                cell.factor,
                ratios.max,
                cell.guarantee
            );
        }
    }

    #[test]
    fn exact_singleton_opt_keeps_top_costs() {
        let inst = buyback_hostile(2, 1, 3, 4.0);
        // Each edge sees costs {1, 4, 16}; cap 1 keeps 16, rejects 5.
        assert_eq!(exact_singleton_opt(&inst), 2.0 * 5.0);
    }

    #[test]
    #[ignore = "debug dump"]
    fn dump_table() {
        let cells = run(true);
        println!("{}", table(&cells).to_markdown());
    }
}
