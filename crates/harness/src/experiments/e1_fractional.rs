//! **E1 — Theorem 2**: the fractional algorithm is
//! `O(log(mc))`-competitive (weighted) / `O(log c)` (unweighted)
//! against the *fractional* optimum.
//!
//! Sweep `(m, c)` on line topologies with random-interval workloads at
//! 2× overload; measure `C_frac / OPT_LP` (the LP relaxation *is* the
//! fractional optimum here). The validated claim: the normalized
//! column — ratio divided by the theorem's logarithm — stays bounded
//! (roughly flat) as `m` and `c` grow.

use crate::experiments::seed_for;
use crate::opt::{admission_covering_problem, BoundBudget, OptBound};
use crate::parallel::{default_threads, parallel_map};
use crate::stats::Summary;
use crate::table::Table;
use acmr_core::{FracConfig, FracEngine, Weighting};
use acmr_workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXP_ID: u64 = 1;

/// One sweep cell result.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Edge count `m`.
    pub m: u32,
    /// Uniform capacity `c`.
    pub c: u32,
    /// Weighted or unweighted.
    pub weighting: Weighting,
    /// Mean competitive ratio vs the fractional optimum.
    pub ratio: Summary,
    /// `ratio.mean` divided by the theorem's logarithm.
    pub normalized: f64,
    /// Provenance of the OPT figure ("lp" exact fractional OPT,
    /// "greedy/H" scalable lower bound — ratios then conservative).
    pub bound: &'static str,
}

pub(crate) fn kind_label(kind: crate::opt::OptBoundKind) -> &'static str {
    match kind {
        crate::opt::OptBoundKind::Exact => "exact",
        crate::opt::OptBoundKind::LpLowerBound => "lp",
        crate::opt::OptBoundKind::GreedyOverH => "greedy/H",
        crate::opt::OptBoundKind::Trivial => "Q",
    }
}

fn theorem_log(weighting: Weighting, m: u32, c: u32) -> f64 {
    match weighting {
        Weighting::Weighted => (m as f64 * c as f64).ln().max(1.0),
        Weighting::Unweighted => (c as f64).ln().max(1.0),
    }
}

/// Run the sweep. `quick` shrinks the grid for tests.
pub fn run(quick: bool) -> Vec<Cell> {
    let (ms, cs, reps): (Vec<u32>, Vec<u32>, u64) = if quick {
        (vec![16, 64], vec![2, 8], 3)
    } else {
        (vec![16, 64, 256, 1024], vec![2, 8, 32], 8)
    };
    let mut cells: Vec<(u32, u32, Weighting)> = Vec::new();
    for &m in &ms {
        for &c in &cs {
            cells.push((m, c, Weighting::Unweighted));
            cells.push((m, c, Weighting::Weighted));
        }
    }
    parallel_map(cells, default_threads(), |&(m, c, weighting)| {
        let mut ratios = Vec::new();
        let mut bound = "exact";
        for rep in 0..reps {
            let cell_id =
                (m as u64) << 32 | (c as u64) << 8 | (weighting == Weighting::Weighted) as u64;
            let seed = seed_for(EXP_ID, cell_id, rep);
            let costs = match weighting {
                Weighting::Unweighted => CostModel::Unit,
                Weighting::Weighted => CostModel::Zipf {
                    n_values: 64,
                    s: 1.1,
                },
            };
            let spec = PathWorkloadSpec {
                topology: Topology::Line { m },
                capacity: c,
                overload: 2.0,
                costs,
                max_hops: 8,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, inst) = random_path_workload(&spec, &mut rng);
            let cfg = match weighting {
                Weighting::Weighted => FracConfig::weighted(),
                Weighting::Unweighted => FracConfig::unweighted(),
            };
            let mut eng = FracEngine::new(&inst.capacities, cfg);
            for r in &inst.requests {
                eng.on_request(&r.footprint, r.cost);
            }
            assert!(
                eng.covering_invariant_holds(),
                "covering invariant violated"
            );
            // The fractional optimum = LP bound (no B&B needed: Thm 2 is
            // vs fractional OPT).
            let problem = admission_covering_problem(&inst);
            let budget = BoundBudget {
                max_exact_items: 0, // fractional benchmark: skip B&B
                ..Default::default()
            };
            let opt = OptBound::compute(&problem, budget, inst.max_excess() as f64);
            bound = kind_label(opt.kind);
            let ratio = opt.ratio(eng.online_cost());
            if ratio.is_finite() {
                ratios.push(ratio);
            }
        }
        let ratio = Summary::of(&ratios);
        let normalized = ratio.mean / theorem_log(weighting, m, c);
        Cell {
            m,
            c,
            weighting,
            ratio,
            normalized,
            bound,
        }
    })
}

/// Render the sweep as the E1 table.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "E1 — fractional competitiveness vs fractional OPT (Theorem 2)",
        &[
            "m",
            "c",
            "case",
            "ratio (mean ± std)",
            "ratio / log",
            "log",
            "opt bound",
        ],
    );
    for cell in cells {
        let (case, log) = match cell.weighting {
            Weighting::Weighted => ("weighted", theorem_log(cell.weighting, cell.m, cell.c)),
            Weighting::Unweighted => ("unweighted", theorem_log(cell.weighting, cell.m, cell.c)),
        };
        t.push_row(vec![
            cell.m.to_string(),
            cell.c.to_string(),
            case.into(),
            cell.ratio.mean_pm_std(),
            format!("{:.3}", cell.normalized),
            format!("{log:.2}"),
            cell.bound.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_validates_theorem_shape() {
        let cells = run(true);
        assert!(!cells.is_empty());
        for cell in &cells {
            assert!(cell.ratio.n > 0, "cell had no finite ratios");
            // Theorem 2 with generous constant: ratio ≤ 12·log.
            let log = theorem_log(cell.weighting, cell.m, cell.c);
            assert!(
                cell.ratio.mean <= 12.0 * log,
                "m={} c={} {:?}: mean ratio {} > 12·log {}",
                cell.m,
                cell.c,
                cell.weighting,
                cell.ratio.mean,
                12.0 * log
            );
            // Fractional online can never beat the fractional optimum.
            assert!(cell.ratio.min >= 1.0 - 1e-6);
        }
        let t = table(&cells);
        assert_eq!(t.num_rows(), cells.len());
    }
}
