//! **E2 — Lemma 1**: the number of weight-augmentation rounds is
//! `O(α·log(gc))` where `α = C_OPT` (normalized units).
//!
//! The clean setting is the unweighted hot-edge instance: `ρ·c` unit
//! requests on one capacity-`c` edge, where OPT = `(ρ−1)·c` exactly and
//! `g = 1`, so Lemma 1 predicts rounds `≤ K·OPT·ln(c)`. The validated
//! shape: `rounds / (OPT·ln(2c))` stays bounded as `c` grows and as the
//! overload `ρ` grows.

use crate::table::Table;
use acmr_core::{FracConfig, FracEngine};
use acmr_workloads::adversarial::repeated_hot_edge;

/// One cell of the E2 sweep.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Edge capacity `c`.
    pub c: u32,
    /// Overload factor `ρ` (total = `ρ·c` requests).
    pub rho: u32,
    /// Exact OPT = `(ρ−1)·c`.
    pub opt: u64,
    /// Measured augmentation rounds.
    pub rounds: u64,
    /// `rounds / (OPT · ln(2c))` — Lemma 1's hidden constant.
    pub normalized: f64,
}

/// Run the sweep. `quick` shrinks the grid.
pub fn run(quick: bool) -> Vec<Cell> {
    let (cs, rhos): (Vec<u32>, Vec<u32>) = if quick {
        (vec![2, 8, 32], vec![2, 4])
    } else {
        (vec![2, 8, 32, 128, 512], vec![2, 4, 8])
    };
    let mut out = Vec::new();
    for &c in &cs {
        for &rho in &rhos {
            let total = rho * c;
            let inst = repeated_hot_edge(4, c, total);
            let mut eng = FracEngine::new(&inst.capacities, FracConfig::unweighted());
            for r in &inst.requests {
                eng.on_request(&r.footprint, r.cost);
            }
            let opt = ((rho - 1) * c) as u64;
            let log = (2.0 * c as f64).ln().max(1.0);
            let normalized = eng.augmentations() as f64 / (opt as f64 * log);
            out.push(Cell {
                c,
                rho,
                opt,
                rounds: eng.augmentations(),
                normalized,
            });
        }
    }
    out
}

/// Render the E2 table.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "E2 — weight-augmentation rounds vs Lemma 1 bound O(α·log(gc))",
        &["c", "ρ", "OPT", "rounds", "rounds/(OPT·ln 2c)"],
    );
    for cell in cells {
        t.push_row(vec![
            cell.c.to_string(),
            cell.rho.to_string(),
            cell.opt.to_string(),
            cell.rounds.to_string(),
            format!("{:.3}", cell.normalized),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_constant_is_bounded() {
        let cells = run(true);
        for cell in &cells {
            assert!(
                cell.normalized <= 12.0,
                "c={} ρ={}: normalized {} exceeds Lemma 1 slack",
                cell.c,
                cell.rho,
                cell.normalized
            );
            assert!(cell.rounds > 0, "overloaded edge must augment");
        }
    }

    #[test]
    fn rounds_scale_with_opt_not_superlinearly() {
        let cells = run(true);
        // Group by c: doubling ρ (hence OPT) must not explode the
        // normalized constant.
        for w in cells.windows(2) {
            if w[0].c == w[1].c {
                assert!(
                    w[1].normalized <= w[0].normalized * 4.0 + 2.0,
                    "normalized constant grows too fast: {:?} -> {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}
