//! **E3 — Theorem 3**: the randomized integral algorithm is
//! `O(log²(mc))`-competitive for arbitrary costs.
//!
//! Sweep `(m, c)` with Zipf-distributed costs on line workloads at 2×
//! overload, 16+ seeds per cell; the validated shape is that
//! `ratio / ln²(mc)` stays bounded as both parameters grow.

use crate::experiments::e1_fractional::kind_label;
use crate::experiments::seed_for;
use crate::opt::{admission_opt, BoundBudget};
use crate::parallel::{default_threads, parallel_map};
use crate::registry::default_registry;
use crate::runner::run_registered;
use crate::stats::Summary;
use crate::table::Table;
use acmr_core::DEFAULT_ALGORITHM;
use acmr_workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXP_ID: u64 = 3;

/// One sweep cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Edge count.
    pub m: u32,
    /// Uniform capacity.
    pub c: u32,
    /// Competitive ratio summary across seeds.
    pub ratio: Summary,
    /// `ratio.mean / ln²(mc)`.
    pub normalized: f64,
    /// OPT bound provenance.
    pub bound: &'static str,
}

/// Run the sweep.
pub fn run(quick: bool) -> Vec<Cell> {
    let (ms, cs, reps): (Vec<u32>, Vec<u32>, u64) = if quick {
        (vec![16, 64], vec![2, 8], 4)
    } else {
        (vec![16, 64, 256], vec![2, 8, 32], 16)
    };
    let mut cells = Vec::new();
    for &m in &ms {
        for &c in &cs {
            cells.push((m, c));
        }
    }
    let registry = default_registry();
    let registry = &registry;
    parallel_map(cells, default_threads(), move |&(m, c)| {
        let mut ratios = Vec::new();
        let mut bound = "exact";
        for rep in 0..reps {
            let seed = seed_for(EXP_ID, (m as u64) << 32 | c as u64, rep);
            let spec = PathWorkloadSpec {
                topology: Topology::Line { m },
                capacity: c,
                overload: 2.0,
                costs: CostModel::Zipf {
                    n_values: 64,
                    s: 1.1,
                },
                max_hops: 8,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, inst) = random_path_workload(&spec, &mut rng);
            let report = run_registered(registry, DEFAULT_ALGORITHM, &inst, seed ^ 0xDEAD_BEEF)
                .expect("registry run");
            let opt = admission_opt(&inst, BoundBudget::default());
            bound = kind_label(opt.kind);
            let ratio = opt.ratio(report.rejected_cost);
            if ratio.is_finite() {
                ratios.push(ratio);
            }
        }
        let ratio = Summary::of(&ratios);
        let log2 = (m as f64 * c as f64).ln().max(1.0).powi(2);
        Cell {
            m,
            c,
            normalized: ratio.mean / log2,
            ratio,
            bound,
        }
    })
}

/// Render the E3 table.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "E3 — randomized weighted competitiveness vs O(log²(mc)) (Theorem 3)",
        &[
            "m",
            "c",
            "ratio (mean ± std)",
            "ratio / ln²(mc)",
            "ln²(mc)",
            "opt bound",
        ],
    );
    for cell in cells {
        let log2 = (cell.m as f64 * cell.c as f64).ln().max(1.0).powi(2);
        t.push_row(vec![
            cell.m.to_string(),
            cell.c.to_string(),
            cell.ratio.mean_pm_std(),
            format!("{:.4}", cell.normalized),
            format!("{log2:.1}"),
            cell.bound.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_within_theorem_envelope() {
        let cells = run(true);
        for cell in &cells {
            assert!(cell.ratio.n > 0);
            let log2 = (cell.m as f64 * cell.c as f64).ln().max(1.0).powi(2);
            // Generous constant: the theorem allows K·log²; we check the
            // measured constant is modest.
            assert!(
                cell.ratio.mean <= 20.0 * log2,
                "m={} c={}: ratio {} vs log² {}",
                cell.m,
                cell.c,
                cell.ratio.mean,
                log2
            );
        }
    }
}
