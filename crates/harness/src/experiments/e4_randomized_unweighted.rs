//! **E4 — Theorem 4**: the unweighted randomized algorithm is
//! `O(log m · log c)`-competitive.
//!
//! Two one-dimensional sweeps separate the factors: `m` grows at fixed
//! `c`, and `c` grows at fixed `m`. The validated shape:
//! `ratio / (ln m · ln c)` bounded along both axes.

use crate::experiments::e1_fractional::kind_label;
use crate::experiments::seed_for;
use crate::opt::{admission_opt, BoundBudget};
use crate::parallel::{default_threads, parallel_map};
use crate::registry::default_registry;
use crate::runner::run_registered;
use crate::stats::Summary;
use crate::table::Table;
use acmr_workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXP_ID: u64 = 4;

/// Which parameter the row sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// `m` varies, `c` fixed.
    M,
    /// `c` varies, `m` fixed.
    C,
}

/// One sweep cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Sweep axis.
    pub axis: Axis,
    /// Edge count.
    pub m: u32,
    /// Capacity.
    pub c: u32,
    /// Ratio summary.
    pub ratio: Summary,
    /// `ratio.mean / (ln m · ln c)`.
    pub normalized: f64,
    /// OPT bound provenance.
    pub bound: &'static str,
}

/// Run both axes.
pub fn run(quick: bool) -> Vec<Cell> {
    let (m_axis, c_axis, reps): (Vec<u32>, Vec<u32>, u64) = if quick {
        (vec![16, 64], vec![2, 8], 4)
    } else {
        (vec![16, 64, 256, 1024], vec![2, 8, 32, 128], 16)
    };
    let fixed_c = 4u32;
    let fixed_m = 64u32;
    let mut cells: Vec<(Axis, u32, u32)> = Vec::new();
    for &m in &m_axis {
        cells.push((Axis::M, m, fixed_c));
    }
    for &c in &c_axis {
        cells.push((Axis::C, fixed_m, c));
    }
    let registry = default_registry();
    let registry = &registry;
    parallel_map(cells, default_threads(), move |&(axis, m, c)| {
        let mut ratios = Vec::new();
        let mut bound = "exact";
        for rep in 0..reps {
            let cell_id = (axis == Axis::C) as u64 | (m as u64) << 32 | (c as u64) << 8;
            let seed = seed_for(EXP_ID, cell_id, rep);
            let spec = PathWorkloadSpec {
                topology: Topology::Line { m },
                capacity: c,
                overload: 2.0,
                costs: CostModel::Unit,
                max_hops: 8,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, inst) = random_path_workload(&spec, &mut rng);
            let report = run_registered(registry, "aag-unweighted", &inst, seed ^ 0xBEEF_CAFE)
                .expect("registry run");
            let opt = admission_opt(&inst, BoundBudget::default());
            bound = kind_label(opt.kind);
            let ratio = opt.ratio(report.rejected_cost);
            if ratio.is_finite() {
                ratios.push(ratio);
            }
        }
        let ratio = Summary::of(&ratios);
        let log_product = (m as f64).ln().max(1.0) * (c as f64).ln().max(1.0);
        Cell {
            axis,
            m,
            c,
            normalized: ratio.mean / log_product,
            ratio,
            bound,
        }
    })
}

/// Render the E4 table.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "E4 — unweighted randomized competitiveness vs O(log m · log c) (Theorem 4)",
        &[
            "axis",
            "m",
            "c",
            "ratio (mean ± std)",
            "ratio/(ln m·ln c)",
            "opt bound",
        ],
    );
    for cell in cells {
        t.push_row(vec![
            match cell.axis {
                Axis::M => "m↑".into(),
                Axis::C => "c↑".into(),
            },
            cell.m.to_string(),
            cell.c.to_string(),
            cell.ratio.mean_pm_std(),
            format!("{:.4}", cell.normalized),
            cell.bound.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_within_theorem_envelope() {
        let cells = run(true);
        assert!(cells.iter().any(|c| c.axis == Axis::M));
        assert!(cells.iter().any(|c| c.axis == Axis::C));
        for cell in &cells {
            let bound = 20.0 * (cell.m as f64).ln().max(1.0) * (cell.c as f64).ln().max(1.0);
            assert!(
                cell.ratio.mean <= bound,
                "{:?} m={} c={}: ratio {} > {}",
                cell.axis,
                cell.m,
                cell.c,
                cell.ratio.mean,
                bound
            );
        }
    }
}
