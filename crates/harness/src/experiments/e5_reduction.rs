//! **E5 — §4 reduction**: online set cover with repetitions through the
//! admission-control algorithm is `O(log m log n)`-competitive
//! (unweighted; `O(log²(mn))` weighted).
//!
//! Sweep `(n, m)` over random set systems with round-robin repetition
//! schedules; compare the reduction against the naive online baseline
//! and the offline greedy, all vs the same OPT bound. The validated
//! shape: the reduction's `ratio / (ln m · ln n)` is bounded, and the
//! reduction beats naive on the structured gap instances.

use crate::experiments::e1_fractional::kind_label;
use crate::experiments::seed_for;
use crate::opt::{setcover_opt, BoundBudget};
use crate::parallel::{default_threads, parallel_map};
use crate::runner::run_set_cover;
use crate::stats::Summary;
use crate::table::Table;
use acmr_baselines::setcover::offline_greedy_multicover;
use acmr_baselines::NaiveOnlineCover;
use acmr_core::setcover::ReductionCover;
use acmr_core::RandConfig;
use acmr_workloads::{
    random_arrivals, random_set_system, structured_partition_system, ArrivalPattern, SetSystemSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXP_ID: u64 = 5;

/// Instance family of a row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Dense random set system — naive is near-optimal here; the
    /// interesting claim is the reduction's theorem envelope.
    Random,
    /// Partition-gap system (one global set vs per-block copies) —
    /// the structured regime where the reduction beats naive.
    PartitionGap,
}

impl Family {
    fn label(self) -> &'static str {
        match self {
            Family::Random => "random",
            Family::PartitionGap => "gap",
        }
    }
}

/// One sweep cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Instance family.
    pub family: Family,
    /// Ground-set size.
    pub n: usize,
    /// Family size.
    pub m: usize,
    /// Repetitions per element (round-robin rounds).
    pub reps_per_element: u32,
    /// Reduction algorithm's ratio.
    pub reduction_ratio: Summary,
    /// Naive online baseline's ratio.
    pub naive_ratio: Summary,
    /// Offline greedy's ratio (the offline benchmark).
    pub greedy_ratio: Summary,
    /// `reduction_ratio.mean / (ln m · ln n)`.
    pub normalized: f64,
    /// Coverage repairs the reduction needed (should be 0).
    pub repairs: u64,
    /// OPT bound provenance.
    pub bound: &'static str,
}

/// Run the sweep.
pub fn run(quick: bool) -> Vec<Cell> {
    let (grid, seeds): (Vec<(usize, usize)>, u64) = if quick {
        (vec![(8, 12), (16, 24)], 3)
    } else {
        (vec![(8, 12), (16, 24), (32, 48), (64, 96), (128, 192)], 8)
    };
    let mut cells: Vec<(Family, usize, usize)> =
        grid.iter().map(|&(n, m)| (Family::Random, n, m)).collect();
    // Gap instances: groups = n/4, 2 copies each + global ⇒ m = n/2 + 1.
    for &(n, _) in &grid {
        cells.push((Family::PartitionGap, n, n + 1));
    }
    parallel_map(cells, default_threads(), |&(family, n, m)| {
        let reps_per_element = match family {
            Family::Random => 2u32,
            Family::PartitionGap => 1u32,
        };
        let mut red_ratios = Vec::new();
        let mut naive_ratios = Vec::new();
        let mut greedy_ratios = Vec::new();
        let mut repairs = 0u64;
        let mut bound = "exact";
        for rep in 0..seeds {
            let seed = seed_for(
                EXP_ID,
                (family as u64) << 48 | (n as u64) << 24 | m as u64,
                rep,
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let system = match family {
                Family::Random => {
                    let spec = SetSystemSpec {
                        num_elements: n,
                        num_sets: m,
                        density: 0.25,
                        min_degree: reps_per_element as usize + 1,
                        max_cost: 1,
                    };
                    random_set_system(&spec, &mut rng)
                }
                Family::PartitionGap => structured_partition_system(n, (n / 2).max(2), 2),
            };
            let arrivals = random_arrivals(
                &system,
                ArrivalPattern::RoundRobin,
                reps_per_element,
                &mut rng,
            );
            let opt = setcover_opt(&system, &arrivals, BoundBudget::default());
            bound = kind_label(opt.kind);

            let mut reduction = ReductionCover::randomized(
                system.clone(),
                RandConfig::unweighted(),
                StdRng::seed_from_u64(seed ^ 0xABCD),
            );
            let red_run = run_set_cover(&mut reduction, &system, &arrivals);
            repairs += reduction.repairs();
            red_ratios.push(opt.ratio(red_run.cost));

            let mut naive = NaiveOnlineCover::new(system.clone());
            let naive_run = run_set_cover(&mut naive, &system, &arrivals);
            naive_ratios.push(opt.ratio(naive_run.cost));

            let mut demands = vec![0u32; n];
            for &j in &arrivals {
                demands[j as usize] += 1;
            }
            let greedy = offline_greedy_multicover(&system, &demands)
                .expect("round-robin schedule is feasible");
            greedy_ratios.push(opt.ratio(greedy.len() as f64));
        }
        let reduction_ratio = Summary::of(&red_ratios);
        let m_actual = match family {
            Family::Random => m,
            Family::PartitionGap => (n / 2).max(2) * 2 + 1,
        };
        let log_product = (m_actual as f64).ln().max(1.0) * (n as f64).ln().max(1.0);
        Cell {
            family,
            n,
            m: m_actual,
            reps_per_element,
            normalized: reduction_ratio.mean / log_product,
            reduction_ratio,
            naive_ratio: Summary::of(&naive_ratios),
            greedy_ratio: Summary::of(&greedy_ratios),
            repairs,
            bound,
        }
    })
}

/// Render the E5 table.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "E5 — online set cover with repetitions via the §4 reduction",
        &[
            "family",
            "n",
            "m",
            "reps",
            "reduction ratio",
            "naive ratio",
            "offline-greedy ratio",
            "red./(ln m·ln n)",
            "opt bound",
        ],
    );
    for cell in cells {
        t.push_row(vec![
            cell.family.label().into(),
            cell.n.to_string(),
            cell.m.to_string(),
            cell.reps_per_element.to_string(),
            cell.reduction_ratio.mean_pm_std(),
            cell.naive_ratio.mean_pm_std(),
            cell.greedy_ratio.mean_pm_std(),
            format!("{:.4}", cell.normalized),
            cell.bound.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shapes() {
        let cells = run(true);
        assert!(cells.iter().any(|c| c.family == Family::Random));
        assert!(cells.iter().any(|c| c.family == Family::PartitionGap));
        for cell in &cells {
            // Theorem envelope with generous constant.
            let log_product = (cell.m as f64).ln() * (cell.n as f64).ln();
            assert!(
                cell.reduction_ratio.mean <= 25.0 * log_product.max(1.0),
                "n={} m={}: reduction ratio {}",
                cell.n,
                cell.m,
                cell.reduction_ratio.mean
            );
            // The reduction must never need coverage repairs.
            assert_eq!(cell.repairs, 0, "reduction used the safety net");
            // Offline greedy is the benchmark: ≥ 1, modest.
            assert!(cell.greedy_ratio.mean >= 1.0 - 1e-6);
        }
        // The paper's structured win: on gap instances with enough
        // groups the reduction undercuts naive per-block buying.
        let gap_big: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.family == Family::PartitionGap && c.n >= 16)
            .collect();
        assert!(!gap_big.is_empty());
        for cell in gap_big {
            assert!(
                cell.reduction_ratio.mean <= cell.naive_ratio.mean + 1e-9,
                "gap n={}: reduction {} vs naive {}",
                cell.n,
                cell.reduction_ratio.mean,
                cell.naive_ratio.mean
            );
        }
    }
}
