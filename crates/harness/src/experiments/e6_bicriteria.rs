//! **E6 — Theorem 7**: the deterministic bicriteria algorithm is
//! `O(log m log n)`-competitive while covering `(1−ε)k` times.
//!
//! Sweep ε and `(n, m)`; report cost ratio vs the *full-k* OPT (the
//! comparison the theorem makes — conservative, since the algorithm
//! covers less) and the realized worst coverage fraction. The
//! validated shape: normalized ratio bounded; worst coverage ≥ `1−ε`;
//! smaller ε costs more.

use crate::experiments::e1_fractional::kind_label;
use crate::experiments::seed_for;
use crate::opt::{setcover_opt, BoundBudget};
use crate::parallel::{default_threads, parallel_map};
use crate::runner::run_set_cover;
use crate::stats::Summary;
use crate::table::Table;
use acmr_core::setcover::BicriteriaCover;
use acmr_workloads::{random_arrivals, random_set_system, ArrivalPattern, SetSystemSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXP_ID: u64 = 6;

/// One sweep cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Slack parameter ε.
    pub epsilon: f64,
    /// Ground-set size.
    pub n: usize,
    /// Family size.
    pub m: usize,
    /// Ratio vs full-k OPT.
    pub ratio: Summary,
    /// Worst realized coverage fraction (≥ 1−ε required).
    pub worst_coverage: f64,
    /// `ratio.mean / (ln m · ln n)`.
    pub normalized: f64,
    /// Fallback picks beyond the ⌈2 ln n⌉ budget (should be 0).
    pub fallbacks: u64,
    /// OPT bound provenance.
    pub bound: &'static str,
}

/// Run the sweep.
pub fn run(quick: bool) -> Vec<Cell> {
    let (grid, epsilons, seeds): (Vec<(usize, usize)>, Vec<f64>, u64) = if quick {
        (vec![(8, 12), (16, 24)], vec![0.25, 0.5], 3)
    } else {
        (
            vec![(8, 12), (16, 24), (32, 48), (64, 96)],
            vec![0.1, 0.25, 0.5],
            6,
        )
    };
    let mut cells = Vec::new();
    for &eps in &epsilons {
        for &(n, m) in &grid {
            cells.push((eps, n, m));
        }
    }
    parallel_map(cells, default_threads(), |&(eps, n, m)| {
        let mut ratios = Vec::new();
        let mut worst_cov = f64::INFINITY;
        let mut fallbacks = 0u64;
        let mut bound = "exact";
        for rep in 0..seeds {
            let seed = seed_for(
                EXP_ID,
                (n as u64) << 40 | (m as u64) << 16 | (eps * 100.0) as u64,
                rep,
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = SetSystemSpec {
                num_elements: n,
                num_sets: m,
                density: 0.25,
                min_degree: 3,
                max_cost: 1,
            };
            let system = random_set_system(&spec, &mut rng);
            let arrivals = random_arrivals(&system, ArrivalPattern::RoundRobin, 2, &mut rng);
            let opt = setcover_opt(&system, &arrivals, BoundBudget::default());
            bound = kind_label(opt.kind);
            let mut alg = BicriteriaCover::new(system.clone(), eps);
            let run = run_set_cover(&mut alg, &system, &arrivals);
            fallbacks += alg.fallback_picks();
            worst_cov = worst_cov.min(run.worst_coverage_ratio);
            ratios.push(opt.ratio(run.cost));
        }
        let ratio = Summary::of(&ratios);
        let log_product = (m as f64).ln().max(1.0) * (n as f64).ln().max(1.0);
        Cell {
            epsilon: eps,
            n,
            m,
            normalized: ratio.mean / log_product,
            ratio,
            worst_coverage: worst_cov,
            fallbacks,
            bound,
        }
    })
}

/// Render the E6 table.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "E6 — deterministic bicriteria set cover (Theorem 7)",
        &[
            "ε",
            "n",
            "m",
            "ratio vs full-k OPT",
            "ratio/(ln m·ln n)",
            "worst coverage",
            "fallbacks",
            "opt bound",
        ],
    );
    for cell in cells {
        t.push_row(vec![
            format!("{:.2}", cell.epsilon),
            cell.n.to_string(),
            cell.m.to_string(),
            cell.ratio.mean_pm_std(),
            format!("{:.4}", cell.normalized),
            format!("{:.3}", cell.worst_coverage),
            cell.fallbacks.to_string(),
            cell.bound.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_validates_bicriteria_contract() {
        let cells = run(true);
        for cell in &cells {
            assert!(
                cell.worst_coverage >= 1.0 - cell.epsilon - 1e-9,
                "ε={}: worst coverage {}",
                cell.epsilon,
                cell.worst_coverage
            );
            assert_eq!(cell.fallbacks, 0);
            let log_product = (cell.m as f64).ln().max(1.0) * (cell.n as f64).ln().max(1.0);
            assert!(
                cell.ratio.mean <= 25.0 * log_product,
                "ε={} n={} m={}: ratio {}",
                cell.epsilon,
                cell.n,
                cell.m,
                cell.ratio.mean
            );
        }
    }
}
