//! **E7 — the paper's motivation**: the §3 algorithm vs the BKK-style
//! deterministic baselines and naive greedy.
//!
//! Three workload families: nested intervals (adversarial for FCFS),
//! the two-phase squeeze (§4-style preemption pressure), and random
//! line workloads. The validated shape: the paper's algorithm wins
//! asymptotically on adversarial families (ratios grow for baselines,
//! stay polylog for the paper), and is competitive on random loads.

use crate::experiments::e1_fractional::kind_label;
use crate::experiments::seed_for;
use crate::opt::{admission_opt, BoundBudget};
use crate::parallel::{default_threads, parallel_map};
use crate::registry::default_registry;
use crate::runner::run_registered;
use crate::stats::Summary;
use crate::table::Table;
use acmr_core::{AdmissionInstance, DEFAULT_ALGORITHM};
use acmr_workloads::adversarial::{nested_intervals, two_phase_squeeze};
use acmr_workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXP_ID: u64 = 7;

/// Workload family for a row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Nested-interval adversarial instance.
    Nested,
    /// Two-phase squeeze.
    Squeeze,
    /// Random line workload.
    RandomLine,
}

impl Family {
    fn label(self) -> &'static str {
        match self {
            Family::Nested => "nested",
            Family::Squeeze => "squeeze",
            Family::RandomLine => "random-line",
        }
    }
}

/// One cell: every algorithm's ratio on one (family, size) point.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload family.
    pub family: Family,
    /// Size parameter (edges).
    pub m: u32,
    /// Ratios keyed in [`ALGS`] order.
    pub ratios: Vec<Summary>,
    /// OPT bound provenance.
    pub bound: &'static str,
}

/// Algorithm column order for [`Cell::ratios`]: registry spec strings,
/// resolved through [`default_registry`] — E7 carries no constructor
/// table of its own.
pub const ALGS: [&str; 5] = [
    DEFAULT_ALGORITHM,
    "greedy",
    "credit-sqrt-m",
    "preempt-cheapest",
    "random-preempt",
];

fn instance_for(family: Family, m: u32, seed: u64) -> AdmissionInstance {
    match family {
        Family::Nested => nested_intervals(m, 2, 1.max(m / 16), 3),
        Family::Squeeze => two_phase_squeeze(m, 4, (m / 4).max(1), 4),
        Family::RandomLine => {
            let spec = PathWorkloadSpec {
                topology: Topology::Line { m },
                capacity: 4,
                overload: 2.0,
                costs: CostModel::Uniform { lo: 1.0, hi: 16.0 },
                max_hops: 8,
            };
            random_path_workload(&spec, &mut StdRng::seed_from_u64(seed)).1
        }
    }
}

/// Run the comparison.
pub fn run(quick: bool) -> Vec<Cell> {
    let (ms, seeds): (Vec<u32>, u64) = if quick {
        (vec![16, 32], 3)
    } else {
        (vec![16, 32, 64, 128, 256], 8)
    };
    let mut cells: Vec<(Family, u32)> = Vec::new();
    for &family in &[Family::Nested, Family::Squeeze, Family::RandomLine] {
        for &m in &ms {
            cells.push((family, m));
        }
    }
    let registry = default_registry();
    let registry = &registry;
    parallel_map(cells, default_threads(), move |&(family, m)| {
        let mut per_alg: Vec<Vec<f64>> = vec![Vec::new(); ALGS.len()];
        let mut bound = "exact";
        for rep in 0..seeds {
            let seed = seed_for(EXP_ID, (family as u64) << 32 | m as u64, rep);
            let inst = instance_for(family, m, seed);
            let opt = admission_opt(&inst, BoundBudget::default());
            bound = kind_label(opt.kind);

            for (k, spec) in ALGS.iter().enumerate() {
                let report =
                    run_registered(registry, spec, &inst, seed ^ 0xF00D ^ (k as u64) << 16)
                        .expect("registry run");
                let r = opt.ratio(report.rejected_cost);
                if r.is_finite() {
                    per_alg[k].push(r);
                }
            }
        }
        Cell {
            family,
            m,
            ratios: per_alg.iter().map(|v| Summary::of(v)).collect(),
            bound,
        }
    })
}

/// Render the E7 table.
pub fn table(cells: &[Cell]) -> Table {
    let mut headers: Vec<&str> = vec!["family", "m"];
    headers.extend(ALGS);
    headers.push("opt bound");
    let mut t = Table::new("E7 — paper's algorithm vs baselines", &headers);
    for cell in cells {
        let mut row = vec![cell.family.label().to_string(), cell.m.to_string()];
        for s in &cell.ratios {
            row.push(if s.n == 0 {
                "∞".into()
            } else {
                format!("{:.2}", s.mean)
            });
        }
        row.push(cell.bound.into());
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_runs_all_algorithms() {
        let cells = run(true);
        assert!(!cells.is_empty());
        for cell in &cells {
            assert_eq!(cell.ratios.len(), ALGS.len());
            // Every algorithm produced finite ratios somewhere.
            for (k, s) in cell.ratios.iter().enumerate() {
                assert!(
                    s.n > 0,
                    "{} produced no finite ratios on {:?}",
                    ALGS[k],
                    cell.family
                );
                assert!(s.mean >= 1.0 - 1e-6, "{} ratio below 1", ALGS[k]);
            }
        }
    }

    #[test]
    fn paper_beats_fcfs_on_nested_instances() {
        // On nested intervals the FCFS greedy keeps the wide hogs and
        // pays for everything after; the paper's algorithm preempts.
        let cells = run(true);
        let nested_big: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.family == Family::Nested && c.m >= 32)
            .collect();
        assert!(!nested_big.is_empty());
        for cell in nested_big {
            let paper = cell.ratios[0].mean;
            let greedy = cell.ratios[1].mean;
            assert!(
                paper <= greedy * 1.5 + 1.0,
                "paper {paper} should not lose badly to greedy {greedy}"
            );
        }
    }
}
