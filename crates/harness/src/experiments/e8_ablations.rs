//! **E8 — constant ablations**: the paper fixes constants (`12`, `4`,
//! the doubling trigger, the `4mc²` prune) inside its O(·)s. This
//! experiment sweeps multipliers on each to show the defaults sit in a
//! sane basin: much smaller thresholds over-reject, much larger ones
//! under-round (forcing step-4 rejections).

use crate::experiments::e1_fractional::kind_label;
use crate::experiments::seed_for;
use crate::opt::{admission_opt, BoundBudget};
use crate::parallel::{default_threads, parallel_map};
use crate::registry::default_registry;
use crate::runner::run_registered;
use crate::stats::Summary;
use crate::table::Table;
use acmr_core::{RandConfig, DEFAULT_ALGORITHM};
use acmr_workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXP_ID: u64 = 8;

/// Which knob a row ablates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Knob {
    /// Step-2/3 constants (`threshold_const`, `prob_const` together).
    RoundingConsts,
    /// The α-doubling trigger factor.
    DoublingFactor,
    /// The `4mc²` hot-edge prune on/off.
    Prune,
}

impl Knob {
    fn label(self) -> &'static str {
        match self {
            Knob::RoundingConsts => "rounding-consts",
            Knob::DoublingFactor => "doubling-factor",
            Knob::Prune => "prune-hot-edges",
        }
    }
}

/// One ablation row.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Ablated knob.
    pub knob: Knob,
    /// Multiplier applied (or 0/1 for off/on).
    pub multiplier: f64,
    /// Competitive ratio summary on the fixed workload grid.
    pub ratio: Summary,
    /// Mean preemptions per run.
    pub preemptions: f64,
    /// OPT bound provenance.
    pub bound: &'static str,
}

/// Run the ablations on a fixed medium workload.
pub fn run(quick: bool) -> Vec<Cell> {
    let seeds: u64 = if quick { 3 } else { 12 };
    let mut cells: Vec<(Knob, f64)> = Vec::new();
    for &mult in &[0.25, 1.0, 4.0, 16.0] {
        cells.push((Knob::RoundingConsts, mult));
    }
    for &mult in &[0.25, 1.0, 4.0] {
        cells.push((Knob::DoublingFactor, mult));
    }
    cells.push((Knob::Prune, 0.0));
    cells.push((Knob::Prune, 1.0));
    let registry = default_registry();
    let registry = &registry;
    parallel_map(cells, default_threads(), move |&(knob, mult)| {
        let mut ratios = Vec::new();
        let mut preempt = Vec::new();
        let mut bound = "exact";
        for rep in 0..seeds {
            let seed = seed_for(EXP_ID, (knob as u64) << 32 | (mult * 100.0) as u64, rep);
            let spec = PathWorkloadSpec {
                topology: Topology::Line { m: 64 },
                capacity: 4,
                overload: 2.0,
                costs: CostModel::Uniform { lo: 1.0, hi: 8.0 },
                max_hops: 8,
            };
            let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(seed));
            // The knobs are plain spec parameters now — the ablation IS
            // the registry's tuning surface.
            let base = RandConfig::weighted();
            let alg_spec = match knob {
                Knob::RoundingConsts => format!(
                    "{DEFAULT_ALGORITHM}?threshold={}&prob={}",
                    base.threshold_const * mult,
                    base.prob_const * mult
                ),
                Knob::DoublingFactor => format!(
                    "{DEFAULT_ALGORITHM}?doubling={}",
                    base.frac.doubling_factor * mult
                ),
                Knob::Prune if mult > 0.5 => DEFAULT_ALGORITHM.to_string(),
                Knob::Prune => format!("{DEFAULT_ALGORITHM}?no-prune"),
            };
            let report =
                run_registered(registry, &alg_spec, &inst, seed ^ 0xAB1E).expect("registry run");
            let opt = admission_opt(&inst, BoundBudget::default());
            bound = kind_label(opt.kind);
            let r = opt.ratio(report.rejected_cost);
            if r.is_finite() {
                ratios.push(r);
            }
            preempt.push(report.preemptions as f64);
        }
        Cell {
            knob,
            multiplier: mult,
            ratio: Summary::of(&ratios),
            preemptions: Summary::of(&preempt).mean,
            bound,
        }
    })
}

/// Render the E8 table.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "E8 — ablations of the paper's constants (weighted algorithm, 64-edge line, 2× overload)",
        &[
            "knob",
            "multiplier",
            "ratio (mean ± std)",
            "preemptions/run",
            "opt bound",
        ],
    );
    for cell in cells {
        t.push_row(vec![
            cell.knob.label().into(),
            format!("{}", cell.multiplier),
            cell.ratio.mean_pm_std(),
            format!("{:.1}", cell.preemptions),
            cell.bound.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_cover_all_knobs_and_stay_finite() {
        let cells = run(true);
        assert!(cells.iter().any(|c| c.knob == Knob::RoundingConsts));
        assert!(cells.iter().any(|c| c.knob == Knob::DoublingFactor));
        assert!(cells.iter().any(|c| c.knob == Knob::Prune));
        for cell in &cells {
            assert!(cell.ratio.n > 0, "{:?} produced no ratios", cell.knob);
            assert!(cell.ratio.mean >= 1.0 - 1e-6);
            assert!(cell.ratio.mean < 500.0, "{:?} ratio blew up", cell.knob);
        }
    }
}
