//! **E9 — Lemma 6 audit**: along entire bicriteria runs, the potential
//! `Φ = Σ_j n^{2(w_j − cover_j)}` never exceeds `n²`, and step (c)
//! never needs more than `⌈2 ln n⌉` picks.

use crate::experiments::seed_for;
use crate::table::Table;
use acmr_core::setcover::{BicriteriaCover, OnlineSetCover};
use acmr_workloads::{random_arrivals, random_set_system, ArrivalPattern, SetSystemSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXP_ID: u64 = 9;

/// One audited run.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Ground-set size.
    pub n: usize,
    /// Family size.
    pub m: usize,
    /// Slack ε.
    pub epsilon: f64,
    /// Max observed `Φ / n²` along the run (≤ 1 required).
    pub max_potential_fraction: f64,
    /// Total augmentations.
    pub augmentations: u64,
    /// Fallback picks (0 required).
    pub fallbacks: u64,
}

/// Run the audit.
pub fn run(quick: bool) -> Vec<Cell> {
    let grid: Vec<(usize, usize, f64)> = if quick {
        vec![(8, 12, 0.25), (16, 24, 0.5)]
    } else {
        vec![
            (8, 12, 0.1),
            (16, 24, 0.25),
            (32, 48, 0.25),
            (64, 96, 0.5),
            (128, 192, 0.5),
        ]
    };
    let mut out = Vec::new();
    for (idx, &(n, m, eps)) in grid.iter().enumerate() {
        let seed = seed_for(EXP_ID, idx as u64, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = SetSystemSpec {
            num_elements: n,
            num_sets: m,
            density: 0.3,
            min_degree: 3,
            max_cost: 1,
        };
        let system = random_set_system(&spec, &mut rng);
        let arrivals = random_arrivals(&system, ArrivalPattern::UniformRandom, 3, &mut rng);
        let mut alg = BicriteriaCover::new(system, eps);
        let n2 = (n as f64).powi(2);
        let mut max_frac: f64 = alg.potential() / n2;
        for &j in &arrivals {
            alg.on_arrival(j);
            max_frac = max_frac.max(alg.potential() / n2);
        }
        out.push(Cell {
            n,
            m,
            epsilon: eps,
            max_potential_fraction: max_frac,
            augmentations: alg.augmentations(),
            fallbacks: alg.fallback_picks(),
        });
    }
    out
}

/// Render the E9 table.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "E9 — Lemma 6 potential audit (Φ ≤ n² along entire runs)",
        &["n", "m", "ε", "max Φ/n²", "augmentations", "fallback picks"],
    );
    for cell in cells {
        t.push_row(vec![
            cell.n.to_string(),
            cell.m.to_string(),
            format!("{:.2}", cell.epsilon),
            format!("{:.4}", cell.max_potential_fraction),
            cell.augmentations.to_string(),
            cell.fallbacks.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potential_bound_holds_everywhere() {
        for cell in run(true) {
            assert!(
                cell.max_potential_fraction <= 1.0 + 1e-9,
                "n={} m={}: Φ/n² = {}",
                cell.n,
                cell.m,
                cell.max_potential_fraction
            );
            assert_eq!(cell.fallbacks, 0);
        }
    }
}
