//! The theorem-validation experiment suite.
//!
//! The paper has no empirical tables — its evaluation is five theorems.
//! Each experiment here measures the quantity one theorem bounds,
//! sweeps the parameter the bound depends on, and emits a table whose
//! *shape* must match the theory. Every experiment has two sizes:
//! `quick` (seconds; used by tests and CI) and full (the `exp_*`
//! binaries in `acmr-bench`).
//!
//! | Exp | Validates | Module |
//! |-----|-----------|--------|
//! | E1 | Thm 2 — fractional `O(log(mc))` / `O(log c)` | [`e1_fractional`] |
//! | E2 | Lemma 1 — augmentation count | [`e2_augmentations`] |
//! | E3 | Thm 3 — randomized weighted `O(log²(mc))` | [`e3_randomized_weighted`] |
//! | E4 | Thm 4 — randomized unweighted `O(log m log c)` | [`e4_randomized_unweighted`] |
//! | E5 | §4 — set cover via reduction | [`e5_reduction`] |
//! | E6 | Thm 7 — bicriteria cost & coverage | [`e6_bicriteria`] |
//! | E7 | vs BKK-style baselines | [`e7_baselines`] |
//! | E8 | constant ablations | [`e8_ablations`] |
//! | E9 | Lemma 6 — potential audit | [`e9_potential`] |
//! | E18 | arrival models × policy classes | [`e18_policies`] |
//! | E19 | buyback factor grid × algorithms | [`e19_buyback`] |

pub mod e11_frontier;
pub mod e18_policies;
pub mod e19_buyback;
pub mod e1_fractional;
pub mod e2_augmentations;
pub mod e3_randomized_weighted;
pub mod e4_randomized_unweighted;
pub mod e5_reduction;
pub mod e6_bicriteria;
pub mod e7_baselines;
pub mod e8_ablations;
pub mod e9_potential;

/// Derive a deterministic RNG seed for `(experiment, cell, repetition)`
/// via SplitMix64 so every table cell is reproducible in isolation.
pub fn seed_for(experiment: u64, cell: u64, rep: u64) -> u64 {
    let mut z = experiment
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(cell.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(rep.wrapping_mul(0x94D049BB133111EB))
        .wrapping_add(0x2545F4914F6CDD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = seed_for(1, 2, 3);
        assert_eq!(a, seed_for(1, 2, 3));
        assert_ne!(a, seed_for(1, 2, 4));
        assert_ne!(a, seed_for(1, 3, 3));
        assert_ne!(a, seed_for(2, 2, 3));
    }
}
