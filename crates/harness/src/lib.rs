//! # acmr-harness
//!
//! The experiment harness: drives online algorithms over instances with
//! full feasibility auditing, computes offline-optimum bounds, runs
//! parameter sweeps in parallel, and renders the tables that
//! `EXPERIMENTS.md` records.
//!
//! Design rules (see `DESIGN.md` §7):
//!
//! * **The harness is the referee.** Every decision stream is replayed
//!   against an external [`acmr_graph::LoadTracker`]; a capacity
//!   violation or an accept-after-reject panics the run.
//! * **Ratios are conservative.** Competitive ratios are reported
//!   against the best available *lower bound* on OPT (exact B&B when it
//!   proves optimality, LP relaxation otherwise, max-excess `Q` as a
//!   last resort), so reported ratios never flatter the algorithm.
//! * **Determinism.** Every cell of every sweep derives its RNG seed
//!   from `(experiment, cell, repetition)`; re-running any table
//!   reproduces it bit-for-bit, single- or multi-threaded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod opt;
pub mod parallel;
pub mod registry;
pub mod runner;
pub mod shard;
pub mod stats;
pub mod table;

pub use opt::{
    admission_covering_problem, admission_opt, multicover_problem, setcover_opt, BoundBudget,
    OptBound, OptBoundKind,
};
pub use parallel::parallel_map;
pub use registry::default_registry;
pub use runner::{
    opt_summary, run_admission, run_registered, run_registered_batched, run_report,
    run_report_batched, run_set_cover, AdmissionRun, SetCoverRun,
};
pub use shard::{cross_jobs, JobReport, ShardedDriver, SweepJob, SweepReport, SweepTotals};
pub use stats::Summary;
pub use table::Table;
