//! # acmr-harness
//!
//! The experiment harness: drives online algorithms over instances with
//! full feasibility auditing, computes offline-optimum bounds, runs
//! parameter sweeps in parallel (in memory or streamed from disk), and
//! renders experiment tables.
//!
//! Entry points, roughly in order of ambition (see
//! `docs/ARCHITECTURE.md` for the full data-flow picture):
//!
//! * [`run_report`] / [`run_report_batched`] — one `(registry spec,
//!   instance)` pair to a complete [`acmr_core::RunReport`] with
//!   offline-optimum context.
//! * [`run_report_from_path`] / [`run_report_spooled`] — the same
//!   report from a **streamed** trace (file or one-shot stdin) that is
//!   never materialized in memory; the two-pass OPT bound lives in
//!   [`stream`].
//! * [`ShardedDriver`] — many `(spec, trace)` jobs fanned over scoped
//!   worker threads into one [`SweepReport`], traces in memory
//!   ([`TraceSource::InMemory`]) or on disk ([`TraceSource::Path`]).
//! * [`ClusterDriver`] — the same sweep fanned over **worker
//!   processes**: each job replays through a remote `acmr serve`
//!   session from an [`acmr_serve::WorkerPool`], with OPT bounds
//!   still computed locally once per distinct trace; reports are
//!   byte-identical to [`ShardedDriver`]'s.
//!
//! Design rules:
//!
//! * **The harness is the referee.** Every decision stream is replayed
//!   against an external [`acmr_graph::LoadTracker`]; a capacity
//!   violation or an accept-after-reject panics the run.
//! * **Ratios are conservative.** Competitive ratios are reported
//!   against the best available *lower bound* on OPT (exact B&B when it
//!   proves optimality, LP relaxation otherwise, max-excess `Q` as a
//!   last resort), so reported ratios never flatter the algorithm.
//! * **Determinism.** Every cell of every sweep derives its RNG seed
//!   from `(experiment, cell, repetition)`; re-running any table
//!   reproduces it bit-for-bit, single- or multi-threaded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod experiments;
pub mod opt;
pub mod parallel;
pub mod registry;
pub mod runner;
pub mod shard;
pub mod stats;
pub mod stream;
pub mod table;

pub use cluster::ClusterDriver;
pub use opt::{
    admission_covering_problem, admission_opt, multicover_problem, setcover_opt, BoundBudget,
    OptBound, OptBoundKind,
};
pub use parallel::parallel_map;
pub use registry::default_registry;
pub use runner::{
    opt_summary, run_admission, run_registered, run_registered_batched, run_report,
    run_report_batched, run_set_cover, AdmissionRun, SetCoverRun,
};
pub use shard::{
    cross_jobs, JobReport, ShardedDriver, SweepJob, SweepReport, SweepTotals, TraceSource,
};
pub use stats::Summary;
pub use stream::{
    admission_opt_from_path, run_report_from_path, run_report_spooled, run_report_streamed,
    run_stream_registered, scan_trace, streamed_admission_opt, StreamScan,
};
pub use table::Table;
