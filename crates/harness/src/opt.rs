//! Offline-optimum bounds for competitive ratios.
//!
//! Both of the paper's problems reduce to the 0/1 multicovering program
//! of `acmr-lp`:
//!
//! * **Admission control**: reject a min-cost request set such that
//!   every edge `e` sheds `|REQ_e| − c_e` requests
//!   ([`admission_covering_problem`]).
//! * **Set multicover**: buy min-cost sets so element `j` is covered
//!   `k_j` times ([`multicover_problem`]).
//!
//! [`OptBound::compute`] then produces the tightest bound the size
//! budget allows: exact (proven B&B), otherwise the LP relaxation lower
//! bound. The kind is carried along so tables can disclose what each
//! ratio was measured against.

use acmr_core::setcover::SetSystem;
use acmr_core::AdmissionInstance;
use acmr_lp::{branch_and_bound, BnbLimits, CoveringProblem};

/// How an OPT figure was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptBoundKind {
    /// Branch-and-bound proved integral optimality: the exact OPT.
    Exact,
    /// LP relaxation: a valid lower bound on OPT (ratios conservative).
    LpLowerBound,
    /// `greedy_cost / H`: since greedy is `H`-approximate
    /// (`H = ln(Σ demands) + 1`), `OPT ≥ greedy/H` — the scalable
    /// lower bound for cells too large for the LP.
    GreedyOverH,
    /// Trivial combinatorial lower bound (max excess `Q`); last resort.
    Trivial,
}

impl OptBoundKind {
    /// Stable provenance label used in tables and [`RunReport`]s.
    ///
    /// [`RunReport`]: acmr_core::RunReport
    pub fn label(self) -> &'static str {
        match self {
            OptBoundKind::Exact => "exact",
            OptBoundKind::LpLowerBound => "lp-lower-bound",
            OptBoundKind::GreedyOverH => "greedy-over-H",
            OptBoundKind::Trivial => "trivial(Q)",
        }
    }
}

/// Size budgets controlling which bound is attempted.
#[derive(Clone, Copy, Debug)]
pub struct BoundBudget {
    /// Max items for exact branch-and-bound.
    pub max_exact_items: usize,
    /// B&B node budget.
    pub exact_nodes: usize,
    /// Max items for the LP relaxation (dense simplex).
    pub max_lp_items: usize,
}

impl Default for BoundBudget {
    fn default() -> Self {
        BoundBudget {
            max_exact_items: 60,
            exact_nodes: 20_000,
            max_lp_items: 400,
        }
    }
}

/// An OPT value with its provenance.
#[derive(Clone, Copy, Debug)]
pub struct OptBound {
    /// The bound value (a lower bound on, or exactly, OPT).
    pub value: f64,
    /// Provenance.
    pub kind: OptBoundKind,
}

impl OptBound {
    /// Compute the best affordable bound for a covering problem:
    /// exact B&B when small enough, the LP relaxation next, then the
    /// scalable `greedy/H` bound, with `trivial` as the floor.
    pub fn compute(problem: &CoveringProblem, budget: BoundBudget, trivial: f64) -> OptBound {
        if problem.rows.iter().all(|r| r.demand == 0) {
            return OptBound {
                value: 0.0,
                kind: OptBoundKind::Exact,
            };
        }
        if problem.num_items() <= budget.max_exact_items {
            if let Some(res) = branch_and_bound(
                problem,
                BnbLimits {
                    max_nodes: budget.exact_nodes,
                },
            ) {
                if res.proven_optimal {
                    return OptBound {
                        value: res.cost,
                        kind: OptBoundKind::Exact,
                    };
                }
            }
        }
        if problem.num_items() <= budget.max_lp_items {
            if let Ok(lb) = problem.lp_lower_bound() {
                return OptBound {
                    value: lb.max(trivial),
                    kind: OptBoundKind::LpLowerBound,
                };
            }
        }
        if let Some(g) = acmr_lp::greedy_cover(problem) {
            let total_demand: f64 = problem.rows.iter().map(|r| r.demand as f64).sum();
            let h = total_demand.max(1.0).ln() + 1.0;
            let lb = g.cost / h;
            if lb > trivial {
                return OptBound {
                    value: lb,
                    kind: OptBoundKind::GreedyOverH,
                };
            }
        }
        OptBound {
            value: trivial,
            kind: OptBoundKind::Trivial,
        }
    }

    /// `online / max(value, floor)` — the conservative competitive
    /// ratio, guarding the degenerate OPT = 0 case: if OPT is 0 and the
    /// online cost is 0 the ratio is 1; if OPT is 0 and online paid,
    /// the ratio is infinite.
    pub fn ratio(&self, online_cost: f64) -> f64 {
        if self.value <= 1e-12 {
            if online_cost <= 1e-12 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            online_cost / self.value
        }
    }
}

/// The rejection covering program of an admission instance: items are
/// requests, one row per over-subscribed edge with demand
/// `|REQ_e| − c_e`.
pub fn admission_covering_problem(inst: &AdmissionInstance) -> CoveringProblem {
    let m = inst.capacities.len();
    let mut on_edge: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (i, r) in inst.requests.iter().enumerate() {
        for e in r.footprint.iter() {
            on_edge[e.index()].push(i);
        }
    }
    let mut p = CoveringProblem::new(inst.requests.iter().map(|r| r.cost).collect());
    for (e, reqs) in on_edge.into_iter().enumerate() {
        let cap = inst.capacities[e] as usize;
        if reqs.len() > cap {
            let demand = (reqs.len() - cap) as u32;
            p.push_row(reqs, demand);
        }
    }
    p
}

/// The multicover program of a set-cover instance: items are sets, one
/// row per element with demand = its arrival count.
pub fn multicover_problem(system: &SetSystem, arrivals: &[u32]) -> CoveringProblem {
    let mut demand = vec![0u32; system.num_elements()];
    for &j in arrivals {
        demand[j as usize] += 1;
    }
    let mut p = CoveringProblem::new(
        (0..system.num_sets())
            .map(|i| system.cost(acmr_core::setcover::SetId(i as u32)))
            .collect(),
    );
    for (j, &d) in demand.iter().enumerate() {
        if d > 0 {
            let items: Vec<usize> = system
                .sets_containing(j as u32)
                .iter()
                .map(|s| s.index())
                .collect();
            p.push_row(items, d);
        }
    }
    p
}

/// Convenience: the best bound for an admission instance. The trivial
/// floor is the cheapest way to shed `Q = max_e(|REQ_e| − c_e)`
/// requests (unweighted: exactly `Q`; weighted: `Q` times the cheapest
/// request cost).
pub fn admission_opt(inst: &AdmissionInstance, budget: BoundBudget) -> OptBound {
    let problem = admission_covering_problem(inst);
    let q = inst.max_excess() as f64;
    let cheapest = inst
        .requests
        .iter()
        .map(|r| r.cost)
        .fold(f64::INFINITY, f64::min);
    // OPT must reject at least Q requests, each costing ≥ the cheapest.
    let trivial = if cheapest.is_finite() {
        q * cheapest
    } else {
        0.0
    };
    OptBound::compute(&problem, budget, trivial)
}

/// Convenience: the best bound for a set-cover instance; the trivial
/// fallback is the largest single-element demand (OPT must buy at
/// least that many sets, each costing ≥ the cheapest set).
pub fn setcover_opt(system: &SetSystem, arrivals: &[u32], budget: BoundBudget) -> OptBound {
    let problem = multicover_problem(system, arrivals);
    let mut demand = vec![0u32; system.num_elements()];
    for &j in arrivals {
        demand[j as usize] += 1;
    }
    let cheapest = (0..system.num_sets())
        .map(|i| system.cost(acmr_core::setcover::SetId(i as u32)))
        .fold(f64::INFINITY, f64::min);
    let trivial = demand.iter().copied().max().unwrap_or(0) as f64 * cheapest.max(0.0);
    OptBound::compute(&problem, budget, trivial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_core::Request;
    use acmr_graph::{EdgeId, EdgeSet};

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn admission_opt_exact_on_hot_edge() {
        // 5 unit requests, capacity 2 ⇒ OPT rejects 3.
        let mut inst = AdmissionInstance::from_capacities(vec![2]);
        for _ in 0..5 {
            inst.push(Request::unit(fp(&[0])));
        }
        let b = admission_opt(&inst, BoundBudget::default());
        assert_eq!(b.kind, OptBoundKind::Exact);
        assert!((b.value - 3.0).abs() < 1e-9);
        assert!((b.ratio(6.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn admission_opt_weighted_picks_cheap() {
        // Capacity 1, costs 10 and 1 ⇒ OPT rejects the 1.
        let mut inst = AdmissionInstance::from_capacities(vec![1]);
        inst.push(Request::new(fp(&[0]), 10.0));
        inst.push(Request::new(fp(&[0]), 1.0));
        let b = admission_opt(&inst, BoundBudget::default());
        assert_eq!(b.kind, OptBoundKind::Exact);
        assert!((b.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_excess_is_zero_opt() {
        let mut inst = AdmissionInstance::from_capacities(vec![3]);
        inst.push(Request::unit(fp(&[0])));
        let b = admission_opt(&inst, BoundBudget::default());
        assert_eq!(b.value, 0.0);
        assert_eq!(b.ratio(0.0), 1.0);
        assert!(b.ratio(1.0).is_infinite());
    }

    #[test]
    fn lp_bound_used_beyond_exact_budget() {
        let mut inst = AdmissionInstance::from_capacities(vec![1]);
        for _ in 0..10 {
            inst.push(Request::unit(fp(&[0])));
        }
        let b = admission_opt(
            &inst,
            BoundBudget {
                max_exact_items: 4,
                ..Default::default()
            },
        ); // too many items for exact
        assert_eq!(b.kind, OptBoundKind::LpLowerBound);
        assert!((b.value - 9.0).abs() < 1e-6); // LP is tight here
    }

    #[test]
    fn setcover_opt_on_partition_gap() {
        // Universal set: OPT = 1 for one round.
        let system = SetSystem::unit(
            4,
            vec![vec![0], vec![1], vec![2], vec![3], vec![0, 1, 2, 3]],
        );
        let b = setcover_opt(&system, &[0, 1, 2, 3], BoundBudget::default());
        assert_eq!(b.kind, OptBoundKind::Exact);
        assert!((b.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multicover_demands_accumulate() {
        let system = SetSystem::unit(2, vec![vec![0], vec![0], vec![0, 1]]);
        let p = multicover_problem(&system, &[0, 0, 1]);
        assert_eq!(p.rows.len(), 2);
        let b = setcover_opt(&system, &[0, 0, 1], BoundBudget::default());
        // Element 0 twice ⇒ two sets containing 0; element 1 once ⇒ the
        // third set also needed if not already: {0,1} + one of {0} = 2.
        assert!((b.value - 2.0).abs() < 1e-9);
    }
}
