//! Embarrassingly-parallel sweep execution.
//!
//! Experiment sweeps are grids of independent cells (each with its own
//! derived seed), so parallelism is a pure wall-clock optimization that
//! must never change results. [`parallel_map`] fans work out over
//! `std::thread::scope`d threads pulling indices from an atomic counter
//! (work-stealing-lite) and writes results into pre-allocated slots
//! under a `std::sync::Mutex`, preserving input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every input on up to `threads` worker threads,
/// returning outputs in input order. `f` must be deterministic per
/// input for reproducibility (all experiment cells are).
pub fn parallel_map<T, U, F>(inputs: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return inputs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let inputs_ref = &inputs;
    let f_ref = &f;
    let next_ref = &next;
    let slots_ref = &slots;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f_ref(&inputs_ref[i]);
                *slots_ref[i].lock().expect("slot lock poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock poisoned")
                .expect("slot filled")
        })
        .collect()
}

/// A sensible default worker count: available parallelism capped at 8
/// (experiment cells are memory-light; more threads rarely help).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 4, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![7], 16, |&x| x);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn matches_sequential_for_stateful_work() {
        // Deterministic per-input work (hashing) must agree across
        // thread counts.
        let inputs: Vec<u64> = (0..50).collect();
        let work = |&x: &u64| {
            let mut v = x;
            for _ in 0..1000 {
                v = v
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            v
        };
        let seq = parallel_map(inputs.clone(), 1, work);
        let par = parallel_map(inputs, 6, work);
        assert_eq!(seq, par);
    }
}
