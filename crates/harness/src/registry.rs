//! The fully-assembled default registry.
//!
//! `acmr-core` and `acmr-baselines` each register their own algorithms;
//! this crate sits above both, so it is where the complete table is
//! assembled. Every consumer — the CLI, the experiment suite, the
//! benches — calls [`default_registry`] instead of keeping its own
//! name→constructor `match`.

use acmr_baselines::register_baselines;
use acmr_core::{register_core, Registry};

/// Registry containing every algorithm in the workspace: the paper's
/// `aag-*` pair, the four worst-case baselines, the cancellation-cost
/// policy `buyback`, and the stochastic policies `lp-resolve` /
/// `lcb-greedy`.
pub fn default_registry() -> Registry {
    let mut reg = Registry::new();
    register_core(&mut reg);
    register_baselines(&mut reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_has_all_nine_algorithms() {
        let reg = default_registry();
        assert_eq!(
            reg.names(),
            vec![
                "aag-unweighted",
                "aag-weighted",
                "buyback",
                "credit-sqrt-m",
                "greedy",
                "lcb-greedy",
                "lp-resolve",
                "preempt-cheapest",
                "random-preempt"
            ]
        );
        for name in reg.names() {
            assert!(reg.summary(name).is_some(), "{name} lacks a summary");
        }
    }
}
