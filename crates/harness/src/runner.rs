//! Audited drivers for online algorithms.

use acmr_core::setcover::{OnlineSetCover, SetSystem};
use acmr_core::{AdmissionInstance, OnlineAdmission, RequestId};
use acmr_graph::LoadTracker;

/// Result of replaying an admission-control algorithm over an instance.
#[derive(Clone, Debug)]
pub struct AdmissionRun {
    /// Final acceptance state per request.
    pub accepted: Vec<bool>,
    /// Total cost of rejected requests (the paper's objective).
    pub rejected_cost: f64,
    /// Number of rejected requests.
    pub rejected_count: usize,
    /// Number of preemptions (a preempted request is also rejected).
    pub preemptions: usize,
}

/// Drive `alg` over `inst`, auditing feasibility after every arrival.
///
/// # Panics
/// If the algorithm violates a capacity, preempts a request that is not
/// currently accepted, or otherwise breaks the online contract — the
/// harness treats those as algorithm bugs, not data.
pub fn run_admission<A: OnlineAdmission>(alg: &mut A, inst: &AdmissionInstance) -> AdmissionRun {
    let mut audit = LoadTracker::from_capacities(inst.capacities.clone());
    let mut accepted = vec![false; inst.requests.len()];
    let mut ever_rejected = vec![false; inst.requests.len()];
    let mut preemptions = 0usize;
    for (i, req) in inst.requests.iter().enumerate() {
        let out = alg.on_request(RequestId(i as u32), req);
        for p in &out.preempted {
            assert!(
                accepted[p.index()],
                "{}: preempted request {p:?} is not currently accepted",
                alg.name()
            );
            accepted[p.index()] = false;
            ever_rejected[p.index()] = true;
            preemptions += 1;
            audit.release(&inst.requests[p.index()].footprint);
        }
        if out.accepted {
            assert!(
                !ever_rejected[i],
                "{}: accepted a previously rejected request",
                alg.name()
            );
            assert!(
                audit.fits(&req.footprint),
                "{}: accepting request {i} violates a capacity",
                alg.name()
            );
            audit.admit(&req.footprint);
            accepted[i] = true;
        } else {
            ever_rejected[i] = true;
        }
        debug_assert!(audit.is_feasible());
    }
    let rejected_cost = inst
        .requests
        .iter()
        .zip(&accepted)
        .filter(|(_, &a)| !a)
        .map(|(r, _)| r.cost)
        .sum();
    let rejected_count = accepted.iter().filter(|&&a| !a).count();
    AdmissionRun {
        accepted,
        rejected_cost,
        rejected_count,
        preemptions,
    }
}

/// Result of replaying an online set-cover algorithm.
#[derive(Clone, Debug)]
pub struct SetCoverRun {
    /// Total cost of bought sets.
    pub cost: f64,
    /// Number of bought sets.
    pub sets_bought: usize,
    /// Minimum of `coverage_j / k_j` over elements with `k_j > 0` at
    /// the end (≥ 1 for exact algorithms, ≥ `1−ε` for bicriteria).
    pub worst_coverage_ratio: f64,
}

/// Drive an online set-cover algorithm over an arrival sequence,
/// auditing the coverage contract after every arrival.
///
/// # Panics
/// If coverage ever falls below `alg.coverage_slack() · k_j` (with
/// integer rounding: `cover_j ≥ ceil(slack·k_j) − 1 + 1` is not
/// required; we check `cover_j ≥ slack·k_j` directly), or if a set is
/// bought twice.
pub fn run_set_cover<A: OnlineSetCover>(
    alg: &mut A,
    system: &SetSystem,
    arrivals: &[u32],
) -> SetCoverRun {
    assert!(
        system.arrivals_feasible(arrivals),
        "arrival sequence is uncoverable"
    );
    let slack = alg.coverage_slack();
    let mut bought = vec![false; system.num_sets()];
    let mut coverage = vec![0u32; system.num_elements()];
    let mut k = vec![0u32; system.num_elements()];
    let mut cost = 0.0;
    let mut sets_bought = 0usize;
    for &j in arrivals {
        k[j as usize] += 1;
        let new_sets = alg.on_arrival(j);
        for s in new_sets {
            assert!(!bought[s.index()], "{}: set {s:?} bought twice", alg.name());
            bought[s.index()] = true;
            sets_bought += 1;
            cost += system.cost(s);
            for &el in system.elements_of(s) {
                coverage[el as usize] += 1;
            }
        }
        for el in 0..system.num_elements() {
            let need = slack * k[el] as f64;
            assert!(
                coverage[el] as f64 >= need - 1e-9,
                "{}: element {el} covered {} < {need}",
                alg.name(),
                coverage[el]
            );
        }
    }
    let worst_coverage_ratio = (0..system.num_elements())
        .filter(|&el| k[el] > 0)
        .map(|el| coverage[el] as f64 / k[el] as f64)
        .fold(f64::INFINITY, f64::min);
    SetCoverRun {
        cost,
        sets_bought,
        worst_coverage_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_baselines::{GreedyNonPreemptive, NaiveOnlineCover};
    use acmr_core::setcover::SetSystem;
    use acmr_core::Request;
    use acmr_graph::{EdgeId, EdgeSet};

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn admission_run_counts() {
        let mut inst = AdmissionInstance::from_capacities(vec![1]);
        inst.push(Request::new(fp(&[0]), 2.0));
        inst.push(Request::new(fp(&[0]), 3.0));
        inst.push(Request::new(fp(&[0]), 4.0));
        let mut alg = GreedyNonPreemptive::new(&inst.capacities);
        let run = run_admission(&mut alg, &inst);
        assert_eq!(run.accepted, vec![true, false, false]);
        assert_eq!(run.rejected_cost, 7.0);
        assert_eq!(run.rejected_count, 2);
        assert_eq!(run.preemptions, 0);
    }

    #[test]
    fn set_cover_run_audits_coverage() {
        let system = SetSystem::unit(2, vec![vec![0], vec![1], vec![0, 1]]);
        let mut alg = NaiveOnlineCover::new(system.clone());
        let run = run_set_cover(&mut alg, &system, &[0, 1, 0]);
        assert!(run.worst_coverage_ratio >= 1.0);
        assert!(run.cost >= 2.0);
        assert_eq!(run.sets_bought as f64, run.cost); // unit costs
    }

    #[test]
    #[should_panic(expected = "uncoverable")]
    fn set_cover_rejects_infeasible_arrivals() {
        let system = SetSystem::unit(1, vec![vec![0]]);
        let mut alg = NaiveOnlineCover::new(system.clone());
        run_set_cover(&mut alg, &system, &[0, 0]);
    }
}
