//! Audited drivers for online algorithms.
//!
//! The admission-control path is built on [`acmr_core::Session`] — the
//! streaming driver owns the audit and the statistics. The batch
//! helpers here add what only this crate can: the panic-on-violation
//! referee behavior experiments rely on ([`run_admission`]) and
//! offline-optimum context attached to [`RunReport`]s
//! ([`run_report`] / [`run_registered`]).

use crate::opt::{admission_opt, BoundBudget, OptBound};
use acmr_core::setcover::{OnlineSetCover, SetSystem};
use acmr_core::{
    AcmrError, AdmissionInstance, AlgorithmSpec, OnlineAdmission, OptSummary, Registry, RunReport,
    Session,
};

/// Result of replaying an admission-control algorithm over an instance.
#[derive(Clone, Debug)]
pub struct AdmissionRun {
    /// Final acceptance state per request.
    pub accepted: Vec<bool>,
    /// Total cost of rejected requests (the paper's objective).
    pub rejected_cost: f64,
    /// Number of rejected requests.
    pub rejected_count: usize,
    /// Number of preemptions (a preempted request is also rejected).
    pub preemptions: usize,
}

/// Drive `alg` over `inst` through a [`Session`], auditing feasibility
/// after every arrival.
///
/// # Panics
/// If the algorithm violates a capacity, preempts a request that is not
/// currently accepted, or otherwise breaks the online contract — the
/// harness treats those as algorithm bugs, not data. (Services that
/// must survive a misbehaving algorithm use [`Session::push`] directly
/// and handle the typed [`AcmrError`] instead.)
pub fn run_admission<A: OnlineAdmission>(alg: &mut A, inst: &AdmissionInstance) -> AdmissionRun {
    let mut session = Session::new(alg, &inst.capacities);
    for req in &inst.requests {
        if let Err(e) = session.push(req) {
            panic!("{e}");
        }
    }
    let accepted = session.accepted_mask();
    let stats = session.stats();
    AdmissionRun {
        rejected_cost: stats.rejected_cost,
        rejected_count: stats.rejected_count,
        preemptions: stats.preemptions,
        accepted,
    }
}

/// Run a registry-addressed algorithm over an instance, returning its
/// [`RunReport`] (without offline-optimum context).
///
/// `base_seed` feeds randomized algorithms unless the spec string
/// carries its own `seed=`; the seed actually used is echoed in the
/// report.
pub fn run_registered(
    registry: &Registry,
    spec: &str,
    inst: &AdmissionInstance,
    base_seed: u64,
) -> Result<RunReport, AcmrError> {
    let spec = AlgorithmSpec::parse(spec)?;
    let mut session = Session::from_registry(registry, &spec, &inst.capacities, base_seed)?;
    session.run_trace(inst)
}

/// [`run_registered`] through the session batch layer: arrivals are fed
/// in chunks of `batch` via `Session::push_batch`, producing the
/// identical report (the decision stream is pinned to the streaming
/// path). `batch` must be at least 1.
pub fn run_registered_batched(
    registry: &Registry,
    spec: &str,
    inst: &AdmissionInstance,
    base_seed: u64,
    batch: usize,
) -> Result<RunReport, AcmrError> {
    let spec = AlgorithmSpec::parse(spec)?;
    let mut session = Session::from_registry(registry, &spec, &inst.capacities, base_seed)?;
    session.run_trace_batched(inst, batch)
}

/// [`run_report`] through the session batch layer — what `acmr run
/// --batch N` dispatches to.
pub fn run_report_batched(
    registry: &Registry,
    spec: &str,
    inst: &AdmissionInstance,
    base_seed: u64,
    budget: BoundBudget,
    batch: usize,
) -> Result<RunReport, AcmrError> {
    let mut report = run_registered_batched(registry, spec, inst, base_seed, batch)?;
    let bound = admission_opt(inst, budget);
    report.opt = Some(opt_summary(&bound, report.rejected_cost));
    Ok(report)
}

/// Summarize an [`OptBound`] against a run's rejected cost. The ratio
/// is `None` when unbounded (OPT bound 0 but a positive online cost).
pub fn opt_summary(bound: &OptBound, rejected_cost: f64) -> OptSummary {
    let ratio = bound.ratio(rejected_cost);
    OptSummary {
        value: bound.value,
        kind: bound.kind.label().to_string(),
        ratio: ratio.is_finite().then_some(ratio),
    }
}

/// [`run_registered`] plus offline-optimum context: the one-call path
/// from `(registry, spec, instance)` to a complete [`RunReport`] —
/// what the CLI's `acmr run` and the experiment tables consume.
pub fn run_report(
    registry: &Registry,
    spec: &str,
    inst: &AdmissionInstance,
    base_seed: u64,
    budget: BoundBudget,
) -> Result<RunReport, AcmrError> {
    let mut report = run_registered(registry, spec, inst, base_seed)?;
    let bound = admission_opt(inst, budget);
    report.opt = Some(opt_summary(&bound, report.rejected_cost));
    Ok(report)
}

/// Result of replaying an online set-cover algorithm.
#[derive(Clone, Debug)]
pub struct SetCoverRun {
    /// Total cost of bought sets.
    pub cost: f64,
    /// Number of bought sets.
    pub sets_bought: usize,
    /// Minimum of `coverage_j / k_j` over elements with `k_j > 0` at
    /// the end (≥ 1 for exact algorithms, ≥ `1−ε` for bicriteria).
    pub worst_coverage_ratio: f64,
}

/// Drive an online set-cover algorithm over an arrival sequence,
/// auditing the coverage contract after every arrival.
///
/// # Panics
/// If coverage ever falls below `alg.coverage_slack() · k_j` (with
/// integer rounding: `cover_j ≥ ceil(slack·k_j) − 1 + 1` is not
/// required; we check `cover_j ≥ slack·k_j` directly), or if a set is
/// bought twice.
pub fn run_set_cover<A: OnlineSetCover>(
    alg: &mut A,
    system: &SetSystem,
    arrivals: &[u32],
) -> SetCoverRun {
    assert!(
        system.arrivals_feasible(arrivals),
        "arrival sequence is uncoverable"
    );
    let slack = alg.coverage_slack();
    let mut bought = vec![false; system.num_sets()];
    let mut coverage = vec![0u32; system.num_elements()];
    let mut k = vec![0u32; system.num_elements()];
    let mut cost = 0.0;
    let mut sets_bought = 0usize;
    for &j in arrivals {
        k[j as usize] += 1;
        let new_sets = alg.on_arrival(j);
        for s in new_sets {
            assert!(!bought[s.index()], "{}: set {s:?} bought twice", alg.name());
            bought[s.index()] = true;
            sets_bought += 1;
            cost += system.cost(s);
            for &el in system.elements_of(s) {
                coverage[el as usize] += 1;
            }
        }
        for el in 0..system.num_elements() {
            let need = slack * k[el] as f64;
            assert!(
                coverage[el] as f64 >= need - 1e-9,
                "{}: element {el} covered {} < {need}",
                alg.name(),
                coverage[el]
            );
        }
    }
    let worst_coverage_ratio = (0..system.num_elements())
        .filter(|&el| k[el] > 0)
        .map(|el| coverage[el] as f64 / k[el] as f64)
        .fold(f64::INFINITY, f64::min);
    SetCoverRun {
        cost,
        sets_bought,
        worst_coverage_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_baselines::{GreedyNonPreemptive, NaiveOnlineCover};
    use acmr_core::setcover::SetSystem;
    use acmr_core::Request;
    use acmr_graph::{EdgeId, EdgeSet};

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn admission_run_counts() {
        let mut inst = AdmissionInstance::from_capacities(vec![1]);
        inst.push(Request::new(fp(&[0]), 2.0));
        inst.push(Request::new(fp(&[0]), 3.0));
        inst.push(Request::new(fp(&[0]), 4.0));
        let mut alg = GreedyNonPreemptive::new(&inst.capacities);
        let run = run_admission(&mut alg, &inst);
        assert_eq!(run.accepted, vec![true, false, false]);
        assert_eq!(run.rejected_cost, 7.0);
        assert_eq!(run.rejected_count, 2);
        assert_eq!(run.preemptions, 0);
    }

    #[test]
    fn set_cover_run_audits_coverage() {
        let system = SetSystem::unit(2, vec![vec![0], vec![1], vec![0, 1]]);
        let mut alg = NaiveOnlineCover::new(system.clone());
        let run = run_set_cover(&mut alg, &system, &[0, 1, 0]);
        assert!(run.worst_coverage_ratio >= 1.0);
        assert!(run.cost >= 2.0);
        assert_eq!(run.sets_bought as f64, run.cost); // unit costs
    }

    #[test]
    #[should_panic(expected = "uncoverable")]
    fn set_cover_rejects_infeasible_arrivals() {
        let system = SetSystem::unit(1, vec![vec![0]]);
        let mut alg = NaiveOnlineCover::new(system.clone());
        run_set_cover(&mut alg, &system, &[0, 0]);
    }

    #[test]
    fn run_registered_echoes_seed_and_matches_run_admission() {
        let reg = crate::registry::default_registry();
        let mut inst = AdmissionInstance::from_capacities(vec![1, 1]);
        inst.push(Request::new(fp(&[0]), 2.0));
        inst.push(Request::new(fp(&[0, 1]), 3.0));
        inst.push(Request::new(fp(&[1]), 4.0));

        let report = run_registered(&reg, "greedy", &inst, 0).unwrap();
        assert_eq!(report.algorithm, "greedy");
        assert_eq!(report.seed, Some(0));
        let mut alg = GreedyNonPreemptive::new(&inst.capacities);
        let run = run_admission(&mut alg, &inst);
        assert_eq!(report.rejected_cost, run.rejected_cost);
        assert_eq!(report.rejected_count, run.rejected_count);
        assert_eq!(report.preemptions, run.preemptions);
    }

    #[test]
    fn batched_runners_match_streaming_runners() {
        let reg = crate::registry::default_registry();
        let mut inst = AdmissionInstance::from_capacities(vec![2, 2]);
        for i in 0..10u32 {
            let fp = if i % 2 == 0 { fp(&[0]) } else { fp(&[0, 1]) };
            inst.push(Request::new(fp, 1.0 + (i % 3) as f64));
        }
        for spec in ["greedy", "aag-weighted?seed=5", "random-preempt"] {
            let streaming = run_registered(&reg, spec, &inst, 2).unwrap();
            for batch in [1usize, 3, 64] {
                let batched = run_registered_batched(&reg, spec, &inst, 2, batch).unwrap();
                assert_eq!(batched, streaming, "{spec} batch {batch}");
            }
            let with_opt = run_report(&reg, spec, &inst, 2, BoundBudget::default()).unwrap();
            let batched =
                run_report_batched(&reg, spec, &inst, 2, BoundBudget::default(), 4).unwrap();
            assert_eq!(batched, with_opt, "{spec} with opt");
        }
        let err = run_registered_batched(&reg, "greedy", &inst, 0, 0).unwrap_err();
        assert!(err.to_string().contains("batch size"), "{err}");
    }

    #[test]
    fn run_report_attaches_opt_and_ratio() {
        let reg = crate::registry::default_registry();
        let mut inst = AdmissionInstance::from_capacities(vec![1]);
        inst.push(Request::new(fp(&[0]), 2.0));
        inst.push(Request::new(fp(&[0]), 3.0));
        let report = run_report(&reg, "greedy", &inst, 0, BoundBudget::default()).unwrap();
        let opt = report.opt.as_ref().expect("opt attached");
        assert_eq!(opt.kind, "exact");
        assert!((opt.value - 2.0).abs() < 1e-9);
        assert!(opt.ratio.unwrap() >= 1.0);
        assert!(report.ratio().unwrap() >= 1.0);
    }

    #[test]
    fn run_report_rejects_unknown_algorithms_with_typed_error() {
        let reg = crate::registry::default_registry();
        let inst = AdmissionInstance::from_capacities(vec![1]);
        let err = run_report(&reg, "nope", &inst, 0, BoundBudget::default()).unwrap_err();
        assert!(matches!(err, AcmrError::UnknownAlgorithm { .. }));
        let err = run_registered(&reg, "bad spec!", &inst, 0).unwrap_err();
        assert!(matches!(err, AcmrError::SpecParse { .. }));
    }

    #[test]
    fn opt_summary_ratio_is_none_only_when_unbounded() {
        let bound = OptBound {
            value: 0.0,
            kind: crate::opt::OptBoundKind::Exact,
        };
        assert_eq!(opt_summary(&bound, 0.0).ratio, Some(1.0));
        assert_eq!(opt_summary(&bound, 5.0).ratio, None);
        let bound = OptBound {
            value: 2.0,
            kind: crate::opt::OptBoundKind::LpLowerBound,
        };
        assert_eq!(opt_summary(&bound, 5.0).ratio, Some(2.5));
        assert_eq!(opt_summary(&bound, 5.0).kind, "lp-lower-bound");
    }
}
