//! The sharded multi-trace driver: one call from a set of
//! `(algorithm spec, trace)` jobs to an aggregated, serde-backed
//! [`SweepReport`].
//!
//! This is the scaling entry point the ROADMAP asks for on top of the
//! streaming [`Session`]: jobs fan out over `std::thread::scope`d
//! workers (via [`crate::parallel_map`], so results are deterministic
//! and input-ordered regardless of thread count), every job drives its
//! algorithm through the batch layer
//! ([`Session::push_batch_into`] with one reused event buffer per
//! worker job), and — the big amortization — the offline-optimum bound
//! of each **distinct trace is computed once** and shared by every job
//! that runs on it, instead of once per `(spec, trace)` pair as the
//! sequential [`crate::run_report`] path does. On sweeps of many
//! algorithms/seeds over few traces the bound dominates, so this is a
//! large honest speedup even on one core; on multicore machines thread
//! sharding stacks on top.

use crate::opt::{admission_opt, BoundBudget, OptBound};
use crate::parallel::{default_threads, parallel_map};
use crate::runner::opt_summary;
use crate::stream::admission_opt_from_path;
use acmr_core::{
    AcmrError, AdmissionInstance, AlgorithmSpec, Registry, RequestSource, RunReport, Session,
};
use acmr_workloads::open_trace;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Where a sweep trace lives: fully materialized, or on disk to be
/// **streamed** by every job that references it (the instance is never
/// held in memory — arrivals flow straight from chunked file reads
/// into the session, and the offline-optimum bound is computed by the
/// two-pass scheme of [`crate::stream`]).
#[derive(Clone, Debug)]
pub enum TraceSource {
    /// A materialized instance (the PR-2 shape).
    InMemory(AdmissionInstance),
    /// A trace file in the format of `docs/TRACE_FORMAT.md`.
    Path(PathBuf),
}

impl From<AdmissionInstance> for TraceSource {
    fn from(inst: AdmissionInstance) -> Self {
        TraceSource::InMemory(inst)
    }
}

impl From<PathBuf> for TraceSource {
    fn from(path: PathBuf) -> Self {
        TraceSource::Path(path)
    }
}

/// Borrowed view shared by the in-memory and path-backed run paths
/// (and by [`crate::cluster::ClusterDriver`], which resolves jobs and
/// computes bounds through the exact same phases).
pub(crate) enum SourceRef<'a> {
    Mem(&'a AdmissionInstance),
    Path(&'a Path),
}

/// Resolve every job against the trace table and parse its spec, so a
/// typo fails fast before any work is fanned out. Also rejects
/// duplicate trace names (a sweep must be unambiguous about which
/// trace a job means).
pub(crate) fn resolve_jobs<'j>(
    names: &[&str],
    jobs: &'j [SweepJob],
) -> Result<Vec<(usize, AlgorithmSpec, &'j SweepJob)>, AcmrError> {
    for (i, name) in names.iter().enumerate() {
        if names[..i].contains(name) {
            return Err(AcmrError::InvalidRequest {
                reason: format!("duplicate trace name {name:?} in sweep"),
            });
        }
    }
    jobs.iter()
        .map(|job| {
            let idx = names.iter().position(|n| *n == job.trace).ok_or_else(|| {
                AcmrError::InvalidRequest {
                    reason: format!("job references unknown trace {:?}", job.trace),
                }
            })?;
            Ok((idx, AlgorithmSpec::parse(&job.spec)?, job))
        })
        .collect()
}

/// One offline-optimum bound per distinct trace that some job
/// actually references, fanned over `threads` — `None` entries mean
/// "no budget requested" or "no job runs on this trace". Path-backed
/// traces use the two-pass streamed bound, which equals the in-memory
/// bound by construction.
pub(crate) fn compute_shared_bounds(
    sources: &[SourceRef<'_>],
    resolved: &[(usize, AlgorithmSpec, &SweepJob)],
    budget: Option<BoundBudget>,
    threads: usize,
) -> Result<Vec<Option<OptBound>>, AcmrError> {
    let mut bounds: Vec<Option<OptBound>> = vec![None; sources.len()];
    if let Some(budget) = budget {
        let mut used: Vec<usize> = resolved.iter().map(|(idx, _, _)| *idx).collect();
        used.sort_unstable();
        used.dedup();
        let inputs: Vec<(usize, &SourceRef<'_>)> =
            used.into_iter().map(|i| (i, &sources[i])).collect();
        for (i, bound) in parallel_map(inputs, threads, |(i, source)| {
            let bound = match source {
                SourceRef::Mem(inst) => Ok(admission_opt(inst, budget)),
                SourceRef::Path(path) => admission_opt_from_path(path, budget),
            };
            (*i, bound)
        }) {
            bounds[i] = Some(bound?);
        }
    }
    Ok(bounds)
}

/// Fold per-job results into one [`SweepReport`] (submission order,
/// earliest failing job's error wins) — the final phase every sweep
/// driver shares, so sharded and cluster reports aggregate
/// identically by construction.
pub(crate) fn aggregate_sweep(
    batch: usize,
    threads: usize,
    jobs: &[SweepJob],
    results: Vec<Result<RunReport, AcmrError>>,
) -> Result<SweepReport, AcmrError> {
    let mut sweep_jobs = Vec::with_capacity(jobs.len());
    let mut totals = SweepTotals::default();
    for (job, result) in jobs.iter().zip(results) {
        let report = result?;
        totals.jobs += 1;
        totals.requests += report.requests;
        totals.rejected_count += report.rejected_count;
        totals.preemptions += report.preemptions;
        totals.rejected_cost += report.rejected_cost;
        totals.offered_cost += report.offered_cost;
        sweep_jobs.push(JobReport {
            trace: job.trace.clone(),
            report,
        });
    }
    Ok(SweepReport {
        batch,
        threads,
        jobs: sweep_jobs,
        totals,
    })
}

/// One unit of sweep work: run `spec` (seeded with `seed`) over the
/// named trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepJob {
    /// Name of the trace to run on (must match a trace handed to
    /// [`ShardedDriver::run`]).
    pub trace: String,
    /// Registry spec string, e.g. `aag-weighted?threshold=6`.
    pub spec: String,
    /// Base seed for randomized algorithms (a `seed=` in the spec
    /// still takes precedence, exactly like the sequential runners).
    pub seed: u64,
}

impl SweepJob {
    /// Convenience constructor.
    pub fn new(trace: impl Into<String>, spec: impl Into<String>, seed: u64) -> Self {
        SweepJob {
            trace: trace.into(),
            spec: spec.into(),
            seed,
        }
    }
}

/// One job's result inside a [`SweepReport`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The trace the job ran on.
    pub trace: String,
    /// The job's full run report (opt context attached when the driver
    /// was given a bound budget).
    pub report: RunReport,
}

/// Aggregate statistics over every job in a sweep.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepTotals {
    /// Number of jobs run.
    pub jobs: usize,
    /// Total arrivals processed across jobs.
    pub requests: usize,
    /// Total rejections across jobs.
    pub rejected_count: usize,
    /// Total preemptions across jobs.
    pub preemptions: usize,
    /// Total rejected cost across jobs (the paper's objective, summed).
    pub rejected_cost: f64,
    /// Total offered cost across jobs.
    pub offered_cost: f64,
}

/// Everything a sharded sweep produced: per-job reports in job order
/// plus aggregate totals. Serde-backed — `serde_json` round-trips it,
/// and the golden regression corpus pins it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Batch size every job's session used.
    pub batch: usize,
    /// Worker threads the sweep ran on (wall-clock only: results are
    /// identical for every thread count).
    pub threads: usize,
    /// Per-job results, in the order the jobs were submitted.
    pub jobs: Vec<JobReport>,
    /// Aggregates over `jobs`.
    pub totals: SweepTotals,
}

/// Fans a set of `(spec, trace)` jobs across scoped worker threads,
/// driving each through [`Session::push_batch_into`] and aggregating
/// the [`RunReport`]s into one [`SweepReport`].
///
/// ```
/// use acmr_harness::{default_registry, ShardedDriver, SweepJob};
/// use acmr_core::{AdmissionInstance, Request};
/// use acmr_graph::{EdgeId, EdgeSet};
///
/// let mut inst = AdmissionInstance::from_capacities(vec![1]);
/// inst.push(Request::unit(EdgeSet::singleton(EdgeId(0))));
/// let registry = default_registry();
/// let sweep = ShardedDriver::new()
///     .threads(2)
///     .batch(16)
///     .run(
///         &registry,
///         &[("t0".to_string(), inst)],
///         &[SweepJob::new("t0", "greedy", 0)],
///     )
///     .unwrap();
/// assert_eq!(sweep.totals.jobs, 1);
/// assert_eq!(sweep.jobs[0].report.rejected_count, 0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ShardedDriver {
    threads: usize,
    batch: usize,
    budget: Option<BoundBudget>,
}

impl Default for ShardedDriver {
    fn default() -> Self {
        ShardedDriver::new()
    }
}

impl ShardedDriver {
    /// A driver with the default worker count
    /// ([`crate::parallel::default_threads`]), batch size 64, and no
    /// offline-optimum bounds.
    pub fn new() -> Self {
        ShardedDriver {
            threads: default_threads(),
            batch: 64,
            budget: None,
        }
    }

    /// Set the worker thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the arrival batch size every job's session uses (clamped to
    /// at least 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Attach offline-optimum context to every job's report. The bound
    /// is computed **once per distinct trace** and shared across all
    /// jobs on that trace.
    pub fn budget(mut self, budget: BoundBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Run `jobs` over the named in-memory `traces` and aggregate —
    /// the PR-2 entry point, now a thin wrapper over
    /// [`ShardedDriver::run_sources`] with every trace
    /// [`TraceSource::InMemory`].
    ///
    /// Jobs are independent; results are returned in submission order
    /// and are identical for every thread count. Bad inputs (unknown
    /// algorithm or trace name, malformed spec) fail fast before any
    /// work is fanned out; a mid-sweep job error (e.g. a contract
    /// violation) fails the whole sweep — the error of the earliest
    /// failing job is returned once in-flight jobs have finished, and
    /// no partial report is produced.
    pub fn run(
        &self,
        registry: &Registry,
        traces: &[(String, AdmissionInstance)],
        jobs: &[SweepJob],
    ) -> Result<SweepReport, AcmrError> {
        let names: Vec<&str> = traces.iter().map(|(n, _)| n.as_str()).collect();
        let sources: Vec<SourceRef<'_>> = traces
            .iter()
            .map(|(_, inst)| SourceRef::Mem(inst))
            .collect();
        self.run_refs(registry, &names, &sources, jobs)
    }

    /// [`ShardedDriver::run`] over [`TraceSource`]s: jobs referencing a
    /// [`TraceSource::Path`] trace **stream** it from disk — each job
    /// drives its session straight off the format-sniffed reader
    /// ([`open_trace`]: chunked text, or zero-copy mmap replay for
    /// binary v2 traces), and
    /// the trace's offline-optimum bound (still computed once per
    /// distinct trace) uses the two-pass streamed scheme — so a sweep
    /// can fan out over trace files that never fit in memory. Reports
    /// are identical to running the same trace in memory.
    pub fn run_sources(
        &self,
        registry: &Registry,
        traces: &[(String, TraceSource)],
        jobs: &[SweepJob],
    ) -> Result<SweepReport, AcmrError> {
        let names: Vec<&str> = traces.iter().map(|(n, _)| n.as_str()).collect();
        let sources: Vec<SourceRef<'_>> = traces
            .iter()
            .map(|(_, s)| match s {
                TraceSource::InMemory(inst) => SourceRef::Mem(inst),
                TraceSource::Path(path) => SourceRef::Path(path),
            })
            .collect();
        self.run_refs(registry, &names, &sources, jobs)
    }

    fn run_refs(
        &self,
        registry: &Registry,
        names: &[&str],
        sources: &[SourceRef<'_>],
        jobs: &[SweepJob],
    ) -> Result<SweepReport, AcmrError> {
        // Resolve and parse everything upfront so a typo fails fast,
        // before any work is fanned out.
        let resolved = resolve_jobs(names, jobs)?;

        // Phase 1: shared offline-optimum bounds.
        let bounds = compute_shared_bounds(sources, &resolved, self.budget, self.threads)?;

        // Phase 2: the jobs themselves, sharded, each through the
        // session batch layer — from a slice for in-memory traces, or
        // chunk-buffered off a chunked trace reader for path traces.
        let batch = self.batch;
        let results: Vec<Result<RunReport, AcmrError>> =
            parallel_map(resolved, self.threads, |(trace_idx, spec, job)| {
                let mut report = match &sources[*trace_idx] {
                    SourceRef::Mem(inst) => {
                        let mut session =
                            Session::from_registry(registry, spec, &inst.capacities, job.seed)?;
                        let mut events = Vec::new();
                        for chunk in inst.requests.chunks(batch) {
                            session.push_batch_into(chunk, &mut events)?;
                        }
                        session.report()
                    }
                    SourceRef::Path(path) => {
                        let reader = open_trace(path)?;
                        let capacities = RequestSource::capacities(&reader).to_vec();
                        let mut session =
                            Session::from_registry(registry, spec, &capacities, job.seed)?;
                        session.run_stream_batched(reader, batch)?
                    }
                };
                if let Some(bound) = &bounds[*trace_idx] {
                    report.opt = Some(opt_summary(bound, report.rejected_cost));
                }
                Ok(report)
            });

        aggregate_sweep(self.batch, self.threads, jobs, results)
    }
}

/// The cross product of traces × specs × seeds as a job list — the
/// common sweep shape (`exp_all`, the throughput bench, the golden
/// corpus all use it).
pub fn cross_jobs(trace_names: &[&str], specs: &[&str], seeds: &[u64]) -> Vec<SweepJob> {
    let mut jobs = Vec::with_capacity(trace_names.len() * specs.len() * seeds.len());
    for &trace in trace_names {
        for &spec in specs {
            for &seed in seeds {
                jobs.push(SweepJob::new(trace, spec, seed));
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::default_registry;
    use acmr_core::Request;
    use acmr_graph::{EdgeId, EdgeSet};

    fn fp(ids: &[u32]) -> EdgeSet {
        EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    fn hot_edge(total: u32) -> AdmissionInstance {
        let mut inst = AdmissionInstance::from_capacities(vec![2, 2]);
        for _ in 0..total {
            inst.push(Request::unit(fp(&[0])));
        }
        inst
    }

    fn traces() -> Vec<(String, AdmissionInstance)> {
        vec![
            ("hot4".to_string(), hot_edge(4)),
            ("hot8".to_string(), hot_edge(8)),
        ]
    }

    #[test]
    fn sweep_matches_sequential_run_registered() {
        let registry = default_registry();
        let traces = traces();
        let jobs = cross_jobs(&["hot4", "hot8"], &["greedy", "aag-unweighted"], &[0, 7]);
        let sweep = ShardedDriver::new()
            .threads(3)
            .batch(3)
            .run(&registry, &traces, &jobs)
            .unwrap();
        assert_eq!(sweep.jobs.len(), 8);
        assert_eq!(sweep.totals.jobs, 8);
        for (job, jr) in jobs.iter().zip(&sweep.jobs) {
            let inst = &traces.iter().find(|(n, _)| *n == job.trace).unwrap().1;
            let seq = crate::runner::run_registered(&registry, &job.spec, inst, job.seed).unwrap();
            assert_eq!(jr.report, seq, "job {job:?}");
            assert_eq!(jr.trace, job.trace);
        }
        let expected_rejected: usize = sweep.jobs.iter().map(|j| j.report.rejected_count).sum();
        assert_eq!(sweep.totals.rejected_count, expected_rejected);
    }

    #[test]
    fn thread_and_batch_counts_do_not_change_results() {
        let registry = default_registry();
        let traces = traces();
        let jobs = cross_jobs(&["hot4", "hot8"], &["aag-weighted", "random-preempt"], &[3]);
        let reference = ShardedDriver::new()
            .threads(1)
            .batch(1)
            .run(&registry, &traces, &jobs)
            .unwrap();
        for (threads, batch) in [(2, 2), (4, 64), (8, 5)] {
            let sweep = ShardedDriver::new()
                .threads(threads)
                .batch(batch)
                .run(&registry, &traces, &jobs)
                .unwrap();
            assert_eq!(
                sweep.jobs, reference.jobs,
                "threads {threads} batch {batch}"
            );
        }
    }

    #[test]
    fn shared_opt_bound_matches_per_job_run_report() {
        let registry = default_registry();
        let traces = traces();
        let jobs = cross_jobs(&["hot4"], &["greedy", "preempt-cheapest"], &[0]);
        let sweep = ShardedDriver::new()
            .threads(2)
            .budget(BoundBudget::default())
            .run(&registry, &traces, &jobs)
            .unwrap();
        for (job, jr) in jobs.iter().zip(&sweep.jobs) {
            let seq = crate::runner::run_report(
                &registry,
                &job.spec,
                &traces[0].1,
                job.seed,
                BoundBudget::default(),
            )
            .unwrap();
            assert_eq!(jr.report, seq);
            assert!(jr.report.opt.is_some());
        }
    }

    #[test]
    fn bounds_are_computed_only_for_referenced_traces() {
        // A sweep whose jobs touch only one of two traces: the unused
        // trace is enormous enough that computing its bound would
        // dominate the test's runtime budget — referencing it here by
        // accident shows up as a multi-second stall and a wrong
        // totals count, but the real assertion is that the used
        // trace's bound still arrives.
        let registry = default_registry();
        let mut big = AdmissionInstance::from_capacities(vec![1; 64]);
        for _ in 0..2000 {
            for e in 0..63u32 {
                big.push(Request::unit(fp(&[e, e + 1])));
            }
        }
        let traces = vec![("small".to_string(), hot_edge(4)), ("big".to_string(), big)];
        let start = std::time::Instant::now();
        let sweep = ShardedDriver::new()
            .threads(2)
            .budget(BoundBudget::default())
            .run(
                &registry,
                &traces,
                &cross_jobs(&["small"], &["greedy"], &[0]),
            )
            .unwrap();
        assert!(sweep.jobs[0].report.opt.is_some());
        assert_eq!(sweep.jobs[0].report.opt.as_ref().unwrap().kind, "exact");
        // Generous ceiling: the small trace's exact bound is
        // microseconds; the big trace's greedy bound alone takes far
        // longer if it is (wrongly) computed.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "unused trace's bound was computed ({}ms)",
            start.elapsed().as_millis()
        );
    }

    #[test]
    fn path_backed_sweep_matches_in_memory_sweep() {
        let registry = default_registry();
        let in_memory = traces();
        // Persist the same traces and reference them by path.
        let dir = std::env::temp_dir();
        let sources: Vec<(String, TraceSource)> = in_memory
            .iter()
            .map(|(name, inst)| {
                let path = dir.join(format!(
                    "acmr-shard-test-{}-{name}.trace",
                    std::process::id()
                ));
                std::fs::write(&path, acmr_workloads::trace::write_trace(inst)).unwrap();
                (name.clone(), TraceSource::Path(path))
            })
            .collect();

        let jobs = cross_jobs(&["hot4", "hot8"], &["greedy", "aag-weighted"], &[0, 7]);
        let reference = ShardedDriver::new()
            .threads(2)
            .batch(3)
            .budget(BoundBudget::default())
            .run(&registry, &in_memory, &jobs)
            .unwrap();
        let streamed = ShardedDriver::new()
            .threads(2)
            .batch(3)
            .budget(BoundBudget::default())
            .run_sources(&registry, &sources, &jobs)
            .unwrap();
        assert_eq!(streamed, reference, "path-backed sweep must be identical");
        // And byte-identical once serialized (the golden-corpus bar).
        assert_eq!(
            serde_json::to_string_pretty(&streamed).unwrap(),
            serde_json::to_string_pretty(&reference).unwrap()
        );

        // Mixed sources work too.
        let mixed: Vec<(String, TraceSource)> = vec![
            (
                "hot4".to_string(),
                TraceSource::InMemory(in_memory[0].1.clone()),
            ),
            ("hot8".to_string(), sources[1].1.clone()),
        ];
        let mixed_sweep = ShardedDriver::new()
            .threads(2)
            .batch(3)
            .budget(BoundBudget::default())
            .run_sources(&registry, &mixed, &jobs)
            .unwrap();
        assert_eq!(mixed_sweep, reference);

        // A missing file fails the sweep with a typed I/O error.
        let missing = vec![(
            "hot4".to_string(),
            TraceSource::Path(dir.join("acmr-shard-test-definitely-missing.trace")),
        )];
        let err = ShardedDriver::new()
            .run_sources(
                &registry,
                &missing,
                &cross_jobs(&["hot4"], &["greedy"], &[0]),
            )
            .unwrap_err();
        assert!(matches!(err, AcmrError::Io { .. }), "{err}");

        for (_, source) in sources {
            if let TraceSource::Path(path) = source {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    #[test]
    fn sweep_report_round_trips_through_json() {
        let registry = default_registry();
        let traces = traces();
        let jobs = cross_jobs(&["hot8"], &["greedy"], &[0]);
        let sweep = ShardedDriver::new()
            .threads(2)
            .batch(4)
            .run(&registry, &traces, &jobs)
            .unwrap();
        let json = serde_json::to_string_pretty(&sweep).unwrap();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sweep);
    }

    #[test]
    fn bad_jobs_fail_fast_with_typed_errors() {
        let registry = default_registry();
        let traces = traces();
        let err = ShardedDriver::new()
            .run(&registry, &traces, &[SweepJob::new("nope", "greedy", 0)])
            .unwrap_err();
        assert!(err.to_string().contains("unknown trace"), "{err}");
        let err = ShardedDriver::new()
            .run(&registry, &traces, &[SweepJob::new("hot4", "wat", 0)])
            .unwrap_err();
        assert!(matches!(err, AcmrError::UnknownAlgorithm { .. }));
        let mut dup = traces;
        let extra = ("hot4".to_string(), hot_edge(2));
        dup.push(extra);
        let err = ShardedDriver::new().run(&registry, &dup, &[]).unwrap_err();
        assert!(err.to_string().contains("duplicate trace"), "{err}");
    }

    #[test]
    fn empty_job_list_is_an_empty_sweep() {
        let registry = default_registry();
        let sweep = ShardedDriver::new().run(&registry, &traces(), &[]).unwrap();
        assert!(sweep.jobs.is_empty());
        assert_eq!(sweep.totals, SweepTotals::default());
    }

    #[test]
    fn cross_jobs_orders_trace_major() {
        let jobs = cross_jobs(&["a", "b"], &["x"], &[1, 2]);
        let flat: Vec<(String, String, u64)> = jobs
            .into_iter()
            .map(|j| (j.trace, j.spec, j.seed))
            .collect();
        assert_eq!(
            flat,
            vec![
                ("a".into(), "x".into(), 1),
                ("a".into(), "x".into(), 2),
                ("b".into(), "x".into(), 1),
                ("b".into(), "x".into(), 2),
            ]
        );
    }
}
