//! Tiny statistics for repeated randomized trials.

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Median (mean of middle pair for even n).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns a zeroed summary for empty input.
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                median: 0.0,
                max: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            median,
            max: sorted[n - 1],
        }
    }

    /// `mean ± std` rendered compactly.
    pub fn mean_pm_std(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample std of 1..4 is sqrt(5/3).
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn odd_median() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn singleton_and_empty() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
    }

    #[test]
    fn formatting() {
        let s = Summary::of(&[1.0, 1.0]);
        assert_eq!(s.mean_pm_std(), "1.000 ± 0.000");
    }
}
