//! Tiny statistics for repeated randomized trials.

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Median (mean of middle pair for even n).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a non-empty sample; `None` for an empty one.
    ///
    /// NaN values are ordered with [`f64::total_cmp`] (they sort above
    /// every finite value) instead of panicking, so a sample polluted
    /// by a degenerate trial still yields a summary whose NaNs are
    /// visible in the moments rather than aborting the whole table.
    pub fn from_values(values: &[f64]) -> Option<Summary> {
        let n = values.len();
        if n == 0 {
            return None;
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Some(Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            median,
            max: sorted[n - 1],
        })
    }

    /// Summarize a sample. Returns a zeroed summary for empty input;
    /// use [`Summary::from_values`] when "no data" must stay
    /// distinguishable from "all zeros".
    pub fn of(values: &[f64]) -> Summary {
        Summary::from_values(values).unwrap_or(Summary {
            n: 0,
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            median: 0.0,
            max: 0.0,
        })
    }

    /// `mean ± std` rendered compactly.
    pub fn mean_pm_std(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample std of 1..4 is sqrt(5/3).
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn odd_median() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn singleton_and_empty() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(Summary::from_values(&[]), None);
    }

    #[test]
    fn nan_values_do_not_panic() {
        // Regression: sort_by(partial_cmp().unwrap()) panicked here.
        let s = Summary::of(&[2.0, f64::NAN, 1.0]);
        assert_eq!(s.n, 3);
        // total_cmp puts positive NaN above every finite value.
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert!(s.max.is_nan());
        assert!(s.mean.is_nan());
        // All-NaN input still summarizes.
        let s = Summary::of(&[f64::NAN, f64::NAN]);
        assert!(s.min.is_nan() && s.median.is_nan() && s.max.is_nan());
        // And the typed form agrees with the lenient one on data.
        let v = [3.0, 1.0, 2.0];
        assert_eq!(Summary::from_values(&v), Some(Summary::of(&v)));
    }

    #[test]
    fn formatting() {
        let s = Summary::of(&[1.0, 1.0]);
        assert_eq!(s.mean_pm_std(), "1.000 ± 0.000");
    }
}
