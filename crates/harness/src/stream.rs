//! Streamed trace runners: complete [`RunReport`]s for instances that
//! are never materialized in memory.
//!
//! The streaming `Session` (`acmr_core::Session::run_stream`) needs no
//! help from this crate — but a *complete* report also carries the
//! offline-optimum bound, and the covering program behind that bound is
//! an instance-level object. This module closes the gap with a
//! **two-pass** scheme:
//!
//! 1. **Pass 1** drives the algorithm (per-push or batched) while a
//!    [`StreamScan`] observes each arrival in `O(m)` memory: per-edge
//!    arrival counts, the cheapest cost, and the request count.
//! 2. **Pass 2** re-streams the trace and materializes only what the
//!    covering program actually needs: every request's cost (`O(n)`
//!    floats) plus membership lists **restricted to the edges pass 1
//!    proved over-subscribed** — on typical workloads a small fraction
//!    of the full footprint set an in-memory
//!    [`acmr_core::AdmissionInstance`] would hold.
//!
//! The program pass 2 builds is *identical* (same items, same rows,
//! same order) to what [`crate::admission_covering_problem`] builds
//! from the materialized instance, so [`run_report_streamed`] produces
//! bounds — and therefore reports — byte-identical to the in-memory
//! [`crate::run_report`] path. The differential and CLI suites pin
//! this.
//!
//! For non-seekable input (chunked stdin) [`run_report_spooled`] tees
//! pass 1's bytes into a temp file and replays pass 2 from the spill,
//! keeping memory — though not disk — bounded.

use crate::opt::{BoundBudget, OptBound};
use crate::runner::opt_summary;
use acmr_core::{AcmrError, AlgorithmSpec, Registry, Request, RequestSource, RunReport, Session};
use acmr_lp::CoveringProblem;
use acmr_workloads::open_trace;
use acmr_workloads::trace::TraceReader;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Pass-1 observation of an arrival stream: everything the two-pass
/// OPT bound needs to know before deciding which footprints pass 2
/// must keep. `O(m)` memory, independent of the stream length.
#[derive(Clone, Debug)]
pub struct StreamScan {
    /// Arrivals touching each edge (the paper's `|REQ_e|`).
    counts: Vec<u64>,
    /// Cheapest request cost seen (`+∞` on an empty stream).
    cheapest: f64,
    /// Requests observed.
    requests: usize,
}

impl StreamScan {
    /// An empty scan over `num_edges` edges.
    pub fn new(num_edges: usize) -> Self {
        StreamScan {
            counts: vec![0; num_edges],
            cheapest: f64::INFINITY,
            requests: 0,
        }
    }

    /// Observe one arrival.
    pub fn observe(&mut self, r: &Request) {
        for e in r.footprint.iter() {
            self.counts[e.index()] += 1;
        }
        self.cheapest = self.cheapest.min(r.cost);
        self.requests += 1;
    }

    /// Requests observed so far.
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// Final excess `Q = max_e (|REQ_e| − c_e)`, clamped at 0 — the
    /// streaming equivalent of
    /// [`acmr_core::AdmissionInstance::max_excess`].
    pub fn max_excess(&self, capacities: &[u32]) -> u64 {
        self.counts
            .iter()
            .zip(capacities)
            .map(|(&l, &c)| l.saturating_sub(c as u64))
            .max()
            .unwrap_or(0)
    }
}

/// Drain `source` into a fresh [`StreamScan`] without running any
/// algorithm — the bound-only pass the sharded driver uses for
/// path-backed traces. Generic over [`RequestSource`], so text and
/// binary readers scan identically.
pub fn scan_trace<S: RequestSource>(mut source: S) -> Result<StreamScan, AcmrError> {
    let mut scan = StreamScan::new(source.capacities().len());
    while let Some(r) = source.next_request()? {
        scan.observe(&r);
    }
    Ok(scan)
}

/// Pass 2 of the two-pass OPT bound: re-stream the trace and compute
/// the same [`OptBound`] that [`crate::admission_opt`] computes from a
/// materialized instance, holding only every request's cost plus
/// membership lists for the edges `scan` proved over-subscribed.
///
/// Errors with [`AcmrError::InvalidRequest`] if the stream does not
/// match the scan (different edge universe or request count — i.e. the
/// trace changed between passes).
pub fn streamed_admission_opt<S: RequestSource>(
    mut reader: S,
    scan: &StreamScan,
    budget: BoundBudget,
) -> Result<OptBound, AcmrError> {
    let capacities = reader.capacities().to_vec();
    if capacities.len() != scan.counts.len() {
        return Err(AcmrError::InvalidRequest {
            reason: format!(
                "trace changed between passes: {} edges on pass 2, {} on pass 1",
                capacities.len(),
                scan.counts.len()
            ),
        });
    }
    // Only edges the scan proved over-subscribed can produce a row;
    // everything else's memberships are dropped at the door.
    let mut row_of_edge: Vec<Option<usize>> = vec![None; capacities.len()];
    let mut rows: Vec<Vec<usize>> = Vec::new();
    for (e, (&count, &cap)) in scan.counts.iter().zip(&capacities).enumerate() {
        if count > cap as u64 {
            row_of_edge[e] = Some(rows.len());
            rows.push(Vec::new());
        }
    }
    let mut costs: Vec<f64> = Vec::new();
    while let Some(r) = reader.next_request()? {
        let idx = costs.len();
        for e in r.footprint.iter() {
            if let Some(slot) = row_of_edge[e.index()] {
                rows[slot].push(idx);
            }
        }
        costs.push(r.cost);
    }
    if costs.len() != scan.requests {
        return Err(AcmrError::InvalidRequest {
            reason: format!(
                "trace changed between passes: {} requests on pass 2, {} on pass 1",
                costs.len(),
                scan.requests
            ),
        });
    }
    // Assemble in edge order, exactly like `admission_covering_problem`.
    let mut problem = CoveringProblem::new(costs);
    for (e, slot) in row_of_edge.iter().enumerate() {
        if let Some(slot) = slot {
            let members = std::mem::take(&mut rows[*slot]);
            // Pass 1 proved this edge over-subscribed; if pass 2 no
            // longer agrees, the footprints changed under us (the
            // edge/request-count checks alone cannot catch this).
            let Some(demand @ 1..) = members.len().checked_sub(capacities[e] as usize) else {
                return Err(AcmrError::InvalidRequest {
                    reason: format!(
                        "trace changed between passes: edge {e} was over-subscribed on pass 1 \
                         but has only {} requests for capacity {} on pass 2",
                        members.len(),
                        capacities[e]
                    ),
                });
            };
            problem.push_row(members, demand as u32);
        }
    }
    let q = scan.max_excess(&capacities) as f64;
    let trivial = if scan.cheapest.is_finite() {
        q * scan.cheapest
    } else {
        0.0
    };
    Ok(OptBound::compute(&problem, budget, trivial))
}

/// The two-pass bound for a trace file of either format (the leading
/// magic is sniffed, see [`open_trace`]): scan, then
/// [`streamed_admission_opt`]. Opens the file twice; equals
/// [`crate::admission_opt`] on the materialized instance.
pub fn admission_opt_from_path(
    path: impl AsRef<Path>,
    budget: BoundBudget,
) -> Result<OptBound, AcmrError> {
    let path = path.as_ref();
    let scan = scan_trace(open_trace(path)?)?;
    streamed_admission_opt(open_trace(path)?, &scan, budget)
}

/// Drive `session` from `reader` (per-push, or batched in chunks of
/// `batch`) while `scan` observes every arrival — pass 1 of a
/// streamed run.
fn run_observed<A: acmr_core::OnlineAdmission, S: RequestSource>(
    session: &mut Session<A>,
    reader: S,
    scan: &mut StreamScan,
    batch: Option<usize>,
) -> Result<RunReport, AcmrError> {
    let observed = reader.inspect(|item| {
        if let Ok(r) = item {
            scan.observe(r);
        }
    });
    match batch {
        None => session.run_stream(observed),
        Some(b) => session.run_stream_batched(observed, b),
    }
}

/// Run a registry-addressed algorithm over a streamed trace, without
/// offline-optimum context — the streaming analogue of
/// [`crate::run_registered`] / [`crate::run_registered_batched`]
/// (`batch: None` is the per-push path). Memory is bounded: the
/// instance behind `reader` is never materialized.
pub fn run_stream_registered<S: RequestSource>(
    registry: &Registry,
    spec: &str,
    reader: S,
    base_seed: u64,
    batch: Option<usize>,
) -> Result<RunReport, AcmrError> {
    let spec = AlgorithmSpec::parse(spec)?;
    let capacities = reader.capacities().to_vec();
    let mut session = Session::from_registry(registry, &spec, &capacities, base_seed)?;
    let mut scan = StreamScan::new(capacities.len());
    run_observed(&mut session, reader, &mut scan, batch)
}

/// The complete streamed path: two passes over a re-openable trace
/// source, producing a [`RunReport`] **byte-identical** to what the
/// in-memory [`crate::run_report`] / [`crate::run_report_batched`]
/// path produces for the same trace — what `acmr run --stream <file>`
/// dispatches to.
///
/// `open` is called twice (pass 1: run + scan; pass 2: OPT bound); for
/// a one-shot source like stdin use [`run_report_spooled`].
pub fn run_report_streamed<S, F>(
    registry: &Registry,
    spec: &str,
    mut open: F,
    base_seed: u64,
    budget: BoundBudget,
    batch: Option<usize>,
) -> Result<RunReport, AcmrError>
where
    S: RequestSource,
    F: FnMut() -> Result<S, AcmrError>,
{
    let reader = open()?;
    let parsed = AlgorithmSpec::parse(spec)?;
    let capacities = reader.capacities().to_vec();
    let mut session = Session::from_registry(registry, &parsed, &capacities, base_seed)?;
    let mut scan = StreamScan::new(capacities.len());
    let mut report = run_observed(&mut session, reader, &mut scan, batch)?;
    let bound = streamed_admission_opt(open()?, &scan, budget)?;
    report.opt = Some(opt_summary(&bound, report.rejected_cost));
    Ok(report)
}

/// [`run_report_streamed`] for a trace file path of either format:
/// the leading magic picks chunked text streaming or zero-copy binary
/// replay off a memory map ([`open_trace`]). Reports are byte-identical
/// across formats for converted traces — the `binfmt_differential`
/// suite pins this.
pub fn run_report_from_path(
    registry: &Registry,
    spec: &str,
    path: impl AsRef<Path>,
    base_seed: u64,
    budget: BoundBudget,
    batch: Option<usize>,
) -> Result<RunReport, AcmrError> {
    let path = path.as_ref();
    run_report_streamed(
        registry,
        spec,
        || open_trace(path),
        base_seed,
        budget,
        batch,
    )
}

/// Deletes the spill file when the spooled run ends, success or error.
struct SpoolGuard {
    path: PathBuf,
}

impl Drop for SpoolGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Copies every byte read from `inner` into the spill file, so pass 2
/// can replay a one-shot stream.
struct TeeReader<R: Read> {
    inner: R,
    spool: std::fs::File,
}

impl<R: Read> Read for TeeReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.spool.write_all(&buf[..n])?;
        Ok(n)
    }
}

/// [`run_report_streamed`] for a source that can only be read once
/// (chunked stdin): pass 1 tees the bytes into a spill file under the
/// OS temp directory, pass 2 replays the spill, and the spill is
/// removed before returning — memory stays bounded; disk holds one
/// copy of the trace. This is what `acmr run --stream -` dispatches
/// to.
pub fn run_report_spooled<R: Read>(
    registry: &Registry,
    spec: &str,
    input: R,
    base_seed: u64,
    budget: BoundBudget,
    batch: Option<usize>,
) -> Result<RunReport, AcmrError> {
    static SPOOL_SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "acmr-spool-{}-{}.trace",
        std::process::id(),
        SPOOL_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let spool = std::fs::File::create(&path).map_err(|e| AcmrError::Io {
        message: format!("cannot create spill file {}: {e}", path.display()),
    })?;
    let _guard = SpoolGuard { path: path.clone() };

    let reader = TraceReader::new(TeeReader {
        inner: input,
        spool,
    })?;
    let parsed = AlgorithmSpec::parse(spec)?;
    let capacities = reader.capacities().to_vec();
    let mut session = Session::from_registry(registry, &parsed, &capacities, base_seed)?;
    let mut scan = StreamScan::new(capacities.len());
    let mut report = run_observed(&mut session, reader, &mut scan, batch)?;
    let bound = streamed_admission_opt(TraceReader::open(&path)?, &scan, budget)?;
    report.opt = Some(opt_summary(&bound, report.rejected_cost));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::admission_opt;
    use crate::registry::default_registry;
    use crate::runner::{run_report, run_report_batched};
    use acmr_core::AdmissionInstance;
    use acmr_workloads::trace::write_trace;
    use acmr_workloads::{nested_intervals, repeated_hot_edge, two_phase_squeeze};

    fn traces() -> Vec<AdmissionInstance> {
        vec![
            nested_intervals(12, 2, 2, 2),
            repeated_hot_edge(4, 3, 12),
            two_phase_squeeze(12, 3, 4, 3),
        ]
    }

    #[test]
    fn streamed_opt_equals_in_memory_opt() {
        for inst in traces() {
            let text = write_trace(&inst);
            let reference = admission_opt(&inst, BoundBudget::default());
            let scan = scan_trace(TraceReader::new(text.as_bytes()).unwrap()).unwrap();
            assert_eq!(scan.requests(), inst.requests.len());
            assert_eq!(scan.max_excess(&inst.capacities), inst.max_excess() as u64);
            let streamed = streamed_admission_opt(
                TraceReader::new(text.as_bytes()).unwrap(),
                &scan,
                BoundBudget::default(),
            )
            .unwrap();
            assert_eq!(streamed.kind, reference.kind);
            assert_eq!(streamed.value.to_bits(), reference.value.to_bits());
        }
    }

    #[test]
    fn streamed_report_is_identical_to_in_memory_report() {
        let registry = default_registry();
        for inst in traces() {
            let text = write_trace(&inst);
            for spec in ["greedy", "aag-weighted?seed=5"] {
                let reference =
                    run_report(&registry, spec, &inst, 2, BoundBudget::default()).unwrap();
                let streamed = run_report_streamed(
                    &registry,
                    spec,
                    || TraceReader::new(text.as_bytes()),
                    2,
                    BoundBudget::default(),
                    None,
                )
                .unwrap();
                assert_eq!(streamed, reference, "{spec}");
                // And through serde: byte-identical JSON.
                assert_eq!(
                    serde_json::to_string_pretty(&streamed).unwrap(),
                    serde_json::to_string_pretty(&reference).unwrap()
                );
                // Batched streamed path too.
                let batched_ref =
                    run_report_batched(&registry, spec, &inst, 2, BoundBudget::default(), 5)
                        .unwrap();
                let batched = run_report_streamed(
                    &registry,
                    spec,
                    || TraceReader::new(text.as_bytes()),
                    2,
                    BoundBudget::default(),
                    Some(5),
                )
                .unwrap();
                assert_eq!(batched, batched_ref, "{spec} batched");
            }
        }
    }

    #[test]
    fn path_and_spooled_paths_match_in_memory() {
        let registry = default_registry();
        let inst = repeated_hot_edge(4, 3, 12);
        let text = write_trace(&inst);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("acmr-stream-test-{}.trace", std::process::id()));
        std::fs::write(&path, &text).unwrap();

        let reference = run_report(&registry, "greedy", &inst, 0, BoundBudget::default()).unwrap();
        let from_path =
            run_report_from_path(&registry, "greedy", &path, 0, BoundBudget::default(), None)
                .unwrap();
        assert_eq!(from_path, reference);
        let bound = admission_opt_from_path(&path, BoundBudget::default()).unwrap();
        let mem_bound = admission_opt(&inst, BoundBudget::default());
        assert_eq!(bound.kind, mem_bound.kind);
        assert_eq!(bound.value.to_bits(), mem_bound.value.to_bits());

        // Spooled: one-shot source, spill file cleaned up afterwards.
        let before: usize = spool_count();
        let spooled = run_report_spooled(
            &registry,
            "greedy",
            text.as_bytes(),
            0,
            BoundBudget::default(),
            Some(4),
        )
        .unwrap();
        assert_eq!(spooled, reference);
        assert_eq!(spool_count(), before, "spill file must be removed");

        std::fs::remove_file(&path).unwrap();
    }

    fn spool_count() -> usize {
        std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .ok()
                    .and_then(|e| e.file_name().into_string().ok())
                    .is_some_and(|n| n.starts_with("acmr-spool-"))
            })
            .count()
    }

    #[test]
    fn malformed_stream_surfaces_typed_parse_error() {
        let registry = default_registry();
        let bad = "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 2\n1 0\nwat 0\n";
        let err = run_report_streamed(
            &registry,
            "greedy",
            || TraceReader::new(bad.as_bytes()),
            0,
            BoundBudget::default(),
            None,
        )
        .unwrap_err();
        assert!(
            matches!(err, AcmrError::TraceParse { line: 6, .. }),
            "{err}"
        );
        let err = run_report_spooled(
            &registry,
            "greedy",
            bad.as_bytes(),
            0,
            BoundBudget::default(),
            None,
        )
        .unwrap_err();
        assert!(
            matches!(err, AcmrError::TraceParse { line: 6, .. }),
            "{err}"
        );
    }

    #[test]
    fn changed_trace_between_passes_is_detected() {
        let a = write_trace(&repeated_hot_edge(4, 3, 12));
        let b = write_trace(&repeated_hot_edge(4, 3, 10));
        let scan = scan_trace(TraceReader::new(a.as_bytes()).unwrap()).unwrap();
        let err = streamed_admission_opt(
            TraceReader::new(b.as_bytes()).unwrap(),
            &scan,
            BoundBudget::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("changed between passes"), "{err}");

        // Same edge universe, same request count, different footprints:
        // the count checks can't see it, the per-row demand check must.
        let mk = |edge: u32| {
            let mut inst = AdmissionInstance::from_capacities(vec![1, 1]);
            for _ in 0..3 {
                inst.push(acmr_core::Request::unit(acmr_graph::EdgeSet::singleton(
                    acmr_graph::EdgeId(edge),
                )));
            }
            write_trace(&inst)
        };
        let scan = scan_trace(TraceReader::new(mk(0).as_bytes()).unwrap()).unwrap();
        let err = streamed_admission_opt(
            TraceReader::new(mk(1).as_bytes()).unwrap(),
            &scan,
            BoundBudget::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("changed between passes"), "{err}");
    }
}
