//! Markdown / CSV table rendering for experiment output.

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as aligned GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str("### ");
            out.push_str(&self.title);
            out.push_str("\n\n");
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", c, w = width[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &width {
            sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Render as CSV (headers first; minimal quoting for commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### T"));
        assert!(md.contains("| a | long-header |"));
        assert!(md.contains("| 1 | 2           |"));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new("", &["x"]);
        t.push_row(vec!["a,b".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
