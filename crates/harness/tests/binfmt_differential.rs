//! Binary-format differential suite: **text ≡ binary ≡ mmap**.
//!
//! The binary `ACMR-TRACE v2` path must be a pure storage change — for
//! every algorithm in the default registry (enumerated, never
//! hard-coded), replaying a converted trace must produce:
//!
//! * the identical per-arrival **decision stream** (every audited
//!   `ArrivalEvent`, compared through its serde JSON) whether the
//!   arrivals come from the chunked text reader, the streaming binary
//!   reader, or the zero-copy mapped cursor, and
//! * the **byte-identical serialized `RunReport`** — offline-optimum
//!   bound included, via the two-pass streamed scheme — from
//!   `run_report_from_path` on the text file and on the binary file,
//!   both equal to the in-memory reference.
//!
//! Inputs: the committed golden corpus (`tests/golden/*.trace`, the
//! same eight files the golden regression suite pins) plus random
//! proptest-chosen instances (hostile shapes included via the corpus's
//! adversarial members).

use acmr_core::{
    AcmrError, AdmissionInstance, AlgorithmSpec, Registry, Request, RequestSource, Session,
};
use acmr_graph::{EdgeId, EdgeSet};
use acmr_harness::{default_registry, run_report, run_report_from_path, BoundBudget};
use acmr_workloads::trace::{read_trace, write_trace, TraceReader};
use acmr_workloads::{write_bin_trace, BinTraceMap, BinTraceReader};
use proptest::prelude::*;

const SEED: u64 = 7;

fn golden_traces() -> Vec<(String, AdmissionInstance)> {
    let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"));
    let mut traces = Vec::new();
    for entry in std::fs::read_dir(dir).expect("golden corpus directory") {
        let path = entry.expect("corpus entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("trace") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("read golden trace");
        traces.push((name, read_trace(&text).expect("parse golden trace")));
    }
    traces.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(
        traces.len() >= 8,
        "golden corpus shrank: {} traces",
        traces.len()
    );
    traces
}

/// Drive one session off `source` and return every audited decision
/// event as its serde JSON line — the comparable decision stream.
fn decision_stream<S: RequestSource>(
    registry: &Registry,
    spec: &str,
    mut source: S,
) -> Vec<String> {
    let spec = AlgorithmSpec::parse(spec).expect("spec");
    let capacities = source.capacities().to_vec();
    let mut session =
        Session::from_registry(registry, &spec, &capacities, SEED).expect("build session");
    let mut events = Vec::new();
    loop {
        match source.next_request() {
            Ok(Some(r)) => {
                let event = session.push(&r).expect("audited arrival");
                events.push(serde_json::to_string(&event).expect("serialize event"));
            }
            Ok(None) => return events,
            Err(e) => panic!("valid trace failed to stream: {e}"),
        }
    }
}

/// Assert the three reader arms produce identical decision streams and
/// (via `run_report_from_path` on temp files) byte-identical reports
/// for every registered algorithm.
fn assert_formats_agree(name: &str, inst: &AdmissionInstance) {
    let registry = default_registry();
    let text = write_trace(inst);
    let bin = write_bin_trace(inst);

    let dir = std::env::temp_dir();
    let text_path = dir.join(format!("acmr-bindiff-{}-{name}.trace", std::process::id()));
    let bin_path = dir.join(format!("acmr-bindiff-{}-{name}.bin", std::process::id()));
    std::fs::write(&text_path, &text).unwrap();
    std::fs::write(&bin_path, &bin).unwrap();

    for spec in registry.names() {
        // Decision streams: text reader ≡ streaming binary reader ≡
        // zero-copy mapped cursor, event for event.
        let via_text = decision_stream(
            &registry,
            spec,
            TraceReader::new(text.as_bytes()).expect("text header"),
        );
        let via_bin = decision_stream(
            &registry,
            spec,
            BinTraceReader::new(bin.as_slice()).expect("binary header"),
        );
        let via_map = decision_stream(
            &registry,
            spec,
            BinTraceMap::from_bytes(bin.clone())
                .expect("binary header")
                .into_reader(),
        );
        assert_eq!(via_text, via_bin, "{name}/{spec}: text vs binary stream");
        assert_eq!(via_bin, via_map, "{name}/{spec}: binary vs mmap stream");

        // Full path-backed reports (two-pass OPT bound included):
        // byte-identical JSON across formats, equal to the in-memory
        // reference.
        let reference =
            run_report(&registry, spec, inst, SEED, BoundBudget::default()).expect("reference run");
        let from_text = run_report_from_path(
            &registry,
            spec,
            &text_path,
            SEED,
            BoundBudget::default(),
            None,
        )
        .expect("text path run");
        let from_bin = run_report_from_path(
            &registry,
            spec,
            &bin_path,
            SEED,
            BoundBudget::default(),
            None,
        )
        .expect("binary path run");
        assert_eq!(from_text, reference, "{name}/{spec}: text vs memory");
        let text_json = serde_json::to_string_pretty(&from_text).unwrap();
        let bin_json = serde_json::to_string_pretty(&from_bin).unwrap();
        assert_eq!(bin_json, text_json, "{name}/{spec}: report JSON");
    }

    std::fs::remove_file(&text_path).unwrap();
    std::fs::remove_file(&bin_path).unwrap();
}

#[test]
fn golden_corpus_agrees_across_text_binary_and_mmap() {
    for (name, inst) in golden_traces() {
        assert_formats_agree(&name, &inst);
    }
}

#[test]
fn binary_stream_errors_match_text_semantics_mid_session() {
    // A truncated binary trace must surface a typed error from
    // `Session::run_stream` with the complete prefix applied — the
    // same contract the text reader has.
    let mut inst = AdmissionInstance::from_capacities(vec![2, 2]);
    for _ in 0..3 {
        inst.push(Request::unit(EdgeSet::new(vec![EdgeId(0), EdgeId(1)])));
    }
    let mut bin = write_bin_trace(&inst);
    let len = bin.len();
    bin.truncate(len - 4); // cut into the last record
    let registry = default_registry();
    let spec = AlgorithmSpec::parse("greedy").unwrap();
    let reader = BinTraceReader::new(bin.as_slice()).expect("header intact");
    let caps = RequestSource::capacities(&reader).to_vec();
    let mut session = Session::from_registry(&registry, &spec, &caps, 0).unwrap();
    let err = session.run_stream(reader).unwrap_err();
    assert!(
        matches!(err, AcmrError::TraceParse { line: 3, .. }),
        "{err}"
    );
    assert_eq!(session.stats().arrivals, 2, "complete prefix stays applied");
    assert!(!session.is_poisoned(), "source failure, not algorithm's");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random instances: the three arms agree for every registered
    /// algorithm (same invariant as the golden corpus, off-corpus).
    #[test]
    fn random_traces_agree_across_text_binary_and_mmap(
        caps in proptest::collection::vec(1u32..5, 2..7),
        reqs in proptest::collection::vec(
            (proptest::collection::vec(0usize..7, 1..4), 1u32..50),
            1..25,
        ),
        tag in 0u32..1_000_000,
    ) {
        let m = caps.len();
        let mut inst = AdmissionInstance::from_capacities(caps);
        for (edges, cost) in reqs {
            let edges: Vec<EdgeId> = edges.into_iter().map(|e| EdgeId((e % m) as u32)).collect();
            inst.push(Request::new(EdgeSet::new(edges), cost as f64));
        }
        assert_formats_agree(&format!("prop-{tag}"), &inst);
    }
}
