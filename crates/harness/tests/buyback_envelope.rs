//! Envelope suite for the `buyback` cancellation-cost policy: every
//! ingestion path agrees, the billing ledger is exactly reconstructible
//! from the event stream, and the theorem envelope holds.
//!
//! 1. **Path parity** — for several `buyback?factor=` specs,
//!    per-push ≡ `push_batch` ≡ streamed (`run_stream` over the trace
//!    text) ≡ served over a live loopback socket, event for event and
//!    report for report, on buyback-hostile *and* stochastic traces.
//! 2. **Ledger property** — `buyback_paid` equals `factor ×` the
//!    summed costs of every preempted request, reconstructed purely
//!    from the `ArrivalEvent` stream (ids are dense, so a preempted id
//!    indexes the earlier event that carried its cost). The wire
//!    format carries no buyback field — the ledger must be derivable.
//! 3. **Theorem envelope** — the measured value-competitive ratio vs
//!    the exact singleton OPT stays within `1 + 2f + 2√(f(1+f))` on
//!    escalation traces across the factor grid.

use acmr_baselines::Buyback;
use acmr_core::{AdmissionInstance, AlgorithmSpec, ArrivalEvent, RunReport, Session};
use acmr_harness::experiments::e18_policies::{instance_for as stochastic_instance, Family};
use acmr_harness::experiments::e19_buyback::exact_singleton_opt;
use acmr_harness::{default_registry, run_registered};
use acmr_serve::{serve, serve_trace, ServeConfig, ServerHandle};
use acmr_workloads::adversarial::buyback_hostile;
use acmr_workloads::trace::{write_trace, TraceReader};

/// The buyback specs under the envelope: the registry default plus the
/// factor range E19 sweeps, including the free-cancellation edge.
const BUYBACK_SPECS: [&str; 4] = [
    "buyback",
    "buyback?factor=0",
    "buyback?factor=0.25",
    "buyback?factor=1",
];

fn hostile_traces() -> Vec<(&'static str, AdmissionInstance)> {
    vec![
        ("escalation-shallow", buyback_hostile(6, 3, 3, 8.0)),
        ("escalation-deep", buyback_hostile(4, 2, 6, 8.0)),
        ("escalation-tight", buyback_hostile(8, 1, 4, 6.0)),
    ]
}

/// A small stochastic trace from each arrival family — buyback must
/// stay path-consistent off its hostile topology too.
fn stochastic_traces() -> Vec<(&'static str, AdmissionInstance)> {
    [
        Family::StochasticIid,
        Family::Mmpp,
        Family::Diurnal,
        Family::FlashCrowd,
    ]
    .into_iter()
    .map(|f| (f.label(), stochastic_instance(f, 24, 3, 96, 0xE19)))
    .collect()
}

/// Reference decision stream and report: per-push over the in-memory
/// instance.
fn reference(inst: &AdmissionInstance, spec_str: &str) -> (Vec<ArrivalEvent>, RunReport) {
    let registry = default_registry();
    let spec = AlgorithmSpec::parse(spec_str).unwrap();
    let mut session = Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
    let events = inst
        .requests
        .iter()
        .map(|r| session.push(r).unwrap())
        .collect();
    (events, session.report())
}

#[test]
fn push_equals_push_batch_equals_streamed_for_buyback() {
    let registry = default_registry();
    let mut traces = hostile_traces();
    traces.extend(stochastic_traces());
    for (family, inst) in &traces {
        assert!(!inst.requests.is_empty(), "{family}: empty trace");
        let text = write_trace(inst);
        for spec_str in BUYBACK_SPECS {
            let spec = AlgorithmSpec::parse(spec_str).unwrap();
            let (expected_events, expected_report) = reference(inst, spec_str);

            for batch in [1usize, 3, 16] {
                let mut batched =
                    Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
                let mut events = Vec::new();
                for chunk in inst.requests.chunks(batch) {
                    events.extend(batched.push_batch(chunk).unwrap());
                }
                assert_eq!(
                    events, expected_events,
                    "{spec_str} on {family}: push_batch({batch}) diverges from push"
                );
                assert_eq!(
                    batched.report(),
                    expected_report,
                    "{spec_str} on {family}: batched report diverges"
                );
            }

            let streamed = Session::from_registry(&registry, &spec, &inst.capacities, 0)
                .unwrap()
                .run_stream(TraceReader::new(text.as_bytes()).unwrap())
                .unwrap();
            assert_eq!(
                streamed, expected_report,
                "{spec_str} on {family}: streamed report diverges"
            );
        }
    }
}

#[test]
fn served_equals_in_memory_for_buyback() {
    let handle: ServerHandle = serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    let mut traces = hostile_traces();
    traces.extend(stochastic_traces());
    for (family, inst) in &traces {
        for spec_str in BUYBACK_SPECS {
            let (expected_events, expected_report) = reference(inst, spec_str);
            for batch in [None, Some(8)] {
                let mut events = Vec::new();
                let report = serve_trace(
                    handle.local_addr(),
                    spec_str,
                    None,
                    &inst.capacities,
                    inst.requests.iter().cloned().map(Ok),
                    batch,
                    |e| events.push(e.clone()),
                )
                .expect("served run");
                assert_eq!(
                    events, expected_events,
                    "{spec_str} on {family}: served events diverge (batch {batch:?})"
                );
                assert_eq!(
                    report, expected_report,
                    "{spec_str} on {family}: served report diverges (batch {batch:?})"
                );
            }
        }
    }
}

/// The billing ledger is a pure function of the event stream: ids are
/// dense in arrival order, so every preempted id indexes the earlier
/// event that carried that request's cost. Summing those costs and
/// scaling by the factor must reproduce `buyback_paid` exactly (the
/// charges are sums of products of trace floats — bit-reproducible
/// along a fixed order), and `net_objective` must be the rejected cost
/// plus that ledger.
#[test]
fn buyback_paid_is_factor_times_preempted_cost_from_the_event_stream() {
    let mut traces = hostile_traces();
    traces.extend(stochastic_traces());
    for (family, inst) in &traces {
        for (spec_str, factor) in [
            ("buyback", 0.5),
            ("buyback?factor=0", 0.0),
            ("buyback?factor=0.25", 0.25),
            ("buyback?factor=1", 1.0),
            ("buyback?factor=2.5", 2.5),
        ] {
            let (events, report) = reference(inst, spec_str);
            let costs: Vec<f64> = events.iter().map(|e| e.cost).collect();
            let mut preempted_count = 0usize;
            for event in &events {
                for victim in &event.preempted {
                    assert!(
                        victim.index() < event.id.index(),
                        "{spec_str} on {family}: preempted id from the future"
                    );
                    preempted_count += 1;
                }
            }
            assert_eq!(
                report.preemptions, preempted_count,
                "{spec_str} on {family}: preemption count diverges from events"
            );
            let expected_paid: f64 = events
                .iter()
                .flat_map(|e| e.preempted.iter().map(|v| factor * costs[v.index()]))
                .sum();
            assert_eq!(
                report.buyback_paid, expected_paid,
                "{spec_str} on {family}: ledger diverges from the event stream"
            );
            assert_eq!(
                report.net_objective,
                report.rejected_cost + report.buyback_paid,
                "{spec_str} on {family}: net objective is not rejected + paid"
            );
            if factor > 0.0 && preempted_count > 0 {
                assert!(report.buyback_paid > 0.0, "{spec_str} on {family}");
            }
            if factor == 0.0 {
                assert_eq!(report.buyback_paid, 0.0, "{spec_str} on {family}");
            }
        }
    }
}

/// Theorem envelope: on escalation traces the measured value ratio
/// `(offered − OPT_rej) / (offered − net_objective)` stays inside the
/// deterministic buyback guarantee `1 + 2f + 2√(f(1+f))`. The traces
/// are all-singleton, so OPT is exact (keep each edge's `cap` priciest
/// requests) — the bound is checked against ground truth, not a
/// relaxation.
#[test]
fn buyback_stays_inside_the_theorem_envelope() {
    let registry = default_registry();
    for (family, inst) in &hostile_traces() {
        let opt_rejected = exact_singleton_opt(inst);
        for factor in [0.0, 0.1, 0.25, 0.5, 1.0, 2.0] {
            let spec = AlgorithmSpec::parse(&format!("buyback?factor={factor}")).unwrap();
            let report = Session::from_registry(&registry, &spec, &inst.capacities, 0)
                .unwrap()
                .run_trace(inst)
                .unwrap();
            let kept = report.offered_cost - report.net_objective;
            assert!(
                kept > 0.0,
                "{family} at factor {factor}: policy kept no net value"
            );
            let ratio = (report.offered_cost - opt_rejected) / kept;
            let guarantee = Buyback::guarantee(factor);
            assert!(
                ratio <= guarantee + 1e-9,
                "{family} at factor {factor}: value ratio {ratio} above guarantee {guarantee}"
            );
        }
    }
}

/// The referee inside `run_registered` audits every decision — a
/// capacity overflow or phantom preemption panics the run. Surviving
/// the escalation corpus, which is built to force an upgrade on every
/// wave, is the feasibility proof; the report's invariants must also
/// hold.
#[test]
fn buyback_stays_feasible_under_referee_on_hostile_traces() {
    let registry = default_registry();
    for (family, inst) in &hostile_traces() {
        assert!(
            inst.max_excess() > 0,
            "{family}: hostile trace must overload"
        );
        for spec_str in BUYBACK_SPECS {
            let report = run_registered(&registry, spec_str, inst, 11).expect("audited run");
            assert!(
                report.rejected_cost <= report.offered_cost,
                "{spec_str} on {family}: accounting out of range"
            );
            assert!(
                report.buyback_paid >= 0.0 && report.net_objective >= report.rejected_cost,
                "{spec_str} on {family}: billing out of range"
            );
        }
    }
}

/// Free cancellation collapses the margin: `buyback?factor=0` has
/// `δ = 0`, i.e. upgrade whenever the newcomer strictly out-prices its
/// victims — the same threshold family as `preempt-cheapest`, and it
/// must pay nothing.
#[test]
fn buyback_at_factor_zero_pays_nothing_and_preempts_freely() {
    let mut traces = hostile_traces();
    traces.extend(stochastic_traces());
    for (family, inst) in &traces {
        let (_, report) = reference(inst, "buyback?factor=0");
        assert_eq!(report.buyback_paid, 0.0, "{family}: free factor charged");
        assert_eq!(
            report.net_objective, report.rejected_cost,
            "{family}: net must equal rejected at factor 0"
        );
    }
    // On escalation traces the free policy must actually upgrade.
    let (_, report) = reference(&buyback_hostile(4, 2, 4, 8.0), "buyback?factor=0");
    assert!(report.preemptions > 0, "free buyback never upgraded");
}
