//! Cluster differential suite: **cluster ≡ sharded ≡ sequential**.
//!
//! The cross-process [`ClusterDriver`] must produce the *byte
//! identical* serde-serialized [`SweepReport`] the thread-level
//! [`ShardedDriver`] produces — and both must agree job for job with
//! the sequential runners — for every algorithm in the default
//! registry (enumerated, never hard-coded), over:
//!
//! * the committed golden corpus traces (`tests/golden/*.trace`, the
//!   same eight files the golden regression suite pins),
//! * hostile adversarial families, and
//! * random proptest-chosen workloads.
//!
//! Workers are real `acmr serve` servers on loopback sockets (spawned
//! in-process so the suite stays hermetic and fast — the wire path is
//! identical to a separate process; `tests/cluster_cli.rs` covers
//! genuinely separate worker processes with the real binaries).

use acmr_core::AdmissionInstance;
use acmr_harness::{
    cross_jobs, default_registry, BoundBudget, ClusterDriver, ShardedDriver, SweepJob, TraceSource,
};
use acmr_serve::{serve, ServeConfig, ServerHandle, WorkerPool};
use acmr_workloads::trace::{read_trace, write_trace};
use acmr_workloads::{
    dyadic_admission_instance, nested_intervals, random_path_workload, repeated_hot_edge,
    two_phase_squeeze, CostModel, PathWorkloadSpec, Topology,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fixed fan-out width: the sharded arm uses this many threads
/// and the cluster arm this many workers, so the reports' `threads`
/// field — and therefore the whole JSON — can be compared byte for
/// byte.
const WIDTH: usize = 2;
const BATCH: usize = 16;

fn start_workers(count: usize) -> (Vec<ServerHandle>, WorkerPool) {
    let handles: Vec<ServerHandle> = (0..count)
        .map(|_| {
            serve(
                default_registry(),
                ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    ..ServeConfig::default()
                },
            )
            .expect("bind loopback worker")
        })
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.local_addr().to_string()).collect();
    let pool = WorkerPool::connect(&addrs).expect("adopt loopback workers");
    (handles, pool)
}

/// Run the three arms over the same traces/jobs and assert
/// cluster ≡ sharded byte-for-byte and sharded ≡ sequential job by
/// job.
fn assert_three_way(
    traces: &[(String, AdmissionInstance)],
    jobs: &[SweepJob],
    budget: Option<BoundBudget>,
    context: &str,
) {
    let registry = default_registry();
    let (handles, pool) = start_workers(WIDTH);

    let mut sharded_driver = ShardedDriver::new().threads(WIDTH).batch(BATCH);
    let mut cluster_driver = ClusterDriver::new(&pool).batch(BATCH);
    if let Some(budget) = budget {
        sharded_driver = sharded_driver.budget(budget);
        cluster_driver = cluster_driver.budget(budget);
    }

    let sharded = sharded_driver
        .run(&registry, traces, jobs)
        .expect("sharded sweep");
    let cluster = cluster_driver.run(traces, jobs).expect("cluster sweep");

    // The headline assertion: the serialized sweep reports are byte
    // identical — jobs, totals, batch, fan-out width, OPT context.
    assert_eq!(cluster, sharded, "{context}: cluster diverges from sharded");
    assert_eq!(
        serde_json::to_string_pretty(&cluster).unwrap(),
        serde_json::to_string_pretty(&sharded).unwrap(),
        "{context}: serialized sweep reports differ"
    );

    // And sharded agrees with the sequential per-job runners, so the
    // chain closes: cluster ≡ sharded ≡ sequential.
    for (job, jr) in jobs.iter().zip(&sharded.jobs) {
        let inst = &traces.iter().find(|(n, _)| *n == job.trace).unwrap().1;
        let mut sequential = match budget {
            Some(budget) => acmr_harness::run_report(&registry, &job.spec, inst, job.seed, budget)
                .expect("sequential run"),
            None => acmr_harness::run_registered(&registry, &job.spec, inst, job.seed)
                .expect("sequential run"),
        };
        if budget.is_none() {
            sequential.opt = None;
        }
        assert_eq!(
            jr.report, sequential,
            "{context}: sharded job {job:?} diverges from sequential"
        );
    }

    for handle in handles {
        handle.shutdown();
    }
}

fn golden_traces() -> Vec<(String, AdmissionInstance)> {
    let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"));
    let mut traces = Vec::new();
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .expect("golden corpus directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    names.sort();
    for path in names {
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).expect("read golden trace");
        traces.push((name, read_trace(&text).expect("parse golden trace")));
    }
    assert!(
        traces.len() >= 8,
        "golden corpus shrank: {} traces",
        traces.len()
    );
    traces
}

#[test]
fn cluster_equals_sharded_equals_sequential_on_the_golden_corpus() {
    // Every registered algorithm over every committed golden trace —
    // the same corpus the golden suite pins the sharded driver on.
    let traces = golden_traces();
    let registry = default_registry();
    let trace_names: Vec<&str> = traces.iter().map(|(n, _)| n.as_str()).collect();
    let specs: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let jobs = cross_jobs(&trace_names, &spec_refs, &[7]);
    assert_three_way(&traces, &jobs, None, "golden corpus");
}

#[test]
fn cluster_attaches_the_same_local_opt_bounds_as_sharded() {
    // With a bound budget, the cluster's locally computed per-trace
    // OPT context must match the sharded driver's — and the
    // sequential `run_report`'s — exactly, competitive ratios and
    // bound kinds included.
    let traces = vec![
        ("nested".to_string(), nested_intervals(16, 2, 2, 2)),
        ("hot-edge".to_string(), repeated_hot_edge(4, 3, 12)),
    ];
    let registry = default_registry();
    let specs: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let jobs = cross_jobs(&["nested", "hot-edge"], &spec_refs, &[0, 3]);
    assert_three_way(
        &traces,
        &jobs,
        Some(BoundBudget::default()),
        "opt-bound parity",
    );
}

#[test]
fn cluster_streams_path_backed_traces_identically() {
    // Path-backed sources: the cluster replays the trace file chunk
    // by chunk onto the wire; reports must still be byte-identical to
    // the sharded path-backed sweep.
    let in_memory = [
        ("squeeze".to_string(), two_phase_squeeze(12, 3, 4, 3)),
        ("dyadic".to_string(), dyadic_admission_instance(4, 3, 2)),
    ];
    let dir = std::env::temp_dir();
    let sources: Vec<(String, TraceSource)> = in_memory
        .iter()
        .map(|(name, inst)| {
            let path = dir.join(format!(
                "acmr-cluster-diff-{}-{name}.trace",
                std::process::id()
            ));
            std::fs::write(&path, write_trace(inst)).unwrap();
            (name.clone(), TraceSource::Path(path))
        })
        .collect();

    let registry = default_registry();
    let jobs = cross_jobs(
        &["squeeze", "dyadic"],
        &["greedy", "aag-weighted", "random-preempt"],
        &[0, 5],
    );
    let (handles, pool) = start_workers(WIDTH);
    let sharded = ShardedDriver::new()
        .threads(WIDTH)
        .batch(BATCH)
        .budget(BoundBudget::default())
        .run_sources(&registry, &sources, &jobs)
        .expect("sharded path-backed sweep");
    let cluster = ClusterDriver::new(&pool)
        .batch(BATCH)
        .budget(BoundBudget::default())
        .run_sources(&sources, &jobs)
        .expect("cluster path-backed sweep");
    assert_eq!(cluster, sharded);
    assert_eq!(
        serde_json::to_string_pretty(&cluster).unwrap(),
        serde_json::to_string_pretty(&sharded).unwrap()
    );

    // A missing trace file is the same typed I/O error the sharded
    // driver surfaces — not a retry storm, not a cluster error.
    let missing = vec![(
        "squeeze".to_string(),
        TraceSource::Path(dir.join("acmr-cluster-diff-definitely-missing.trace")),
    )];
    let err = ClusterDriver::new(&pool)
        .run_sources(&missing, &cross_jobs(&["squeeze"], &["greedy"], &[0]))
        .unwrap_err();
    assert!(
        matches!(&err, acmr_core::AcmrError::Io { message } if message.contains("missing")),
        "{err}"
    );

    for (_, source) in sources {
        if let TraceSource::Path(path) = source {
            let _ = std::fs::remove_file(path);
        }
    }
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn cluster_report_is_stable_across_worker_counts() {
    // Like the sharded driver's thread count, the worker count is a
    // wall-clock knob only: job reports and totals must not change.
    // (The `threads` field records the fan-out width, so compare the
    // payload, not the whole struct.)
    let traces = vec![("hot".to_string(), repeated_hot_edge(4, 3, 12))];
    let jobs = cross_jobs(&["hot"], &["greedy", "aag-unweighted"], &[0, 1, 2]);
    let mut reference: Option<acmr_harness::SweepReport> = None;
    for workers in [1, 3] {
        let (handles, pool) = start_workers(workers);
        let sweep = ClusterDriver::new(&pool)
            .batch(5)
            .run(&traces, &jobs)
            .expect("cluster sweep");
        assert_eq!(sweep.threads, workers);
        if let Some(reference) = &reference {
            assert_eq!(sweep.jobs, reference.jobs, "workers {workers}");
            assert_eq!(sweep.totals, reference.totals, "workers {workers}");
        } else {
            reference = Some(sweep);
        }
        for handle in handles {
            handle.shutdown();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random and hostile proptest traces: for every registered
    /// algorithm, cluster ≡ sharded ≡ sequential, byte-identical
    /// serialized reports.
    #[test]
    fn cluster_differential_holds_on_random_and_hostile_traces(
        seed in 0u64..500,
        topology in prop_oneof![Just("line"), Just("grid")],
        weighted in prop_oneof![Just(true), Just(false)],
        hostile in prop_oneof![Just("nested"), Just("hot-edge"), Just("squeeze")],
    ) {
        let spec = PathWorkloadSpec {
            topology: match topology {
                "grid" => Topology::Grid { rows: 3, cols: 3 },
                _ => Topology::Line { m: 10 },
            },
            capacity: 2,
            overload: 2.0,
            costs: if weighted {
                CostModel::Zipf { n_values: 16, s: 1.1 }
            } else {
                CostModel::Unit
            },
            max_hops: 4,
        };
        let (_, random) = random_path_workload(&spec, &mut StdRng::seed_from_u64(seed));
        let hostile_inst = match hostile {
            "nested" => nested_intervals(8, 2, 2, 2),
            "hot-edge" => repeated_hot_edge(4, 2, 9),
            _ => two_phase_squeeze(8, 2, 3, 2),
        };
        let traces = vec![
            ("random".to_string(), random),
            ("hostile".to_string(), hostile_inst),
        ];
        let registry = default_registry();
        let specs: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
        let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
        let jobs = cross_jobs(&["random", "hostile"], &spec_refs, &[seed]);
        assert_three_way(&traces, &jobs, None, &format!("proptest seed {seed}"));
    }
}
