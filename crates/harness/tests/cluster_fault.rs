//! Fault injection over the cluster driver: workers die, sweeps
//! survive — or fail with exactly one typed error.
//!
//! Workers here are in-process loopback servers so the failure moment
//! is controllable and deterministic (shutting a [`ServerHandle`]
//! down severs its live sockets mid-frame, exactly what a dying
//! worker process does to its peers); `tests/cluster_cli.rs` repeats
//! the scenario with real `acmr serve` child processes and a real
//! `kill`. The invariants, in both flavors:
//!
//! 1. a job whose worker dies — before the connection or mid-session
//!    — is **retried on a surviving worker as a whole-trace replay**,
//!    and the sweep report is byte-identical to an undisturbed one;
//! 2. when every worker is gone, the sweep fails with **one typed
//!    [`AcmrError::Remote`]** (code `cluster`) — never a panic, a
//!    hang, or a partial report.

use acmr_core::AcmrError;
use acmr_harness::{
    cross_jobs, default_registry, BoundBudget, ClusterDriver, ShardedDriver, SweepJob,
};
use acmr_serve::{serve, ServeConfig, ServerHandle, WorkerPool, CLUSTER_ERROR_CODE};
use acmr_workloads::{nested_intervals, repeated_hot_edge};

fn start_worker() -> ServerHandle {
    serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback worker")
}

fn sweep_fixture() -> (Vec<(String, acmr_core::AdmissionInstance)>, Vec<SweepJob>) {
    let traces = vec![
        ("nested".to_string(), nested_intervals(16, 2, 2, 2)),
        ("hot".to_string(), repeated_hot_edge(4, 3, 12)),
    ];
    let registry = default_registry();
    let specs: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let jobs = cross_jobs(&["nested", "hot"], &spec_refs, &[0, 1]);
    (traces, jobs)
}

#[test]
fn jobs_on_a_dead_worker_are_retried_on_the_survivor_with_an_identical_report() {
    let (traces, jobs) = sweep_fixture();
    let registry = default_registry();
    // The undisturbed expectation: a sharded sweep of the same width.
    let expected = ShardedDriver::new()
        .threads(2)
        .batch(8)
        .budget(BoundBudget::default())
        .run(&registry, &traces, &jobs)
        .expect("sharded reference");

    // Two workers; one is dead before the sweep even starts (its
    // port refuses connections), so every job that round-robins onto
    // it must fail its connection attempt and retry on the survivor.
    let survivor = start_worker();
    let dead = start_worker();
    let dead_addr = dead.local_addr().to_string();
    dead.shutdown();
    let pool = WorkerPool::connect(&[dead_addr, survivor.local_addr().to_string()])
        .expect("adopt workers");

    let sweep = ClusterDriver::new(&pool)
        .batch(8)
        .budget(BoundBudget::default())
        .run(&traces, &jobs)
        .expect("sweep must survive a dead worker");
    assert_eq!(sweep, expected, "retried sweep diverges");
    assert_eq!(
        serde_json::to_string_pretty(&sweep).unwrap(),
        serde_json::to_string_pretty(&expected).unwrap()
    );
    // The dead worker was quarantined along the way; the survivor
    // carried every job.
    assert_eq!(pool.alive(), 1);
    survivor.shutdown();
}

#[test]
fn killing_a_worker_mid_sweep_still_yields_the_identical_report() {
    let (traces, jobs) = sweep_fixture();
    let registry = default_registry();
    let expected = ShardedDriver::new()
        .threads(2)
        .batch(4)
        .run(&registry, &traces, &jobs)
        .expect("sharded reference");

    let survivor = start_worker();
    let victim = start_worker();
    let pool = WorkerPool::connect(&[
        victim.local_addr().to_string(),
        survivor.local_addr().to_string(),
    ])
    .expect("adopt workers");

    // Kill the victim concurrently with the sweep: its live sessions
    // are severed mid-frame and its port goes dark. Whether a given
    // job dies mid-session, fails its connect, or slipped through
    // before the kill, the retry contract makes the report identical.
    let sweep = std::thread::scope(|scope| {
        let killer = scope.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            victim.shutdown();
        });
        let sweep = ClusterDriver::new(&pool)
            .batch(4)
            .run(&traces, &jobs)
            .expect("sweep must survive a mid-sweep worker death");
        killer.join().expect("killer thread");
        sweep
    });
    assert_eq!(sweep, expected, "mid-sweep kill changed the report");
    survivor.shutdown();
}

#[test]
fn exhausted_retries_surface_one_typed_cluster_error_not_a_partial_report() {
    let (traces, jobs) = sweep_fixture();
    // Both workers dead: every attempt fails its connection, both
    // slots are quarantined, and the sweep must fail with exactly one
    // typed Remote error — never a panic, a hang, or an Ok with
    // missing jobs.
    let w1 = start_worker();
    let w2 = start_worker();
    let addrs = [w1.local_addr().to_string(), w2.local_addr().to_string()];
    w1.shutdown();
    w2.shutdown();
    let pool = WorkerPool::connect(&addrs)
        .expect("adopt workers")
        .retries(3);

    let err = ClusterDriver::new(&pool)
        .batch(4)
        .run(&traces, &jobs)
        .expect_err("a sweep with no live workers must fail");
    match &err {
        AcmrError::Remote { code, message } => {
            assert_eq!(code, CLUSTER_ERROR_CODE, "{message}");
            assert!(
                message.contains("attempt") || message.contains("alive"),
                "{message}"
            );
        }
        other => panic!("expected a typed cluster error, got {other:?}"),
    }
    assert_eq!(pool.alive(), 0);
}

#[test]
fn a_semantic_worker_error_is_not_retried_and_fails_the_sweep_typed() {
    // An unknown algorithm is the worker's *answer*, not a transport
    // failure: the pool must not burn retries on it, and the sweep
    // must surface the worker's typed ERR reply as-is.
    let worker = start_worker();
    let pool = WorkerPool::connect(&[worker.local_addr().to_string()]).expect("adopt worker");
    let traces = vec![("hot".to_string(), repeated_hot_edge(4, 3, 6))];
    // `definitely-not-registered` parses as a spec name, so it passes
    // the driver's local fail-fast phase and reaches the worker.
    let err = ClusterDriver::new(&pool)
        .run(
            &traces,
            &[SweepJob::new("hot", "definitely-not-registered", 0)],
        )
        .expect_err("unknown algorithm must fail the sweep");
    match &err {
        AcmrError::Remote { code, message } => {
            assert_eq!(code, "unknown-algorithm", "{message}");
        }
        other => panic!("expected the worker's typed reply, got {other:?}"),
    }
    // The worker answered; it is alive and was never quarantined.
    assert_eq!(pool.alive(), 1);
    worker.shutdown();
}
