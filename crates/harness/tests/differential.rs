//! Differential suite: the batch layer *and* the streamed-ingestion
//! layer are pinned to the per-push one.
//!
//! For **every** algorithm in the default registry (no hard-coded
//! list), feeding a trace through `Session::push_batch` — or parsing
//! it back through the chunked `TraceReader` and streaming it via
//! `Session::run_stream` / `run_stream_batched` — must produce the
//! identical audited event stream — accept/reject decision, preemption
//! list, and cost accounting, arrival for arrival — as per-arrival
//! `Session::push` calls over the in-memory instance, and the final
//! `RunReport`s must be equal (with offline-optimum context, to the
//! byte). This is the regression harness that makes batched/sharded/
//! streamed scaling refactors safe: any divergence between the paths
//! fails here with the offending algorithm, topology, and batch size.

use acmr_core::{AdmissionInstance, AlgorithmSpec, ArrivalEvent, Session};
use acmr_harness::{default_registry, run_report, run_report_streamed, BoundBudget};
use acmr_workloads::trace::{write_trace, TraceReader};
use acmr_workloads::{
    dyadic_admission_instance, nested_intervals, random_path_workload, repeated_hot_edge,
    two_phase_squeeze, CostModel, PathWorkloadSpec, Topology,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drive `spec` over `inst` streaming (per-push) and batched (chunks of
/// `batch`), asserting event-for-event and report equality.
fn assert_batch_equals_streaming(inst: &AdmissionInstance, spec_str: &str, batch: usize) {
    let registry = default_registry();
    let spec = AlgorithmSpec::parse(spec_str).expect("spec parses");

    let mut streaming = Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
    let streamed: Vec<ArrivalEvent> = inst
        .requests
        .iter()
        .map(|r| streaming.push(r).expect("streaming push"))
        .collect();

    let mut batched = Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
    let mut events: Vec<ArrivalEvent> = Vec::with_capacity(inst.requests.len());
    let mut buf = Vec::new();
    for chunk in inst.requests.chunks(batch) {
        batched
            .push_batch_into(chunk, &mut buf)
            .expect("batched push");
        events.append(&mut buf);
    }

    assert_eq!(
        events, streamed,
        "{spec_str}: event streams diverge at batch size {batch}"
    );
    assert_eq!(
        batched.report(),
        streaming.report(),
        "{spec_str}: final reports diverge at batch size {batch}"
    );

    // And the two run_trace conveniences agree with both.
    let report = Session::from_registry(&registry, &spec, &inst.capacities, 0)
        .unwrap()
        .run_trace(inst)
        .unwrap();
    let report_batched = Session::from_registry(&registry, &spec, &inst.capacities, 0)
        .unwrap()
        .run_trace_batched(inst, batch)
        .unwrap();
    assert_eq!(report, streaming.report(), "{spec_str}: run_trace diverges");
    assert_eq!(
        report_batched, report,
        "{spec_str}: run_trace_batched diverges at batch size {batch}"
    );

    assert_streamed_equals_in_memory(inst, &registry, &spec, spec_str, batch, &streamed);
}

/// Serialize `inst` to the trace format, parse it back through the
/// chunked `TraceReader`, and require the identical event stream and
/// reports the in-memory session produced — streamed ≡ in-memory,
/// event for event, plus the `run_stream`/`run_stream_batched`
/// conveniences and the harness's two-pass streamed report.
fn assert_streamed_equals_in_memory(
    inst: &AdmissionInstance,
    registry: &acmr_core::Registry,
    spec: &AlgorithmSpec,
    spec_str: &str,
    batch: usize,
    expected_events: &[ArrivalEvent],
) {
    let text = write_trace(inst);

    // Event for event: push each request as the chunked parser yields it.
    let mut session = Session::from_registry(registry, spec, &inst.capacities, 0).unwrap();
    let mut reader = TraceReader::new(text.as_bytes()).unwrap();
    assert_eq!(reader.capacities(), &inst.capacities[..]);
    let mut events = Vec::new();
    while let Some(r) = reader.next_request().expect("trace re-parses") {
        events.push(session.push(&r).expect("streamed push"));
    }
    assert_eq!(
        events, expected_events,
        "{spec_str}: streamed event stream diverges from in-memory"
    );
    let reference_report = session.report();

    // The run_stream conveniences agree.
    let streamed = Session::from_registry(registry, spec, &inst.capacities, 0)
        .unwrap()
        .run_stream(TraceReader::new(text.as_bytes()).unwrap())
        .unwrap();
    assert_eq!(
        streamed, reference_report,
        "{spec_str}: run_stream diverges"
    );
    let streamed_batched = Session::from_registry(registry, spec, &inst.capacities, 0)
        .unwrap()
        .run_stream_batched(TraceReader::new(text.as_bytes()).unwrap(), batch)
        .unwrap();
    assert_eq!(
        streamed_batched, reference_report,
        "{spec_str}: run_stream_batched diverges at batch size {batch}"
    );

    // Harness level: the two-pass streamed report (OPT bound included)
    // serializes byte-identically to the in-memory one.
    let budget = BoundBudget::default();
    let in_memory = run_report(registry, spec_str, inst, 0, budget).unwrap();
    let two_pass = run_report_streamed(
        registry,
        spec_str,
        || TraceReader::new(text.as_bytes()),
        0,
        budget,
        None,
    )
    .unwrap();
    assert_eq!(two_pass, in_memory, "{spec_str}: streamed report diverges");
    assert_eq!(
        serde_json::to_string_pretty(&two_pass).unwrap(),
        serde_json::to_string_pretty(&in_memory).unwrap(),
        "{spec_str}: streamed report JSON is not byte-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// push_batch ≡ push for every registered algorithm over random
    /// path workloads: topology × weighted × seed × batch size.
    #[test]
    fn push_batch_equals_streaming_on_random_workloads(
        topology in prop_oneof![
            Just(Topology::Line { m: 12 }),
            Just(Topology::Grid { rows: 3, cols: 4 }),
            Just(Topology::Tree { levels: 3 }),
        ],
        weighted in prop_oneof![Just(true), Just(false)],
        seed in 0u64..1000,
        batch in 1usize..24,
    ) {
        let spec = PathWorkloadSpec {
            topology,
            capacity: 2,
            overload: 2.0,
            costs: if weighted {
                CostModel::Uniform { lo: 1.0, hi: 9.0 }
            } else {
                CostModel::Unit
            },
            max_hops: 5,
        };
        let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(seed));
        prop_assert!(!inst.requests.is_empty());
        for name in default_registry().names() {
            // Randomized algorithms run under an explicit spec seed so
            // both paths build bit-identical RNG state.
            let spec_str = format!("{name}?seed={}", seed % 17);
            assert_batch_equals_streaming(&inst, &spec_str, batch);
        }
    }
}

/// The hostile traces `acmr gen --topology adversarial|lower-bound`
/// exposes: the same differential, deterministically, for every
/// registered algorithm — preemption-heavy regimes included.
#[test]
fn push_batch_equals_streaming_on_hostile_traces() {
    let hostile: Vec<(&str, AdmissionInstance)> = vec![
        ("nested", nested_intervals(16, 2, 2, 2)),
        ("hot-edge", repeated_hot_edge(4, 3, 12)),
        ("squeeze", two_phase_squeeze(12, 3, 4, 3)),
        ("dyadic", dyadic_admission_instance(4, 3, 2)),
    ];
    for (family, inst) in &hostile {
        assert!(
            inst.max_excess() > 0,
            "{family}: hostile trace must actually overload"
        );
        for name in default_registry().names() {
            for batch in [1usize, 2, 7, inst.requests.len()] {
                let spec_str = format!("{name}?seed=5");
                assert_batch_equals_streaming(inst, &spec_str, batch);
            }
        }
    }
}

/// Batch boundaries must not leak into algorithm state: interleaving
/// push and push_batch on one session agrees with pure streaming.
#[test]
fn mixed_push_and_push_batch_agree_with_streaming() {
    let registry = default_registry();
    let inst = two_phase_squeeze(10, 2, 3, 2);
    for name in registry.names() {
        let spec = AlgorithmSpec::parse(&format!("{name}?seed=9")).unwrap();

        let mut streaming = Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
        let expected: Vec<ArrivalEvent> = inst
            .requests
            .iter()
            .map(|r| streaming.push(r).unwrap())
            .collect();

        let mut mixed = Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
        let mut events = Vec::new();
        let mut rest = inst.requests.as_slice();
        // Alternate: one single push, then a batch of up to 3.
        while !rest.is_empty() {
            events.push(mixed.push(&rest[0]).unwrap());
            rest = &rest[1..];
            let take = rest.len().min(3);
            events.extend(mixed.push_batch(&rest[..take]).unwrap());
            rest = &rest[take..];
        }
        assert_eq!(events, expected, "{name}: mixed push/push_batch diverges");
        assert_eq!(mixed.report(), streaming.report(), "{name}");
    }
}
