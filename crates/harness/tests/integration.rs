//! Harness-level integration tests: the audited runner, OPT bounds and
//! experiments working together on instances with known structure.

use acmr_baselines::GreedyNonPreemptive;
use acmr_core::{RandConfig, RandomizedAdmission, Request};
use acmr_graph::{EdgeId, EdgeSet};
use acmr_harness::{
    admission_covering_problem, admission_opt, run_admission, BoundBudget, OptBoundKind,
};
use acmr_workloads::adversarial::nested_intervals;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn covering_problem_matches_instance_structure() {
    let inst = nested_intervals(8, 2, 2, 2);
    let p = admission_covering_problem(&inst);
    assert_eq!(p.num_items(), inst.requests.len());
    // Edge 0 is in every footprint: its row must exist with demand
    // |REQ| − cap = 8 − 2 = 6.
    let row0 = p
        .rows
        .iter()
        .find(|r| r.items.len() == inst.requests.len())
        .expect("edge-0 row");
    assert_eq!(row0.demand, 6);
}

#[test]
fn greedy_baseline_vs_opt_monotonicity() {
    // More overload ⇒ OPT (and greedy cost) weakly increase.
    let mut last_opt = 0.0;
    for rounds in 1..=3u32 {
        let inst = nested_intervals(12, 2, 3, rounds);
        let opt = admission_opt(&inst, BoundBudget::default());
        assert!(opt.value >= last_opt - 1e-9);
        last_opt = opt.value;
        let mut alg = GreedyNonPreemptive::new(&inst.capacities);
        let run = run_admission(&mut alg, &inst);
        assert!(run.rejected_cost >= opt.value - 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On arbitrary random instances: online cost ≥ OPT bound (lower
    /// bounds must actually be lower bounds), and the exact bound
    /// agrees with the LP bound when both are computed.
    #[test]
    fn bounds_are_actually_bounds(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng as _;
        let m = rng.gen_range(2usize..6);
        let caps: Vec<u32> = (0..m).map(|_| rng.gen_range(1u32..3)).collect();
        let mut inst = acmr_core::AdmissionInstance::from_capacities(caps.clone());
        for _ in 0..rng.gen_range(3usize..18) {
            let k = rng.gen_range(1usize..=m);
            let edges: Vec<EdgeId> = (0..k as u32).map(EdgeId).collect();
            let cost = rng.gen_range(1u32..10) as f64;
            inst.push(Request::new(EdgeSet::new(edges), cost));
        }
        let exact = admission_opt(&inst, BoundBudget::default());
        prop_assert_eq!(exact.kind, OptBoundKind::Exact);
        let lp_only = admission_opt(&inst, BoundBudget { max_exact_items: 0, ..Default::default() });
        prop_assert!(lp_only.value <= exact.value + 1e-6,
            "LP bound {} exceeds exact OPT {}", lp_only.value, exact.value);

        // Any real algorithm's cost is ≥ the exact OPT.
        let mut alg = RandomizedAdmission::new(
            &inst.capacities, RandConfig::weighted(), StdRng::seed_from_u64(seed ^ 1));
        let run = run_admission(&mut alg, &inst);
        prop_assert!(run.rejected_cost >= exact.value - 1e-6,
            "online {} below exact OPT {}", run.rejected_cost, exact.value);
    }
}
