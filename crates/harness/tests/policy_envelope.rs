//! Envelope suite for the stochastic serving policies (`lp-resolve`,
//! `lcb-greedy`): every ingestion path agrees, the referee confirms
//! hard feasibility on hostile traces, and the advertised degradation
//! modes hold.
//!
//! 1. **Path parity** — for both policies (default and tuned specs),
//!    per-push ≡ `push_batch` ≡ streamed (`run_stream` over the trace
//!    text) ≡ served over a live loopback socket, event for event and
//!    report for report, on stochastic *and* hostile traces.
//! 2. **Hard feasibility** — the referee audits every decision
//!    (capacity overflow, phantom preemption) while `lp-resolve` runs
//!    the hostile adversarial corpus; plan-enforcing preemption must
//!    never over-commit an edge.
//! 3. **Degradation** — `lcb-greedy?delta=0` is decision-identical to
//!    plain `greedy`, per the zero-confidence contract.

use acmr_core::{AdmissionInstance, AlgorithmSpec, ArrivalEvent, RunReport, Session};
use acmr_harness::experiments::e18_policies::{instance_for, Family};
use acmr_harness::{default_registry, run_registered};
use acmr_serve::{serve, serve_trace, ServeConfig, ServerHandle};
use acmr_workloads::trace::{write_trace, TraceReader};
use acmr_workloads::{
    dyadic_admission_instance, nested_intervals, repeated_hot_edge, two_phase_squeeze,
};

/// The policy specs under the envelope: registry defaults plus the
/// tuned variants E18 sweeps.
const POLICY_SPECS: [&str; 4] = [
    "lp-resolve",
    "lcb-greedy",
    "lp-resolve?period=32&buffer=0.02",
    "lcb-greedy?delta=0.2",
];

fn hostile_traces() -> Vec<(&'static str, AdmissionInstance)> {
    vec![
        ("nested", nested_intervals(16, 2, 2, 2)),
        ("hot-edge", repeated_hot_edge(4, 3, 12)),
        ("squeeze", two_phase_squeeze(12, 3, 4, 3)),
        ("dyadic", dyadic_admission_instance(4, 3, 2)),
    ]
}

/// A small stochastic trace from each arrival family — the traffic the
/// policies are actually built for.
fn stochastic_traces() -> Vec<(&'static str, AdmissionInstance)> {
    [
        Family::StochasticIid,
        Family::Mmpp,
        Family::Diurnal,
        Family::FlashCrowd,
    ]
    .into_iter()
    .map(|f| (f.label(), instance_for(f, 24, 3, 96, 0xE18)))
    .collect()
}

/// Reference decision stream and report: per-push over the in-memory
/// instance.
fn reference(inst: &AdmissionInstance, spec_str: &str) -> (Vec<ArrivalEvent>, RunReport) {
    let registry = default_registry();
    let spec = AlgorithmSpec::parse(spec_str).unwrap();
    let mut session = Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
    let events = inst
        .requests
        .iter()
        .map(|r| session.push(r).unwrap())
        .collect();
    (events, session.report())
}

#[test]
fn push_equals_push_batch_equals_streamed_for_policies() {
    let registry = default_registry();
    let mut traces = hostile_traces();
    traces.extend(stochastic_traces());
    for (family, inst) in &traces {
        assert!(!inst.requests.is_empty(), "{family}: empty trace");
        let text = write_trace(inst);
        for spec_str in POLICY_SPECS {
            let spec = AlgorithmSpec::parse(spec_str).unwrap();
            let (expected_events, expected_report) = reference(inst, spec_str);

            for batch in [1usize, 3, 16] {
                let mut batched =
                    Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
                let mut events = Vec::new();
                for chunk in inst.requests.chunks(batch) {
                    events.extend(batched.push_batch(chunk).unwrap());
                }
                assert_eq!(
                    events, expected_events,
                    "{spec_str} on {family}: push_batch({batch}) diverges from push"
                );
                assert_eq!(
                    batched.report(),
                    expected_report,
                    "{spec_str} on {family}: batched report diverges"
                );
            }

            let streamed = Session::from_registry(&registry, &spec, &inst.capacities, 0)
                .unwrap()
                .run_stream(TraceReader::new(text.as_bytes()).unwrap())
                .unwrap();
            assert_eq!(
                streamed, expected_report,
                "{spec_str} on {family}: streamed report diverges"
            );
        }
    }
}

#[test]
fn served_equals_in_memory_for_policies() {
    let handle: ServerHandle = serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    let mut traces = hostile_traces();
    traces.extend(stochastic_traces());
    for (family, inst) in &traces {
        for spec_str in POLICY_SPECS {
            let (expected_events, expected_report) = reference(inst, spec_str);
            for batch in [None, Some(8)] {
                let mut events = Vec::new();
                let report = serve_trace(
                    handle.local_addr(),
                    spec_str,
                    None,
                    &inst.capacities,
                    inst.requests.iter().cloned().map(Ok),
                    batch,
                    |e| events.push(e.clone()),
                )
                .expect("served run");
                assert_eq!(
                    events, expected_events,
                    "{spec_str} on {family}: served events diverge (batch {batch:?})"
                );
                assert_eq!(
                    report, expected_report,
                    "{spec_str} on {family}: served report diverges (batch {batch:?})"
                );
            }
        }
    }
}

/// The referee inside `run_registered` audits every decision: a
/// capacity overflow or phantom preemption from the plan-enforcing
/// preemptor panics the run. Surviving the hostile corpus — built to
/// force preemption churn — is the feasibility proof.
#[test]
fn lp_resolve_stays_feasible_under_referee_on_hostile_traces() {
    let registry = default_registry();
    for (family, inst) in &hostile_traces() {
        assert!(
            inst.max_excess() > 0,
            "{family}: hostile trace must overload"
        );
        for spec_str in ["lp-resolve", "lp-resolve?period=2&buffer=0.0"] {
            let report = run_registered(&registry, spec_str, inst, 11).expect("audited run");
            assert!(
                report.rejected_cost <= report.offered_cost,
                "{spec_str} on {family}: accounting out of range"
            );
        }
    }
}

#[test]
fn lcb_greedy_at_zero_confidence_is_plain_greedy() {
    let mut traces = hostile_traces();
    traces.extend(stochastic_traces());
    for (family, inst) in &traces {
        let (lcb_events, lcb_report) = reference(inst, "lcb-greedy?delta=0");
        let (greedy_events, greedy_report) = reference(inst, "greedy");
        assert_eq!(
            lcb_events, greedy_events,
            "{family}: lcb-greedy?delta=0 diverges from greedy"
        );
        // The reports only differ in the algorithm labels.
        assert_eq!(
            (
                lcb_report.accepted_count,
                lcb_report.rejected_count,
                lcb_report.rejected_cost,
                lcb_report.preemptions,
                lcb_report.offered_cost,
            ),
            (
                greedy_report.accepted_count,
                greedy_report.rejected_count,
                greedy_report.rejected_cost,
                greedy_report.preemptions,
                greedy_report.offered_cost,
            ),
            "{family}: accounting diverges"
        );
    }
}
