//! Failure injection: the harness is the referee, so feed it
//! deliberately broken "algorithms" and assert it catches every
//! contract violation (capacity overflow, phantom preemption,
//! accept-after-reject, double-bought sets, under-coverage).

use acmr_core::setcover::{OnlineSetCover, SetId, SetSystem};
use acmr_core::{AdmissionInstance, OnlineAdmission, Outcome, Request, RequestId};
use acmr_graph::{EdgeId, EdgeSet};
use acmr_harness::{run_admission, run_set_cover};

fn fp(ids: &[u32]) -> EdgeSet {
    EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect())
}

fn overload_instance() -> AdmissionInstance {
    let mut inst = AdmissionInstance::from_capacities(vec![1]);
    inst.push(Request::unit(fp(&[0])));
    inst.push(Request::unit(fp(&[0])));
    inst
}

/// Accepts everything, capacity be damned.
struct AcceptAll;
impl OnlineAdmission for AcceptAll {
    fn name(&self) -> &'static str {
        "accept-all"
    }
    fn on_request(&mut self, _id: RequestId, _r: &Request) -> Outcome {
        Outcome::accept()
    }
}

#[test]
#[should_panic(expected = "violates a capacity")]
fn referee_catches_capacity_overflow() {
    run_admission(&mut AcceptAll, &overload_instance());
}

/// Preempts a request that was never accepted.
struct PhantomPreempt;
impl OnlineAdmission for PhantomPreempt {
    fn name(&self) -> &'static str {
        "phantom-preempt"
    }
    fn on_request(&mut self, id: RequestId, _r: &Request) -> Outcome {
        if id.0 == 1 {
            Outcome {
                accepted: false,
                preempted: vec![RequestId(0)],
            }
        } else {
            Outcome::reject() // request 0 was *rejected*, not accepted
        }
    }
}

#[test]
#[should_panic(expected = "not currently accepted")]
fn referee_catches_phantom_preemption() {
    run_admission(&mut PhantomPreempt, &overload_instance());
}

/// Preempts the same victim twice.
struct DoublePreempt;
impl OnlineAdmission for DoublePreempt {
    fn name(&self) -> &'static str {
        "double-preempt"
    }
    fn on_request(&mut self, id: RequestId, _r: &Request) -> Outcome {
        match id.0 {
            0 => Outcome::accept(),
            _ => Outcome {
                accepted: false,
                preempted: vec![RequestId(0), RequestId(0)],
            },
        }
    }
}

#[test]
#[should_panic(expected = "not currently accepted")]
fn referee_catches_double_preemption() {
    run_admission(&mut DoublePreempt, &overload_instance());
}

fn tiny_system() -> SetSystem {
    SetSystem::unit(2, vec![vec![0], vec![1], vec![0, 1]])
}

/// Buys nothing, ever.
struct BuysNothing;
impl OnlineSetCover for BuysNothing {
    fn name(&self) -> &'static str {
        "buys-nothing"
    }
    fn on_arrival(&mut self, _element: u32) -> Vec<SetId> {
        Vec::new()
    }
}

#[test]
#[should_panic(expected = "covered 0")]
fn referee_catches_under_coverage() {
    let system = tiny_system();
    run_set_cover(&mut BuysNothing, &system, &[0]);
}

/// Buys the same set on every arrival.
struct BuysSameSetTwice;
impl OnlineSetCover for BuysSameSetTwice {
    fn name(&self) -> &'static str {
        "double-buyer"
    }
    fn on_arrival(&mut self, _element: u32) -> Vec<SetId> {
        vec![SetId(2)] // second arrival: illegal, already bought
    }
}

#[test]
#[should_panic(expected = "bought twice")]
fn referee_catches_double_buying() {
    let system = tiny_system();
    run_set_cover(&mut BuysSameSetTwice, &system, &[0, 1]);
}

/// A bicriteria impostor claiming slack it does not honour.
struct SlackCheat;
impl OnlineSetCover for SlackCheat {
    fn name(&self) -> &'static str {
        "slack-cheat"
    }
    fn on_arrival(&mut self, _element: u32) -> Vec<SetId> {
        Vec::new()
    }
    fn coverage_slack(&self) -> f64 {
        0.5
    }
}

#[test]
#[should_panic(expected = "covered 0")]
fn referee_honours_declared_slack_but_still_catches_zero_coverage() {
    // With slack 0.5 the first arrival needs coverage ≥ 0.5 ⇒ ≥ 1 set.
    let system = tiny_system();
    run_set_cover(&mut SlackCheat, &system, &[0]);
}

/// Sanity: the referee passes a *correct* trivial algorithm.
struct BuysEverythingUpfront {
    bought: bool,
}
impl OnlineSetCover for BuysEverythingUpfront {
    fn name(&self) -> &'static str {
        "buy-all"
    }
    fn on_arrival(&mut self, _element: u32) -> Vec<SetId> {
        if self.bought {
            Vec::new()
        } else {
            self.bought = true;
            vec![SetId(0), SetId(1), SetId(2)]
        }
    }
}

#[test]
fn referee_accepts_correct_algorithm() {
    let system = tiny_system();
    let run = run_set_cover(
        &mut BuysEverythingUpfront { bought: false },
        &system,
        &[0, 1, 0],
    );
    assert_eq!(run.sets_bought, 3);
    assert!(run.worst_coverage_ratio >= 1.0);
}
