//! Theorem envelopes re-checked through the **batch path**: the same
//! competitive-ratio bounds `acmr-core`'s `theorem_bounds.rs` asserts
//! against hand-driven algorithm loops are asserted here against
//! `ShardedDriver` output — rejections measured from audited
//! `RunReport`s produced via `Session::push_batch`, OPT context
//! attached by the driver's shared per-trace bounds. A batch-layer bug
//! that preserved event equality but broke cost accounting, or a
//! driver bug that attached the wrong trace's bound, fails here.

use acmr_core::AdmissionInstance;
use acmr_harness::{cross_jobs, default_registry, BoundBudget, ShardedDriver, SweepJob};
use acmr_workloads::{dyadic_admission_instance, repeated_hot_edge, two_phase_squeeze};

/// Theorem 4 (unweighted) through the driver: on the hot-edge family
/// (exact OPT = total − c) the mean ratio of `aag-unweighted` over
/// seeds stays within O(log m · log c), for every batch size tried.
#[test]
fn theorem4_envelope_via_sharded_driver_on_hot_edge() {
    let registry = default_registry();
    let m = 16u32;
    for &c in &[4u32, 16] {
        let total = 3 * c;
        let inst = repeated_hot_edge(m, c, total);
        let opt = (total - c) as f64;
        let traces = vec![("hot".to_string(), inst)];
        let seeds: Vec<u64> = (0..8).collect();
        let jobs = cross_jobs(&["hot"], &["aag-unweighted"], &seeds);
        for batch in [1usize, 8, 64] {
            let sweep = ShardedDriver::new()
                .threads(2)
                .batch(batch)
                .budget(BoundBudget::default())
                .run(&registry, &traces, &jobs)
                .unwrap();
            // The driver's shared bound must be the exact closed form.
            for job in &sweep.jobs {
                let bound = job.report.opt.as_ref().expect("opt attached");
                assert_eq!(bound.kind, "exact");
                assert!(
                    (bound.value - opt).abs() < 1e-9,
                    "c={c}: opt {}",
                    bound.value
                );
            }
            let mean_ratio = sweep.totals.rejected_cost / seeds.len() as f64 / opt;
            let envelope = 10.0 * (m as f64).ln() * (c as f64).ln().max(1.0) + 10.0;
            assert!(
                mean_ratio <= envelope,
                "c={c} batch={batch}: mean ratio {mean_ratio} > {envelope}"
            );
        }
    }
}

/// Theorem 3 (weighted, O(log²(mc))) through the driver: on
/// preemption-heavy hostile traces the per-job conservative ratio the
/// driver reports stays inside the envelope with explicit constants.
#[test]
fn weighted_envelope_via_sharded_driver_on_hostile_traces() {
    let registry = default_registry();
    let traces: Vec<(String, AdmissionInstance)> = vec![
        ("squeeze".to_string(), two_phase_squeeze(12, 3, 4, 3)),
        ("dyadic".to_string(), dyadic_admission_instance(4, 3, 2)),
    ];
    let jobs = cross_jobs(&["squeeze", "dyadic"], &["aag-weighted"], &[0, 1, 2, 3]);
    let sweep = ShardedDriver::new()
        .threads(3)
        .batch(8)
        .budget(BoundBudget::default())
        .run(&registry, &traces, &jobs)
        .unwrap();
    assert_eq!(sweep.jobs.len(), 8);
    for job in &sweep.jobs {
        let inst = &traces.iter().find(|(n, _)| *n == job.trace).unwrap().1;
        let m = inst.num_edges() as f64;
        let c = inst.max_capacity() as f64;
        let envelope = 30.0 * (m * c).ln().powi(2).max(1.0);
        let ratio = job
            .report
            .ratio()
            .expect("hostile traces overload, so the ratio is finite");
        assert!(
            ratio <= envelope,
            "{} seed {:?}: ratio {ratio} > O(log²(mc)) envelope {envelope}",
            job.trace,
            job.report.seed
        );
    }
}

/// The motivating zero-rejection regime survives the batch path: an
/// under-loaded trace must report zero rejected cost through the
/// driver, for the paper's algorithms and every batch size.
#[test]
fn zero_rejection_regime_stays_zero_through_driver() {
    let registry = default_registry();
    // total = c: nothing ever needs to be rejected.
    let inst = repeated_hot_edge(8, 6, 6);
    assert_eq!(inst.max_excess(), 0);
    let traces = vec![("calm".to_string(), inst)];
    let jobs: Vec<SweepJob> = cross_jobs(&["calm"], &["aag-unweighted", "aag-weighted"], &[0, 9]);
    for batch in [1usize, 4, 32] {
        let sweep = ShardedDriver::new()
            .threads(2)
            .batch(batch)
            .run(&registry, &traces, &jobs)
            .unwrap();
        assert_eq!(
            sweep.totals.rejected_cost, 0.0,
            "batch {batch}: rejected despite zero OPT"
        );
        assert_eq!(sweep.totals.requests, 6 * jobs.len());
    }
}
