//! Best-first branch-and-bound for the 0/1 multicovering program.
//!
//! Exact offline optima on small/medium instances: nodes carry partial
//! assignments, the LP relaxation of the residual problem gives the
//! bound, the density greedy supplies the initial incumbent, and
//! branching follows the most fractional LP variable. A node budget
//! keeps worst cases bounded; the result reports whether optimality was
//! proven.

use crate::covering::CoveringProblem;
use crate::greedy::greedy_cover;
use crate::simplex::{self, LpError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Search limits for [`branch_and_bound`].
#[derive(Clone, Copy, Debug)]
pub struct BnbLimits {
    /// Maximum number of explored nodes before giving up on proving
    /// optimality (the best incumbent found so far is still returned).
    pub max_nodes: usize,
}

impl Default for BnbLimits {
    fn default() -> Self {
        BnbLimits { max_nodes: 20_000 }
    }
}

/// Result of [`branch_and_bound`].
#[derive(Clone, Debug)]
pub struct BnbResult {
    /// Best 0/1 solution found.
    pub chosen: Vec<bool>,
    /// Its cost.
    pub cost: f64,
    /// True iff the search proved this is the integral optimum.
    pub proven_optimal: bool,
    /// Nodes explored.
    pub nodes: usize,
}

#[derive(Clone)]
struct Node {
    /// `None` = free, `Some(b)` = fixed to b.
    fixed: Vec<Option<bool>>,
    bound: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on bound: reverse the comparison.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Solve the covering problem exactly (within `limits`).
///
/// Returns `None` when the instance is infeasible.
pub fn branch_and_bound(p: &CoveringProblem, limits: BnbLimits) -> Option<BnbResult> {
    let greedy = greedy_cover(p)?;
    let n = p.num_items();
    let mut best = greedy.chosen;
    let mut best_cost = greedy.cost;
    let mut nodes = 0usize;
    let mut proven = true;

    let root_fixed = vec![None; n];
    let Some(root_bound) = node_bound(p, &root_fixed) else {
        // LP infeasible at root despite greedy success can't happen.
        return Some(BnbResult {
            chosen: best,
            cost: best_cost,
            proven_optimal: true,
            nodes: 0,
        });
    };

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        fixed: root_fixed,
        bound: root_bound.0,
    });

    while let Some(node) = heap.pop() {
        if node.bound >= best_cost - 1e-9 {
            // Best-first: every remaining node is at least this bound.
            break;
        }
        nodes += 1;
        if nodes > limits.max_nodes {
            proven = false;
            break;
        }
        // Re-solve to get the fractional point for branching (bound was
        // computed at push time; we need x as well).
        let Some((_, x)) = node_bound_with_x(p, &node.fixed) else {
            continue; // infeasible subtree
        };
        // Find most fractional free variable.
        let mut branch_var: Option<(usize, f64)> = None;
        for (i, &xi) in x.iter().enumerate().take(n) {
            if node.fixed[i].is_some() {
                continue;
            }
            let frac = (xi - 0.5).abs();
            match branch_var {
                None => branch_var = Some((i, frac)),
                Some((_, bf)) if frac < bf => branch_var = Some((i, frac)),
                _ => {}
            }
        }
        match branch_var {
            None => {
                // All variables fixed: evaluate leaf.
                let chosen: Vec<bool> = node.fixed.iter().map(|f| f.unwrap_or(false)).collect();
                if p.satisfies(&chosen) {
                    let cost = p.cost_of(&chosen);
                    if cost < best_cost {
                        best_cost = cost;
                        best = chosen;
                    }
                }
            }
            Some((i, frac)) => {
                // If the LP point is already integral, round it — it is
                // a feasible integral solution for the residual problem.
                if frac > 0.5 - 1e-7 {
                    let chosen: Vec<bool> = (0..n)
                        .map(|j| node.fixed[j].unwrap_or(x[j] > 0.5))
                        .collect();
                    if p.satisfies(&chosen) {
                        let cost = p.cost_of(&chosen);
                        if cost < best_cost {
                            best_cost = cost;
                            best = chosen;
                        }
                        continue;
                    }
                }
                for b in [true, false] {
                    let mut fixed = node.fixed.clone();
                    fixed[i] = Some(b);
                    if let Some((bound, _)) = node_bound_with_x(p, &fixed) {
                        if bound < best_cost - 1e-9 {
                            heap.push(Node { fixed, bound });
                        }
                    }
                }
            }
        }
    }

    debug_assert!(p.satisfies(&best));
    Some(BnbResult {
        chosen: best,
        cost: best_cost,
        proven_optimal: proven,
        nodes,
    })
}

fn node_bound(p: &CoveringProblem, fixed: &[Option<bool>]) -> Option<(f64, ())> {
    node_bound_with_x(p, fixed).map(|(b, _)| (b, ()))
}

/// LP bound of the subproblem where some variables are fixed, plus the
/// LP point (full length, fixed vars at their fixed values).
fn node_bound_with_x(p: &CoveringProblem, fixed: &[Option<bool>]) -> Option<(f64, Vec<f64>)> {
    let n = p.num_items();
    // Residual problem over free items.
    let mut map = vec![usize::MAX; n]; // original → residual index
    let mut free = Vec::new();
    let mut fixed_cost = 0.0;
    for i in 0..n {
        match fixed[i] {
            None => {
                map[i] = free.len();
                free.push(i);
            }
            Some(true) => fixed_cost += p.costs[i],
            Some(false) => {}
        }
    }
    let mut sub = CoveringProblem::new(free.iter().map(|&i| p.costs[i]).collect());
    for row in &p.rows {
        let satisfied = row
            .items
            .iter()
            .filter(|&&i| fixed[i] == Some(true))
            .count() as u32;
        let demand = row.demand.saturating_sub(satisfied);
        if demand == 0 {
            continue;
        }
        let items: Vec<usize> = row
            .items
            .iter()
            .filter(|&&i| fixed[i].is_none())
            .map(|&i| map[i])
            .collect();
        if (items.len() as u32) < demand {
            return None; // infeasible subtree
        }
        sub.rows.push(crate::covering::CoverRow { items, demand });
    }
    match simplex::solve(&sub.lp_relaxation()) {
        Ok(sol) => {
            let mut x = vec![0.0; n];
            for i in 0..n {
                x[i] = match fixed[i] {
                    Some(true) => 1.0,
                    Some(false) => 0.0,
                    None => sol.x[map[i]],
                };
            }
            Some((fixed_cost + sol.objective, x))
        }
        Err(LpError::Infeasible) => None,
        Err(_) => {
            // Defensive: treat solver trouble as "no usable bound" by
            // returning a trivial bound of fixed cost only.
            Some((fixed_cost, vec![0.5; n]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_toy() {
        // Optimal is {0, 2} with cost 4 (see covering.rs tests).
        let mut p = CoveringProblem::new(vec![1.0, 2.0, 3.0, 4.0]);
        p.push_row(vec![0, 1, 2], 2);
        p.push_row(vec![2, 3], 1);
        let r = branch_and_bound(&p, BnbLimits::default()).unwrap();
        assert!(r.proven_optimal);
        assert!((r.cost - 4.0).abs() < 1e-9, "cost = {}", r.cost);
        assert!(p.satisfies(&r.chosen));
    }

    #[test]
    fn beats_or_matches_greedy() {
        // Instance where greedy is suboptimal: classic set-cover trap.
        // rows: {0,1} each coverable by item2 (cost 1.5) or singles (1.0).
        // greedy takes item2? density item2 = 0.75 < 1.0 → greedy = 1.5 = opt.
        // Make greedy fail: demands force...
        let mut p = CoveringProblem::new(vec![2.0, 2.0, 3.1]);
        p.push_row(vec![0, 2], 1);
        p.push_row(vec![1, 2], 1);
        // greedy: densities 2.0, 2.0, 1.55 → picks item2 (3.1). opt = 3.1? or items 0+1 = 4.0. opt = 3.1.
        let r = branch_and_bound(&p, BnbLimits::default()).unwrap();
        assert!((r.cost - 3.1).abs() < 1e-9);
    }

    #[test]
    fn multicover_exact() {
        // One row needs 2 of 4 items with distinct costs: picks the 2 cheapest.
        let mut p = CoveringProblem::new(vec![5.0, 1.0, 3.0, 2.0]);
        p.push_row(vec![0, 1, 2, 3], 2);
        let r = branch_and_bound(&p, BnbLimits::default()).unwrap();
        assert!((r.cost - 3.0).abs() < 1e-9);
        assert!(r.chosen[1] && r.chosen[3]);
    }

    #[test]
    fn infeasible_is_none() {
        let mut p = CoveringProblem::new(vec![1.0]);
        p.push_row(vec![0], 3);
        assert!(branch_and_bound(&p, BnbLimits::default()).is_none());
    }

    #[test]
    fn respects_node_limit() {
        // A slightly larger random-ish instance; tiny node budget.
        let mut p = CoveringProblem::new((0..12).map(|i| 1.0 + (i % 5) as f64).collect());
        for r in 0..8 {
            let items: Vec<usize> = (0..12).filter(|i| (i + r) % 3 != 0).collect();
            p.push_row(items, 3);
        }
        let r = branch_and_bound(&p, BnbLimits { max_nodes: 1 }).unwrap();
        assert!(p.satisfies(&r.chosen)); // incumbent always feasible
    }

    #[test]
    fn bound_sandwich() {
        // lp ≤ bnb ≤ greedy on a handful of structured instances.
        for shift in 0..5usize {
            let mut p =
                CoveringProblem::new((0..10).map(|i| 1.0 + ((i + shift) % 4) as f64).collect());
            for r in 0..6 {
                let items: Vec<usize> = (0..10).filter(|i| (i * 2 + r) % 4 != 0).collect();
                p.push_row(items, 2);
            }
            let lp = p.lp_lower_bound().unwrap();
            let bnb = branch_and_bound(&p, BnbLimits::default()).unwrap();
            let greedy = crate::greedy::greedy_cover(&p).unwrap();
            assert!(lp <= bnb.cost + 1e-7, "lp {lp} > bnb {}", bnb.cost);
            assert!(
                bnb.cost <= greedy.cost + 1e-7,
                "bnb {} > greedy {}",
                bnb.cost,
                greedy.cost
            );
        }
    }

    #[test]
    fn zero_demand_trivial() {
        let mut p = CoveringProblem::new(vec![4.0, 5.0]);
        p.push_row(vec![0, 1], 0);
        let r = branch_and_bound(&p, BnbLimits::default()).unwrap();
        assert_eq!(r.cost, 0.0);
    }
}
