//! The 0/1 multicovering program shared by both offline optima.
//!
//! **Admission control** (paper §1): offline OPT rejects a minimum-cost
//! request set such that every edge `e` loses at least
//! `|REQ_e| − c_e` requests — items are requests, rows are edges.
//!
//! **Set cover with repetitions** (paper §1): buy minimum-cost sets so
//! element `j` is covered `k_j` times — items are sets, rows are
//! elements with demand `k_j` (each set counted once: repetitions must
//! be covered by *different* subsets).
//!
//! Both are instances of: choose `x ∈ {0,1}^items` minimizing `Σ cᵢxᵢ`
//! subject to `Σ_{i ∈ row} xᵢ ≥ demand(row)` for every row.

use crate::simplex::{self, Cmp, Lp, LpError};
use serde::{Deserialize, Serialize};

/// One covering row: the items that can satisfy it and how many are
/// needed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverRow {
    /// Indices of items that contribute one unit each to this row.
    /// Must be duplicate-free (each item helps a row at most once).
    pub items: Vec<usize>,
    /// Required number of chosen items among `items`.
    pub demand: u32,
}

/// A 0/1 multicovering problem. See module docs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CoveringProblem {
    /// Item costs (all must be ≥ 0).
    pub costs: Vec<f64>,
    /// Covering rows.
    pub rows: Vec<CoverRow>,
}

impl CoveringProblem {
    /// New problem over items with the given costs.
    pub fn new(costs: Vec<f64>) -> Self {
        CoveringProblem {
            costs,
            rows: Vec::new(),
        }
    }

    /// Number of items (columns).
    pub fn num_items(&self) -> usize {
        self.costs.len()
    }

    /// Add a row; items are deduplicated, demand clamped to ≥ 0.
    pub fn push_row(&mut self, mut items: Vec<usize>, demand: u32) {
        items.sort_unstable();
        items.dedup();
        debug_assert!(items.iter().all(|&i| i < self.costs.len()));
        self.rows.push(CoverRow { items, demand });
    }

    /// A problem is integrally feasible iff every row has at least
    /// `demand` candidate items.
    pub fn is_feasible(&self) -> bool {
        self.rows.iter().all(|r| r.items.len() >= r.demand as usize)
    }

    /// Does the 0/1 vector `chosen` satisfy every row?
    pub fn satisfies(&self, chosen: &[bool]) -> bool {
        debug_assert_eq!(chosen.len(), self.num_items());
        self.rows.iter().all(|r| {
            let got = r.items.iter().filter(|&&i| chosen[i]).count();
            got >= r.demand as usize
        })
    }

    /// Total cost of a 0/1 choice.
    pub fn cost_of(&self, chosen: &[bool]) -> f64 {
        chosen
            .iter()
            .zip(&self.costs)
            .filter(|(&c, _)| c)
            .map(|(_, &p)| p)
            .sum()
    }

    /// The LP relaxation (`0 ≤ x ≤ 1`).
    pub fn lp_relaxation(&self) -> Lp {
        let mut lp = Lp::new(self.costs.clone());
        for row in &self.rows {
            if row.demand == 0 {
                continue;
            }
            lp.push(
                row.items.iter().map(|&i| (i, 1.0)).collect(),
                Cmp::Ge,
                row.demand as f64,
            );
        }
        for i in 0..self.num_items() {
            lp.push(vec![(i, 1.0)], Cmp::Le, 1.0);
        }
        lp
    }

    /// Fractional optimum — a valid lower bound on the integral optimum.
    ///
    /// Returns `Err(Infeasible)` when even the LP has no solution
    /// (some row demands more than its candidate count).
    pub fn lp_lower_bound(&self) -> Result<f64, LpError> {
        if !self.is_feasible() {
            return Err(LpError::Infeasible);
        }
        simplex::solve(&self.lp_relaxation()).map(|s| s.objective)
    }

    /// Rows with positive residual demand under `chosen`.
    pub fn residual_demands(&self, chosen: &[bool]) -> Vec<u32> {
        self.rows
            .iter()
            .map(|r| {
                let got = r.items.iter().filter(|&&i| chosen[i]).count() as u32;
                r.demand.saturating_sub(got)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> CoveringProblem {
        // 4 items, costs 1..4; row0 needs 2 of {0,1,2}; row1 needs 1 of {2,3}.
        let mut p = CoveringProblem::new(vec![1.0, 2.0, 3.0, 4.0]);
        p.push_row(vec![0, 1, 2], 2);
        p.push_row(vec![2, 3], 1);
        p
    }

    #[test]
    fn feasibility() {
        let p = toy();
        assert!(p.is_feasible());
        let mut bad = p.clone();
        bad.push_row(vec![0], 2);
        assert!(!bad.is_feasible());
    }

    #[test]
    fn satisfies_and_cost() {
        let p = toy();
        // items 0,1 cover row0; nothing covers row1.
        assert!(!p.satisfies(&[true, true, false, false]));
        assert!(p.satisfies(&[true, true, true, false]));
        assert_eq!(p.cost_of(&[true, true, true, false]), 6.0);
        // items 0,2 also work: row0 gets 2 (0 and 2), row1 gets 1 (2).
        assert!(p.satisfies(&[true, false, true, false]));
        assert_eq!(p.cost_of(&[true, false, true, false]), 4.0);
    }

    #[test]
    fn lp_bound_is_sane() {
        let p = toy();
        let lb = p.lp_lower_bound().unwrap();
        // Integral optimum is {0,2} = 4.0; LP can be ≤ that but ≥ 3
        // (row0 alone forces cost ≥ 1+2 fractionally = 3).
        assert!(lb <= 4.0 + 1e-7, "lb = {lb}");
        assert!(lb >= 3.0 - 1e-7, "lb = {lb}");
    }

    #[test]
    fn lp_infeasible_when_demand_exceeds_candidates() {
        let mut p = CoveringProblem::new(vec![1.0]);
        p.push_row(vec![0], 2);
        assert_eq!(p.lp_lower_bound().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn dedup_in_rows() {
        let mut p = CoveringProblem::new(vec![1.0, 1.0]);
        p.push_row(vec![0, 0, 1], 2);
        assert_eq!(p.rows[0].items, vec![0, 1]);
    }

    #[test]
    fn residuals() {
        let p = toy();
        assert_eq!(p.residual_demands(&[false; 4]), vec![2, 1]);
        assert_eq!(p.residual_demands(&[true, false, true, false]), vec![0, 0]);
    }

    #[test]
    fn zero_demand_rows_ignored_by_lp() {
        let mut p = CoveringProblem::new(vec![5.0]);
        p.push_row(vec![0], 0);
        assert_eq!(p.lp_lower_bound().unwrap(), 0.0);
    }
}
