//! Greedy multicover approximation.
//!
//! The classic density greedy (Chvátal 1979, cited by the paper as the
//! `Θ(log n)` offline benchmark): repeatedly buy the item with the best
//! cost per unit of *residual* demand it satisfies. For multicover this
//! retains the `H_n` approximation factor, so `greedy / H_n` is also a
//! crude lower bound; we use greedy only as a feasible **upper bound**
//! (an OPT proxy on instances too large for branch-and-bound).

use crate::covering::CoveringProblem;

/// Result of [`greedy_cover`].
#[derive(Clone, Debug)]
pub struct GreedyResult {
    /// Chosen items.
    pub chosen: Vec<bool>,
    /// Total cost of the chosen items.
    pub cost: f64,
}

/// Run the density greedy. Returns `None` if the instance is infeasible
/// (some row demands more items than exist).
pub fn greedy_cover(p: &CoveringProblem) -> Option<GreedyResult> {
    if !p.is_feasible() {
        return None;
    }
    let n = p.num_items();
    let mut chosen = vec![false; n];
    let mut residual = p.residual_demands(&chosen);
    // item → rows it appears in (inverted index, built once).
    let mut rows_of_item: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, row) in p.rows.iter().enumerate() {
        for &i in &row.items {
            rows_of_item[i].push(r);
        }
    }
    let mut open: u64 = residual.iter().map(|&d| d as u64).sum();
    while open > 0 {
        // Best density item: min cost / coverage among items with
        // positive residual coverage.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..n {
            if chosen[i] {
                continue;
            }
            let coverage = rows_of_item[i].iter().filter(|&&r| residual[r] > 0).count() as f64;
            if coverage == 0.0 {
                continue;
            }
            let density = p.costs[i] / coverage;
            match best {
                None => best = Some((i, density)),
                Some((_, bd)) if density < bd => best = Some((i, density)),
                _ => {}
            }
        }
        // Feasible instances always have a helping item while demand
        // remains open.
        let (i, _) = best.expect("feasible instance ran out of items");
        chosen[i] = true;
        for &r in &rows_of_item[i] {
            if residual[r] > 0 {
                residual[r] -= 1;
                open -= 1;
            }
        }
    }
    let cost = p.cost_of(&chosen);
    debug_assert!(p.satisfies(&chosen));
    Some(GreedyResult { chosen, cost })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_simple_instance() {
        let mut p = CoveringProblem::new(vec![1.0, 1.0, 10.0]);
        p.push_row(vec![0, 2], 1);
        p.push_row(vec![1, 2], 1);
        let g = greedy_cover(&p).unwrap();
        assert!(p.satisfies(&g.chosen));
        // Greedy picks the two cheap items (density 1.0 each beats 5.0).
        assert_eq!(g.cost, 2.0);
    }

    #[test]
    fn multicover_demand() {
        let mut p = CoveringProblem::new(vec![1.0; 5]);
        p.push_row(vec![0, 1, 2, 3, 4], 3);
        let g = greedy_cover(&p).unwrap();
        assert!(p.satisfies(&g.chosen));
        assert_eq!(g.cost, 3.0);
    }

    #[test]
    fn infeasible_returns_none() {
        let mut p = CoveringProblem::new(vec![1.0]);
        p.push_row(vec![0], 2);
        assert!(greedy_cover(&p).is_none());
    }

    #[test]
    fn greedy_never_below_lp() {
        let mut p = CoveringProblem::new(vec![3.0, 2.0, 2.0, 5.0]);
        p.push_row(vec![0, 1, 3], 2);
        p.push_row(vec![1, 2], 1);
        p.push_row(vec![0, 2, 3], 1);
        let g = greedy_cover(&p).unwrap();
        let lb = p.lp_lower_bound().unwrap();
        assert!(g.cost >= lb - 1e-7, "greedy {} < lp {}", g.cost, lb);
    }

    #[test]
    fn empty_problem_costs_nothing() {
        let p = CoveringProblem::new(vec![1.0, 2.0]);
        let g = greedy_cover(&p).unwrap();
        assert_eq!(g.cost, 0.0);
    }

    #[test]
    fn prefers_high_coverage_items() {
        // Item 2 covers both rows at cost 1.5 (density 0.75), beating
        // two singles at density 1.0 each.
        let mut p = CoveringProblem::new(vec![1.0, 1.0, 1.5]);
        p.push_row(vec![0, 2], 1);
        p.push_row(vec![1, 2], 1);
        let g = greedy_cover(&p).unwrap();
        assert_eq!(g.cost, 1.5);
        assert!(g.chosen[2]);
    }
}
