//! # acmr-lp
//!
//! From-scratch linear-programming and integer-programming machinery
//! used to compute **offline optima** for the admission-control and
//! set-cover experiments.
//!
//! The paper proves competitiveness against the *fractional* optimum
//! (Theorem 2) and the integral optimum (Theorems 3, 4, 7). To measure
//! empirical competitive ratios we therefore need, per instance:
//!
//! * a **fractional lower bound** — the LP relaxation of the rejection /
//!   multicover covering program, solved by a dense two-phase primal
//!   [`simplex`] (no third-party LP crate is permitted in this
//!   workspace);
//! * an **exact integral optimum** on small instances — best-first
//!   [`bnb`] branch-and-bound on the 0/1 covering program, warm-started
//!   by [`greedy`] and pruned with LP bounds;
//! * a **greedy upper bound** (`H_n`-approximate multicover) for
//!   instances too large to solve exactly.
//!
//! The shared problem shape is [`covering::CoveringProblem`]: choose
//! items (requests to reject / sets to buy) minimizing total cost so
//! every row (edge / element) reaches its demand. Both of the paper's
//! problems reduce to it; the harness crate does those translations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bnb;
pub mod covering;
pub mod greedy;
pub mod simplex;

pub use bnb::{branch_and_bound, BnbLimits, BnbResult};
pub use covering::{CoverRow, CoveringProblem};
pub use greedy::greedy_cover;
pub use simplex::{solve, Cmp, Constraint, Lp, LpError, LpSolution};
