//! Dense two-phase primal simplex with Bland's anti-cycling rule.
//!
//! Solves `min cᵀx  s.t.  Ax {≤,=,≥} b, x ≥ 0` on a dense tableau.
//! This is deliberately the textbook method: the covering LPs in this
//! workspace are small (hundreds of rows/columns) and dense-tableau
//! simplex is simple to verify, deterministic, and — with Bland's rule —
//! guaranteed to terminate. Numerical tolerances are fixed at `1e-9`
//! and results are validated against the constraints before return.

/// Comparison direction of a [`Constraint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ coeffs·x ≤ rhs`
    Le,
    /// `Σ coeffs·x = rhs`
    Eq,
    /// `Σ coeffs·x ≥ rhs`
    Ge,
}

/// One linear constraint in sparse form.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs. Indices may repeat; they
    /// are summed.
    pub coeffs: Vec<(usize, f64)>,
    /// Direction.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization LP over non-negative variables.
#[derive(Clone, Debug, Default)]
pub struct Lp {
    /// Number of structural variables.
    pub num_vars: usize,
    /// Objective coefficients (`len == num_vars`). Minimized.
    pub objective: Vec<f64>,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

impl Lp {
    /// New LP with `num_vars` variables and the given objective.
    pub fn new(objective: Vec<f64>) -> Self {
        Lp {
            num_vars: objective.len(),
            objective,
            constraints: Vec::new(),
        }
    }

    /// Add a constraint.
    pub fn push(&mut self, coeffs: Vec<(usize, f64)>, cmp: Cmp, rhs: f64) {
        self.constraints.push(Constraint { coeffs, cmp, rhs });
    }

    /// Evaluate `cᵀx`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Check `x` against every constraint within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * x[i]).sum();
            match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

/// Successful solve result.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal primal point (`len == num_vars`).
    pub x: Vec<f64>,
    /// Simplex pivots used across both phases.
    pub pivots: usize,
}

/// Solve failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// Pivot limit exhausted (should not occur with Bland's rule; kept
    /// as a defensive backstop for numerically degenerate inputs).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP is infeasible"),
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::IterationLimit => write!(f, "simplex pivot limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

const TOL: f64 = 1e-9;

/// Solve the LP. See module docs for the method.
pub fn solve(lp: &Lp) -> Result<LpSolution, LpError> {
    Tableau::build(lp).and_then(|mut t| t.optimize(lp))
}

/// Dense simplex tableau.
///
/// Layout: `rows × (total_cols + 1)`; the extra column is the RHS.
/// Column order: structural vars, then slack/surplus, then artificial.
struct Tableau {
    rows: usize,
    /// structural + slack/surplus count (artificials come after).
    real_cols: usize,
    total_cols: usize,
    /// Row-major `rows × (total_cols + 1)`.
    a: Vec<f64>,
    /// Objective row for the current phase, length `total_cols + 1`
    /// (reduced costs; last entry is −objective value).
    z: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    num_artificial: usize,
    pivots: usize,
    /// True once phase 1 completed and the phase-2 objective is loaded;
    /// artificial columns are then barred from entering the basis.
    in_phase2: bool,
}

impl Tableau {
    fn idx(&self, r: usize, c: usize) -> usize {
        r * (self.total_cols + 1) + c
    }

    fn build(lp: &Lp) -> Result<Tableau, LpError> {
        let m = lp.constraints.len();
        let n = lp.num_vars;
        // Count slack/surplus and artificial columns.
        let mut num_slack = 0;
        let mut num_art = 0;
        for c in &lp.constraints {
            // Normalize rhs sign first to decide the effective direction.
            let (cmp, _) = normalized(c);
            match cmp {
                Cmp::Le => num_slack += 1,
                Cmp::Ge => {
                    num_slack += 1;
                    num_art += 1;
                }
                Cmp::Eq => num_art += 1,
            }
        }
        let real_cols = n + num_slack;
        let total_cols = real_cols + num_art;
        let mut t = Tableau {
            rows: m,
            real_cols,
            total_cols,
            a: vec![0.0; m * (total_cols + 1)],
            z: vec![0.0; total_cols + 1],
            basis: vec![usize::MAX; m],
            num_artificial: num_art,
            pivots: 0,
            in_phase2: false,
        };
        let mut next_slack = n;
        let mut next_art = real_cols;
        for (r, con) in lp.constraints.iter().enumerate() {
            let (cmp, sign) = normalized(con);
            let rhs_idx = t.idx(r, total_cols);
            t.a[rhs_idx] = con.rhs * sign;
            for &(j, coef) in &con.coeffs {
                assert!(j < n, "constraint references variable {j} >= num_vars {n}");
                let ij = t.idx(r, j);
                t.a[ij] += coef * sign;
            }
            match cmp {
                Cmp::Le => {
                    let ij = t.idx(r, next_slack);
                    t.a[ij] = 1.0;
                    t.basis[r] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    let ij = t.idx(r, next_slack);
                    t.a[ij] = -1.0;
                    next_slack += 1;
                    let ij = t.idx(r, next_art);
                    t.a[ij] = 1.0;
                    t.basis[r] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    let ij = t.idx(r, next_art);
                    t.a[ij] = 1.0;
                    t.basis[r] = next_art;
                    next_art += 1;
                }
            }
        }
        Ok(t)
    }

    /// Run phase 1 (if artificials exist) then phase 2.
    fn optimize(&mut self, lp: &Lp) -> Result<LpSolution, LpError> {
        if self.num_artificial > 0 {
            // Phase 1 objective: minimize sum of artificials.
            self.z.iter_mut().for_each(|v| *v = 0.0);
            for c in self.real_cols..self.total_cols {
                self.z[c] = 1.0;
            }
            self.price_out();
            self.run_simplex()?;
            let phase1 = -self.z[self.total_cols];
            if phase1 > 1e-7 {
                return Err(LpError::Infeasible);
            }
            self.evict_basic_artificials();
        }
        self.in_phase2 = true;
        // Phase 2 objective.
        self.z.iter_mut().for_each(|v| *v = 0.0);
        for (j, &c) in lp.objective.iter().enumerate() {
            self.z[j] = c;
        }
        // Forbid artificials from re-entering: leave their reduced costs
        // untouched but skip them as entering candidates (run_simplex
        // only considers columns < real_cols in phase 2 mode).
        self.price_out();
        self.run_simplex()?;

        let mut x = vec![0.0; lp.num_vars];
        for (r, &b) in self.basis.iter().enumerate() {
            if b < lp.num_vars {
                x[b] = self.a[self.idx(r, self.total_cols)];
            }
        }
        let objective = lp.objective_value(&x);
        debug_assert!(
            lp.is_feasible(&x, 1e-6),
            "simplex returned infeasible point"
        );
        Ok(LpSolution {
            objective,
            x,
            pivots: self.pivots,
        })
    }

    /// Make the objective row consistent with the current basis
    /// (reduced cost of every basic column must be zero).
    fn price_out(&mut self) {
        for r in 0..self.rows {
            let b = self.basis[r];
            let cb = self.z[b];
            if cb != 0.0 {
                for c in 0..=self.total_cols {
                    let arc = self.a[self.idx(r, c)];
                    if arc != 0.0 {
                        self.z[c] -= cb * arc;
                    }
                }
            }
        }
    }

    /// After phase 1, pivot artificial variables out of the basis (or
    /// detect redundant rows and leave the harmless zero-valued
    /// artificial basic — its row is all-zero on real columns).
    fn evict_basic_artificials(&mut self) {
        for r in 0..self.rows {
            if self.basis[r] >= self.real_cols {
                // Find any real column with a nonzero pivot entry.
                let pivot_col = (0..self.real_cols).find(|&c| self.a[self.idx(r, c)].abs() > 1e-7);
                if let Some(c) = pivot_col {
                    self.pivot(r, c);
                }
                // else: redundant row; artificial stays basic at 0.
            }
        }
    }

    /// Bland's rule simplex on the current objective row.
    fn run_simplex(&mut self) -> Result<(), LpError> {
        // Generous pivot cap: Bland's rule terminates, this is a
        // defensive backstop only.
        let max_pivots = 50_000 + 200 * (self.rows + self.total_cols);
        loop {
            // Entering: smallest-index column with reduced cost < −tol.
            // In phase 2 artificial columns are excluded (they keep a
            // huge reduced cost only implicitly — we simply never pick
            // them; they also can't improve since phase 1 drove them
            // to 0 and price_out left them non-basic).
            let limit = if self.in_phase2 {
                self.real_cols
            } else {
                self.total_cols
            };
            let entering = (0..limit).find(|&c| self.z[c] < -TOL);
            let Some(e) = entering else {
                return Ok(());
            };
            // Leaving: min ratio; ties → smallest basis index (Bland).
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.rows {
                let are = self.a[self.idx(r, e)];
                if are > TOL {
                    let ratio = self.a[self.idx(r, self.total_cols)] / are;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - TOL
                                || ((ratio - lratio).abs() <= TOL && self.basis[r] < self.basis[lr])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((lr, _)) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(lr, e);
            if self.pivots > max_pivots {
                return Err(LpError::IterationLimit);
            }
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let tc = self.total_cols;
        let p = self.a[self.idx(row, col)];
        debug_assert!(p.abs() > TOL, "pivot on ~0 element");
        let inv = 1.0 / p;
        for c in 0..=tc {
            let i = self.idx(row, c);
            self.a[i] *= inv;
        }
        // Exactly 1.0 on the pivot to avoid drift.
        let ij = self.idx(row, col);
        self.a[ij] = 1.0;
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let factor = self.a[self.idx(r, col)];
            if factor != 0.0 {
                for c in 0..=tc {
                    let src = self.a[self.idx(row, c)];
                    if src != 0.0 {
                        let i = self.idx(r, c);
                        self.a[i] -= factor * src;
                    }
                }
                let i = self.idx(r, col);
                self.a[i] = 0.0;
            }
        }
        let factor = self.z[col];
        if factor != 0.0 {
            for c in 0..=tc {
                let src = self.a[self.idx(row, c)];
                if src != 0.0 {
                    self.z[c] -= factor * src;
                }
            }
            self.z[col] = 0.0;
        }
        self.basis[row] = col;
    }
}

/// Returns the effective comparison and a row sign multiplier making the
/// RHS non-negative.
fn normalized(c: &Constraint) -> (Cmp, f64) {
    if c.rhs >= 0.0 {
        (c.cmp, 1.0)
    } else {
        let flipped = match c.cmp {
            Cmp::Le => Cmp::Ge,
            Cmp::Ge => Cmp::Le,
            Cmp::Eq => Cmp::Eq,
        };
        (flipped, -1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp1() -> Lp {
        // min x0 + x1  s.t. x0 + x1 >= 1, x0 >= 0.25
        let mut lp = Lp::new(vec![1.0, 1.0]);
        lp.push(vec![(0, 1.0), (1, 1.0)], Cmp::Ge, 1.0);
        lp.push(vec![(0, 1.0)], Cmp::Ge, 0.25);
        lp
    }

    #[test]
    fn simple_covering() {
        let s = solve(&lp1()).unwrap();
        assert!(
            (s.objective - 1.0).abs() < 1e-7,
            "objective = {}",
            s.objective
        );
    }

    #[test]
    fn le_constraints_and_optimum() {
        // min -x0 - 2 x1 s.t. x0 + x1 <= 4, x1 <= 3  → x = (1,3), obj -7
        let mut lp = Lp::new(vec![-1.0, -2.0]);
        lp.push(vec![(0, 1.0), (1, 1.0)], Cmp::Le, 4.0);
        lp.push(vec![(1, 1.0)], Cmp::Le, 3.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-7);
        assert!((s.x[0] - 1.0).abs() < 1e-7);
        assert!((s.x[1] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = Lp::new(vec![1.0]);
        lp.push(vec![(0, 1.0)], Cmp::Ge, 2.0);
        lp.push(vec![(0, 1.0)], Cmp::Le, 1.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = Lp::new(vec![-1.0]);
        lp.push(vec![(0, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x0 + 3 x1 s.t. x0 + x1 = 2, x0 <= 1.5 → x = (1.5, 0.5), obj 3
        let mut lp = Lp::new(vec![1.0, 3.0]);
        lp.push(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 2.0);
        lp.push(vec![(0, 1.0)], Cmp::Le, 1.5);
        let s = solve(&lp).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x0 - x1 <= -1  ≡  x1 - x0 >= 1; min x1 → x1 = 1 + x0, best x0 = 0.
        let mut lp = Lp::new(vec![0.0, 1.0]);
        lp.push(vec![(0, 1.0), (1, -1.0)], Cmp::Le, -1.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = Lp::new(vec![1.0, 1.0, 1.0]);
        lp.push(vec![(0, 1.0), (1, 1.0)], Cmp::Ge, 1.0);
        lp.push(vec![(1, 1.0), (2, 1.0)], Cmp::Ge, 1.0);
        lp.push(vec![(0, 1.0), (2, 1.0)], Cmp::Ge, 1.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn box_bounds_as_constraints() {
        // Fractional covering with x ≤ 1: min x0+x1+x2, one row demand 2.
        let mut lp = Lp::new(vec![1.0, 1.0, 1.0]);
        lp.push(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Cmp::Ge, 2.0);
        for j in 0..3 {
            lp.push(vec![(j, 1.0)], Cmp::Le, 1.0);
        }
        let s = solve(&lp).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-7);
        assert!(s.x.iter().all(|&v| v <= 1.0 + 1e-7));
    }

    #[test]
    fn duplicate_coefficients_summed() {
        // (0,0.5)+(0,0.5) == x0 coefficient 1.
        let mut lp = Lp::new(vec![1.0]);
        lp.push(vec![(0, 0.5), (0, 0.5)], Cmp::Ge, 3.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn feasibility_checker() {
        let lp = lp1();
        assert!(lp.is_feasible(&[0.5, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[0.1, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[-0.1, 1.5], 1e-9));
    }
}
