//! Property-based tests for the LP/ILP solvers.
//!
//! Random covering instances are generated and the three solvers
//! cross-checked: `LP ≤ exact ≤ greedy`, exactness of B&B on small
//! instances via brute force, and LP solution feasibility.

use acmr_lp::{branch_and_bound, greedy_cover, BnbLimits, CoveringProblem};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random feasible covering problem.
fn random_problem(seed: u64, items: usize, rows: usize, max_demand: u32) -> CoveringProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs: Vec<f64> = (0..items).map(|_| rng.gen_range(1..=20) as f64).collect();
    let mut p = CoveringProblem::new(costs);
    for _ in 0..rows {
        let k = rng.gen_range(1..=items);
        let mut row: Vec<usize> = (0..items).collect();
        // Partial shuffle: take k random distinct items.
        for i in 0..k {
            let j = rng.gen_range(i..items);
            row.swap(i, j);
        }
        row.truncate(k);
        let demand = rng.gen_range(0..=max_demand.min(k as u32));
        p.push_row(row, demand);
    }
    p
}

/// Brute force exact optimum by enumerating all 2^items subsets.
fn brute_force(p: &CoveringProblem) -> Option<f64> {
    let n = p.num_items();
    assert!(n <= 16);
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let chosen: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        if p.satisfies(&chosen) {
            let c = p.cost_of(&chosen);
            if best.is_none_or(|b| c < b) {
                best = Some(c);
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// B&B equals brute force on every feasible small instance.
    #[test]
    fn bnb_matches_brute_force(seed in 0u64..10_000) {
        let p = random_problem(seed, 8, 5, 3);
        let brute = brute_force(&p);
        let bnb = branch_and_bound(&p, BnbLimits::default());
        match (brute, bnb) {
            (Some(b), Some(r)) => {
                prop_assert!(r.proven_optimal);
                prop_assert!((r.cost - b).abs() < 1e-7, "bnb {} vs brute {}", r.cost, b);
            }
            (None, None) => {}
            (b, r) => prop_assert!(false, "feasibility disagreement: brute {b:?} bnb {:?}", r.map(|x| x.cost)),
        }
    }

    /// Sandwich LP ≤ B&B ≤ greedy on medium instances, and all
    /// reported solutions actually satisfy the rows.
    #[test]
    fn solver_sandwich(seed in 0u64..10_000) {
        let p = random_problem(seed, 14, 10, 4);
        if !p.is_feasible() { return Ok(()); }
        let lp = p.lp_lower_bound().unwrap();
        let g = greedy_cover(&p).unwrap();
        let b = branch_and_bound(&p, BnbLimits { max_nodes: 2_000 }).unwrap();
        prop_assert!(p.satisfies(&g.chosen));
        prop_assert!(p.satisfies(&b.chosen));
        prop_assert!(lp <= b.cost + 1e-6, "lp {lp} > bnb {}", b.cost);
        prop_assert!(b.cost <= g.cost + 1e-6, "bnb {} > greedy {}", b.cost, g.cost);
        prop_assert!(lp >= 0.0);
    }

    /// The LP solution is primal feasible for the relaxation.
    #[test]
    fn lp_solution_feasible(seed in 0u64..10_000) {
        let p = random_problem(seed, 10, 8, 3);
        if !p.is_feasible() { return Ok(()); }
        let lp = p.lp_relaxation();
        let sol = acmr_lp::solve(&lp).unwrap();
        prop_assert!(lp.is_feasible(&sol.x, 1e-6));
        prop_assert!((sol.objective - lp.objective_value(&sol.x)).abs() < 1e-6);
    }
}
