//! The matching client: a typed handle over one `ACMR-SERVE v1`
//! session, plus the trace-replay convenience `acmr client` uses.
//!
//! The client mirrors the [`acmr_core::Session`] surface on purpose —
//! [`ServeClient::push`] and [`ServeClient::push_batch`] return the
//! same audited [`ArrivalEvent`]s the in-process session would, so
//! swapping a local session for a remote one is a one-line change and
//! the differential suite can pin *served ≡ streamed ≡ in-memory*
//! event for event.

use crate::protocol::{decode_error_reply, FrameReader, GREETING};
use acmr_core::{AcmrError, ArrivalEvent, Request, RunReport};
use acmr_workloads::trace::write_request_line;
use std::io::{BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One live session against an `acmr serve` endpoint.
///
/// ```no_run
/// use acmr_core::Request;
/// use acmr_graph::{EdgeId, EdgeSet};
/// use acmr_serve::ServeClient;
///
/// // A server is listening (e.g. `acmr serve --addr 127.0.0.1:4790`).
/// let mut client = ServeClient::connect(
///     "127.0.0.1:4790",
///     "aag-weighted?seed=7",
///     None,       // base seed (spec seed wins anyway)
///     &[1, 1],    // edge capacities, exactly as for a local Session
/// )?;
/// let event = client.push(&Request::unit(EdgeSet::singleton(EdgeId(0))))?;
/// assert!(event.accepted);
/// let report = client.finish()?; // END → final RunReport
/// assert_eq!(report.requests, 1);
/// # Ok::<(), acmr_core::AcmrError>(())
/// ```
pub struct ServeClient {
    frames: FrameReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    session_id: u64,
    spec: String,
}

impl ServeClient {
    /// Connect to `addr` and open a session running `spec` over the
    /// given edge capacities. `base_seed` feeds randomized algorithms
    /// unless the spec carries its own `seed=` (exactly like
    /// [`acmr_core::Session::from_registry`]).
    pub fn connect(
        addr: impl ToSocketAddrs,
        spec: &str,
        base_seed: Option<u64>,
        capacities: &[u32],
    ) -> Result<Self, AcmrError> {
        let stream = TcpStream::connect(addr).map_err(|e| AcmrError::Io {
            message: format!("cannot connect to acmr serve: {e}"),
        })?;
        ServeClient::from_stream(stream, spec, base_seed, capacities)
    }

    /// [`ServeClient::connect`] over an already-established TCP
    /// stream. Split out so [`crate::pool::WorkerPool`] can
    /// distinguish *connection* failures (the worker process is gone
    /// — quarantine the slot) from handshake/session failures (maybe
    /// transient — retry elsewhere) structurally, by owning the
    /// `TcpStream::connect` step itself.
    pub(crate) fn from_stream(
        stream: TcpStream,
        spec: &str,
        base_seed: Option<u64>,
        capacities: &[u32],
    ) -> Result<Self, AcmrError> {
        // Frames are small and latency-bound; Nagle would trade the
        // per-decision round trip for nothing.
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone().map_err(|e| AcmrError::Io {
            message: format!("cannot clone socket: {e}"),
        })?;
        let mut frames = FrameReader::new(stream);
        let mut writer = BufWriter::new(write_half);

        let (_, greeting) = reply_line(&mut frames)?;
        if greeting != GREETING {
            return Err(AcmrError::Remote {
                code: "proto".into(),
                message: format!("unexpected greeting {greeting:?} (expected {GREETING:?})"),
            });
        }
        match base_seed {
            Some(seed) => writeln!(writer, "OPEN {spec} seed={seed}")?,
            None => writeln!(writer, "OPEN {spec}")?,
        }
        writeln!(writer, "edges {}", capacities.len())?;
        write!(writer, "caps")?;
        for c in capacities {
            write!(writer, " {c}")?;
        }
        writeln!(writer)?;
        writer.flush()?;

        let (_, ok) = reply_line(&mut frames)?;
        let rest = decode_reply(&ok, "OK")?;
        let mut toks = rest.splitn(2, ' ');
        let session_id = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| proto_error(format!("malformed OK reply {ok:?}")))?;
        let spec = toks.next().unwrap_or(spec).to_string();
        Ok(ServeClient {
            frames,
            writer,
            session_id,
            spec,
        })
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The canonical spec the server echoed in its `OK` reply.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Send one arrival and wait for its audited decision — the remote
    /// twin of [`acmr_core::Session::push`].
    pub fn push(&mut self, request: &Request) -> Result<ArrivalEvent, AcmrError> {
        write_request_line(&mut self.writer, request)?;
        self.writer.flush()?;
        self.read_event()
    }

    /// Send a `BATCH n` frame and wait for its `n` decisions — the
    /// remote twin of [`acmr_core::Session::push_batch`]. On a
    /// mid-batch error the events the server delivered before the
    /// `ERR` are dropped with the buffer; use
    /// [`ServeClient::push_batch_into`] to keep them (mirroring the
    /// core `push_batch` / `push_batch_into` pair). `batch` must not
    /// exceed [`crate::protocol::MAX_BATCH`] — callers that chunk an
    /// unbounded stream should clamp to it, as [`serve_trace`] does.
    pub fn push_batch(&mut self, batch: &[Request]) -> Result<Vec<ArrivalEvent>, AcmrError> {
        let mut events = Vec::with_capacity(batch.len());
        self.push_batch_into(batch, &mut events)?;
        Ok(events)
    }

    /// [`ServeClient::push_batch`] writing into a caller-owned buffer.
    /// `events` is cleared first; on success it holds one event per
    /// request, and on a mid-batch failure it holds the events the
    /// server delivered before its terminal `ERR` — the wire keeps the
    /// protocol's promise (`docs/SERVING.md`) that arrivals applied
    /// before a violation are still reported, and this method keeps it
    /// for the caller.
    pub fn push_batch_into(
        &mut self,
        batch: &[Request],
        events: &mut Vec<ArrivalEvent>,
    ) -> Result<(), AcmrError> {
        events.clear();
        writeln!(self.writer, "BATCH {}", batch.len())?;
        for request in batch {
            write_request_line(&mut self.writer, request)?;
        }
        self.writer.flush()?;
        events.reserve(batch.len());
        for _ in 0..batch.len() {
            events.push(self.read_event()?);
        }
        Ok(())
    }

    /// End the session: the server replies with the final
    /// [`RunReport`] (no offline-optimum context — a live session
    /// cannot see the future; replay the saved trace through `acmr
    /// run` for bounds) and closes the connection.
    pub fn finish(mut self) -> Result<RunReport, AcmrError> {
        writeln!(self.writer, "END")?;
        self.writer.flush()?;
        let (_, line) = reply_line(&mut self.frames)?;
        let json = decode_reply(&line, "REPORT")?;
        serde_json::from_str(json).map_err(|e| proto_error(format!("malformed REPORT: {e}")))
    }

    fn read_event(&mut self) -> Result<ArrivalEvent, AcmrError> {
        let (_, line) = reply_line(&mut self.frames)?;
        let json = decode_reply(&line, "EVENT")?;
        serde_json::from_str(json).map_err(|e| proto_error(format!("malformed EVENT: {e}")))
    }
}

fn proto_error(message: String) -> AcmrError {
    AcmrError::Remote {
        code: "proto".into(),
        message,
    }
}

/// Read one reply line; a closed connection is a typed error (the
/// protocol always ends with `REPORT` or `ERR`, never a silent EOF).
fn reply_line(frames: &mut FrameReader<TcpStream>) -> Result<(usize, String), AcmrError> {
    frames
        .next_line()?
        .ok_or_else(|| proto_error("server closed the connection without a reply".into()))
}

/// Strip the expected reply keyword; an `ERR` reply decodes to the
/// typed [`AcmrError::Remote`] instead.
fn decode_reply<'a>(line: &'a str, expected: &str) -> Result<&'a str, AcmrError> {
    if let Some(rest) = line.strip_prefix("ERR ") {
        return Err(decode_error_reply(rest));
    }
    line.strip_prefix(expected)
        .map(str::trim_start)
        .ok_or_else(|| proto_error(format!("expected a {expected} reply, got {line:?}")))
}

/// Replay a whole arrival stream through a serving endpoint — the
/// remote twin of [`acmr_core::Session::run_stream`], and what `acmr
/// client --stream` dispatches to. Arrivals are taken from any
/// fallible request iterator (e.g. a chunked
/// `acmr_workloads::trace::TraceReader`); with `batch: Some(n)` they
/// travel as `BATCH` frames of at most `min(n,
/// [`crate::protocol::MAX_BATCH`])` requests — so any `--batch` value
/// that `acmr run` accepts works here too. `on_event` sees every
/// audited decision in arrival order (the events preceding a
/// mid-batch failure included); the final report is returned.
pub fn serve_trace<I>(
    addr: impl ToSocketAddrs,
    spec: &str,
    base_seed: Option<u64>,
    capacities: &[u32],
    arrivals: I,
    batch: Option<usize>,
    mut on_event: impl FnMut(&ArrivalEvent),
) -> Result<RunReport, AcmrError>
where
    I: IntoIterator<Item = Result<Request, AcmrError>>,
{
    if batch == Some(0) {
        return Err(AcmrError::InvalidRequest {
            reason: "batch size must be at least 1".to_string(),
        });
    }
    let client = ServeClient::connect(addr, spec, base_seed, capacities)?;
    replay_session(client, arrivals, batch, &mut on_event)
}

/// Drive an already-open session through a full arrival stream — the
/// replay half of [`serve_trace`], shared with the
/// [`crate::pool::WorkerPool`] retry path (which must reconnect and
/// replay from the top, so connecting and replaying are separate
/// steps there).
pub(crate) fn replay_session<I>(
    mut client: ServeClient,
    arrivals: I,
    batch: Option<usize>,
    on_event: &mut dyn FnMut(&ArrivalEvent),
) -> Result<RunReport, AcmrError>
where
    I: IntoIterator<Item = Result<Request, AcmrError>>,
{
    match batch {
        None => {
            for request in arrivals {
                on_event(&client.push(&request?)?);
            }
        }
        Some(n) => {
            let n = n.clamp(1, crate::protocol::MAX_BATCH);
            let mut chunk = Vec::with_capacity(n);
            let mut events = Vec::new();
            let mut flush =
                |client: &mut ServeClient, chunk: &mut Vec<Request>| -> Result<(), AcmrError> {
                    let result = client.push_batch_into(chunk, &mut events);
                    for event in &events {
                        on_event(event);
                    }
                    chunk.clear();
                    result
                };
            for request in arrivals {
                chunk.push(request?);
                if chunk.len() == n {
                    flush(&mut client, &mut chunk)?;
                }
            }
            if !chunk.is_empty() {
                flush(&mut client, &mut chunk)?;
            }
        }
    }
    client.finish()
}
