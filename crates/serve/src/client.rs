//! The matching client: a typed handle over one `ACMR-SERVE` session
//! (v1 lines or v2 binary frames), plus the trace-replay conveniences
//! `acmr client` uses.
//!
//! The client mirrors the [`acmr_core::Session`] surface on purpose —
//! [`ServeClient::push`] and [`ServeClient::push_batch`] return the
//! same audited [`ArrivalEvent`]s the in-process session would, so
//! swapping a local session for a remote one is a one-line change and
//! the differential suite can pin *served ≡ streamed ≡ in-memory*
//! event for event.
//!
//! Protocol v2 ([`ServeClient::connect_v2`]) keeps that surface but
//! changes the wire: arrivals travel as ACMR-TRACE v2 record bytes in
//! length-prefixed frames, batches acknowledge with one
//! [`BatchSummary`] unless the session opted into per-arrival events,
//! and [`ServeClient::reset`] reuses the connection for a fresh
//! session — the persistent-session mechanism
//! [`crate::pool::WorkerPool`] builds on.

use crate::protocol::{
    decode_error_reply, decode_ok, decode_summary, encode_reset, write_frame, BatchSummary,
    BinFrameReader, FrameReader, ProtoVersion, StatsReport, EVENTS_TOKEN, FRAME_BATCH, FRAME_END,
    FRAME_ERR, FRAME_EVENT, FRAME_OK, FRAME_REPORT, FRAME_REQ, FRAME_RESET, FRAME_STATS,
    FRAME_STATS_REPLY, FRAME_SUMMARY, GREETING, MAX_BATCH, PROTO_V2_TOKEN,
};
use acmr_core::{AcmrError, ArrivalEvent, Request, RunReport};
use acmr_workloads::binfmt::encode_record_into;
use acmr_workloads::trace::write_request_line;
use std::io::{BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// The read half of a session: v1 line frames, or — after a
/// `proto=v2` handshake — binary frames (chained after any bytes the
/// line scanner had already buffered past the `OK` reply).
enum ReadHalf {
    V1(FrameReader<TcpStream>),
    V2(BinFrameReader<std::io::Chain<std::io::Cursor<Vec<u8>>, TcpStream>>),
}

/// One live session against an `acmr serve` endpoint.
///
/// ```no_run
/// use acmr_core::Request;
/// use acmr_graph::{EdgeId, EdgeSet};
/// use acmr_serve::ServeClient;
///
/// // A server is listening (e.g. `acmr serve --addr 127.0.0.1:4790`).
/// let mut client = ServeClient::connect(
///     "127.0.0.1:4790",
///     "aag-weighted?seed=7",
///     None,       // base seed (spec seed wins anyway)
///     &[1, 1],    // edge capacities, exactly as for a local Session
/// )?;
/// let event = client.push(&Request::unit(EdgeSet::singleton(EdgeId(0))))?;
/// assert!(event.accepted);
/// let report = client.finish()?; // END → final RunReport
/// assert_eq!(report.requests, 1);
/// # Ok::<(), acmr_core::AcmrError>(())
/// ```
pub struct ServeClient {
    read: ReadHalf,
    writer: BufWriter<TcpStream>,
    session_id: u64,
    spec: String,
    /// v2 only: the session streams per-arrival `EVENT` frames for
    /// batches (`events=on`) instead of one `SUMMARY` per batch.
    events: bool,
    /// v2 only: edge-universe size, needed to encode arrival records.
    num_edges: u32,
    /// v2 only: reusable reply-payload buffer.
    scratch: Vec<u8>,
    /// v2 only: reusable outgoing-payload buffer.
    out: Vec<u8>,
}

impl ServeClient {
    /// Connect to `addr` and open a v1 (line-protocol) session running
    /// `spec` over the given edge capacities. `base_seed` feeds
    /// randomized algorithms unless the spec carries its own `seed=`
    /// (exactly like [`acmr_core::Session::from_registry`]).
    pub fn connect(
        addr: impl ToSocketAddrs,
        spec: &str,
        base_seed: Option<u64>,
        capacities: &[u32],
    ) -> Result<Self, AcmrError> {
        let stream = connect_stream(addr)?;
        ServeClient::from_stream(stream, spec, base_seed, capacities)
    }

    /// [`ServeClient::connect`] negotiating protocol v2: binary
    /// frames, record-byte arrivals, batch-summary acknowledgements
    /// (per-arrival events with `events: true`), and
    /// [`ServeClient::reset`] for session reuse. A v1-only server
    /// answers the negotiation with its typed `ERR parse` reply —
    /// surfaced here as that error, never a hang.
    pub fn connect_v2(
        addr: impl ToSocketAddrs,
        spec: &str,
        base_seed: Option<u64>,
        capacities: &[u32],
        events: bool,
    ) -> Result<Self, AcmrError> {
        let stream = connect_stream(addr)?;
        ServeClient::from_stream_with(
            stream,
            spec,
            base_seed,
            capacities,
            ProtoVersion::V2,
            events,
        )
    }

    /// [`ServeClient::connect`] over an already-established TCP
    /// stream. Split out so [`crate::pool::WorkerPool`] can
    /// distinguish *connection* failures (the worker process is gone
    /// — quarantine the slot) from handshake/session failures (maybe
    /// transient — retry elsewhere) structurally, by owning the
    /// `TcpStream::connect` step itself.
    pub(crate) fn from_stream(
        stream: TcpStream,
        spec: &str,
        base_seed: Option<u64>,
        capacities: &[u32],
    ) -> Result<Self, AcmrError> {
        ServeClient::from_stream_with(stream, spec, base_seed, capacities, ProtoVersion::V1, false)
    }

    /// The one handshake implementation: greeting, `OPEN` (with the
    /// v2 negotiation tokens when asked), `edges`/`caps`, `OK` — then,
    /// for v2, the switch to binary frames.
    pub(crate) fn from_stream_with(
        stream: TcpStream,
        spec: &str,
        base_seed: Option<u64>,
        capacities: &[u32],
        proto: ProtoVersion,
        events: bool,
    ) -> Result<Self, AcmrError> {
        // Frames are small and latency-bound; Nagle would trade the
        // per-decision round trip for nothing.
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone().map_err(|e| AcmrError::Io {
            message: format!("cannot clone socket: {e}"),
        })?;
        let mut frames = FrameReader::new(stream);
        let mut writer = BufWriter::new(write_half);

        let (_, greeting) = reply_line(&mut frames)?;
        if greeting != GREETING {
            return Err(AcmrError::Remote {
                code: "proto".into(),
                message: format!("unexpected greeting {greeting:?} (expected {GREETING:?})"),
            });
        }
        write!(writer, "OPEN {spec}")?;
        if let Some(seed) = base_seed {
            write!(writer, " seed={seed}")?;
        }
        if proto == ProtoVersion::V2 {
            write!(writer, " {PROTO_V2_TOKEN}")?;
            if events {
                write!(writer, " {EVENTS_TOKEN}")?;
            }
        }
        writeln!(writer)?;
        writeln!(writer, "edges {}", capacities.len())?;
        write!(writer, "caps")?;
        for c in capacities {
            write!(writer, " {c}")?;
        }
        writeln!(writer)?;
        writer.flush()?;

        let (_, ok) = reply_line(&mut frames)?;
        let rest = decode_reply(&ok, "OK")?;
        let mut toks = rest.split_whitespace();
        let session_id = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| proto_error(format!("malformed OK reply {ok:?}")))?;
        let spec = toks.next().unwrap_or(spec).to_string();
        let upgraded = toks.any(|t| t == PROTO_V2_TOKEN);
        let read = match proto {
            ProtoVersion::V1 => ReadHalf::V1(frames),
            ProtoVersion::V2 => {
                if !upgraded {
                    return Err(proto_error(format!(
                        "server accepted the session but did not acknowledge {PROTO_V2_TOKEN} \
                         (reply {ok:?})"
                    )));
                }
                let (rest, stream) = frames.into_binary();
                ReadHalf::V2(BinFrameReader::with_rest(rest, stream))
            }
        };
        Ok(ServeClient {
            read,
            writer,
            session_id,
            spec,
            events,
            num_edges: capacities.len() as u32,
            scratch: Vec::new(),
            out: Vec::new(),
        })
    }

    /// The server-assigned session id (updated by
    /// [`ServeClient::reset`]).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The canonical spec the server echoed in its `OK` reply.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Which protocol this session negotiated.
    pub fn proto(&self) -> ProtoVersion {
        match self.read {
            ReadHalf::V1(_) => ProtoVersion::V1,
            ReadHalf::V2(_) => ProtoVersion::V2,
        }
    }

    /// Send one arrival and wait for its audited decision — the remote
    /// twin of [`acmr_core::Session::push`]. Single arrivals stream an
    /// `EVENT` in both protocols and both v2 acknowledgement modes.
    pub fn push(&mut self, request: &Request) -> Result<ArrivalEvent, AcmrError> {
        match self.read {
            ReadHalf::V1(_) => {
                write_request_line(&mut self.writer, request)?;
                self.writer.flush()?;
                self.read_event_line()
            }
            ReadHalf::V2(_) => {
                self.out.clear();
                encode_record_into(&mut self.out, request, self.num_edges)
                    .map_err(invalid_request)?;
                write_frame(&mut self.writer, FRAME_REQ, &self.out)?;
                self.writer.flush()?;
                self.read_event_frame()
            }
        }
    }

    /// Send a `BATCH n` frame and wait for its `n` decisions — the
    /// remote twin of [`acmr_core::Session::push_batch`]. On a
    /// mid-batch error the events the server delivered before the
    /// `ERR` are dropped with the buffer; use
    /// [`ServeClient::push_batch_into`] to keep them (mirroring the
    /// core `push_batch` / `push_batch_into` pair). `batch` must not
    /// exceed [`crate::protocol::MAX_BATCH`] — callers that chunk an
    /// unbounded stream should clamp to it, as [`serve_trace`] does.
    pub fn push_batch(&mut self, batch: &[Request]) -> Result<Vec<ArrivalEvent>, AcmrError> {
        let mut events = Vec::with_capacity(batch.len());
        self.push_batch_into(batch, &mut events)?;
        Ok(events)
    }

    /// [`ServeClient::push_batch`] writing into a caller-owned buffer.
    /// `events` is cleared first; on success it holds one event per
    /// request, and on a mid-batch failure it holds the events the
    /// server delivered before its terminal `ERR` — the wire keeps the
    /// protocol's promise (`docs/SERVING.md`) that arrivals applied
    /// before a violation are still reported, and this method keeps it
    /// for the caller.
    ///
    /// Requires per-arrival events: v1 always streams them; a v2
    /// session must have negotiated `events=on` ([`ServeClient::
    /// connect_v2`] with `events: true`) — a summary-mode session gets
    /// a typed error pointing at [`ServeClient::push_batch_summary`].
    pub fn push_batch_into(
        &mut self,
        batch: &[Request],
        events: &mut Vec<ArrivalEvent>,
    ) -> Result<(), AcmrError> {
        events.clear();
        match self.read {
            ReadHalf::V1(_) => {
                writeln!(self.writer, "BATCH {}", batch.len())?;
                for request in batch {
                    write_request_line(&mut self.writer, request)?;
                }
                self.writer.flush()?;
                events.reserve(batch.len());
                for _ in 0..batch.len() {
                    events.push(self.read_event_line()?);
                }
                Ok(())
            }
            ReadHalf::V2(_) => {
                if !self.events {
                    return Err(proto_error(
                        "this v2 session negotiated summary acknowledgements; \
                         use push_batch_summary (or connect with events=on)"
                            .into(),
                    ));
                }
                self.write_batch_frame(batch)?;
                self.writer.flush()?;
                events.reserve(batch.len());
                for _ in 0..batch.len() {
                    events.push(self.read_event_frame()?);
                }
                Ok(())
            }
        }
    }

    /// v2, summary mode: send one `BATCH` frame and wait for its
    /// single [`BatchSummary`] acknowledgement — the cheap ack that
    /// makes batched replay one reply frame per batch instead of one
    /// per arrival. On a mid-batch violation the summary covers the
    /// applied prefix and the terminal `ERR` follows as the returned
    /// error on the *next* call (the server answers prefix-summary
    /// then `ERR`; this method surfaces whichever frame arrives
    /// first). Typed error on v1 sessions and on `events=on` sessions.
    pub fn push_batch_summary(&mut self, batch: &[Request]) -> Result<BatchSummary, AcmrError> {
        match self.read {
            ReadHalf::V1(_) => Err(proto_error(
                "push_batch_summary needs a proto=v2 session (v1 streams events)".into(),
            )),
            ReadHalf::V2(_) => {
                if self.events {
                    return Err(proto_error(
                        "this v2 session negotiated events=on; use push_batch_into".into(),
                    ));
                }
                self.write_batch_frame(batch)?;
                self.writer.flush()?;
                self.expect_frame(FRAME_SUMMARY, "SUMMARY")?;
                decode_summary(&self.scratch)
                    .map_err(|e| proto_error(format!("malformed SUMMARY frame: {e}")))
            }
        }
    }

    /// v2 only: start a fresh session on the same connection — new
    /// algorithm `spec`, new seed, new capacities (empty `capacities`
    /// keeps the current edge universe). The previous session must
    /// have ended (a `RESET` is also accepted mid-session, aborting
    /// it). Returns the new server-assigned session id; the canonical
    /// spec is re-read from the server's `OK` frame. This is what lets
    /// a [`crate::pool::WorkerPool`] slot serve many jobs over one
    /// connection instead of paying a TCP + handshake round trip per
    /// job.
    pub fn reset(
        &mut self,
        spec: &str,
        base_seed: Option<u64>,
        capacities: &[u32],
    ) -> Result<u64, AcmrError> {
        self.write_reset(spec, base_seed, capacities)?;
        self.writer.flush()?;
        self.read_reset_ok()
    }

    /// Ask the server for its counters: one [`StatsReport`] pairing
    /// the server-wide totals with this connection's own tallies.
    /// Works mid-session in both protocols (v1 sends the `STATS`
    /// line, v2 the `STATS` frame) and never perturbs the session —
    /// for a sessionless probe of a remote server, see [`fetch_stats`].
    pub fn stats(&mut self) -> Result<StatsReport, AcmrError> {
        match self.read {
            ReadHalf::V1(_) => {
                writeln!(self.writer, "STATS")?;
                self.writer.flush()?;
                let (_, line) = self.reply_line_v1()?;
                let json = decode_reply(&line, "STATS")?;
                serde_json::from_str(json)
                    .map_err(|e| proto_error(format!("malformed STATS reply: {e}")))
            }
            ReadHalf::V2(_) => {
                write_frame(&mut self.writer, FRAME_STATS, &[])?;
                self.writer.flush()?;
                self.expect_frame(FRAME_STATS_REPLY, "STATS")?;
                let json = std::str::from_utf8(&self.scratch)
                    .map_err(|e| proto_error(format!("malformed STATS reply: {e}")))?;
                serde_json::from_str(json)
                    .map_err(|e| proto_error(format!("malformed STATS reply: {e}")))
            }
        }
    }

    /// End the session: the server replies with the final
    /// [`RunReport`] (no offline-optimum context — a live session
    /// cannot see the future; replay the saved trace through `acmr
    /// run` for bounds) and the connection closes with the client.
    pub fn finish(mut self) -> Result<RunReport, AcmrError> {
        self.end_session()
    }

    /// [`ServeClient::finish`] without closing the connection — the
    /// session ends and its report comes back, but the client stays
    /// usable: a v2 session can start the next job on the same
    /// connection via [`ServeClient::reset`] (a v1 server closes its
    /// side after the report regardless, so v1 callers should prefer
    /// [`ServeClient::finish`]).
    pub fn end_session(&mut self) -> Result<RunReport, AcmrError> {
        match self.read {
            ReadHalf::V1(_) => {
                writeln!(self.writer, "END")?;
                self.writer.flush()?;
                let (_, line) = self.reply_line_v1()?;
                let json = decode_reply(&line, "REPORT")?;
                serde_json::from_str(json)
                    .map_err(|e| proto_error(format!("malformed REPORT: {e}")))
            }
            ReadHalf::V2(_) => {
                self.write_end_frame()?;
                self.writer.flush()?;
                self.read_report_frame()
            }
        }
    }

    // ---- v2 write half (buffered; pipelined callers flush once) ----

    /// Queue one `BATCH` frame: `u32le` count + that many ACMR-TRACE
    /// v2 records. Buffered — does not flush.
    pub(crate) fn write_batch_frame(&mut self, batch: &[Request]) -> Result<(), AcmrError> {
        if batch.len() > MAX_BATCH {
            return Err(AcmrError::InvalidRequest {
                reason: format!(
                    "BATCH {} exceeds the {MAX_BATCH}-request frame cap",
                    batch.len()
                ),
            });
        }
        self.out.clear();
        self.out
            .extend_from_slice(&(batch.len() as u32).to_le_bytes());
        for request in batch {
            encode_record_into(&mut self.out, request, self.num_edges).map_err(invalid_request)?;
        }
        write_frame(&mut self.writer, FRAME_BATCH, &self.out)
    }

    /// Queue the empty `END` frame. Buffered — does not flush.
    pub(crate) fn write_end_frame(&mut self) -> Result<(), AcmrError> {
        write_frame(&mut self.writer, FRAME_END, &[])
    }

    /// Queue a `RESET` frame (see [`ServeClient::reset`]). Buffered —
    /// does not flush; the matching `OK` is read by
    /// [`ServeClient::read_reset_ok`], so a pipelined caller can queue
    /// the whole next job behind the reset.
    pub(crate) fn write_reset(
        &mut self,
        spec: &str,
        base_seed: Option<u64>,
        capacities: &[u32],
    ) -> Result<(), AcmrError> {
        self.out.clear();
        encode_reset(&mut self.out, spec, base_seed, capacities);
        write_frame(&mut self.writer, FRAME_RESET, &self.out)?;
        if !capacities.is_empty() {
            self.num_edges = capacities.len() as u32;
        }
        Ok(())
    }

    /// Flush everything queued so far to the socket.
    pub(crate) fn flush_writes(&mut self) -> Result<(), AcmrError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Read the `OK` frame answering a `RESET`; updates (and returns)
    /// the session id and re-reads the canonical spec.
    pub(crate) fn read_reset_ok(&mut self) -> Result<u64, AcmrError> {
        self.expect_frame(FRAME_OK, "OK")?;
        let (id, spec) = decode_ok(&self.scratch)
            .map_err(|e| proto_error(format!("malformed OK frame: {e}")))?;
        self.session_id = id;
        self.spec = spec;
        Ok(id)
    }

    /// Read one `SUMMARY` frame (summary-mode batch acknowledgement).
    pub(crate) fn read_batch_summary(&mut self) -> Result<BatchSummary, AcmrError> {
        self.expect_frame(FRAME_SUMMARY, "SUMMARY")?;
        decode_summary(&self.scratch).map_err(|e| proto_error(format!("malformed SUMMARY: {e}")))
    }

    /// Read the `REPORT` frame answering `END`.
    pub(crate) fn read_report_frame(&mut self) -> Result<RunReport, AcmrError> {
        self.expect_frame(FRAME_REPORT, "REPORT")?;
        let json = std::str::from_utf8(&self.scratch)
            .map_err(|e| proto_error(format!("malformed REPORT: {e}")))?;
        serde_json::from_str(json).map_err(|e| proto_error(format!("malformed REPORT: {e}")))
    }

    /// After a failed *write*: try to read one frame, hoping for the
    /// server's terminal `ERR` (a server that rejects a frame stops
    /// reading, which is what made our write fail). `Some` only for a
    /// typed remote answer; `None` means the connection is just gone
    /// and the caller's transport error stands.
    pub(crate) fn pending_error(&mut self) -> Option<AcmrError> {
        match self.read_v2_frame() {
            Err(e @ AcmrError::Remote { .. }) => Some(e),
            _ => None,
        }
    }

    // ---- v2 read half ----

    /// Read one reply frame into `self.scratch`, returning its type.
    /// EOF and framing violations are client-side *transport* errors
    /// (`Remote{code:"proto"}` — the server vanished or spoke
    /// garbage), so the pool's retry classification stays exact; an
    /// `ERR` frame decodes to the server's typed error.
    fn read_v2_frame(&mut self) -> Result<u8, AcmrError> {
        let ReadHalf::V2(frames) = &mut self.read else {
            return Err(proto_error("internal: frame read on a v1 session".into()));
        };
        let ty = match frames.read_frame(&mut self.scratch) {
            Ok(Some(ty)) => ty,
            Ok(None) => {
                return Err(proto_error(
                    "server closed the connection without a reply".into(),
                ))
            }
            Err(AcmrError::TraceParse { message, .. }) => {
                return Err(proto_error(format!("malformed reply frame: {message}")))
            }
            Err(e) => return Err(e),
        };
        if ty == FRAME_ERR {
            let body = String::from_utf8_lossy(&self.scratch).into_owned();
            return Err(decode_error_reply(&body));
        }
        Ok(ty)
    }

    fn expect_frame(&mut self, want: u8, what: &str) -> Result<(), AcmrError> {
        let ty = self.read_v2_frame()?;
        if ty != want {
            return Err(proto_error(format!(
                "expected a {what} frame, got type 0x{ty:02x}"
            )));
        }
        Ok(())
    }

    fn read_event_frame(&mut self) -> Result<ArrivalEvent, AcmrError> {
        self.expect_frame(FRAME_EVENT, "EVENT")?;
        let json = std::str::from_utf8(&self.scratch)
            .map_err(|e| proto_error(format!("malformed EVENT: {e}")))?;
        serde_json::from_str(json).map_err(|e| proto_error(format!("malformed EVENT: {e}")))
    }

    fn reply_line_v1(&mut self) -> Result<(usize, String), AcmrError> {
        let ReadHalf::V1(frames) = &mut self.read else {
            return Err(proto_error("internal: line read on a v2 session".into()));
        };
        reply_line(frames)
    }

    fn read_event_line(&mut self) -> Result<ArrivalEvent, AcmrError> {
        let (_, line) = self.reply_line_v1()?;
        let json = decode_reply(&line, "EVENT")?;
        serde_json::from_str(json).map_err(|e| proto_error(format!("malformed EVENT: {e}")))
    }
}

/// Probe a serving endpoint for its counters without opening a
/// session: connect, read the greeting, send one `STATS` line, decode
/// the [`StatsReport`] reply — what `acmr stats --addr` (and `acmr
/// client --stats`) runs. The connection carries nothing else, so the
/// `connection` half of the report reflects only the probe itself;
/// the `server` half is the interesting part.
pub fn fetch_stats(addr: impl ToSocketAddrs) -> Result<StatsReport, AcmrError> {
    let stream = connect_stream(addr)?;
    let _ = stream.set_nodelay(true);
    let write_half = stream.try_clone().map_err(|e| AcmrError::Io {
        message: format!("cannot clone socket: {e}"),
    })?;
    let mut frames = FrameReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let (_, greeting) = reply_line(&mut frames)?;
    if greeting != GREETING {
        return Err(proto_error(format!(
            "unexpected greeting {greeting:?} (expected {GREETING:?})"
        )));
    }
    writeln!(writer, "STATS")?;
    writer.flush()?;
    let (_, line) = reply_line(&mut frames)?;
    let json = decode_reply(&line, "STATS")?;
    serde_json::from_str(json).map_err(|e| proto_error(format!("malformed STATS reply: {e}")))
}

fn connect_stream(addr: impl ToSocketAddrs) -> Result<TcpStream, AcmrError> {
    TcpStream::connect(addr).map_err(|e| AcmrError::Io {
        message: format!("cannot connect to acmr serve: {e}"),
    })
}

fn proto_error(message: String) -> AcmrError {
    AcmrError::Remote {
        code: "proto".into(),
        message,
    }
}

fn invalid_request(e: std::io::Error) -> AcmrError {
    AcmrError::InvalidRequest {
        reason: e.to_string(),
    }
}

/// Read one reply line; a closed connection is a typed error (the
/// protocol always ends with `REPORT` or `ERR`, never a silent EOF).
fn reply_line(frames: &mut FrameReader<TcpStream>) -> Result<(usize, String), AcmrError> {
    frames
        .next_line()?
        .ok_or_else(|| proto_error("server closed the connection without a reply".into()))
}

/// Strip the expected reply keyword; an `ERR` reply decodes to the
/// typed [`AcmrError::Remote`] instead.
fn decode_reply<'a>(line: &'a str, expected: &str) -> Result<&'a str, AcmrError> {
    if let Some(rest) = line.strip_prefix("ERR ") {
        return Err(decode_error_reply(rest));
    }
    line.strip_prefix(expected)
        .map(str::trim_start)
        .ok_or_else(|| proto_error(format!("expected a {expected} reply, got {line:?}")))
}

/// Replay a whole arrival stream through a serving endpoint — the
/// remote twin of [`acmr_core::Session::run_stream`], and what `acmr
/// client --stream` dispatches to. Arrivals are taken from any
/// fallible request iterator (e.g. a chunked
/// `acmr_workloads::trace::TraceReader`); with `batch: Some(n)` they
/// travel as `BATCH` frames of at most `min(n,
/// [`crate::protocol::MAX_BATCH`])` requests — so any `--batch` value
/// that `acmr run` accepts works here too. `on_event` sees every
/// audited decision in arrival order (the events preceding a
/// mid-batch failure included); the final report is returned.
pub fn serve_trace<I>(
    addr: impl ToSocketAddrs,
    spec: &str,
    base_seed: Option<u64>,
    capacities: &[u32],
    arrivals: I,
    batch: Option<usize>,
    mut on_event: impl FnMut(&ArrivalEvent),
) -> Result<RunReport, AcmrError>
where
    I: IntoIterator<Item = Result<Request, AcmrError>>,
{
    if batch == Some(0) {
        return Err(AcmrError::InvalidRequest {
            reason: "batch size must be at least 1".to_string(),
        });
    }
    let client = ServeClient::connect(addr, spec, base_seed, capacities)?;
    replay_session(client, arrivals, batch, &mut on_event)
}

/// [`serve_trace`] over protocol v2. With `events: true` the replay
/// is synchronous and `on_event` sees every audited decision, exactly
/// like v1 (just on a cheaper wire). With `events: false` the replay
/// is **pipelined**: the whole trace streams out in `BATCH` frames
/// before any acknowledgement is read, each batch answers with one
/// [`BatchSummary`], and `on_event` is never called — the mode built
/// for throughput, where only the final report matters.
#[allow(clippy::too_many_arguments)]
pub fn serve_trace_v2<I>(
    addr: impl ToSocketAddrs,
    spec: &str,
    base_seed: Option<u64>,
    capacities: &[u32],
    arrivals: I,
    batch: Option<usize>,
    events: bool,
    mut on_event: impl FnMut(&ArrivalEvent),
) -> Result<RunReport, AcmrError>
where
    I: IntoIterator<Item = Result<Request, AcmrError>>,
{
    if batch == Some(0) {
        return Err(AcmrError::InvalidRequest {
            reason: "batch size must be at least 1".to_string(),
        });
    }
    let mut client = ServeClient::connect_v2(addr, spec, base_seed, capacities, events)?;
    if events {
        return replay_session(client, arrivals, batch, &mut on_event);
    }
    run_job_v2(&mut client, arrivals, batch, false)
}

/// Drive an already-open session through a full arrival stream — the
/// replay half of [`serve_trace`], shared with the
/// [`crate::pool::WorkerPool`] v1 retry path (which must reconnect
/// and replay from the top, so connecting and replaying are separate
/// steps there). Works on any session that streams per-arrival
/// events: v1, or v2 with `events=on`.
pub(crate) fn replay_session<I>(
    mut client: ServeClient,
    arrivals: I,
    batch: Option<usize>,
    on_event: &mut dyn FnMut(&ArrivalEvent),
) -> Result<RunReport, AcmrError>
where
    I: IntoIterator<Item = Result<Request, AcmrError>>,
{
    match batch {
        None => {
            for request in arrivals {
                on_event(&client.push(&request?)?);
            }
        }
        Some(n) => {
            let n = n.clamp(1, crate::protocol::MAX_BATCH);
            let mut chunk = Vec::with_capacity(n);
            let mut events = Vec::new();
            let mut flush =
                |client: &mut ServeClient, chunk: &mut Vec<Request>| -> Result<(), AcmrError> {
                    let result = client.push_batch_into(chunk, &mut events);
                    for event in &events {
                        on_event(event);
                    }
                    chunk.clear();
                    result
                };
            for request in arrivals {
                chunk.push(request?);
                if chunk.len() == n {
                    flush(&mut client, &mut chunk)?;
                }
            }
            if !chunk.is_empty() {
                flush(&mut client, &mut chunk)?;
            }
        }
    }
    client.finish()
}

/// Default batch size for the pipelined v2 replay when the caller did
/// not pick one: big enough to amortize frame headers, small enough
/// to keep summary frames (and the server's working set) reasonable.
const PIPELINE_BATCH: usize = 512;

/// Where a pipelined replay failed: at the arrival *source* (the
/// caller's error, surfaced raw) or on the *wire* (worth checking for
/// a pending server `ERR` before reporting).
enum StreamFail {
    Source(AcmrError),
    Wire(AcmrError),
}

/// Replay a whole job over an open v2 summary-mode session in **one
/// round trip**: stream every arrival as `BATCH` frames plus the
/// terminal `END` (all buffered, one flush), then read the
/// acknowledgements — the `RESET`'s `OK` first when `expect_reset_ok`
/// (the pool's persistent-session path queues the job behind a
/// [`ServeClient::write_reset`]), then one [`BatchSummary`] per
/// batch, then the final `REPORT`.
///
/// On any error the session is desynchronized and must be dropped,
/// not reused — the pool's whole-trace-retry contract already
/// guarantees a fresh session per attempt. A write failure usually
/// means the server already sent its terminal `ERR` and stopped
/// reading; that typed answer is preferred over the raw broken pipe.
pub(crate) fn run_job_v2<I>(
    client: &mut ServeClient,
    arrivals: I,
    batch: Option<usize>,
    expect_reset_ok: bool,
) -> Result<RunReport, AcmrError>
where
    I: IntoIterator<Item = Result<Request, AcmrError>>,
{
    let n = batch.unwrap_or(PIPELINE_BATCH).clamp(1, MAX_BATCH);
    let mut batches = 0usize;
    let stream_all = |client: &mut ServeClient| -> Result<(), StreamFail> {
        let mut chunk = Vec::with_capacity(n);
        for request in arrivals {
            chunk.push(request.map_err(StreamFail::Source)?);
            if chunk.len() == n {
                client.write_batch_frame(&chunk).map_err(StreamFail::Wire)?;
                batches += 1;
                chunk.clear();
            }
        }
        if !chunk.is_empty() {
            client.write_batch_frame(&chunk).map_err(StreamFail::Wire)?;
            batches += 1;
        }
        client.write_end_frame().map_err(StreamFail::Wire)?;
        client.flush_writes().map_err(StreamFail::Wire)
    };
    match stream_all(client) {
        Ok(()) => {}
        Err(StreamFail::Source(e)) => return Err(e),
        Err(StreamFail::Wire(e)) => {
            if crate::pool::is_transport_error(&e) {
                if let Some(answer) = client.pending_error() {
                    return Err(answer);
                }
            }
            return Err(e);
        }
    }
    if expect_reset_ok {
        client.read_reset_ok()?;
    }
    for _ in 0..batches {
        client.read_batch_summary()?;
    }
    client.read_report_frame()
}
