//! # acmr-serve
//!
//! The live serving front end for the admission-control engine: a
//! TCP protocol (`ACMR-SERVE`, specified in `docs/SERVING.md`) that
//! drives one streaming [`acmr_core::Session`] per connection — the
//! production shape of the paper's online model, where requests
//! genuinely arrive one at a time over a wire and every accept/reject
//! decision is pushed back as it is made. Two wire dialects share the
//! grammar: the v1 line protocol, and the v2 binary-frame protocol
//! (negotiated at `OPEN` via `proto=v2`) whose arrival frames are
//! exactly ACMR-TRACE v2 record bytes, with batch-summary
//! acknowledgements and `RESET`-based session reuse.
//!
//! The crate is split along a sans-I/O seam, std-only (the workspace
//! builds offline, so polling comes from the vendored `polling` shim
//! — epoll on Linux — rather than an async runtime):
//!
//! * [`protocol`] — the wire grammar: the capped [`protocol::
//!   FrameReader`] both ends use, the stable `ERR` code table, the
//!   constants (`GREETING`, frame/batch caps), and the v2 binary
//!   codec ([`protocol::BinFrameReader`], [`protocol::BatchSummary`],
//!   the `RESET`/`OK` payloads). v1 arrival frames reuse the trace
//!   grammar of `docs/TRACE_FORMAT.md` via
//!   `acmr_workloads::trace::parse_request_line`; v2 arrival frames
//!   reuse `acmr_workloads::binfmt`'s record codec — so the socket
//!   and the file formats can never drift apart, in either dialect.
//! * [`machine`] / [`Connection`] — the sans-I/O protocol state
//!   machine: feed it bytes, drain reply bytes; both dialects, every
//!   typed `ERR`, the `STATS` counters — with no socket type in
//!   sight, so the fuzz and differential suites drive the full wire
//!   semantics in-process.
//! * [`serve`] / [`ServerHandle`] / [`SessionManager`] — the reactor:
//!   sharded event-loop threads ([`ServeConfig::reactor_threads`])
//!   pumping nonblocking sockets through one machine per connection
//!   over the shared [`acmr_core::Registry`], with a concurrent
//!   session table, an explicit overload policy (`ERR busy` past
//!   [`ServeConfig::max_connections`]), idle timeouts, backpressure,
//!   and graceful shutdown that closes live sockets and joins every
//!   shard.
//! * [`ServeClient`] / [`serve_trace`] — the client: mirrors the
//!   local `Session` API (`push` / `push_batch` / `finish`), so the
//!   differential suite pins *served ≡ streamed ≡ in-memory* decision
//!   streams for every registered algorithm.
//! * [`pool`] / [`WorkerPool`] — the cross-process substrate for
//!   cluster sweeps: spawn (`acmr run --cluster N`) or adopt
//!   (`--workers addr,...`) `acmr serve` worker processes and replay
//!   whole jobs onto them with bounded, typed retry
//!   (`acmr_harness::ClusterDriver` is the driver on top).
//!
//! `acmr serve` and `acmr client --stream` are thin CLI shims over
//! this crate; `docs/OPERATIONS.md` is the operator guide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod machine;
pub mod pool;
pub mod protocol;
pub mod server;

pub use client::{fetch_stats, serve_trace, serve_trace_v2, ServeClient};
pub use machine::{Connection, MachineConfig, ServerCounters};
pub use pool::{is_transport_error, WorkerPool, CLUSTER_ERROR_CODE, LISTENING_PREFIX};
pub use protocol::{BatchSummary, ProtoVersion, StatsReport};
pub use server::{serve, ServeConfig, ServerHandle, SessionManager, SessionMeta, DEFAULT_ADDR};
