//! The sans-I/O protocol core: one [`Connection`] is the complete
//! per-connection `ACMR-SERVE` state machine — greeting, handshake,
//! both wire dialects (v1 lines, v2 binary frames), `STATS`, typed
//! `ERR` replies — expressed purely as *bytes in → bytes out*.
//!
//! There are no sockets, no threads, no clocks and no blocking in
//! here (the module imports neither `std::net` nor `std::io`): the
//! caller feeds whatever bytes arrived via [`Connection::feed`],
//! signals hangup via [`Connection::feed_eof`], and ships whatever
//! [`Connection::pending_output`] holds. That inversion is what the
//! reactor in [`crate::server`] is built on — a nonblocking event
//! loop just moves bytes between sockets and machines — and what
//! makes the wire logic exhaustively testable: the fuzz suite drives
//! a `Connection` byte-at-a-time with zero processes, and the
//! differential suite replays the golden corpus through it with zero
//! sockets, pinning machine ≡ served ≡ in-memory.
//!
//! Determinism contract: a `Connection`'s output depends only on the
//! *consumed input bytes* — never on how they were chunked across
//! `feed` calls. (The one deliberate exception is the `bytes_in`
//! counter inside a `STATS` reply, which counts bytes *received*, so
//! a probe observes real transport progress.)

use crate::protocol::{
    decode_reset, encode_ok, encode_summary, error_reply, error_reply_body, summarize_events,
    write_frame, ConnStats, FrameBuffer, ProtoVersion, ServerStats, StatsReport, EVENTS_TOKEN,
    FRAME_BATCH, FRAME_END, FRAME_ERR, FRAME_EVENT, FRAME_OK, FRAME_REPORT, FRAME_REQ, FRAME_RESET,
    FRAME_STATS, FRAME_STATS_REPLY, FRAME_SUMMARY, GREETING, MAX_BATCH, MAX_FRAME_BYTES,
    PROTO_V2_TOKEN,
};
use acmr_core::{AcmrError, AlgorithmSpec, ArrivalEvent, Registry, Request, Session};
use acmr_workloads::binfmt::decode_record;
use acmr_workloads::trace::{parse_caps_line, parse_edges_line, parse_request_line, LineBuffer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Server-wide atomic counters, shared by every [`Connection`] of one
/// server (and by the reactor driving them). The machine maintains
/// the protocol-level counts (sessions, arrivals, batches, bytes,
/// errors); the driver maintains the transport-level ones
/// (connections, busy rejections, uptime).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Milliseconds since the server started listening — refreshed by
    /// the driver (the machine has no clock; it stays `0` when a
    /// `Connection` is driven in-process, keeping test output
    /// deterministic).
    pub uptime_ms: AtomicU64,
    /// Connections accepted since start (busy-rejected ones included).
    pub connections_opened: AtomicU64,
    /// Connections currently open.
    pub connections_active: AtomicU64,
    /// Sessions opened since start (`OPEN` handshakes plus `RESET`s).
    pub sessions_opened: AtomicU64,
    /// Sessions currently live.
    pub sessions_active: AtomicU64,
    /// Arrival requests received (single `REQ`s plus batch contents).
    pub arrivals: AtomicU64,
    /// `BATCH` frames processed.
    pub batches: AtomicU64,
    /// Bytes received from clients.
    pub bytes_in: AtomicU64,
    /// Bytes produced for clients (greetings included).
    pub bytes_out: AtomicU64,
    /// Typed `ERR` replies emitted.
    pub errors: AtomicU64,
    /// Connections refused with `ERR busy` by the overload policy.
    pub busy_rejections: AtomicU64,
}

impl ServerCounters {
    /// A consistent-enough snapshot for a `STATS` reply (each counter
    /// is read atomically; the set is not a transaction — these are
    /// monitoring numbers, not ledger entries).
    pub fn snapshot(&self) -> ServerStats {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerStats {
            uptime_ms: load(&self.uptime_ms),
            connections_opened: load(&self.connections_opened),
            connections_active: load(&self.connections_active),
            sessions_opened: load(&self.sessions_opened),
            sessions_active: load(&self.sessions_active),
            arrivals: load(&self.arrivals),
            batches: load(&self.batches),
            bytes_in: load(&self.bytes_in),
            bytes_out: load(&self.bytes_out),
            errors: load(&self.errors),
            busy_rejections: load(&self.busy_rejections),
        }
    }
}

/// What a [`Connection`] shares with its server: protocol ceiling,
/// the server-wide counters, and the session id allocator. The
/// [`Default`] value (fresh counters, ids from 0, v2 allowed) is what
/// in-process tests use; the reactor hands every machine the same
/// two `Arc`s.
#[derive(Clone)]
pub struct MachineConfig {
    /// Highest protocol version to negotiate (same meaning as
    /// [`crate::ServeConfig::max_proto`]).
    pub max_proto: ProtoVersion,
    /// Server-wide counters this connection contributes to.
    pub server: Arc<ServerCounters>,
    /// Session id allocator shared across the server, so ids stay
    /// unique no matter which shard's machine opens the session.
    pub ids: Arc<AtomicU64>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            max_proto: ProtoVersion::V2,
            server: Arc::new(ServerCounters::default()),
            ids: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Which framing the connection's *output* (and error replies) uses
/// right now. Input framing is implied by the phase; output framing
/// must survive the phase collapsing to `Done` on an error, so it is
/// tracked separately.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dialect {
    Line,
    Binary,
}

/// Parsed `OPEN` arguments, carried through the handshake phases.
struct OpenArgs {
    spec: AlgorithmSpec,
    base_seed: u64,
    proto: ProtoVersion,
    events_optin: bool,
}

/// A `BATCH <n>` frame mid-collection (v1 only: the n request lines
/// arrive as further wire lines; v2 batches are one frame).
struct PendingBatch {
    n: usize,
    requests: Vec<Request>,
}

enum Phase {
    /// Waiting for `OPEN` (or a sessionless `STATS` probe).
    AwaitOpen,
    /// `OPEN` parsed; waiting for the `edges` line.
    AwaitEdges { open: OpenArgs },
    /// Waiting for the `caps` line.
    AwaitCaps { open: OpenArgs, m: usize },
    /// A live v1 (line-dialect) session.
    V1 {
        session: Session,
        capacities: Vec<u32>,
        pending: Option<PendingBatch>,
    },
    /// A live v2 (binary-frame) session. `active` is false between
    /// `END` and the next `RESET`.
    V2 {
        session: Session,
        capacities: Vec<u32>,
        events_optin: bool,
        active: bool,
    },
    /// Terminal: the reply stream is complete; the driver flushes
    /// [`Connection::pending_output`] and closes the transport.
    Done,
}

/// The pure per-connection protocol state machine. See the module
/// docs for the contract; see [`crate::server`] for the reactor that
/// drives one of these per socket.
///
/// ```
/// use acmr_core::{register_core, Registry};
/// use acmr_serve::machine::{Connection, MachineConfig};
/// use std::sync::Arc;
///
/// let mut registry = Registry::new();
/// register_core(&mut registry);
/// let mut conn = Connection::new(Arc::new(registry), MachineConfig::default());
/// conn.feed(b"OPEN aag-unweighted\nedges 2\ncaps 1 1\n");
/// let reply = String::from_utf8(conn.drain_output()).unwrap();
/// assert_eq!(reply, "ACMR-SERVE v1\nOK 0 aag-unweighted\n");
/// assert!(!conn.is_done());
/// ```
pub struct Connection {
    registry: Arc<Registry>,
    max_proto: ProtoVersion,
    server: Arc<ServerCounters>,
    ids: Arc<AtomicU64>,
    lines: LineBuffer,
    frames: FrameBuffer,
    dialect: Dialect,
    phase: Phase,
    out: Vec<u8>,
    stats: ConnStats,
    /// `(id, canonical spec)` of the live session, for the driver to
    /// mirror into the [`crate::SessionManager`].
    session_meta: Option<(u64, String)>,
    // Scratch buffers, reused across frames so the steady-state v2
    // batch path allocates nothing.
    payload: Vec<u8>,
    batch: Vec<Request>,
    events: Vec<ArrivalEvent>,
    reply: Vec<u8>,
}

impl Connection {
    /// A freshly accepted connection: the greeting is already queued
    /// in [`Connection::pending_output`].
    pub fn new(registry: Arc<Registry>, config: MachineConfig) -> Self {
        let mut conn = Connection {
            registry,
            max_proto: config.max_proto,
            server: config.server,
            ids: config.ids,
            lines: LineBuffer::new(MAX_FRAME_BYTES),
            frames: FrameBuffer::new(),
            dialect: Dialect::Line,
            phase: Phase::AwaitOpen,
            out: Vec::new(),
            stats: ConnStats::default(),
            session_meta: None,
            payload: Vec::new(),
            batch: Vec::new(),
            events: Vec::new(),
            reply: Vec::new(),
        };
        let before = conn.out.len();
        conn.push_line(GREETING);
        conn.count_out(before);
        conn
    }

    /// Feed bytes read from the transport and run the machine as far
    /// as they allow. Replies accumulate in
    /// [`Connection::pending_output`].
    pub fn feed(&mut self, bytes: &[u8]) {
        self.stats.bytes_in += bytes.len() as u64;
        self.server
            .bytes_in
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        match self.dialect {
            Dialect::Line => self.lines.feed(bytes),
            Dialect::Binary => self.frames.feed(bytes),
        }
        self.pump();
    }

    /// Signal that the peer hung up (EOF). A hangup at a frame
    /// boundary is a clean close; mid-frame it is the typed
    /// truncation `ERR`.
    pub fn feed_eof(&mut self) {
        match self.dialect {
            Dialect::Line => self.lines.set_eof(),
            Dialect::Binary => self.frames.set_eof(),
        }
        self.pump();
    }

    /// Driver-injected failure (overload at accept, idle timeout):
    /// emits the terminal typed `ERR` in the connection's current
    /// dialect and finishes the machine. The driver should flush the
    /// output and close the transport, as after any other error.
    pub fn fail(&mut self, e: &AcmrError) {
        if matches!(self.phase, Phase::Done) {
            return;
        }
        let before = self.out.len();
        self.emit_error(e);
        self.count_out(before);
    }

    /// Bytes queued for the peer; ship some and acknowledge with
    /// [`Connection::consume_output`].
    pub fn pending_output(&self) -> &[u8] {
        &self.out
    }

    /// Drop the first `n` queued output bytes (they were written to
    /// the transport).
    pub fn consume_output(&mut self, n: usize) {
        self.out.drain(..n);
    }

    /// Take all queued output at once — the in-process driving mode
    /// tests use.
    pub fn drain_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    /// Terminal: every reply is queued; once
    /// [`Connection::pending_output`] is shipped the transport should
    /// be closed (with the usual drain-before-close courtesy).
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// This connection's own counters.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// `(id, canonical spec)` of the live session, if a handshake (or
    /// `RESET`) has completed — what the driver mirrors into the
    /// session table.
    pub fn session(&self) -> Option<(u64, &str)> {
        self.session_meta
            .as_ref()
            .map(|(id, spec)| (*id, spec.as_str()))
    }

    /// The `STATS` reply this connection would send right now.
    pub fn stats_report(&self) -> StatsReport {
        StatsReport {
            server: self.server.snapshot(),
            connection: self.stats.clone(),
        }
    }

    // -- internals ---------------------------------------------------------

    fn push_line(&mut self, line: &str) {
        self.out.extend_from_slice(line.as_bytes());
        self.out.push(b'\n');
    }

    /// Add everything appended to `out` since `before` to the byte
    /// counters. Called at the public entry points, so internal steps
    /// can append freely.
    fn count_out(&mut self, before: usize) {
        let delta = (self.out.len() - before) as u64;
        self.stats.bytes_out += delta;
        self.server.bytes_out.fetch_add(delta, Ordering::Relaxed);
    }

    fn alloc_session(&mut self, canonical: String) -> u64 {
        self.release_session();
        let id = self.ids.fetch_add(1, Ordering::Relaxed);
        self.stats.sessions += 1;
        self.server.sessions_opened.fetch_add(1, Ordering::Relaxed);
        self.server.sessions_active.fetch_add(1, Ordering::Relaxed);
        self.session_meta = Some((id, canonical));
        id
    }

    /// Idempotent: drop the live-session gauge contribution (on
    /// `RESET` replacement, on finish, and on drop).
    fn release_session(&mut self) {
        if self.session_meta.take().is_some() {
            self.server.sessions_active.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Emit the terminal typed `ERR` in the current dialect and
    /// finish.
    fn emit_error(&mut self, e: &AcmrError) {
        self.stats.errors += 1;
        self.server.errors.fetch_add(1, Ordering::Relaxed);
        match self.dialect {
            Dialect::Line => {
                let reply = error_reply(e);
                self.push_line(&reply);
            }
            Dialect::Binary => {
                // Appending to a Vec cannot fail and the body is tiny,
                // so the only write_frame error (oversize payload) is
                // unreachable; swallow rather than recurse.
                let _ = write_frame(&mut self.out, FRAME_ERR, error_reply_body(e).as_bytes());
            }
        }
        self.finish();
    }

    fn finish(&mut self) {
        self.release_session();
        self.phase = Phase::Done;
    }

    /// Run steps until the machine needs more input (or finished).
    fn pump(&mut self) {
        let before = self.out.len();
        loop {
            match self.step() {
                Ok(true) => continue,
                Ok(false) => break,
                Err(e) => {
                    self.emit_error(&e);
                    break;
                }
            }
        }
        self.count_out(before);
    }

    /// One step of progress: `Ok(true)` consumed a line or frame (or
    /// finished), `Ok(false)` needs more input.
    fn step(&mut self) -> Result<bool, AcmrError> {
        match self.phase {
            Phase::Done => Ok(false),
            Phase::V2 { .. } => self.step_frame(),
            _ => self.step_line(),
        }
    }

    // ---- line dialect (handshake + v1 sessions) --------------------------

    fn step_line(&mut self) -> Result<bool, AcmrError> {
        if !self.lines.poll()? {
            return Ok(false);
        }
        // Borrow dance: carve the line (borrowing the buffer), own it,
        // then hand it to the phase logic which needs `&mut self`.
        let next = self.lines.next_line()?.map(|(n, s)| (n, s.to_string()));
        self.handle_line(next)?;
        Ok(true)
    }

    fn handle_line(&mut self, next: Option<(usize, String)>) -> Result<(), AcmrError> {
        let proto_err = |line: usize, message: String| AcmrError::TraceParse { line, message };
        match std::mem::replace(&mut self.phase, Phase::Done) {
            Phase::AwaitOpen => match next {
                // Connected and left (or a finished STATS probe): not
                // an error.
                None => self.finish(),
                Some((_, line)) if line.is_empty() => self.phase = Phase::AwaitOpen,
                Some((_, line)) if line == "STATS" => {
                    self.write_stats_line()?;
                    self.phase = Phase::AwaitOpen;
                }
                Some((ln, line)) => {
                    let open = self.parse_open(ln, &line)?;
                    self.phase = Phase::AwaitEdges { open };
                }
            },
            Phase::AwaitEdges { open } => match next {
                None => {
                    return Err(proto_err(
                        self.lines.line_number() + 1,
                        "connection closed before `edges`".into(),
                    ));
                }
                Some((_, line)) if line.is_empty() => self.phase = Phase::AwaitEdges { open },
                Some((ln, line)) => {
                    let m = parse_edges_line(ln, &line)?;
                    self.phase = Phase::AwaitCaps { open, m };
                }
            },
            Phase::AwaitCaps { open, m } => match next {
                None => {
                    return Err(proto_err(
                        self.lines.line_number() + 1,
                        "connection closed before `caps`".into(),
                    ));
                }
                Some((_, line)) if line.is_empty() => self.phase = Phase::AwaitCaps { open, m },
                Some((ln, line)) => {
                    let capacities = parse_caps_line(ln, &line, m)?;
                    self.open_session(open, capacities)?;
                }
            },
            Phase::V1 {
                mut session,
                capacities,
                pending: Some(mut pb),
            } => match next {
                None => {
                    return Err(proto_err(
                        self.lines.line_number() + 1,
                        format!(
                            "connection closed mid-batch ({} of {} requests)",
                            pb.requests.len(),
                            pb.n
                        ),
                    ));
                }
                // Inside a batch every line is a request line — blanks
                // are data here, not separators.
                Some((ln, line)) => {
                    pb.requests
                        .push(parse_request_line(ln, &line, capacities.len())?);
                    if pb.requests.len() == pb.n {
                        let done = self.apply_v1_batch(&mut session, &pb.requests);
                        self.phase = Phase::V1 {
                            session,
                            capacities,
                            pending: None,
                        };
                        done?;
                    } else {
                        self.phase = Phase::V1 {
                            session,
                            capacities,
                            pending: Some(pb),
                        };
                    }
                }
            },
            Phase::V1 {
                mut session,
                capacities,
                pending: None,
            } => match next {
                // Client hung up between frames: clean close.
                None => self.finish(),
                Some((_, line)) if line.is_empty() => {
                    self.phase = Phase::V1 {
                        session,
                        capacities,
                        pending: None,
                    };
                }
                Some((_, line)) if line == "STATS" => {
                    self.write_stats_line()?;
                    self.phase = Phase::V1 {
                        session,
                        capacities,
                        pending: None,
                    };
                }
                Some((_, line)) if line == "END" => {
                    let report = session.report();
                    let json = serde_json::to_string(&report).map_err(|e| AcmrError::Io {
                        message: format!("cannot serialize report: {e}"),
                    })?;
                    self.push_line(&format!("REPORT {json}"));
                    self.finish();
                }
                Some((ln, line)) => {
                    if let Some(count) = line.strip_prefix("BATCH") {
                        let n: usize = count.trim().parse().map_err(|_| {
                            proto_err(ln, format!("expected `BATCH <n>`, got {line:?}"))
                        })?;
                        if n > MAX_BATCH {
                            return Err(proto_err(
                                ln,
                                format!("BATCH {n} exceeds the {MAX_BATCH}-request frame cap"),
                            ));
                        }
                        if n == 0 {
                            // An empty batch applies nothing and (like
                            // the loop below with zero events) replies
                            // nothing.
                            self.phase = Phase::V1 {
                                session,
                                capacities,
                                pending: None,
                            };
                        } else {
                            self.phase = Phase::V1 {
                                session,
                                capacities,
                                pending: Some(PendingBatch {
                                    n,
                                    requests: Vec::new(),
                                }),
                            };
                        }
                        return Ok(());
                    }
                    // Anything else must be a request line of the
                    // trace grammar.
                    let request = parse_request_line(ln, &line, capacities.len())?;
                    self.stats.arrivals += 1;
                    self.server.arrivals.fetch_add(1, Ordering::Relaxed);
                    let done = session.push(&request);
                    self.phase = Phase::V1 {
                        session,
                        capacities,
                        pending: None,
                    };
                    let event = done?;
                    self.write_event_line(&event)?;
                }
            },
            Phase::V2 { .. } | Phase::Done => unreachable!("step_line outside a line phase"),
        }
        Ok(())
    }

    /// Parse `OPEN <spec> [seed=<S>] [proto=v2 [events=on]]` — the
    /// exact grammar (and error wording) of the serving spec.
    fn parse_open(&self, ln: usize, open: &str) -> Result<OpenArgs, AcmrError> {
        let proto_err = |message: String| AcmrError::TraceParse { line: ln, message };
        let mut toks = open.split_whitespace();
        if toks.next() != Some("OPEN") {
            return Err(proto_err(format!(
                "expected `OPEN <spec> [seed=<S>]`, got {open:?}"
            )));
        }
        let spec_str = toks
            .next()
            .ok_or_else(|| proto_err("OPEN is missing an algorithm spec".into()))?;
        let spec = AlgorithmSpec::parse(spec_str)?;
        let mut base_seed = 0u64;
        let mut proto = ProtoVersion::V1;
        let mut events_optin = false;
        for tok in toks {
            if let Some(seed) = tok.strip_prefix("seed=").and_then(|s| s.parse().ok()) {
                base_seed = seed;
                continue;
            }
            // A v1-capped server answers `proto=v2` with this same
            // typed parse error — the deterministic downgrade signal
            // the v2 client turns into "use --proto v1 against this
            // fleet".
            if self.max_proto == ProtoVersion::V2 && tok == PROTO_V2_TOKEN {
                proto = ProtoVersion::V2;
                continue;
            }
            if self.max_proto == ProtoVersion::V2 && tok == EVENTS_TOKEN {
                events_optin = true;
                continue;
            }
            let allowed = match self.max_proto {
                ProtoVersion::V1 => "only seed=<S> is allowed",
                ProtoVersion::V2 => "seed=<S>, proto=v2 and events=on are allowed",
            };
            return Err(proto_err(format!(
                "unexpected OPEN argument {tok:?} ({allowed})"
            )));
        }
        if events_optin && proto != ProtoVersion::V2 {
            return Err(proto_err(
                "events=on requires proto=v2 (v1 always streams events)".into(),
            ));
        }
        Ok(OpenArgs {
            spec,
            base_seed,
            proto,
            events_optin,
        })
    }

    /// Handshake complete: build the session, reply `OK`, and enter
    /// the negotiated dialect (switching the input framing to binary
    /// for v2, carrying over any bytes a pipelining client already
    /// sent past its handshake).
    fn open_session(&mut self, open: OpenArgs, capacities: Vec<u32>) -> Result<(), AcmrError> {
        let session =
            Session::from_registry(&self.registry, &open.spec, &capacities, open.base_seed)?;
        let canonical = open.spec.canonical();
        let id = self.alloc_session(canonical.clone());
        match open.proto {
            ProtoVersion::V1 => self.push_line(&format!("OK {id} {canonical}")),
            ProtoVersion::V2 => self.push_line(&format!("OK {id} {canonical} {PROTO_V2_TOKEN}")),
        }
        if open.proto == ProtoVersion::V2 {
            let rest = self.lines.take_rest();
            self.frames.feed(&rest);
            if self.lines.is_eof() {
                self.frames.set_eof();
            }
            self.dialect = Dialect::Binary;
            self.phase = Phase::V2 {
                session,
                capacities,
                events_optin: open.events_optin,
                active: true,
            };
        } else {
            self.phase = Phase::V1 {
                session,
                capacities,
                pending: None,
            };
        }
        Ok(())
    }

    /// Apply a complete v1 batch. On a mid-batch contract violation
    /// the events preceding the violation are still delivered, then
    /// the `ERR` (raised from the returned error).
    fn apply_v1_batch(
        &mut self,
        session: &mut Session,
        requests: &[Request],
    ) -> Result<(), AcmrError> {
        self.stats.batches += 1;
        self.server.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.arrivals += requests.len() as u64;
        self.server
            .arrivals
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let mut events = std::mem::take(&mut self.events);
        let result = session.push_batch_into(requests, &mut events);
        let mut write = Ok(());
        for event in &events {
            write = self.write_event_line(event);
            if write.is_err() {
                break;
            }
        }
        self.events = events;
        write?;
        result
    }

    fn write_event_line(&mut self, event: &ArrivalEvent) -> Result<(), AcmrError> {
        let json = serde_json::to_string(event).map_err(|e| AcmrError::Io {
            message: format!("cannot serialize event: {e}"),
        })?;
        self.push_line(&format!("EVENT {json}"));
        Ok(())
    }

    fn write_stats_line(&mut self) -> Result<(), AcmrError> {
        let json = self.stats_json()?;
        self.push_line(&format!("STATS {json}"));
        Ok(())
    }

    fn stats_json(&self) -> Result<String, AcmrError> {
        serde_json::to_string(&self.stats_report()).map_err(|e| AcmrError::Io {
            message: format!("cannot serialize stats: {e}"),
        })
    }

    // ---- binary dialect (v2 sessions) ------------------------------------

    fn step_frame(&mut self) -> Result<bool, AcmrError> {
        // The scratch buffers leave `self` for the duration of the
        // step (plain moves — their capacity survives), so the frame
        // logic can borrow `self` freely.
        let mut payload = std::mem::take(&mut self.payload);
        let result = self.step_frame_with(&mut payload);
        self.payload = payload;
        result
    }

    fn step_frame_with(&mut self, payload: &mut Vec<u8>) -> Result<bool, AcmrError> {
        let Some(ty) = self.frames.next_frame(payload)? else {
            if self.frames.is_eof() {
                // Hangup at a frame boundary: clean close.
                self.finish();
                return Ok(true);
            }
            return Ok(false);
        };
        let fno = self.frames.frame_number();
        let frame_err = |message: String| AcmrError::TraceParse { line: fno, message };
        let Phase::V2 {
            mut session,
            mut capacities,
            events_optin,
            mut active,
        } = std::mem::replace(&mut self.phase, Phase::Done)
        else {
            unreachable!("step_frame outside the v2 phase");
        };
        // Restore-then-raise: the phase goes back intact before any
        // `?` below, so an error leaves `Done` only via `emit_error`.
        macro_rules! restore {
            () => {
                self.phase = Phase::V2 {
                    session,
                    capacities,
                    events_optin,
                    active,
                }
            };
        }
        let num_edges = capacities.len() as u32;
        match ty {
            FRAME_REQ if active => {
                let decoded = decode_record(payload, 0, fno, num_edges);
                let pushed = decoded.and_then(|(request, end)| {
                    if end != payload.len() {
                        return Err(frame_err(format!(
                            "{} trailing bytes after the REQ record",
                            payload.len() - end
                        )));
                    }
                    self.stats.arrivals += 1;
                    self.server.arrivals.fetch_add(1, Ordering::Relaxed);
                    session.push(&request)
                });
                restore!();
                let event = pushed?;
                self.write_event_frame(&event)?;
            }
            FRAME_BATCH if active => {
                let mut batch = std::mem::take(&mut self.batch);
                let decoded = decode_batch_into(payload, fno, num_edges, &mut batch);
                let applied = decoded.and_then(|n| {
                    self.stats.batches += 1;
                    self.server.batches.fetch_add(1, Ordering::Relaxed);
                    self.stats.arrivals += batch.len() as u64;
                    self.server
                        .arrivals
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    let mut events = std::mem::take(&mut self.events);
                    // A mid-batch contract violation still delivers
                    // the acknowledgement for the arrivals that
                    // preceded it (events, or a summary over the
                    // applied prefix), then the ERR frame — same
                    // contract as v1.
                    let result = session.push_batch_into(&batch, &mut events);
                    let mut write = Ok(());
                    if events_optin {
                        for event in &events {
                            write = self.write_event_frame(event);
                            if write.is_err() {
                                break;
                            }
                        }
                    } else {
                        let mut summary = summarize_events(&events);
                        // `n` is the count *requested*; on a violation
                        // the summary covers only the applied prefix,
                        // and its `n` says how many actually landed.
                        debug_assert!(events.len() <= n);
                        summary.n = events.len() as u32;
                        self.reply.clear();
                        encode_summary(&mut self.reply, &summary);
                        let reply = std::mem::take(&mut self.reply);
                        write = write_frame(&mut self.out, FRAME_SUMMARY, &reply);
                        self.reply = reply;
                    }
                    self.events = events;
                    write.and(result)
                });
                self.batch = batch;
                restore!();
                applied?;
            }
            FRAME_END if active => {
                if !payload.is_empty() {
                    restore!();
                    return Err(frame_err("END frame carries a payload".into()));
                }
                let report = session.report();
                active = false;
                restore!();
                let json = serde_json::to_string(&report).map_err(|e| AcmrError::Io {
                    message: format!("cannot serialize report: {e}"),
                })?;
                write_frame(&mut self.out, FRAME_REPORT, json.as_bytes())?;
            }
            FRAME_RESET => {
                // Every fallible step restores the phase before
                // raising, so `emit_error` still sees a live v2 frame
                // dialect; once the fresh session is in, the old one
                // is gone for good — exactly the thread-server
                // behavior, where a failed RESET killed the
                // connection anyway.
                let decoded = decode_reset(payload).map_err(|e| match e {
                    AcmrError::TraceParse { message, .. } => frame_err(message),
                    other => other,
                });
                let reset = match decoded {
                    Ok(reset) => reset,
                    Err(e) => {
                        restore!();
                        return Err(e);
                    }
                };
                let spec = match AlgorithmSpec::parse(&reset.spec) {
                    Ok(spec) => spec,
                    Err(e) => {
                        restore!();
                        return Err(e);
                    }
                };
                if !reset.capacities.is_empty() {
                    capacities = reset.capacities;
                }
                let seed = reset.base_seed.unwrap_or(0);
                match Session::from_registry(&self.registry, &spec, &capacities, seed) {
                    Ok(fresh) => session = fresh,
                    Err(e) => {
                        restore!();
                        return Err(e);
                    }
                }
                let canonical = spec.canonical();
                // A RESET is a fresh session in the table: new id,
                // new spec, same connection.
                let id = self.alloc_session(canonical.clone());
                active = true;
                restore!();
                self.reply.clear();
                encode_ok(&mut self.reply, id, &canonical);
                let reply = std::mem::take(&mut self.reply);
                let wrote = write_frame(&mut self.out, FRAME_OK, &reply);
                self.reply = reply;
                wrote?;
            }
            FRAME_STATS => {
                if !payload.is_empty() {
                    restore!();
                    return Err(frame_err("STATS frame carries a payload".into()));
                }
                restore!();
                let json = self.stats_json()?;
                write_frame(&mut self.out, FRAME_STATS_REPLY, json.as_bytes())?;
            }
            FRAME_REQ | FRAME_BATCH | FRAME_END => {
                restore!();
                return Err(frame_err(
                    "session already ended: only RESET (or hangup) may follow END".into(),
                ));
            }
            other => {
                restore!();
                return Err(frame_err(format!("unexpected frame type 0x{other:02x}")));
            }
        }
        Ok(true)
    }

    /// Serialize one arrival event as a v2 `EVENT` frame — the payload
    /// is the same JSON the v1 `EVENT` line carries.
    fn write_event_frame(&mut self, event: &ArrivalEvent) -> Result<(), AcmrError> {
        let json = serde_json::to_string(event).map_err(|e| AcmrError::Io {
            message: format!("cannot serialize event: {e}"),
        })?;
        write_frame(&mut self.out, FRAME_EVENT, json.as_bytes())
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        // A connection torn down mid-session (reactor shutdown) must
        // not leave the server-wide live-session gauge elevated.
        self.release_session();
    }
}

/// Decode a `BATCH` frame payload (`u32le` count, then that many
/// ACMR-TRACE v2 records back to back) into `batch`; returns the
/// declared count. Shares the byte-level record decoder with the
/// binary trace file reader.
pub(crate) fn decode_batch_into(
    payload: &[u8],
    frame: usize,
    num_edges: u32,
    batch: &mut Vec<Request>,
) -> Result<usize, AcmrError> {
    let frame_err = |message: String| AcmrError::TraceParse {
        line: frame,
        message,
    };
    let count = payload
        .get(..4)
        .ok_or_else(|| frame_err("BATCH frame shorter than its 4-byte count".into()))?;
    let n = u32::from_le_bytes(count.try_into().expect("4 bytes")) as usize;
    if n > MAX_BATCH {
        return Err(frame_err(format!(
            "BATCH {n} exceeds the {MAX_BATCH}-request frame cap"
        )));
    }
    batch.clear();
    let mut at = 4;
    for i in 0..n {
        let (request, next) = decode_record(payload, at, i, num_edges).map_err(|e| match e {
            AcmrError::TraceParse { message, .. } => {
                frame_err(format!("batch record {i}: {message}"))
            }
            other => other,
        })?;
        batch.push(request);
        at = next;
    }
    if at != payload.len() {
        return Err(frame_err(format!(
            "{} trailing bytes after {n} batch records",
            payload.len() - at
        )));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_harness::default_registry;

    fn conn() -> Connection {
        Connection::new(Arc::new(default_registry()), MachineConfig::default())
    }

    fn text(conn: &mut Connection) -> String {
        String::from_utf8(conn.drain_output()).unwrap()
    }

    #[test]
    fn v1_session_runs_to_report() {
        let mut c = conn();
        c.feed(b"OPEN greedy\nedges 2\ncaps 1 1\n");
        let reply = text(&mut c);
        assert_eq!(reply, "ACMR-SERVE v1\nOK 0 greedy\n");
        c.feed(b"2 0\nEND\n");
        let reply = text(&mut c);
        assert!(reply.starts_with("EVENT {"), "{reply}");
        assert!(reply.contains("REPORT {"), "{reply}");
        assert!(c.is_done());
        assert_eq!(c.stats().arrivals, 1);
        assert_eq!(c.stats().sessions, 1);
    }

    #[test]
    fn hangup_before_open_is_clean_but_mid_handshake_is_typed() {
        let mut c = conn();
        c.feed_eof();
        assert!(c.is_done());
        assert_eq!(text(&mut c), "ACMR-SERVE v1\n"); // no ERR

        let mut c = conn();
        c.feed(b"OPEN greedy\n");
        c.feed_eof();
        let reply = text(&mut c);
        assert!(reply.contains("ERR parse"), "{reply}");
        assert!(
            reply.contains("connection closed before `edges`"),
            "{reply}"
        );
    }

    #[test]
    fn driver_injected_busy_is_a_typed_line_error() {
        let mut c = conn();
        c.fail(&AcmrError::Busy {
            message: "accept queue full (1024 connections)".into(),
        });
        assert!(c.is_done());
        let reply = text(&mut c);
        assert!(reply.contains("ERR busy"), "{reply}");
        assert_eq!(c.stats().errors, 1);
    }

    #[test]
    fn stats_probe_needs_no_session() {
        let mut c = conn();
        c.feed(b"STATS\n");
        let reply = text(&mut c);
        let json = reply
            .lines()
            .find_map(|l| l.strip_prefix("STATS "))
            .expect("stats line");
        let report: StatsReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.server.uptime_ms, 0);
        assert_eq!(report.connection.sessions, 0);
        assert!(report.connection.bytes_in >= "STATS\n".len() as u64);
        assert!(!c.is_done()); // probe may still OPEN afterwards
    }

    #[test]
    fn output_is_chunking_invariant() {
        let script =
            b"OPEN greedy seed=7\nedges 3\ncaps 2 1 2\n1.5 0 1\nBATCH 2\n2 1\n3 0 2\nEND\n";
        let mut whole = conn();
        whole.feed(script);
        whole.feed_eof();
        let expected = whole.drain_output();
        for chunk in [1usize, 2, 3, 5] {
            let mut c = conn();
            for piece in script.chunks(chunk) {
                c.feed(piece);
            }
            c.feed_eof();
            assert_eq!(c.drain_output(), expected, "chunk size {chunk}");
        }
        assert!(whole.is_done());
    }

    #[test]
    fn v2_upgrade_switches_to_frames_and_resets_reopen() {
        use crate::protocol::{encode_reset, FRAME_OK, FRAME_REPORT};
        let mut c = conn();
        c.feed(b"OPEN greedy proto=v2\nedges 2\ncaps 1 1\n");
        let reply = text(&mut c);
        assert!(reply.ends_with("OK 0 greedy proto=v2\n"), "{reply}");
        assert_eq!(c.session().map(|(id, _)| id), Some(0));
        // END → REPORT frame; RESET → OK frame with a fresh id.
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_END, &[]).unwrap();
        let mut reset = Vec::new();
        encode_reset(&mut reset, "greedy", None, &[]);
        write_frame(&mut wire, FRAME_RESET, &reset).unwrap();
        c.feed(&wire);
        let reply = c.drain_output();
        assert_eq!(reply[0], FRAME_REPORT);
        let report_len = u32::from_le_bytes(reply[1..5].try_into().unwrap()) as usize;
        assert_eq!(reply[5 + report_len], FRAME_OK);
        assert_eq!(c.session().map(|(id, _)| id), Some(1));
        assert_eq!(c.stats().sessions, 2);
        c.feed_eof();
        assert!(c.is_done());
    }
}
