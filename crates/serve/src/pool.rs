//! The cross-process worker pool: spawn or adopt `acmr serve`
//! processes and replay whole jobs onto them with bounded retry.
//!
//! This is the process-level half of cluster sweeps
//! (`acmr_harness::ClusterDriver` is the driver half): a
//! [`WorkerPool`] holds one slot per worker process — either spawned
//! by [`WorkerPool::spawn_local`] (the `acmr run --cluster N` path,
//! which launches `acmr serve --addr 127.0.0.1:0` children and parses
//! the machine-readable `LISTENING <addr>` line they announce on
//! stderr) or adopted by [`WorkerPool::connect`] from pre-started
//! addresses (`--workers addr,addr,...`).
//!
//! The retry contract, pinned by the protocol fuzz and
//! fault-injection suites:
//!
//! * A job is **one whole session**: connect, replay every arrival,
//!   `END`, read the final report. If the connection dies at *any*
//!   frame boundary — mid-handshake, mid-batch, before the report —
//!   the pool replays the **entire trace** on the next attempt as a
//!   fresh session. There is no such thing as resuming a
//!   half-replayed session: the engine's decisions depend on every
//!   prior arrival, so only a full replay preserves the decision
//!   stream.
//! * Only **transport** failures retry ([`is_transport_error`]):
//!   connection refused, a mid-stream I/O error, or a protocol-level
//!   drop (the server vanished without a terminal reply). A typed
//!   `ERR` reply from a live worker (unknown algorithm, parse error,
//!   contract violation) is the job's real answer and is returned
//!   immediately.
//! * A worker whose **connection attempt** fails is quarantined — a
//!   dead process stays dead, so later jobs skip it instead of paying
//!   a connect timeout each. A worker that drops an *established*
//!   session is not (the failure may be transient); the retry just
//!   moves to the next worker slot.
//! * Retries are **bounded** ([`WorkerPool::retries`], default: one
//!   extra attempt per worker). Exhaustion surfaces one typed
//!   [`AcmrError::Remote`] with code [`CLUSTER_ERROR_CODE`] naming
//!   the last failure — never a panic, a hang, or a partial report.
//! * An `ERR busy` reply (the reactor's overload policy: the worker
//!   is past its `--max-conns` accept-queue cap) arrives as a typed
//!   remote error *before* any arrival is replayed. It is a reply
//!   from a live worker, not a transport drop, so it does **not**
//!   retry — size worker `--max-conns` above the driver's
//!   concurrency, and watch `busy_rejections` in the workers'
//!   `STATS` counters (`acmr stats --addr`) if sweeps start failing
//!   with it.

use crate::client::{replay_session, run_job_v2, ServeClient};
use crate::protocol::ProtoVersion;
use acmr_core::{AcmrError, Request, RunReport};
use std::io::BufRead;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::Path;
use std::process::{Child, ChildStderr, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// First stderr line `acmr serve` prints: `LISTENING <host:port>`,
/// machine-parseable, naming the resolved bind address (so `--addr
/// HOST:0` workers are discoverable). [`WorkerPool::spawn_local`]
/// parses it; `tests/serve_cli.rs` pins it.
pub const LISTENING_PREFIX: &str = "LISTENING ";

/// The [`AcmrError::Remote`] code used when a pool exhausts its
/// retries (or runs out of alive workers) — distinct from every wire
/// code a worker itself can send, so "the cluster gave up" is
/// machine-distinguishable from "a worker said no".
pub const CLUSTER_ERROR_CODE: &str = "cluster";

/// True for failures of the *transport* between pool and worker —
/// the connection, not the job: I/O errors (refused connection,
/// reset, broken pipe, a read that timed out) and protocol-level
/// drops (`proto`: the server closed without a terminal reply, or
/// sent an unparseable frame). These are the errors a
/// [`WorkerPool`] retries on another worker; anything else — a typed
/// `ERR` reply from a live worker, a malformed trace — is the job's
/// real answer.
///
/// Caveat: a mid-replay I/O error from the *trace source* (e.g. a
/// file that turns unreadable) is indistinguishable by type and will
/// also be retried; the retry is bounded and the last error is
/// surfaced, so this costs attempts, never correctness.
pub fn is_transport_error(e: &AcmrError) -> bool {
    match e {
        AcmrError::Io { .. } => true,
        AcmrError::Remote { code, .. } => code == "proto",
        _ => false,
    }
}

/// One worker slot: a serving endpoint, its liveness flag, and — for
/// spawned-local workers — the child process handle.
struct Worker {
    addr: SocketAddr,
    /// Cleared when a **connection attempt** to this worker fails
    /// (the process is gone); quarantined workers are skipped.
    alive: AtomicBool,
    /// The slot's cached v2 session (protocol v2 pools only): after a
    /// successful job the connection parks here post-`END`, and the
    /// next job revives it with a pipelined `RESET` instead of paying
    /// TCP connect + handshake again. Dropped on any failure — the
    /// whole-trace retry contract always replays on a fresh session.
    conn: Mutex<Option<ServeClient>>,
    /// The spawned `acmr serve` child; `None` for adopted workers.
    child: Mutex<Option<Child>>,
    /// The spawned child's stderr pipe, held open so the worker's
    /// later log lines land in the pipe buffer instead of killing it
    /// with a broken pipe. Never read after the `LISTENING` line.
    _stderr: Mutex<Option<std::io::BufReader<ChildStderr>>>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("addr", &self.addr)
            .field("alive", &self.alive)
            .finish_non_exhaustive()
    }
}

impl Worker {
    fn adopted(addr: SocketAddr) -> Self {
        Worker {
            addr,
            alive: AtomicBool::new(true),
            conn: Mutex::new(None),
            child: Mutex::new(None),
            _stderr: Mutex::new(None),
        }
    }

    /// Take the slot's cached session, if any.
    fn take_conn(&self) -> Option<ServeClient> {
        self.conn.lock().expect("worker conn lock poisoned").take()
    }

    /// Park a session for the next job on this slot.
    fn park_conn(&self, client: ServeClient) {
        *self.conn.lock().expect("worker conn lock poisoned") = Some(client);
    }

    /// Kill the spawned child, if any (idempotent; no-op for adopted
    /// workers).
    fn kill(&self) -> bool {
        let mut guard = self.child.lock().expect("worker child lock poisoned");
        match guard.take() {
            Some(mut child) => {
                let _ = child.kill();
                let _ = child.wait();
                true
            }
            None => false,
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Default bound on every socket operation a pool performs against a
/// worker — see [`WorkerPool::io_timeout`].
pub const DEFAULT_IO_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// A pool of `acmr serve` worker processes jobs can be replayed onto,
/// with bounded retry on transport failure — the process-level fan-out
/// substrate `acmr_harness::ClusterDriver` drives (see the module docs
/// for the retry contract).
///
/// ```no_run
/// use acmr_serve::WorkerPool;
///
/// // Adopt two pre-started `acmr serve` processes…
/// let pool = WorkerPool::connect(&["10.0.0.1:4790", "10.0.0.2:4790"])?;
/// // …or spawn local ones from the `acmr` binary:
/// let local = WorkerPool::spawn_local("/usr/local/bin/acmr", 4)?;
/// assert_eq!(local.len(), 4);
/// local.shutdown(); // kills the spawned children
/// # Ok::<(), acmr_core::AcmrError>(())
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    workers: Vec<Worker>,
    retries: usize,
    io_timeout: std::time::Duration,
    proto: ProtoVersion,
}

impl WorkerPool {
    /// Adopt pre-started workers by address (`host:port`). Addresses
    /// are resolved now but **probed lazily**: an unreachable worker
    /// surfaces as a typed error (after bounded retries) on the first
    /// job that lands on it, not here — adopting must not require the
    /// whole fleet to be up yet.
    pub fn connect<S: AsRef<str>>(addrs: &[S]) -> Result<WorkerPool, AcmrError> {
        if addrs.is_empty() {
            return Err(AcmrError::InvalidRequest {
                reason: "a worker pool needs at least one worker address".into(),
            });
        }
        let mut workers = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let addr = addr.as_ref();
            let resolved = addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut it| it.next())
                .ok_or_else(|| AcmrError::InvalidRequest {
                    reason: format!("cannot resolve worker address {addr:?}"),
                })?;
            workers.push(Worker::adopted(resolved));
        }
        let retries = workers.len();
        Ok(WorkerPool {
            workers,
            retries,
            io_timeout: DEFAULT_IO_TIMEOUT,
            proto: ProtoVersion::V2,
        })
    }

    /// Spawn `count` local worker processes: `<binary> serve --addr
    /// 127.0.0.1:0`, each announcing its kernel-assigned port via the
    /// machine-readable `LISTENING <addr>` first stderr line. The
    /// children are killed when the pool drops (or on
    /// [`WorkerPool::shutdown`]); a worker that fails to spawn or to
    /// announce tears the already-spawned ones down and returns a
    /// typed error.
    pub fn spawn_local(binary: impl AsRef<Path>, count: usize) -> Result<WorkerPool, AcmrError> {
        let binary = binary.as_ref();
        if count == 0 {
            return Err(AcmrError::InvalidRequest {
                reason: "a worker pool needs at least one worker".into(),
            });
        }
        let mut workers = Vec::with_capacity(count);
        for _ in 0..count {
            // On error the partial `workers` vec drops, killing the
            // children already spawned.
            workers.push(spawn_worker(binary)?);
        }
        Ok(WorkerPool {
            workers,
            retries: count,
            io_timeout: DEFAULT_IO_TIMEOUT,
            proto: ProtoVersion::V2,
        })
    }

    /// Bound the extra attempts a job gets after its first transport
    /// failure (default: the pool size, i.e. one fresh chance per
    /// worker). `0` disables retrying entirely.
    pub fn retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Bound every socket operation against a worker — connect, and
    /// each read/write of the session (default:
    /// [`DEFAULT_IO_TIMEOUT`], 30 s — generous for any single reply,
    /// since worker decisions are microseconds). This is what keeps
    /// the retry contract honest against a *partitioned* worker (a
    /// host that blackholes packets without ever sending FIN/RST):
    /// the stalled operation surfaces as a typed transport error and
    /// enters the normal retry path instead of hanging the job
    /// forever. Per-operation, not per-job: a long trace replay is
    /// fine as long as every individual reply keeps arriving.
    pub fn io_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Pick the wire protocol jobs speak to the workers (default:
    /// [`ProtoVersion::V2`] — binary frames, summary acks, and
    /// persistent per-slot sessions revived by `RESET`). Force
    /// [`ProtoVersion::V1`] against an old fleet that answers the v2
    /// negotiation with its typed `ERR parse` reply — the pool never
    /// downgrades silently, so mixed fleets fail loudly instead of
    /// running half the sweep on a slower wire.
    pub fn proto(mut self, proto: ProtoVersion) -> Self {
        self.proto = proto;
        self
    }

    /// Number of worker slots (alive or not).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when the pool has no worker slots (never, after a
    /// successful constructor — both reject zero workers).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Workers not yet quarantined by a failed connection attempt.
    pub fn alive(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Every worker's serving address, in slot order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.workers.iter().map(|w| w.addr).collect()
    }

    /// Kill the spawned child process in slot `index` — the
    /// fault-injection hook (and an operator escape hatch). Returns
    /// `false` for adopted workers, out-of-range slots, and already-
    /// killed children. The slot is **not** quarantined: the pool
    /// discovers the death the honest way, through a failed
    /// connection.
    pub fn kill_worker(&self, index: usize) -> bool {
        self.workers.get(index).is_some_and(|w| w.kill())
    }

    /// Tear the pool down, killing every spawned child (adopted
    /// workers are left running — the pool does not own them).
    /// Dropping the pool does the same; this is the explicit spelling.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Run one whole job — open a session for `spec` (seeded like
    /// [`ServeClient::connect`]), replay every arrival `source`
    /// yields in `BATCH` frames of `batch` (or one frame per arrival
    /// when `None`), `END`, return the final report — on the first
    /// alive worker at or after slot `start % len`, retrying the
    /// **whole trace** on the next worker after a transport failure,
    /// up to the pool's retry bound.
    ///
    /// In protocol v2 (the default) the replay is pipelined — the
    /// whole trace streams out before any acknowledgement is read —
    /// and the slot's connection is kept across jobs: the next job on
    /// the slot revives it with a `RESET` frame instead of a fresh
    /// TCP connect + handshake. A stale cached connection (worker
    /// restarted, idle timeout fired) falls back to a fresh connect
    /// *within the same attempt* — reviving the cache never costs the
    /// job one of its bounded attempts.
    ///
    /// `source` is called per replay and must produce the edge
    /// capacities plus a fresh arrival iterator from the top — that is
    /// what makes a retry a full replay rather than a half-replayed
    /// session (a stale-cache fallback can call it twice in one
    /// attempt). An error from `source` itself (e.g. the trace file
    /// is missing) is returned as-is, without consuming an attempt.
    pub fn run_job<I, F>(
        &self,
        start: usize,
        spec: &str,
        base_seed: Option<u64>,
        batch: Option<usize>,
        source: F,
    ) -> Result<RunReport, AcmrError>
    where
        F: Fn() -> Result<(Vec<u32>, I), AcmrError>,
        I: IntoIterator<Item = Result<Request, AcmrError>>,
    {
        if batch == Some(0) {
            return Err(AcmrError::InvalidRequest {
                reason: "batch size must be at least 1".to_string(),
            });
        }
        let n = self.workers.len();
        let max_attempts = self.retries.saturating_add(1);
        let mut cursor = start % n;
        let mut last_failure: Option<(SocketAddr, AcmrError)> = None;
        for attempt in 0..max_attempts {
            let Some(slot) = (0..n)
                .map(|k| (cursor + k) % n)
                .find(|&w| self.workers[w].alive.load(Ordering::Relaxed))
            else {
                return Err(self.exhausted("no alive workers left", attempt, last_failure));
            };
            let worker = &self.workers[slot];
            // Persistent-session fast path (v2 only): revive the
            // slot's parked connection with a pipelined RESET. A
            // stale cached connection (the worker restarted, an idle
            // timeout fired) surfaces as a transport error and falls
            // through to the fresh-connect path below — same slot,
            // same attempt.
            if self.proto == ProtoVersion::V2 {
                if let Some(mut client) = worker.take_conn() {
                    let (capacities, arrivals) = source()?;
                    let outcome = client
                        .write_reset(spec, base_seed, &capacities)
                        .and_then(|()| run_job_v2(&mut client, arrivals, batch, true));
                    match outcome {
                        Ok(report) => {
                            worker.park_conn(client);
                            return Ok(report);
                        }
                        // Stale cache: drop the client, fall through.
                        Err(e) if is_transport_error(&e) => drop(client),
                        // A typed answer from a live worker is the
                        // job's real answer, cache or no cache.
                        Err(e) => return Err(e),
                    }
                }
            }
            let (capacities, arrivals) = source()?;
            // The pool owns the TCP connect so a *connection* failure
            // (the worker process is gone — quarantine the slot) is
            // structurally distinct from a later handshake or
            // mid-session failure (maybe transient — retry elsewhere,
            // no quarantine).
            let stream = match std::net::TcpStream::connect_timeout(&worker.addr, self.io_timeout) {
                Ok(stream) => stream,
                Err(e) => {
                    worker.alive.store(false, Ordering::Relaxed);
                    last_failure = Some((
                        worker.addr,
                        AcmrError::Io {
                            message: format!("cannot connect to worker {}: {e}", worker.addr),
                        },
                    ));
                    cursor = (slot + 1) % n;
                    continue;
                }
            };
            // Deadline every read/write too: a partitioned worker
            // (blackholed packets, no FIN/RST) must surface as a
            // typed transport error on the retry path, never hang
            // the job. Decisions are microseconds; any reply that
            // takes longer than the timeout means the worker is gone.
            let _ = stream.set_read_timeout(Some(self.io_timeout));
            let _ = stream.set_write_timeout(Some(self.io_timeout));
            let outcome = match self.proto {
                ProtoVersion::V1 => ServeClient::from_stream(stream, spec, base_seed, &capacities)
                    .and_then(|client| replay_session(client, arrivals, batch, &mut |_| {})),
                ProtoVersion::V2 => ServeClient::from_stream_with(
                    stream,
                    spec,
                    base_seed,
                    &capacities,
                    ProtoVersion::V2,
                    false,
                )
                .and_then(|mut client| {
                    let report = run_job_v2(&mut client, arrivals, batch, false)?;
                    // Success parks the post-END session for the next
                    // job on this slot.
                    worker.park_conn(client);
                    Ok(report)
                }),
            };
            match outcome {
                Ok(report) => return Ok(report),
                Err(e) if is_transport_error(&e) => {
                    last_failure = Some((worker.addr, e));
                    cursor = (slot + 1) % n;
                }
                Err(e) => return Err(e),
            }
        }
        Err(self.exhausted("retries exhausted", max_attempts, last_failure))
    }

    fn exhausted(
        &self,
        why: &str,
        attempts: usize,
        last_failure: Option<(SocketAddr, AcmrError)>,
    ) -> AcmrError {
        let detail = match last_failure {
            Some((addr, e)) => format!("; last failure on {addr}: {e}"),
            None => String::new(),
        };
        AcmrError::Remote {
            code: CLUSTER_ERROR_CODE.into(),
            message: format!(
                "{why} after {attempts} attempt(s) across {} worker(s){detail}",
                self.workers.len()
            ),
        }
    }
}

/// How long a spawned worker gets to announce its address before the
/// pool gives up on it — generous (a cold binary on a loaded box) but
/// finite, so a binary that serves without ever announcing can never
/// hang `spawn_local`.
const ANNOUNCE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// Spawn one `acmr serve --addr 127.0.0.1:0` child and parse the
/// `LISTENING <addr>` line it announces on stderr — under a deadline:
/// the blocking stderr read runs on a helper thread, and a child that
/// neither announces nor exits within [`ANNOUNCE_TIMEOUT`] is killed
/// and reported as a typed error (the kill closes the pipe, which
/// unblocks and ends the helper).
fn spawn_worker(binary: &Path) -> Result<Worker, AcmrError> {
    let mut child = Command::new(binary)
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| AcmrError::Io {
            message: format!("cannot spawn worker {}: {e}", binary.display()),
        })?;
    let stderr = child.stderr.take().expect("stderr was piped");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = std::io::BufReader::new(stderr);
        let mut line = String::new();
        let outcome = reader.read_line(&mut line);
        // The receiver may have timed out and gone; ignore send errors.
        let _ = tx.send((outcome.unwrap_or(0), line, reader));
    });
    let announced = rx.recv_timeout(ANNOUNCE_TIMEOUT);
    let (addr, got) = match &announced {
        Ok((n, line, _)) if *n > 0 => (
            line.trim()
                .strip_prefix(LISTENING_PREFIX)
                .and_then(|rest| rest.trim().parse::<SocketAddr>().ok()),
            format!("got {:?}", line.trim()),
        ),
        Ok(_) => (None, "the worker exited without announcing".to_string()),
        Err(_) => (
            None,
            format!("no announcement within {}s", ANNOUNCE_TIMEOUT.as_secs()),
        ),
    };
    let Some(addr) = addr else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(AcmrError::Io {
            message: format!(
                "worker {} did not announce `{LISTENING_PREFIX}<addr>` on stderr ({got})",
                binary.display()
            ),
        });
    };
    let reader = match announced {
        Ok((_, _, reader)) => Some(reader),
        Err(_) => unreachable!("addr parsed implies a received announcement"),
    };
    Ok(Worker {
        addr,
        alive: AtomicBool::new(true),
        conn: Mutex::new(None),
        child: Mutex::new(Some(child)),
        _stderr: Mutex::new(reader),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_classification_is_exact() {
        assert!(is_transport_error(&AcmrError::Io {
            message: "cannot connect to acmr serve: refused".into()
        }));
        assert!(is_transport_error(&AcmrError::Remote {
            code: "proto".into(),
            message: "server closed the connection without a reply".into()
        }));
        // A worker's typed ERR reply is an answer, not a transport
        // failure — it must never be retried.
        assert!(!is_transport_error(&AcmrError::Remote {
            code: "unknown-algorithm".into(),
            message: "unknown algorithm \"nope\"".into()
        }));
        assert!(!is_transport_error(&AcmrError::TraceParse {
            line: 3,
            message: "bad cost".into()
        }));
        assert!(!is_transport_error(&AcmrError::SessionPoisoned));
    }

    #[test]
    fn constructors_reject_empty_pools() {
        let err = WorkerPool::connect::<&str>(&[]).unwrap_err();
        assert!(matches!(err, AcmrError::InvalidRequest { .. }), "{err}");
        let err = WorkerPool::spawn_local("/bin/true", 0).unwrap_err();
        assert!(matches!(err, AcmrError::InvalidRequest { .. }), "{err}");
        let err = WorkerPool::connect(&["not an address"]).unwrap_err();
        assert!(err.to_string().contains("cannot resolve"), "{err}");
    }

    #[test]
    fn spawn_local_rejects_a_binary_that_never_announces() {
        // `/bin/true` exits immediately without a LISTENING line.
        let err = WorkerPool::spawn_local("/bin/true", 1).unwrap_err();
        assert!(err.to_string().contains("LISTENING"), "{err}");
        // A binary that cannot be spawned at all is a typed error too.
        let err = WorkerPool::spawn_local("/no/such/binary", 1).unwrap_err();
        assert!(err.to_string().contains("cannot spawn"), "{err}");
    }

    #[test]
    fn unreachable_workers_exhaust_into_one_typed_cluster_error() {
        // Reserve a port nothing listens on (bind, read, drop).
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead = probe.local_addr().unwrap().to_string();
        drop(probe);
        let pool = WorkerPool::connect(&[dead.as_str()]).unwrap().retries(2);
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
        let err = pool
            .run_job(0, "greedy", None, None, || {
                Ok((vec![1u32], Vec::<Result<Request, AcmrError>>::new()))
            })
            .unwrap_err();
        match &err {
            AcmrError::Remote { code, message } => {
                assert_eq!(code, CLUSTER_ERROR_CODE);
                assert!(message.contains("attempt"), "{message}");
            }
            other => panic!("expected a cluster error, got {other:?}"),
        }
        // The failed connection quarantined the only worker.
        assert_eq!(pool.alive(), 0);
        // …so the next job fails fast on the no-alive-workers path,
        // still as one typed cluster error.
        let err = pool
            .run_job(0, "greedy", None, None, || {
                Ok((vec![1u32], Vec::<Result<Request, AcmrError>>::new()))
            })
            .unwrap_err();
        assert!(
            matches!(&err, AcmrError::Remote { code, .. } if code == CLUSTER_ERROR_CODE),
            "{err}"
        );
    }

    #[test]
    fn source_errors_are_returned_raw_without_burning_attempts() {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead = probe.local_addr().unwrap().to_string();
        drop(probe);
        let pool = WorkerPool::connect(&[dead.as_str()]).unwrap();
        // The trace source failing (missing file, bad header) is the
        // caller's error, surfaced as-is — not wrapped in a cluster
        // error, exactly like ShardedDriver surfaces it.
        let err = pool
            .run_job(0, "greedy", None, None, || {
                Err::<(Vec<u32>, Vec<Result<Request, AcmrError>>), _>(AcmrError::Io {
                    message: "cannot open trace /no/such.trace".into(),
                })
            })
            .unwrap_err();
        assert!(
            matches!(&err, AcmrError::Io { message } if message.contains("/no/such.trace")),
            "{err}"
        );
    }

    #[test]
    fn a_silent_worker_times_out_into_a_typed_error_instead_of_hanging() {
        // A listener that never accepts: the kernel completes the TCP
        // handshake from the backlog, so connecting succeeds — then
        // the greeting never comes. The io_timeout must cut the read
        // loose as a typed transport error on the retry path; without
        // it this test would hang forever, which is exactly the bug.
        let silent = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = silent.local_addr().unwrap().to_string();
        let pool = WorkerPool::connect(&[addr.as_str()])
            .unwrap()
            .retries(1)
            .io_timeout(std::time::Duration::from_millis(200));
        let start = std::time::Instant::now();
        let err = pool
            .run_job(0, "greedy", None, None, || {
                Ok((vec![1u32], Vec::<Result<Request, AcmrError>>::new()))
            })
            .unwrap_err();
        assert!(
            matches!(&err, AcmrError::Remote { code, .. } if code == CLUSTER_ERROR_CODE),
            "{err}"
        );
        // Two bounded attempts at 200 ms each, not an unbounded hang.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "timed out too slowly: {:?}",
            start.elapsed()
        );
        drop(silent);
    }

    #[test]
    fn quarantined_start_slot_is_skipped_without_burning_an_attempt() {
        // Regression: a job whose round-robin *start* slot is already
        // quarantined must begin on the next alive worker in its very
        // first attempt — the quarantine exists precisely so later
        // jobs stop paying for a worker known to be dead.
        let mut registry = acmr_core::Registry::new();
        acmr_core::register_core(&mut registry);
        let dead = crate::server::serve(
            registry,
            crate::server::ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..crate::server::ServeConfig::default()
            },
        )
        .expect("bind doomed worker");
        let mut registry = acmr_core::Registry::new();
        acmr_core::register_core(&mut registry);
        let alive = crate::server::serve(
            registry,
            crate::server::ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..crate::server::ServeConfig::default()
            },
        )
        .expect("bind surviving worker");
        let dead_addr = dead.local_addr().to_string();
        dead.shutdown(); // worker 0's port now refuses connections
        let pool =
            WorkerPool::connect(&[dead_addr, alive.local_addr().to_string()]).expect("adopt");
        let source = || {
            Ok((
                vec![1u32],
                vec![Ok(Request::unit(acmr_graph::EdgeSet::singleton(
                    acmr_graph::EdgeId(0),
                )))],
            ))
        };
        // Job 1 starts on the dead slot: its connect fails, the slot
        // is quarantined, and the bounded retry carries it to the
        // survivor.
        let report = pool
            .run_job(0, "aag-unweighted", None, None, source)
            .expect("job 1");
        assert_eq!(report.requests, 1);
        assert_eq!(pool.alive(), 1);
        // Job 2 also *starts* at slot 0 — but with zero retries left
        // it only succeeds if the quarantined slot is skipped when
        // picking the first worker, not discovered again the hard way.
        let pool = pool.retries(0);
        let report = pool
            .run_job(0, "aag-unweighted", None, None, source)
            .expect(
                "a job starting on a quarantined slot must begin on the next alive worker \
             in its first attempt",
            );
        assert_eq!(report.requests, 1);
        alive.shutdown();
    }

    #[test]
    fn batch_zero_is_rejected_upfront() {
        let pool = WorkerPool::connect(&["127.0.0.1:1"]).unwrap();
        let err = pool
            .run_job(0, "greedy", None, Some(0), || {
                Ok((vec![1u32], Vec::<Result<Request, AcmrError>>::new()))
            })
            .unwrap_err();
        assert!(matches!(err, AcmrError::InvalidRequest { .. }), "{err}");
    }
}
