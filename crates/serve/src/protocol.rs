//! The `ACMR-SERVE v1` wire protocol: constants, the capped line
//! reader both ends use, and the error-reply encoding.
//!
//! The protocol is line-based on purpose — it is the trace grammar of
//! `docs/TRACE_FORMAT.md` lifted onto a socket (request frames *are*
//! trace request lines, parsed by the same
//! [`acmr_workloads::trace::parse_request_line`] the file reader
//! uses), so `nc` is a usable client and every framing rule is
//! specified in one place: `docs/SERVING.md`.
//!
//! ## Frame summary
//!
//! ```text
//! server → client   ACMR-SERVE v1              greeting, on accept
//! client → server   OPEN <spec> [seed=<S>]     handshake line 1
//!                   edges <m>                  handshake line 2
//!                   caps <c1> … <cm>           handshake line 3
//! server → client   OK <session-id> <canonical-spec>
//! client → server   <cost> <edge>…             one arrival (trace grammar)
//!                   BATCH <n>                  then exactly n request lines
//!                   END                        finish the session
//! server → client   EVENT <json>               one per arrival, in order
//!                   REPORT <json>              reply to END, then close
//!                   ERR <code> <message>       terminal: connection closes
//! ```

use acmr_core::AcmrError;
use acmr_workloads::trace::LineScanner;
use std::io::Read;

/// The greeting the server writes on accept, and the protocol version
/// a client must expect.
pub const GREETING: &str = "ACMR-SERVE v1";

/// Longest wire line either end accepts — **equal to the trace
/// reader's [`acmr_workloads::trace::MAX_LINE_BYTES`]**, so the socket
/// accepts exactly the lines the file reader accepts (a trace that
/// streams through `acmr run --stream` always replays through `acmr
/// client`) while an adversarial newline-free stream still cannot
/// balloon a connection thread's memory past this cap.
pub const MAX_FRAME_BYTES: usize = acmr_workloads::trace::MAX_LINE_BYTES;

/// Largest `BATCH <n>` a server accepts: bounds the per-connection
/// request buffer the same way [`MAX_FRAME_BYTES`] bounds lines.
pub const MAX_BATCH: usize = 1 << 16;

/// Where the protocol is specified — echoed in every `ERR` reply so an
/// operator staring at a raw socket log knows where to look.
pub const SPEC_POINTER: &str = "protocol spec: docs/SERVING.md";

/// The stable wire code an [`AcmrError`] maps onto in `ERR` replies.
///
/// Codes are part of the protocol surface (scripts may dispatch on
/// them), so they are spelled out in `docs/SERVING.md` and must not
/// change meaning within `v1`.
pub fn error_code(e: &AcmrError) -> &'static str {
    match e {
        AcmrError::SpecParse { .. } => "spec",
        AcmrError::UnknownAlgorithm { .. } => "unknown-algorithm",
        AcmrError::BadParam { .. } => "bad-param",
        AcmrError::ContractViolation { .. } => "violation",
        AcmrError::SessionPoisoned => "poisoned",
        AcmrError::InvalidRequest { .. } => "invalid",
        AcmrError::TraceParse { .. } => "parse",
        AcmrError::Io { .. } => "io",
        AcmrError::Remote { .. } => "proto",
    }
}

/// Render an [`AcmrError`] as the single-line `ERR` reply the server
/// sends before closing the connection (newline not included).
pub fn error_reply(e: &AcmrError) -> String {
    // Error displays are single-line by construction; the replace is
    // belt-and-braces so a future message can never break the framing.
    let message = e.to_string().replace('\n', " ");
    format!("ERR {} {message} ({SPEC_POINTER})", error_code(e))
}

/// Decode an `ERR <code> <message>` line (without the `ERR ` prefix
/// already stripped) into the typed [`AcmrError::Remote`] the client
/// surfaces.
pub fn decode_error_reply(rest: &str) -> AcmrError {
    let mut parts = rest.splitn(2, ' ');
    let code = parts.next().unwrap_or("proto").to_string();
    let message = parts.next().unwrap_or("").to_string();
    AcmrError::Remote { code, message }
}

/// Chunked, capped line reader both the server and the client run
/// their half of the socket through: yields trimmed lines with their
/// 1-based wire line number, and rejects any line longer than
/// [`MAX_FRAME_BYTES`] with a typed [`AcmrError::TraceParse`] —
/// bounded memory against hostile peers, never a panic.
///
/// A thin owned-`String` wrapper over
/// [`acmr_workloads::trace::LineScanner`] — the *same* byte-level
/// tokenizer the trace file reader uses, so the socket and the file
/// carve lines identically by construction.
///
/// ```
/// use acmr_serve::protocol::FrameReader;
///
/// let mut frames = FrameReader::new("OPEN greedy\nedges 2\n".as_bytes());
/// assert_eq!(frames.next_line().unwrap(), Some((1, "OPEN greedy".to_string())));
/// assert_eq!(frames.next_line().unwrap(), Some((2, "edges 2".to_string())));
/// assert_eq!(frames.next_line().unwrap(), None); // clean EOF
/// ```
pub struct FrameReader<R: Read> {
    scan: LineScanner<R>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap one half of a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader {
            scan: LineScanner::with_max_line(inner, MAX_FRAME_BYTES),
        }
    }

    /// Lines yielded so far (the next line is number `line_number()+1`).
    pub fn line_number(&self) -> usize {
        self.scan.line_number()
    }

    /// The next line as `(1-based number, trimmed content)`, `None` at
    /// end of stream. A peer that stops mid-line yields the partial
    /// line once EOF is observed, exactly like the trace reader.
    pub fn next_line(&mut self) -> Result<Option<(usize, String)>, AcmrError> {
        Ok(self
            .scan
            .next_line()?
            .map(|(n, line)| (n, line.to_string())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_reader_yields_numbered_trimmed_lines() {
        let input = "  OPEN greedy  \n\nEND";
        let mut frames = FrameReader::new(input.as_bytes());
        assert_eq!(frames.next_line().unwrap(), Some((1, "OPEN greedy".into())));
        assert_eq!(frames.next_line().unwrap(), Some((2, String::new())));
        // Final line without trailing newline still arrives.
        assert_eq!(frames.next_line().unwrap(), Some((3, "END".into())));
        assert_eq!(frames.next_line().unwrap(), None);
        assert_eq!(frames.line_number(), 3);
    }

    #[test]
    fn frame_reader_caps_line_length() {
        let long = vec![b'a'; MAX_FRAME_BYTES + acmr_workloads::trace::CHUNK_SIZE + 1];
        let err = FrameReader::new(&long[..]).next_line().unwrap_err();
        assert!(
            matches!(&err, AcmrError::TraceParse { line: 1, message } if message.contains("exceeds")),
            "{err}"
        );
    }

    #[test]
    fn frame_reader_rejects_invalid_utf8() {
        let err = FrameReader::new(&[0xff, 0xfe, b'\n'][..])
            .next_line()
            .unwrap_err();
        assert!(
            matches!(err, AcmrError::TraceParse { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn error_replies_round_trip_through_the_wire_form() {
        let e = AcmrError::TraceParse {
            line: 7,
            message: "bad cost nan".into(),
        };
        let reply = error_reply(&e);
        assert!(reply.starts_with("ERR parse "), "{reply}");
        assert!(reply.contains(SPEC_POINTER), "{reply}");
        let decoded = decode_error_reply(reply.strip_prefix("ERR ").unwrap());
        match decoded {
            AcmrError::Remote { code, message } => {
                assert_eq!(code, "parse");
                assert!(message.contains("bad cost nan"));
            }
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn every_error_variant_has_a_stable_code() {
        assert_eq!(error_code(&AcmrError::SessionPoisoned), "poisoned");
        assert_eq!(
            error_code(&AcmrError::ContractViolation {
                algorithm: "x".into(),
                detail: "y".into()
            }),
            "violation"
        );
        assert_eq!(
            error_code(&AcmrError::Remote {
                code: "spec".into(),
                message: String::new()
            }),
            "proto"
        );
    }
}
