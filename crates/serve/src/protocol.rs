//! The `ACMR-SERVE` wire protocol: constants, the capped line reader
//! both ends use, the error-reply encoding, and the `v2` binary frame
//! codec.
//!
//! The **v1** protocol is line-based on purpose — it is the trace
//! grammar of `docs/TRACE_FORMAT.md` lifted onto a socket (request
//! frames *are* trace request lines, parsed by the same
//! [`acmr_workloads::trace::parse_request_line`] the file reader
//! uses), so `nc` is a usable client and every framing rule is
//! specified in one place: `docs/SERVING.md`.
//!
//! ## v1 frame summary
//!
//! ```text
//! server → client   ACMR-SERVE v1              greeting, on accept
//! client → server   OPEN <spec> [seed=<S>]     handshake line 1
//!                   edges <m>                  handshake line 2
//!                   caps <c1> … <cm>           handshake line 3
//! server → client   OK <session-id> <canonical-spec>
//! client → server   <cost> <edge>…             one arrival (trace grammar)
//!                   BATCH <n>                  then exactly n request lines
//!                   END                        finish the session
//! server → client   EVENT <json>               one per arrival, in order
//!                   REPORT <json>              reply to END, then close
//! server → client   ERR <code> <message>       terminal: connection closes
//! ```
//!
//! ## v2: binary frames, negotiated at `OPEN`
//!
//! The **v2** mode keeps the line-based bootstrap (greeting and the
//! three handshake lines are unchanged) and is negotiated with an
//! extra `OPEN` argument: `OPEN <spec> [seed=<S>] proto=v2
//! [events=on]`. A v2-capable server replies `OK <id> <spec>
//! proto=v2` and **both directions switch to length-prefixed binary
//! frames** after their respective handshake line:
//!
//! ```text
//! frame := type:u8  len:u32le  payload[len]
//! ```
//!
//! Arrival payloads are *exactly* the `ACMR-TRACE v2` record bytes of
//! `docs/TRACE_FORMAT.md` ([`acmr_workloads::encode_record_into`] /
//! [`acmr_workloads::decode_record`] are the codec, shared with the
//! trace file writer/reader — file ≡ socket by construction). A
//! `BATCH` frame is acknowledged with **one** [`BatchSummary`] frame
//! unless the client opted into per-event replies with `events=on`;
//! a `RESET` frame tears the session down and opens a fresh one on
//! the same connection — the persistent-session mode cluster sweeps
//! use. Error replies carry the same typed codes as v1, as the
//! payload of an [`FRAME_ERR`] frame. Full spec: `docs/SERVING.md`.

use acmr_core::{AcmrError, ArrivalEvent};
use acmr_workloads::trace::LineScanner;
use serde::{Deserialize, Serialize};
use std::io::Read;

/// The greeting the server writes on accept — the version of the
/// line-based *bootstrap* grammar (`v2` sessions are negotiated per
/// connection at `OPEN`, so the greeting never changes with them; a
/// greeting bump would mean the bootstrap lines themselves changed).
pub const GREETING: &str = "ACMR-SERVE v1";

/// The `OPEN` (and `OK`) argument that negotiates binary-frame mode.
pub const PROTO_V2_TOKEN: &str = "proto=v2";

/// The `OPEN` argument that opts a v2 session into per-event `BATCH`
/// replies (v1 behavior); without it a `BATCH` frame is acknowledged
/// by one [`BatchSummary`] frame.
pub const EVENTS_TOKEN: &str = "events=on";

/// Which protocol a serving endpoint (or client) speaks after `OPEN`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoVersion {
    /// The line protocol: JSON `EVENT` per arrival, text frames.
    V1,
    /// Binary frames: trace-record arrivals, batch-summary acks,
    /// `RESET` persistent sessions.
    V2,
}

impl ProtoVersion {
    /// Parse a `--proto` flag value (`"v1"` / `"v2"`).
    pub fn parse(s: &str) -> Option<ProtoVersion> {
        match s {
            "v1" => Some(ProtoVersion::V1),
            "v2" => Some(ProtoVersion::V2),
            _ => None,
        }
    }

    /// The flag spelling (`"v1"` / `"v2"`).
    pub fn label(self) -> &'static str {
        match self {
            ProtoVersion::V1 => "v1",
            ProtoVersion::V2 => "v2",
        }
    }
}

/// Longest wire line either end accepts — **equal to the trace
/// reader's [`acmr_workloads::trace::MAX_LINE_BYTES`]**, so the socket
/// accepts exactly the lines the file reader accepts (a trace that
/// streams through `acmr run --stream` always replays through `acmr
/// client`) while an adversarial newline-free stream still cannot
/// balloon a connection thread's memory past this cap.
pub const MAX_FRAME_BYTES: usize = acmr_workloads::trace::MAX_LINE_BYTES;

/// Largest `BATCH <n>` a server accepts: bounds the per-connection
/// request buffer the same way [`MAX_FRAME_BYTES`] bounds lines.
pub const MAX_BATCH: usize = 1 << 16;

/// Where the protocol is specified — echoed in every `ERR` reply so an
/// operator staring at a raw socket log knows where to look.
pub const SPEC_POINTER: &str = "protocol spec: docs/SERVING.md";

/// The stable wire code an [`AcmrError`] maps onto in `ERR` replies.
///
/// Codes are part of the protocol surface (scripts may dispatch on
/// them), so they are spelled out in `docs/SERVING.md` and must not
/// change meaning within `v1`.
pub fn error_code(e: &AcmrError) -> &'static str {
    match e {
        AcmrError::SpecParse { .. } => "spec",
        AcmrError::UnknownAlgorithm { .. } => "unknown-algorithm",
        AcmrError::BadParam { .. } => "bad-param",
        AcmrError::ContractViolation { .. } => "violation",
        AcmrError::SessionPoisoned => "poisoned",
        AcmrError::InvalidRequest { .. } => "invalid",
        AcmrError::TraceParse { .. } => "parse",
        AcmrError::Io { .. } => "io",
        AcmrError::Busy { .. } => "busy",
        AcmrError::Remote { .. } => "proto",
    }
}

/// Render an [`AcmrError`] as the single-line `ERR` reply the server
/// sends before closing the connection (newline not included).
pub fn error_reply(e: &AcmrError) -> String {
    format!("ERR {}", error_reply_body(e))
}

/// The `ERR` reply without its `ERR ` keyword: `<code> <message>
/// (<spec pointer>)` — what follows the keyword in a v1 line and the
/// **entire payload** of a v2 [`FRAME_ERR`] frame, so both protocols
/// share one error grammar and one decoder ([`decode_error_reply`]).
pub fn error_reply_body(e: &AcmrError) -> String {
    // Error displays are single-line by construction; the replace is
    // belt-and-braces so a future message can never break the framing.
    let message = e.to_string().replace('\n', " ");
    format!("{} {message} ({SPEC_POINTER})", error_code(e))
}

/// Decode an `ERR <code> <message>` line (without the `ERR ` prefix
/// already stripped) into the typed [`AcmrError::Remote`] the client
/// surfaces.
pub fn decode_error_reply(rest: &str) -> AcmrError {
    let mut parts = rest.splitn(2, ' ');
    let code = parts.next().unwrap_or("proto").to_string();
    let message = parts.next().unwrap_or("").to_string();
    AcmrError::Remote { code, message }
}

/// Chunked, capped line reader both the server and the client run
/// their half of the socket through: yields trimmed lines with their
/// 1-based wire line number, and rejects any line longer than
/// [`MAX_FRAME_BYTES`] with a typed [`AcmrError::TraceParse`] —
/// bounded memory against hostile peers, never a panic.
///
/// A thin owned-`String` wrapper over
/// [`acmr_workloads::trace::LineScanner`] — the *same* byte-level
/// tokenizer the trace file reader uses, so the socket and the file
/// carve lines identically by construction.
///
/// ```
/// use acmr_serve::protocol::FrameReader;
///
/// let mut frames = FrameReader::new("OPEN greedy\nedges 2\n".as_bytes());
/// assert_eq!(frames.next_line().unwrap(), Some((1, "OPEN greedy".to_string())));
/// assert_eq!(frames.next_line().unwrap(), Some((2, "edges 2".to_string())));
/// assert_eq!(frames.next_line().unwrap(), None); // clean EOF
/// ```
pub struct FrameReader<R: Read> {
    scan: LineScanner<R>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap one half of a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader {
            scan: LineScanner::with_max_line(inner, MAX_FRAME_BYTES),
        }
    }

    /// Lines yielded so far (the next line is number `line_number()+1`).
    pub fn line_number(&self) -> usize {
        self.scan.line_number()
    }

    /// The wire line number of the line that *would come next* —
    /// where a frame the peer never sent was expected. This is the
    /// number a "connection closed before …" `ERR` must report:
    /// reporting `line_number()` instead points one line off (at the
    /// last line actually read — typically a blank line the server
    /// skipped, since blanks between frames are ignored but still
    /// numbered), which is exactly the drift the protocol unit tests
    /// pin below.
    pub fn next_line_number(&self) -> usize {
        self.scan.line_number() + 1
    }

    /// The next line as `(1-based number, trimmed content)`, `None` at
    /// end of stream. A peer that stops mid-line yields the partial
    /// line once EOF is observed, exactly like the trace reader.
    pub fn next_line(&mut self) -> Result<Option<(usize, String)>, AcmrError> {
        Ok(self
            .scan
            .next_line()?
            .map(|(n, line)| (n, line.to_string())))
    }

    /// Dismantle the reader for the v2 protocol upgrade: any bytes
    /// scanned ahead of the last yielded line (a pipelining peer's
    /// first binary frames) plus the raw stream. Feed both to a
    /// [`BinFrameReader`] via [`BinFrameReader::with_rest`] so no
    /// byte is lost at the line→binary boundary.
    pub fn into_binary(self) -> (Vec<u8>, R) {
        self.scan.into_parts()
    }
}

// ---------------------------------------------------------------------------
// v2 binary frames
// ---------------------------------------------------------------------------

/// v2 frame type: one arrival; payload is exactly one `ACMR-TRACE v2`
/// record (client → server).
pub const FRAME_REQ: u8 = 0x01;
/// v2 frame type: a batch of arrivals; payload is a `u32le` count
/// followed by that many records back-to-back (client → server).
pub const FRAME_BATCH: u8 = 0x02;
/// v2 frame type: finish the session; empty payload (client → server).
pub const FRAME_END: u8 = 0x03;
/// v2 frame type: abandon the current session and open a fresh one on
/// the same connection; payload per [`encode_reset`] (client → server).
pub const FRAME_RESET: u8 = 0x04;
/// v2 frame type: request the server's counters; empty payload
/// (client → server). Answered with one [`FRAME_STATS_REPLY`] frame.
/// Valid at any frame boundary — mid-session, or after `END` while
/// the connection waits for a `RESET`. The v1 twin is the bare
/// `STATS` request line, answered by a `STATS <json>` line with the
/// same payload (also accepted *instead of* `OPEN`, so a monitoring
/// probe needs no session).
pub const FRAME_STATS: u8 = 0x05;
/// v2 frame type: session opened (reply to `RESET`); payload is the
/// `u64le` session id followed by the canonical spec in UTF-8.
pub const FRAME_OK: u8 = 0x80;
/// v2 frame type: one audited decision; payload is the same JSON
/// document a v1 `EVENT` line carries.
pub const FRAME_EVENT: u8 = 0x81;
/// v2 frame type: one [`BatchSummary`] acknowledging a whole `BATCH`
/// frame (unless the session opted into per-event replies).
pub const FRAME_SUMMARY: u8 = 0x82;
/// v2 frame type: the final report (reply to `END`); payload is the
/// same JSON document a v1 `REPORT` line carries.
pub const FRAME_REPORT: u8 = 0x83;
/// v2 frame type: terminal error; payload is the UTF-8
/// [`error_reply_body`] text — same codes, same grammar as v1.
pub const FRAME_ERR: u8 = 0x84;
/// v2 frame type: reply to [`FRAME_STATS`]; payload is the UTF-8 JSON
/// serialization of one [`StatsReport`] — byte-identical to what
/// follows `STATS ` in the v1 reply line.
pub const FRAME_STATS_REPLY: u8 = 0x85;

/// Reader for the v2 binary frame stream: `type:u8 len:u32le
/// payload[len]`, with the payload capped at [`MAX_FRAME_BYTES`]
/// (bounded memory against hostile peers, exactly like the line
/// reader) and a frame counter for error messages.
///
/// Framing violations (oversized length, truncation mid-frame) are
/// typed [`AcmrError::TraceParse`] errors whose `line` is the 1-based
/// index of the offending *frame* — the binary stream has no lines;
/// I/O failures surface as [`AcmrError::Io`].
pub struct BinFrameReader<R: Read> {
    inner: R,
    frames: usize,
}

impl<R: Read> BinFrameReader<R> {
    /// Read frames from `inner`.
    pub fn new(inner: R) -> Self {
        BinFrameReader { inner, frames: 0 }
    }

    /// Frames yielded so far.
    pub fn frame_number(&self) -> usize {
        self.frames
    }

    /// Read one frame into `payload` (cleared first), returning its
    /// type byte — or `None` on a clean EOF *at a frame boundary*
    /// (the peer hung up between frames). EOF inside a frame is a
    /// typed truncation error.
    pub fn read_frame(&mut self, payload: &mut Vec<u8>) -> Result<Option<u8>, AcmrError> {
        payload.clear();
        let mut ty = [0u8; 1];
        if !read_full(&mut self.inner, &mut ty)? {
            return Ok(None);
        }
        let frame = self.frames + 1;
        let mut len_bytes = [0u8; 4];
        if !read_full(&mut self.inner, &mut len_bytes)? {
            return Err(truncated(frame));
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(AcmrError::TraceParse {
                line: frame,
                message: format!("frame payload of {len} bytes exceeds {MAX_FRAME_BYTES}"),
            });
        }
        payload.resize(len, 0);
        if !read_full(&mut self.inner, payload)? {
            return Err(truncated(frame));
        }
        self.frames = frame;
        Ok(Some(ty[0]))
    }
}

impl<R: Read> BinFrameReader<std::io::Chain<std::io::Cursor<Vec<u8>>, R>> {
    /// A frame reader over `rest` (bytes a [`FrameReader`] had
    /// scanned past the handshake's last line) followed by the raw
    /// stream — the receiving half of the line→binary upgrade.
    pub fn with_rest(rest: Vec<u8>, inner: R) -> Self {
        BinFrameReader::new(std::io::Read::chain(std::io::Cursor::new(rest), inner))
    }
}

/// The pure, push-fed core of the v2 binary framing: bytes go in via
/// [`FrameBuffer::feed`], whole frames come out of
/// [`FrameBuffer::next_frame`] — no reader, no I/O, no blocking. This
/// is what the sans-I/O [`crate::machine::Connection`] carves frames
/// with; [`BinFrameReader`] is its pull-based twin for blocking
/// streams (the client), and the two enforce the same grammar:
/// `type:u8 len:u32le payload[len]`, payloads capped at
/// [`MAX_FRAME_BYTES`], truncation and oversize typed by 1-based
/// frame number.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
    frames: usize,
    eof: bool,
}

impl FrameBuffer {
    /// An empty frame buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append input bytes (compacting the consumed prefix first).
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Signal end of input: a partial frame still buffered becomes a
    /// typed truncation error on the next [`FrameBuffer::next_frame`];
    /// an empty buffer is a clean end at a frame boundary.
    pub fn set_eof(&mut self) {
        self.eof = true;
    }

    /// Whether end of input was signalled.
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Frames yielded so far.
    pub fn frame_number(&self) -> usize {
        self.frames
    }

    /// Carve the next complete frame into `payload` (cleared first),
    /// returning its type byte. `Ok(None)` means *no complete frame
    /// buffered*: feed more input — unless [`FrameBuffer::is_eof`], in
    /// which case the stream ended cleanly at a frame boundary (EOF
    /// mid-frame is the typed truncation error instead, exactly like
    /// [`BinFrameReader`]). An oversized declared length is refused
    /// from the 5 header bytes alone, before any payload arrives.
    pub fn next_frame(&mut self, payload: &mut Vec<u8>) -> Result<Option<u8>, AcmrError> {
        let pending = self.buf.len() - self.start;
        if pending == 0 {
            return Ok(None);
        }
        let frame = self.frames + 1;
        if pending < 5 {
            return if self.eof {
                Err(truncated(frame))
            } else {
                Ok(None)
            };
        }
        let head = &self.buf[self.start..];
        let ty = head[0];
        let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(AcmrError::TraceParse {
                line: frame,
                message: format!("frame payload of {len} bytes exceeds {MAX_FRAME_BYTES}"),
            });
        }
        if pending < 5 + len {
            return if self.eof {
                Err(truncated(frame))
            } else {
                Ok(None)
            };
        }
        payload.clear();
        payload.extend_from_slice(&self.buf[self.start + 5..self.start + 5 + len]);
        self.start += 5 + len;
        self.frames = frame;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(ty))
    }
}

/// Server-wide counters in a `STATS` reply: the lifetime totals of
/// the whole process, across every connection and shard. All counts
/// are monotonic except the two `*_active` gauges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Milliseconds since the server started listening (0 when the
    /// machine is driven without a clock, e.g. in-process tests).
    pub uptime_ms: u64,
    /// Connections accepted since start (including busy-rejected ones).
    pub connections_opened: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Sessions opened since start (`OPEN` handshakes plus `RESET`s).
    pub sessions_opened: u64,
    /// Sessions currently live (opened, not yet ended or torn down).
    pub sessions_active: u64,
    /// Arrival requests admitted to a session (single or in batches).
    pub arrivals: u64,
    /// `BATCH` frames processed.
    pub batches: u64,
    /// Payload bytes read from clients.
    pub bytes_in: u64,
    /// Reply bytes written to clients (greetings included).
    pub bytes_out: u64,
    /// Typed `ERR` replies emitted.
    pub errors: u64,
    /// Connections refused with `ERR busy` by the overload policy.
    pub busy_rejections: u64,
}

/// Per-connection counters in a `STATS` reply: what *this* connection
/// has done since it was accepted.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnStats {
    /// Sessions opened on this connection (`OPEN` plus `RESET`s).
    pub sessions: u64,
    /// Arrival requests processed on this connection.
    pub arrivals: u64,
    /// `BATCH` frames processed on this connection.
    pub batches: u64,
    /// Bytes received on this connection.
    pub bytes_in: u64,
    /// Bytes sent on this connection.
    pub bytes_out: u64,
    /// Typed `ERR` replies emitted on this connection.
    pub errors: u64,
}

/// The payload of a `STATS` reply — one JSON object on the wire,
/// byte-identical between the v1 `STATS <json>` line and the v2
/// [`FRAME_STATS_REPLY`] frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Server-wide totals.
    pub server: ServerStats,
    /// The asking connection's own counters.
    pub connection: ConnStats,
}

fn truncated(frame: usize) -> AcmrError {
    AcmrError::TraceParse {
        line: frame,
        message: "connection closed mid-frame".into(),
    }
}

/// `read_exact`, except a clean EOF **before the first byte** returns
/// `Ok(false)` instead of an error (EOF after at least one byte is
/// still distinguished: it surfaces as `Ok(false)` too, which callers
/// turn into a typed truncation error — the buffer being partially
/// filled is never observable).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, AcmrError> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => return Ok(false),
            Ok(n) => at += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                return Err(AcmrError::Io {
                    message: format!("frame read failed: {e}"),
                })
            }
        }
    }
    Ok(true)
}

/// Write one frame: `type`, `u32le` length, payload. The caller
/// flushes; payloads above [`MAX_FRAME_BYTES`] are refused (the
/// receiver would reject them anyway).
pub fn write_frame<W: std::io::Write>(w: &mut W, ty: u8, payload: &[u8]) -> Result<(), AcmrError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(AcmrError::InvalidRequest {
            reason: format!(
                "frame payload of {} bytes exceeds {MAX_FRAME_BYTES}",
                payload.len()
            ),
        });
    }
    w.write_all(&[ty])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// One [`FRAME_SUMMARY`] payload: what a whole `BATCH` collapsed to.
/// Everything a driver that discards per-arrival events still needs —
/// progress accounting and the running objective — in 28 fixed bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchSummary {
    /// Arrivals the batch carried (echoed so the client can verify
    /// the server consumed exactly the frame it sent).
    pub n: u32,
    /// How many of them ended the batch still accepted.
    pub accepted: u32,
    /// Preemptions the batch performed.
    pub preemptions: u32,
    /// Rejected cost the batch added to the objective.
    pub rejected_cost_delta: f64,
    /// Running total rejected cost after the batch — the paper's
    /// objective so far.
    pub total_rejected_cost: f64,
}

/// Collapse a batch's audited events into its [`BatchSummary`].
pub fn summarize_events(events: &[ArrivalEvent]) -> BatchSummary {
    BatchSummary {
        n: events.len() as u32,
        accepted: events.iter().filter(|e| e.accepted).count() as u32,
        preemptions: events.iter().map(|e| e.preempted.len() as u32).sum(),
        rejected_cost_delta: events.iter().map(|e| e.rejected_cost_delta).sum(),
        total_rejected_cost: events.last().map_or(0.0, |e| e.total_rejected_cost),
    }
}

/// Encode a [`BatchSummary`] as a [`FRAME_SUMMARY`] payload (little
/// endian, fields in declaration order).
pub fn encode_summary(buf: &mut Vec<u8>, s: &BatchSummary) {
    buf.extend_from_slice(&s.n.to_le_bytes());
    buf.extend_from_slice(&s.accepted.to_le_bytes());
    buf.extend_from_slice(&s.preemptions.to_le_bytes());
    buf.extend_from_slice(&s.rejected_cost_delta.to_le_bytes());
    buf.extend_from_slice(&s.total_rejected_cost.to_le_bytes());
}

/// Decode a [`FRAME_SUMMARY`] payload.
pub fn decode_summary(payload: &[u8]) -> Result<BatchSummary, AcmrError> {
    let bytes: &[u8; 28] = payload.try_into().map_err(|_| AcmrError::Remote {
        code: "proto".into(),
        message: format!("summary frame must be 28 bytes, got {}", payload.len()),
    })?;
    let u32at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4 bytes"));
    let f64at = |i: usize| f64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
    Ok(BatchSummary {
        n: u32at(0),
        accepted: u32at(4),
        preemptions: u32at(8),
        rejected_cost_delta: f64at(12),
        total_rejected_cost: f64at(20),
    })
}

/// Decoded [`FRAME_RESET`] payload: everything the v1 handshake
/// carries, in one binary frame — so a persistent connection can hop
/// to a new `(spec, seed, capacities)` session without reconnecting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResetFrame {
    /// Algorithm spec for the fresh session (the `OPEN <spec>` slot).
    pub spec: String,
    /// Base seed, when given (the `seed=<S>` slot).
    pub base_seed: Option<u64>,
    /// Edge capacities of the fresh session (the `edges`/`caps`
    /// lines).
    pub capacities: Vec<u32>,
}

/// Encode a [`FRAME_RESET`] payload: `u32le` spec length, spec UTF-8,
/// `u8` seed flag, `u64le` seed (zero when absent), `u32le` edge
/// count, then one `u32le` capacity per edge.
pub fn encode_reset(buf: &mut Vec<u8>, spec: &str, base_seed: Option<u64>, capacities: &[u32]) {
    buf.extend_from_slice(&(spec.len() as u32).to_le_bytes());
    buf.extend_from_slice(spec.as_bytes());
    buf.push(base_seed.is_some() as u8);
    buf.extend_from_slice(&base_seed.unwrap_or(0).to_le_bytes());
    buf.extend_from_slice(&(capacities.len() as u32).to_le_bytes());
    for &c in capacities {
        buf.extend_from_slice(&c.to_le_bytes());
    }
}

/// Decode a [`FRAME_RESET`] payload. Every violation — truncation,
/// non-UTF-8 spec, trailing bytes — is a typed error naming the
/// malformed field.
pub fn decode_reset(payload: &[u8]) -> Result<ResetFrame, AcmrError> {
    let bad = |what: &str| AcmrError::TraceParse {
        line: 0,
        message: format!("malformed RESET frame: {what}"),
    };
    let take = |at: &mut usize, n: usize| -> Result<&[u8], AcmrError> {
        let slice = payload.get(*at..*at + n).ok_or_else(|| bad("truncated"))?;
        *at += n;
        Ok(slice)
    };
    let mut at = 0;
    let spec_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
    if spec_len > MAX_FRAME_BYTES {
        return Err(bad("spec length overflows the frame"));
    }
    let spec = std::str::from_utf8(take(&mut at, spec_len)?)
        .map_err(|_| bad("spec is not valid UTF-8"))?
        .to_string();
    let seed_flag = take(&mut at, 1)?[0];
    let seed = u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8 bytes"));
    let base_seed = match seed_flag {
        0 => None,
        1 => Some(seed),
        other => return Err(bad(&format!("seed flag must be 0 or 1, got {other}"))),
    };
    let m = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
    let mut capacities = Vec::with_capacity(m.min(1 << 20));
    for _ in 0..m {
        capacities.push(u32::from_le_bytes(
            take(&mut at, 4)?.try_into().expect("4 bytes"),
        ));
    }
    if at != payload.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(ResetFrame {
        spec,
        base_seed,
        capacities,
    })
}

/// Encode a [`FRAME_OK`] payload: `u64le` session id + canonical spec.
pub fn encode_ok(buf: &mut Vec<u8>, id: u64, spec: &str) {
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(spec.as_bytes());
}

/// Decode a [`FRAME_OK`] payload into `(session id, canonical spec)`.
pub fn decode_ok(payload: &[u8]) -> Result<(u64, String), AcmrError> {
    let bad = |what: &str| AcmrError::Remote {
        code: "proto".into(),
        message: format!("malformed OK frame: {what}"),
    };
    let id_bytes = payload.get(..8).ok_or_else(|| bad("truncated"))?;
    let id = u64::from_le_bytes(id_bytes.try_into().expect("8 bytes"));
    let spec = std::str::from_utf8(&payload[8..])
        .map_err(|_| bad("spec is not valid UTF-8"))?
        .to_string();
    Ok((id, spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_reader_yields_numbered_trimmed_lines() {
        let input = "  OPEN greedy  \n\nEND";
        let mut frames = FrameReader::new(input.as_bytes());
        assert_eq!(frames.next_line().unwrap(), Some((1, "OPEN greedy".into())));
        assert_eq!(frames.next_line().unwrap(), Some((2, String::new())));
        // Final line without trailing newline still arrives.
        assert_eq!(frames.next_line().unwrap(), Some((3, "END".into())));
        assert_eq!(frames.next_line().unwrap(), None);
        assert_eq!(frames.line_number(), 3);
    }

    #[test]
    fn frame_reader_caps_line_length() {
        let long = vec![b'a'; MAX_FRAME_BYTES + acmr_workloads::trace::CHUNK_SIZE + 1];
        let err = FrameReader::new(&long[..]).next_line().unwrap_err();
        assert!(
            matches!(&err, AcmrError::TraceParse { line: 1, message } if message.contains("exceeds")),
            "{err}"
        );
    }

    #[test]
    fn frame_reader_rejects_invalid_utf8() {
        let err = FrameReader::new(&[0xff, 0xfe, b'\n'][..])
            .next_line()
            .unwrap_err();
        assert!(
            matches!(err, AcmrError::TraceParse { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn error_replies_round_trip_through_the_wire_form() {
        let e = AcmrError::TraceParse {
            line: 7,
            message: "bad cost nan".into(),
        };
        let reply = error_reply(&e);
        assert!(reply.starts_with("ERR parse "), "{reply}");
        assert!(reply.contains(SPEC_POINTER), "{reply}");
        let decoded = decode_error_reply(reply.strip_prefix("ERR ").unwrap());
        match decoded {
            AcmrError::Remote { code, message } => {
                assert_eq!(code, "parse");
                assert!(message.contains("bad cost nan"));
            }
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn line_numbers_stay_exact_across_blank_and_whitespace_lines() {
        // The satellite-3 regression: blank and whitespace-only lines
        // are skipped *between* frames but still numbered on the wire,
        // so the number of a missing frame is next_line_number() — not
        // line_number(), which points one line off (at the last blank
        // actually consumed).
        let input = "OPEN greedy\n\n   \t \nedges 2\n\n";
        let mut frames = FrameReader::new(input.as_bytes());
        assert_eq!(frames.next_line_number(), 1);
        assert_eq!(frames.next_line().unwrap(), Some((1, "OPEN greedy".into())));
        assert_eq!(frames.next_line().unwrap(), Some((2, String::new())));
        // Whitespace-only trims to blank but still owns its number.
        assert_eq!(frames.next_line().unwrap(), Some((3, String::new())));
        assert_eq!(frames.next_line().unwrap(), Some((4, "edges 2".into())));
        assert_eq!(frames.next_line().unwrap(), Some((5, String::new())));
        assert_eq!(frames.next_line().unwrap(), None);
        // The peer stopped before its `caps` line: that line would
        // have been wire line 6, and that is what an ERR must report.
        assert_eq!(frames.line_number(), 5);
        assert_eq!(frames.next_line_number(), 6);
    }

    #[test]
    fn bin_frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_REQ, &[1, 2, 3]).unwrap();
        write_frame(&mut wire, FRAME_END, &[]).unwrap();
        let mut reader = BinFrameReader::new(&wire[..]);
        let mut payload = Vec::new();
        assert_eq!(reader.read_frame(&mut payload).unwrap(), Some(FRAME_REQ));
        assert_eq!(payload, [1, 2, 3]);
        assert_eq!(reader.read_frame(&mut payload).unwrap(), Some(FRAME_END));
        assert!(payload.is_empty());
        assert_eq!(reader.read_frame(&mut payload).unwrap(), None); // clean EOF
        assert_eq!(reader.frame_number(), 2);
    }

    #[test]
    fn bin_frame_reader_rejects_truncation_and_oversize() {
        // Truncated mid-payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_REQ, &[9; 10]).unwrap();
        wire.truncate(wire.len() - 3);
        let mut payload = Vec::new();
        let err = BinFrameReader::new(&wire[..])
            .read_frame(&mut payload)
            .unwrap_err();
        assert!(
            matches!(&err, AcmrError::TraceParse { line: 1, message } if message.contains("mid-frame")),
            "{err}"
        );
        // Truncated inside the length prefix.
        let err = BinFrameReader::new(&[FRAME_REQ, 0xff][..])
            .read_frame(&mut payload)
            .unwrap_err();
        assert!(
            matches!(err, AcmrError::TraceParse { line: 1, .. }),
            "{err}"
        );
        // A length beyond the cap is refused before any allocation.
        let mut wire = vec![FRAME_REQ];
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = BinFrameReader::new(&wire[..])
            .read_frame(&mut payload)
            .unwrap_err();
        assert!(
            matches!(&err, AcmrError::TraceParse { line: 1, message } if message.contains("exceeds")),
            "{err}"
        );
        // And the writer refuses to emit one.
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        let err = write_frame(&mut Vec::new(), FRAME_REQ, &huge).unwrap_err();
        assert!(matches!(err, AcmrError::InvalidRequest { .. }), "{err}");
    }

    #[test]
    fn reset_frames_round_trip() {
        for (spec, seed, caps) in [
            ("greedy", None, vec![1u32, 2, 3]),
            ("aag-weighted?seed=7", Some(42), vec![5; 100]),
            ("x", Some(0), vec![]),
        ] {
            let mut buf = Vec::new();
            encode_reset(&mut buf, spec, seed, &caps);
            let decoded = decode_reset(&buf).unwrap();
            assert_eq!(decoded.spec, spec);
            assert_eq!(decoded.base_seed, seed);
            assert_eq!(decoded.capacities, caps);
            // Any truncation is a typed error, never a panic.
            for cut in 0..buf.len() {
                let err = decode_reset(&buf[..cut]).unwrap_err();
                assert!(matches!(err, AcmrError::TraceParse { .. }), "{err}");
            }
            // Trailing bytes are refused too.
            let mut long = buf.clone();
            long.push(0);
            assert!(decode_reset(&long).is_err());
        }
    }

    #[test]
    fn summaries_round_trip_and_summarize_events() {
        let events = vec![
            ArrivalEvent {
                id: acmr_core::RequestId(0),
                accepted: true,
                preempted: vec![],
                cost: 2.0,
                rejected_cost_delta: 0.0,
                total_rejected_cost: 0.0,
            },
            ArrivalEvent {
                id: acmr_core::RequestId(1),
                accepted: true,
                preempted: vec![acmr_core::RequestId(0)],
                cost: 4.0,
                rejected_cost_delta: 2.0,
                total_rejected_cost: 2.0,
            },
        ];
        let s = summarize_events(&events);
        assert_eq!(s.n, 2);
        assert_eq!(s.accepted, 2);
        assert_eq!(s.preemptions, 1);
        assert_eq!(s.rejected_cost_delta, 2.0);
        assert_eq!(s.total_rejected_cost, 2.0);
        let mut buf = Vec::new();
        encode_summary(&mut buf, &s);
        assert_eq!(buf.len(), 28);
        assert_eq!(decode_summary(&buf).unwrap(), s);
        assert!(decode_summary(&buf[..27]).is_err());
        assert_eq!(summarize_events(&[]), BatchSummary::default());
    }

    #[test]
    fn ok_frames_round_trip() {
        let mut buf = Vec::new();
        encode_ok(&mut buf, 17, "aag-weighted?seed=7");
        assert_eq!(decode_ok(&buf).unwrap(), (17, "aag-weighted?seed=7".into()));
        assert!(decode_ok(&buf[..5]).is_err());
    }

    #[test]
    fn proto_version_parses_flag_values() {
        assert_eq!(ProtoVersion::parse("v1"), Some(ProtoVersion::V1));
        assert_eq!(ProtoVersion::parse("v2"), Some(ProtoVersion::V2));
        assert_eq!(ProtoVersion::parse("v3"), None);
        assert_eq!(ProtoVersion::V2.label(), "v2");
    }

    #[test]
    fn every_error_variant_has_a_stable_code() {
        assert_eq!(error_code(&AcmrError::SessionPoisoned), "poisoned");
        assert_eq!(
            error_code(&AcmrError::ContractViolation {
                algorithm: "x".into(),
                detail: "y".into()
            }),
            "violation"
        );
        assert_eq!(
            error_code(&AcmrError::Remote {
                code: "spec".into(),
                message: String::new()
            }),
            "proto"
        );
    }

    #[test]
    fn frame_buffer_matches_bin_frame_reader_under_any_chunking() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_REQ, &[1, 2, 3]).unwrap();
        write_frame(&mut wire, FRAME_BATCH, &[0; 17]).unwrap();
        write_frame(&mut wire, FRAME_END, &[]).unwrap();
        write_frame(&mut wire, FRAME_STATS, &[]).unwrap();
        for chunk in [1, 2, 3, 5, 7, wire.len()] {
            let mut fb = FrameBuffer::new();
            let mut payload = Vec::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                fb.feed(piece);
                while let Some(ty) = fb.next_frame(&mut payload).unwrap() {
                    got.push((ty, payload.clone()));
                }
            }
            fb.set_eof();
            assert_eq!(fb.next_frame(&mut payload).unwrap(), None); // clean end
            assert_eq!(fb.frame_number(), 4);
            assert_eq!(
                got,
                vec![
                    (FRAME_REQ, vec![1, 2, 3]),
                    (FRAME_BATCH, vec![0; 17]),
                    (FRAME_END, vec![]),
                    (FRAME_STATS, vec![]),
                ]
            );
        }
    }

    #[test]
    fn frame_buffer_types_truncation_and_oversize() {
        // EOF mid-payload: same typed error as BinFrameReader.
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_REQ, &[9; 10]).unwrap();
        let mut fb = FrameBuffer::new();
        let mut payload = Vec::new();
        fb.feed(&wire[..wire.len() - 3]);
        assert_eq!(fb.next_frame(&mut payload).unwrap(), None); // just needs more
        fb.set_eof();
        let err = fb.next_frame(&mut payload).unwrap_err();
        assert!(
            matches!(&err, AcmrError::TraceParse { line: 1, message } if message.contains("mid-frame")),
            "{err}"
        );
        // EOF inside the 5-byte header.
        let mut fb = FrameBuffer::new();
        fb.feed(&[FRAME_REQ, 0xff]);
        fb.set_eof();
        let err = fb.next_frame(&mut payload).unwrap_err();
        assert!(
            matches!(err, AcmrError::TraceParse { line: 1, .. }),
            "{err}"
        );
        // An oversized declared length is refused from the header
        // alone, before any payload bytes arrive or EOF is known.
        let mut fb = FrameBuffer::new();
        let mut head = vec![FRAME_REQ];
        head.extend_from_slice(&u32::MAX.to_le_bytes());
        fb.feed(&head);
        let err = fb.next_frame(&mut payload).unwrap_err();
        assert!(
            matches!(&err, AcmrError::TraceParse { line: 1, message } if message.contains("exceeds")),
            "{err}"
        );
        // Frame numbers keep counting across carves: frame 2 truncated.
        let mut fb = FrameBuffer::new();
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_END, &[]).unwrap();
        wire.extend_from_slice(&[FRAME_REQ, 4, 0]);
        fb.feed(&wire);
        fb.set_eof();
        assert_eq!(fb.next_frame(&mut payload).unwrap(), Some(FRAME_END));
        let err = fb.next_frame(&mut payload).unwrap_err();
        assert!(
            matches!(err, AcmrError::TraceParse { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn stats_reports_round_trip_as_json() {
        let report = StatsReport {
            server: ServerStats {
                uptime_ms: 1234,
                connections_opened: 9,
                connections_active: 3,
                sessions_opened: 7,
                sessions_active: 2,
                arrivals: 100,
                batches: 4,
                bytes_in: 2048,
                bytes_out: 4096,
                errors: 1,
                busy_rejections: 5,
            },
            connection: ConnStats {
                sessions: 2,
                arrivals: 40,
                batches: 1,
                bytes_in: 512,
                bytes_out: 768,
                errors: 0,
            },
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: StatsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
