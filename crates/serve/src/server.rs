//! The serving front end: a sharded nonblocking reactor driving one
//! sans-I/O [`Connection`] machine per socket.
//!
//! All protocol logic — handshake, both wire dialects, `STATS`, the
//! typed `ERR` surface — lives in [`crate::machine`]; this module is
//! the *driver*: it owns the listener, the accept thread, and N
//! event-loop shards (`--reactor-threads`), and its whole job is to
//! move bytes between nonblocking `TcpStream`s and machines. Each
//! shard blocks in a level-triggered [`polling::Poller`] (epoll on
//! Linux, with portable fallbacks — see the vendored shim), feeds
//! whatever arrives into the owning machine, ships whatever the
//! machine queued, and mirrors the machine's live session into the
//! [`SessionManager`]. One shard multiplexes thousands of
//! connections on one thread — the front-door shape the
//! thread-per-connection server could not take past a few hundred
//! peers (`BENCH_connections.json` is the receipt).
//!
//! Overload is an explicit accept-queue policy now: past
//! [`ServeConfig::max_connections`] open connections, an accepted
//! socket gets the greeting, one typed `ERR busy` reply, the polite
//! drain-before-close — and never a thread. The same drain courtesy
//! ends every connection: closing with unread peer bytes pending
//! makes the OS send RST, which can discard the final
//! `ERR`/`REPORT` the peer has not read yet, so the reactor
//! half-closes, keeps reading (bounded in time and bytes), then
//! closes. Error handling is unchanged from the thread server — the
//! machine turns every failure into one typed `ERR` reply and the
//! *process* never dies on a bad stream; the protocol fuzz suite
//! still pins that, byte for byte.

use crate::machine::{Connection, MachineConfig, ServerCounters};
use crate::protocol::ProtoVersion;
use acmr_core::{AcmrError, Registry};
use polling::{Event, Poller};
use std::cell::Cell;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The address `acmr serve` and `acmr client` default to.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4790";

/// How long (and how many bytes) the drain-before-close phase reads
/// a peer's leftover bytes before closing for real.
const DRAIN_DEADLINE: Duration = Duration::from_millis(500);
const DRAIN_BUDGET: usize = 8 * 1024 * 1024;

/// Stop feeding a machine more input while this much reply output is
/// still queued — backpressure against a peer that writes fast and
/// reads slowly, bounding per-connection memory.
const HIGH_WATERMARK: usize = 1024 * 1024;

/// Most bytes one connection may read per readiness wake-up, so a
/// firehose peer cannot starve its shard siblings (the poller is
/// level-triggered: leftover bytes re-arm immediately).
const READ_QUANTUM: usize = 256 * 1024;

/// A shard re-checks its stop flag and timers at least this often.
const TICK: Duration = Duration::from_millis(500);

/// Tuning knobs for [`serve`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral one —
    /// read it back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Maximum concurrent connections — the accept-queue cap. Further
    /// connections get the greeting and a typed `ERR busy` reply,
    /// then are closed (with the usual drain courtesy); never a
    /// silent drop, and never a thread.
    pub max_connections: usize,
    /// Optional idle cutoff. `None` (the default) lets a session
    /// idle forever — right for genuinely sparse live traffic, but it
    /// means a silent peer holds its connection slot until it hangs
    /// up or the server shuts down. Set it to bound how long a
    /// stalled peer can pin a `max_connections` slot; the cutoff
    /// surfaces as a terminal `ERR io` reply.
    pub idle_timeout: Option<Duration>,
    /// Highest protocol version this server negotiates. The default
    /// ([`ProtoVersion::V2`]) accepts both plain-line v1 sessions and
    /// `proto=v2` binary-frame sessions; forcing [`ProtoVersion::V1`]
    /// makes the server answer `proto=v2` requests with the v1 typed
    /// `ERR parse` reply — the downgrade signal old fleets emit.
    pub max_proto: ProtoVersion,
    /// Event-loop shards. `0` (the default) sizes to the host's
    /// available parallelism, capped at 8 — each shard is one thread
    /// multiplexing its share of the connections, so more shards only
    /// help while there are cores to run them (`docs/OPERATIONS.md`
    /// has the tuning guidance).
    pub reactor_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            max_connections: 1024,
            idle_timeout: None,
            max_proto: ProtoVersion::V2,
            reactor_threads: 0,
        }
    }
}

fn effective_reactor_threads(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Metadata snapshot of one live session.
#[derive(Clone, Debug)]
pub struct SessionMeta {
    /// Session id (echoed to the client in the `OK` reply).
    pub id: u64,
    /// Peer address, as reported by the socket.
    pub peer: String,
    /// Canonical algorithm spec the session runs.
    pub spec: String,
}

struct SessionEntry {
    meta: SessionMeta,
    /// Socket clone, kept so shutdown can close live sessions.
    stream: Option<TcpStream>,
}

/// The concurrent session table: every live connection registers its
/// session here and deregisters on close, so an operator (or a test)
/// can observe the serving state, and graceful shutdown can close
/// every live socket to unblock its reactor shard.
///
/// ```
/// use acmr_serve::SessionManager;
///
/// let manager = SessionManager::new();
/// let id = manager.register("client:1".into(), "greedy".into(), None);
/// assert_eq!(manager.active(), 1);
/// assert_eq!(manager.snapshot()[0].spec, "greedy");
/// manager.deregister(id);
/// assert_eq!(manager.active(), 0);
/// assert_eq!(manager.total_opened(), 1);
/// ```
#[derive(Default)]
pub struct SessionManager {
    /// Shared with every shard's machines (via [`SessionManager::
    /// ids`]) so session ids stay unique no matter who allocates.
    next_id: Arc<AtomicU64>,
    opened: AtomicU64,
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    /// Every live connection's socket, tracked from **accept time** —
    /// before the handshake, so [`SessionManager::close_all`] can
    /// close a connection still waiting for `OPEN` (a session only
    /// enters `sessions` once the handshake succeeds).
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Set (permanently) by [`SessionManager::close_all`]: a
    /// connection tracked *after* the close sweep is shut down on
    /// registration, so the accept-vs-shutdown race cannot leave a
    /// socket open that no one will ever close.
    closing: AtomicBool,
}

impl SessionManager {
    /// An empty table.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// The session-id allocator, shared with the sans-I/O machines
    /// (see [`crate::machine::MachineConfig::ids`]) so the id a
    /// machine echoes in its `OK` reply is the id this table files
    /// the session under.
    pub fn ids(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.next_id)
    }

    /// Register a live session; returns its id. `stream` is the
    /// connection's socket (a clone), kept so [`SessionManager::
    /// close_all`] can end the session; pass `None` when there is no
    /// socket (tests, embedding).
    pub fn register(&self, peer: String, spec: String, stream: Option<TcpStream>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.register_assigned(id, peer, spec, stream);
        id
    }

    /// Register a live session whose id was already allocated from
    /// [`SessionManager::ids`] — how the reactor mirrors the session
    /// a machine opened (the machine hands out the id in its `OK`
    /// reply; the driver files it here).
    pub fn register_assigned(
        &self,
        id: u64,
        peer: String,
        spec: String,
        stream: Option<TcpStream>,
    ) {
        self.opened.fetch_add(1, Ordering::Relaxed);
        let meta = SessionMeta { id, peer, spec };
        self.sessions
            .lock()
            .expect("session table poisoned")
            .insert(id, SessionEntry { meta, stream });
        // Registered after close_all's sweep started? Close it here —
        // otherwise nothing ever would (the sweep is one-shot).
        if self.closing.load(Ordering::SeqCst) {
            if let Some(entry) = self
                .sessions
                .lock()
                .expect("session table poisoned")
                .get(&id)
            {
                if let Some(stream) = &entry.stream {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
    }

    /// Remove a session from the table (idempotent).
    pub fn deregister(&self, id: u64) {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .remove(&id);
    }

    /// Live sessions right now.
    pub fn active(&self) -> usize {
        self.sessions.lock().expect("session table poisoned").len()
    }

    /// Sessions opened over the server's lifetime.
    pub fn total_opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Metadata of every live session, in no particular order.
    pub fn snapshot(&self) -> Vec<SessionMeta> {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .values()
            .map(|e| e.meta.clone())
            .collect()
    }

    /// Track a connection's socket from accept time; returns a handle
    /// for [`SessionManager::untrack_connection`]. This is what lets
    /// [`SessionManager::close_all`] end a connection that is still
    /// mid-handshake and therefore not yet in the session table.
    pub fn track_connection(&self, stream: TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.conns
            .lock()
            .expect("connection table poisoned")
            .insert(id, stream);
        // Registered after close_all's sweep started? Close it here —
        // otherwise nothing ever would (the sweep is one-shot).
        if self.closing.load(Ordering::SeqCst) {
            if let Some(stream) = self
                .conns
                .lock()
                .expect("connection table poisoned")
                .get(&id)
            {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        id
    }

    /// Forget a tracked connection (idempotent).
    pub fn untrack_connection(&self, id: u64) {
        self.conns
            .lock()
            .expect("connection table poisoned")
            .remove(&id);
    }

    /// Shut down every live connection's socket (both halves) —
    /// pre-handshake connections included — so every reactor shard
    /// sees EOF on its next wake-up: the teeth of graceful shutdown.
    /// Also flips the table into closing mode: sockets tracked from
    /// now on are shut down at registration.
    pub fn close_all(&self) {
        self.closing.store(true, Ordering::SeqCst);
        for stream in self
            .conns
            .lock()
            .expect("connection table poisoned")
            .values()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for entry in self
            .sessions
            .lock()
            .expect("session table poisoned")
            .values()
        {
            if let Some(stream) = &entry.stream {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Handle to a running server: its bound address, its
/// [`SessionManager`], its [`ServerCounters`], and the shutdown
/// switch. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    manager: Arc<SessionManager>,
    counters: Arc<ServerCounters>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's session table.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// The server-wide counters a `STATS` request reports.
    pub fn counters(&self) -> &Arc<ServerCounters> {
        &self.counters
    }

    /// Block until the server exits (i.e. until another thread calls
    /// [`ServerHandle::shutdown`] or the process dies) — what `acmr
    /// serve` does after printing the listening line.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Graceful shutdown: stop accepting, close every live
    /// connection, and join every reactor shard before returning.
    /// In-flight frames that already reached the engine stay applied;
    /// clients see their connection close.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection; it checks
        // the stop flag before serving anything. A wildcard bind
        // (0.0.0.0 / ::) is not self-connectable on every platform,
        // so fall back to loopback on the same port.
        let wake = Duration::from_secs(2);
        if TcpStream::connect_timeout(&self.addr, wake).is_err() {
            let loopback = SocketAddr::new(std::net::Ipv4Addr::LOCALHOST.into(), self.addr.port());
            let _ = TcpStream::connect_timeout(&loopback, wake);
        }
        self.manager.close_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown_in_place();
        }
    }
}

/// Bind `config.addr` and serve the registry's algorithms until
/// [`ServerHandle::shutdown`]. Connections are multiplexed across
/// [`ServeConfig::reactor_threads`] event-loop shards; the returned
/// handle owns the accept thread (which in turn owns the shards).
///
/// ```
/// use acmr_core::{register_core, Registry};
/// use acmr_serve::{serve, ServeConfig};
///
/// let mut registry = Registry::new();
/// register_core(&mut registry);
/// let config = ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() };
/// let handle = serve(registry, config)?;
/// assert_ne!(handle.local_addr().port(), 0); // ephemeral port resolved
/// handle.shutdown(); // graceful: joins every reactor shard
/// # Ok::<(), acmr_core::AcmrError>(())
/// ```
pub fn serve(registry: Registry, config: ServeConfig) -> Result<ServerHandle, AcmrError> {
    let listener = TcpListener::bind(&config.addr).map_err(|e| AcmrError::Io {
        message: format!("cannot bind {}: {e}", config.addr),
    })?;
    let addr = listener.local_addr().map_err(|e| AcmrError::Io {
        message: format!("cannot read bound address: {e}"),
    })?;
    let manager = Arc::new(SessionManager::new());
    let counters = Arc::new(ServerCounters::default());
    let stop = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(registry);
    let started = Instant::now();

    let mut shards = Vec::new();
    for _ in 0..effective_reactor_threads(config.reactor_threads) {
        let poller = Arc::new(Poller::new().map_err(|e| AcmrError::Io {
            message: format!("cannot create poller: {e}"),
        })?);
        let (tx, rx) = std::sync::mpsc::channel();
        let shard = ShardCtx {
            poller: Arc::clone(&poller),
            rx,
            registry: Arc::clone(&registry),
            manager: Arc::clone(&manager),
            counters: Arc::clone(&counters),
            stop: Arc::clone(&stop),
            idle_timeout: config.idle_timeout,
            max_proto: config.max_proto,
            max_connections: config.max_connections,
            started,
            draining_conns: Cell::new(0),
        };
        let thread = std::thread::spawn(move || shard.run());
        shards.push(ShardHandle { poller, tx, thread });
    }

    let accept = {
        let manager = Arc::clone(&manager);
        let counters = Arc::clone(&counters);
        let stop = Arc::clone(&stop);
        let max_connections = config.max_connections;
        std::thread::spawn(move || {
            accept_loop(listener, manager, counters, stop, max_connections, shards)
        })
    };

    Ok(ServerHandle {
        addr,
        manager,
        counters,
        stop,
        accept: Some(accept),
    })
}

/// A freshly accepted connection on its way to a shard.
struct NewConn {
    stream: TcpStream,
    /// Over the accept-queue cap: the shard delivers the typed busy
    /// reply and closes — the machine never sees peer input.
    busy: bool,
    /// [`SessionManager::track_connection`] handle.
    track: Option<u64>,
}

struct ShardHandle {
    poller: Arc<Poller>,
    tx: Sender<NewConn>,
    thread: JoinHandle<()>,
}

fn accept_loop(
    listener: TcpListener,
    manager: Arc<SessionManager>,
    counters: Arc<ServerCounters>,
    stop: Arc<AtomicBool>,
    max_connections: usize,
    shards: Vec<ShardHandle>,
) {
    let mut next_shard = 0usize;
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Replies are small frames on a request/response rhythm:
        // Nagle + delayed ACK would add ~40 ms stalls per batched
        // reply, so turn it off (the serving bench pins throughput).
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue; // cannot be reactor-driven; drop it
        }
        counters.connections_opened.fetch_add(1, Ordering::Relaxed);
        // The overload policy: past the cap, the connection exists
        // only to carry its `ERR busy` reply. Busy connections do not
        // count toward the active gauge (they never occupy a slot).
        let busy = counters.connections_active.load(Ordering::Relaxed) >= max_connections as u64;
        if busy {
            counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.connections_active.fetch_add(1, Ordering::Relaxed);
        }
        // Track the socket *before* handing it over, so graceful
        // shutdown can close it even while it is still mid-handshake.
        let track = stream.try_clone().ok().map(|s| manager.track_connection(s));
        let shard = &shards[next_shard % shards.len()];
        next_shard += 1;
        if shard
            .tx
            .send(NewConn {
                stream,
                busy,
                track,
            })
            .is_ok()
        {
            let _ = shard.poller.notify();
        }
    }
    // Stop: wake every shard (each also re-checks its flag at least
    // once per tick) and join them; their teardown closes what the
    // manager's sweep did not already reach.
    for shard in &shards {
        let _ = shard.poller.notify();
    }
    for shard in shards {
        drop(shard.tx);
        let _ = shard.thread.join();
    }
}

/// Everything one event-loop shard owns.
struct ShardCtx {
    poller: Arc<Poller>,
    rx: Receiver<NewConn>,
    registry: Arc<Registry>,
    manager: Arc<SessionManager>,
    counters: Arc<ServerCounters>,
    stop: Arc<AtomicBool>,
    idle_timeout: Option<Duration>,
    max_proto: ProtoVersion,
    max_connections: usize,
    started: Instant,
    /// How many of this shard's connections are in the drain phase.
    /// Kept so `next_wakeup`/`sweep` can skip their whole-table scans
    /// when no timer can possibly be pending — the difference between
    /// O(ready) and O(connections) per wakeup once thousands of idle
    /// connections are parked on the shard (see the E17 bench).
    draining_conns: Cell<usize>,
}

/// One connection as the shard sees it: the socket, its machine, and
/// the driver-side bookkeeping the machine must not know about.
struct Conn {
    stream: TcpStream,
    /// Poller key; allocated per shard, never reused.
    key: usize,
    machine: Connection,
    /// [`SessionManager::track_connection`] handle.
    track: Option<u64>,
    /// The machine session currently mirrored into the manager.
    session: Option<u64>,
    peer: String,
    last_activity: Instant,
    /// Set once the peer's read half returned EOF.
    peer_eof: bool,
    /// Set when the transport errored; the connection closes without
    /// further courtesy.
    dead: bool,
    /// Non-`None` once the machine finished and its output flushed:
    /// the half-closed drain-before-close phase.
    draining: Option<Drain>,
    /// Interest currently registered with the poller.
    interest: (bool, bool),
    /// Whether this connection holds a `connections_active` slot.
    counted: bool,
}

struct Drain {
    deadline: Instant,
    budget: usize,
}

impl ShardCtx {
    fn run(self) {
        let mut conns: HashMap<usize, Conn> = HashMap::new();
        let mut next_key = 0usize;
        let mut events: Vec<Event> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        loop {
            self.counters
                .uptime_ms
                .store(self.started.elapsed().as_millis() as u64, Ordering::Relaxed);
            // Adopt newly accepted connections.
            while let Ok(new_conn) = self.rx.try_recv() {
                self.install(new_conn, &mut conns, &mut next_key);
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let timeout = self.next_wakeup(&conns);
            let _ = self.poller.wait(&mut events, Some(timeout));
            let now = Instant::now();
            touched.clear();
            for event in &events {
                let Some(conn) = conns.get_mut(&event.key) else {
                    continue; // closed earlier in this very batch
                };
                if event.readable {
                    read_some(conn, now);
                }
                touched.push(event.key);
            }
            for &key in &touched {
                if let Some(conn) = conns.get_mut(&key) {
                    self.settle(conn, now);
                    if conn_finished(conn, now) {
                        self.close(conns.remove(&key).expect("settled conn"), key);
                    }
                }
            }
            self.sweep(&mut conns, now);
        }
        // Shard teardown (graceful shutdown): close everything.
        for (key, conn) in conns.drain() {
            self.close(conn, key);
        }
    }

    /// The earliest reason to wake without I/O: idle cutoffs, drain
    /// deadlines, or the regular stop-flag tick.
    fn next_wakeup(&self, conns: &HashMap<usize, Conn>) -> Duration {
        let mut timeout = TICK;
        if self.idle_timeout.is_none() && self.draining_conns.get() == 0 {
            return timeout; // no per-connection timer can be pending
        }
        for conn in conns.values() {
            let deadline = match (&conn.draining, self.idle_timeout) {
                (Some(drain), _) => Some(drain.deadline),
                (None, Some(idle)) => Some(conn.last_activity + idle),
                (None, None) => None,
            };
            if let Some(deadline) = deadline {
                timeout = timeout.min(deadline.saturating_duration_since(Instant::now()));
            }
        }
        timeout
    }

    fn install(&self, new_conn: NewConn, conns: &mut HashMap<usize, Conn>, next_key: &mut usize) {
        let NewConn {
            stream,
            busy,
            track,
        } = new_conn;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string());
        let mut machine = Connection::new(
            Arc::clone(&self.registry),
            MachineConfig {
                max_proto: self.max_proto,
                server: Arc::clone(&self.counters),
                ids: self.manager.ids(),
            },
        );
        if busy {
            machine.fail(&AcmrError::Busy {
                message: format!("server at its {}-connection capacity", self.max_connections),
            });
        }
        let key = *next_key;
        *next_key += 1;
        // Greeting (and possibly the busy reply) is already queued, so
        // the initial interest is read+write; the first settle rights
        // it.
        let interest = (true, true);
        if self.poller.add(&stream, Event::all(key)).is_err() {
            // Cannot poll it — close immediately (best effort: the
            // greeting was never written).
            if let Some(track) = track {
                self.manager.untrack_connection(track);
            }
            if !busy {
                self.counters
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            }
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        conns.insert(
            key,
            Conn {
                stream,
                key,
                machine,
                track,
                session: None,
                peer,
                last_activity: Instant::now(),
                peer_eof: false,
                dead: false,
                draining: None,
                interest,
                counted: !busy,
            },
        );
    }

    /// Post-I/O bookkeeping for one connection: flush queued output,
    /// mirror the machine's session into the manager, enter the drain
    /// phase when the machine finishes, and re-register interest.
    fn settle(&self, conn: &mut Conn, now: Instant) {
        // Mirror before flushing: a peer that has read its `OK` must
        // find the session already in the manager's table.
        self.sync_session(conn);
        flush(conn);
        if conn.machine.is_done()
            && conn.machine.pending_output().is_empty()
            && conn.draining.is_none()
            && !conn.dead
        {
            // Reply delivered: half-close and politely drain whatever
            // the peer was still sending, so the kernel never RSTs
            // away a reply the peer has not read yet.
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.draining = Some(Drain {
                deadline: now + DRAIN_DEADLINE,
                budget: DRAIN_BUDGET,
            });
            self.draining_conns.set(self.draining_conns.get() + 1);
        }
        let desired = (
            !conn.peer_eof && !conn.dead,
            !conn.machine.pending_output().is_empty() && !conn.dead,
        );
        if desired != conn.interest {
            let event = Event {
                key: conn.key,
                readable: desired.0,
                writable: desired.1,
            };
            if self.poller.modify(&conn.stream, event).is_ok() {
                conn.interest = desired;
            }
        }
    }

    /// Mirror `machine.session()` into the [`SessionManager`] — a
    /// `RESET` swaps ids on the same connection, and a finished
    /// machine drops its session.
    fn sync_session(&self, conn: &mut Conn) {
        let current = conn.machine.session();
        match (conn.session, current) {
            (Some(old), Some((new, _))) if old == new => {}
            (old, current) => {
                if let Some(old) = old {
                    self.manager.deregister(old);
                }
                conn.session = current.map(|(id, spec)| {
                    // No socket clone here: every reactor connection is
                    // already in the connection table from accept time
                    // (`track_connection`), which is what `close_all`
                    // uses to end it. A per-session clone would cost a
                    // third fd per connection — real money at the
                    // connection scale E17 benchmarks.
                    self.manager
                        .register_assigned(id, conn.peer.clone(), spec.to_string(), None);
                    id
                });
            }
        }
    }

    /// Idle cutoffs and expired drains, checked once per loop.
    fn sweep(&self, conns: &mut HashMap<usize, Conn>, now: Instant) {
        if self.idle_timeout.is_none() && self.draining_conns.get() == 0 {
            return; // nothing time-driven to find: skip the scan
        }
        let mut expired: Vec<usize> = Vec::new();
        for (&key, conn) in conns.iter_mut() {
            if let Some(drain) = &conn.draining {
                if now >= drain.deadline || conn.peer_eof || conn.dead {
                    expired.push(key);
                }
                continue;
            }
            if let Some(idle) = self.idle_timeout {
                if !conn.machine.is_done() && now.duration_since(conn.last_activity) >= idle {
                    conn.machine.fail(&AcmrError::Io {
                        message: format!(
                            "idle timeout: no bytes received for {} ms",
                            idle.as_millis()
                        ),
                    });
                    self.settle(conn, now);
                    if conn_finished(conn, now) {
                        expired.push(key);
                    }
                }
            }
        }
        for key in expired {
            if let Some(conn) = conns.remove(&key) {
                self.close(conn, key);
            }
        }
    }

    fn close(&self, mut conn: Conn, key: usize) {
        if conn.draining.is_some() {
            self.draining_conns
                .set(self.draining_conns.get().saturating_sub(1));
        }
        let _ = self.poller.delete(&conn.stream, key);
        let _ = conn.stream.shutdown(Shutdown::Both);
        if let Some(session) = conn.session.take() {
            self.manager.deregister(session);
        }
        if let Some(track) = conn.track.take() {
            self.manager.untrack_connection(track);
        }
        if conn.counted {
            self.counters
                .connections_active
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Whether a settled connection has nothing left to do.
fn conn_finished(conn: &Conn, now: Instant) -> bool {
    if conn.dead {
        return true;
    }
    match &conn.draining {
        Some(drain) => conn.peer_eof || now >= drain.deadline || drain.budget == 0,
        None => false,
    }
}

/// Read as much as fairness allows into the machine (or the drain
/// sink). Level-triggered polling re-arms leftover bytes.
fn read_some(conn: &mut Conn, now: Instant) {
    let mut buf = [0u8; 64 * 1024];
    let mut taken = 0usize;
    loop {
        if conn.draining.is_none() && conn.machine.pending_output().len() > HIGH_WATERMARK {
            return; // backpressure: flush before reading more
        }
        if taken >= READ_QUANTUM {
            return; // fairness: let shard siblings run
        }
        match (&conn.stream).read(&mut buf) {
            Ok(0) => {
                conn.peer_eof = true;
                if conn.draining.is_none() {
                    conn.machine.feed_eof();
                }
                return;
            }
            Ok(n) => {
                taken += n;
                conn.last_activity = now;
                match &mut conn.draining {
                    Some(drain) => drain.budget = drain.budget.saturating_sub(n),
                    None => conn.machine.feed(&buf[..n]),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Ship queued machine output until the socket pushes back.
fn flush(conn: &mut Conn) {
    while !conn.machine.pending_output().is_empty() && !conn.dead {
        match (&conn.stream).write(conn.machine.pending_output()) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.machine.consume_output(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}
