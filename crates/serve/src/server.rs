//! The serving front end: a thread-per-connection TCP server driving
//! one [`acmr_core::Session`] per connection.
//!
//! Every connection starts as one admission-control session:
//! handshake, any number of arrival frames (single request lines or
//! `BATCH n` frames, mapped onto [`acmr_core::Session::push`] /
//! [`acmr_core::Session::push_batch_into`]), then `END` for the final
//! [`acmr_core::RunReport`]. A client that negotiates `proto=v2` at
//! `OPEN` switches the connection to length-prefixed binary frames
//! after the `OK` reply ([`crate::protocol`] has the grammar): arrival
//! payloads are ACMR-TRACE v2 record bytes, batches acknowledge with
//! one [`crate::protocol::BatchSummary`] frame unless the client
//! opted into per-arrival events, and a `RESET` frame starts a fresh
//! session on the same connection — the mechanism behind persistent
//! worker pools. The [`SessionManager`] is the concurrent session
//! table — it tracks live sessions, hands out ids, and owns the
//! socket handles graceful shutdown needs to unblock reader threads.
//!
//! Error handling is the streaming `Session` contract lifted onto the
//! wire: every failure — malformed frame, unknown algorithm, contract
//! violation — becomes one typed `ERR` reply (reusing
//! [`AcmrError`] via the stable wire codes of
//! [`crate::protocol::error_code`]) and the connection closes. The
//! *process* never dies on a bad stream; the protocol fuzz suite pins
//! that.

use crate::protocol::{
    decode_reset, encode_ok, encode_summary, error_reply, error_reply_body, summarize_events,
    write_frame, BinFrameReader, FrameReader, ProtoVersion, EVENTS_TOKEN, FRAME_BATCH, FRAME_END,
    FRAME_ERR, FRAME_EVENT, FRAME_OK, FRAME_REPORT, FRAME_REQ, FRAME_RESET, FRAME_SUMMARY,
    GREETING, MAX_BATCH, PROTO_V2_TOKEN,
};
use acmr_core::{AcmrError, AlgorithmSpec, ArrivalEvent, Registry, Request, Session};
use acmr_workloads::binfmt::decode_record;
use acmr_workloads::trace::{parse_caps_line, parse_edges_line, parse_request_line};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// The address `acmr serve` and `acmr client` default to.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4790";

/// Tuning knobs for [`serve`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral one —
    /// read it back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Maximum concurrent connections; one thread per connection, so
    /// this is also the worker-thread cap. Further connections get a
    /// typed `ERR io … capacity` reply and are closed immediately.
    pub max_connections: usize,
    /// Optional per-read socket timeout. `None` (the default) lets a
    /// session idle forever — right for genuinely sparse live traffic,
    /// but it means a silent peer holds its connection slot until it
    /// hangs up or the server shuts down. Set it to bound how long a
    /// stalled peer can pin a `max_connections` slot; a timeout
    /// surfaces as a terminal `ERR io` reply.
    pub idle_timeout: Option<std::time::Duration>,
    /// Highest protocol version this server negotiates. The default
    /// ([`ProtoVersion::V2`]) accepts both plain-line v1 sessions and
    /// `proto=v2` binary-frame sessions; forcing [`ProtoVersion::V1`]
    /// makes the server answer `proto=v2` requests with the v1 typed
    /// `ERR parse` reply — the downgrade signal old fleets emit.
    pub max_proto: ProtoVersion,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            max_connections: 1024,
            idle_timeout: None,
            max_proto: ProtoVersion::V2,
        }
    }
}

/// Metadata snapshot of one live session.
#[derive(Clone, Debug)]
pub struct SessionMeta {
    /// Session id (echoed to the client in the `OK` reply).
    pub id: u64,
    /// Peer address, as reported by the socket.
    pub peer: String,
    /// Canonical algorithm spec the session runs.
    pub spec: String,
}

struct SessionEntry {
    meta: SessionMeta,
    /// Reader-half clone, kept so shutdown can unblock the thread.
    stream: Option<TcpStream>,
}

/// The concurrent session table: every live connection registers its
/// session here and deregisters on close, so an operator (or a test)
/// can observe the serving state, and graceful shutdown can close
/// every live socket to unblock its thread.
///
/// ```
/// use acmr_serve::SessionManager;
///
/// let manager = SessionManager::new();
/// let id = manager.register("client:1".into(), "greedy".into(), None);
/// assert_eq!(manager.active(), 1);
/// assert_eq!(manager.snapshot()[0].spec, "greedy");
/// manager.deregister(id);
/// assert_eq!(manager.active(), 0);
/// assert_eq!(manager.total_opened(), 1);
/// ```
#[derive(Default)]
pub struct SessionManager {
    next_id: AtomicU64,
    opened: AtomicU64,
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    /// Every live connection's socket, tracked from **accept time** —
    /// before the handshake, so [`SessionManager::close_all`] can
    /// unblock a thread still waiting for `OPEN` (a session only
    /// enters `sessions` once the handshake succeeds).
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Set (permanently) by [`SessionManager::close_all`]: a
    /// connection tracked *after* the close sweep is shut down on
    /// registration, so the accept-vs-shutdown race cannot leave a
    /// socket open that no one will ever close.
    closing: AtomicBool,
}

impl SessionManager {
    /// An empty table.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Register a live session; returns its id. `stream` is the
    /// connection's socket (a clone), kept so [`SessionManager::
    /// close_all`] can unblock the serving thread; pass `None` when
    /// there is no socket (tests, embedding).
    pub fn register(&self, peer: String, spec: String, stream: Option<TcpStream>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.opened.fetch_add(1, Ordering::Relaxed);
        let meta = SessionMeta { id, peer, spec };
        self.sessions
            .lock()
            .expect("session table poisoned")
            .insert(id, SessionEntry { meta, stream });
        id
    }

    /// Remove a session from the table (idempotent).
    pub fn deregister(&self, id: u64) {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .remove(&id);
    }

    /// Live sessions right now.
    pub fn active(&self) -> usize {
        self.sessions.lock().expect("session table poisoned").len()
    }

    /// Sessions opened over the server's lifetime.
    pub fn total_opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Metadata of every live session, in no particular order.
    pub fn snapshot(&self) -> Vec<SessionMeta> {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .values()
            .map(|e| e.meta.clone())
            .collect()
    }

    /// Track a connection's socket from accept time; returns a handle
    /// for [`SessionManager::untrack_connection`]. This is what lets
    /// [`SessionManager::close_all`] unblock a reader thread that is
    /// still mid-handshake and therefore not yet in the session table.
    pub fn track_connection(&self, stream: TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.conns
            .lock()
            .expect("connection table poisoned")
            .insert(id, stream);
        // Registered after close_all's sweep started? Close it here —
        // otherwise nothing ever would (the sweep is one-shot).
        if self.closing.load(Ordering::SeqCst) {
            if let Some(stream) = self
                .conns
                .lock()
                .expect("connection table poisoned")
                .get(&id)
            {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        id
    }

    /// Forget a tracked connection (idempotent).
    pub fn untrack_connection(&self, id: u64) {
        self.conns
            .lock()
            .expect("connection table poisoned")
            .remove(&id);
    }

    /// Shut down every live connection's socket (both halves),
    /// unblocking any thread parked in a read — pre-handshake
    /// connections included — the teeth of graceful shutdown. Also
    /// flips the table into closing mode: sockets tracked from now on
    /// are shut down at registration.
    pub fn close_all(&self) {
        self.closing.store(true, Ordering::SeqCst);
        for stream in self
            .conns
            .lock()
            .expect("connection table poisoned")
            .values()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for entry in self
            .sessions
            .lock()
            .expect("session table poisoned")
            .values()
        {
            if let Some(stream) = &entry.stream {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Handle to a running server: its bound address, its
/// [`SessionManager`], and the shutdown switch. Dropping the handle
/// shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    manager: Arc<SessionManager>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's session table.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Block until the server exits (i.e. until another thread calls
    /// [`ServerHandle::shutdown`] or the process dies) — what `acmr
    /// serve` does after printing the listening line.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Graceful shutdown: stop accepting, close every live session's
    /// socket, and join every connection thread before returning.
    /// In-flight frames that already reached the engine stay applied;
    /// clients see their connection close.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection; it checks
        // the stop flag before serving anything. A wildcard bind
        // (0.0.0.0 / ::) is not self-connectable on every platform,
        // so fall back to loopback on the same port.
        let wake = std::time::Duration::from_secs(2);
        if TcpStream::connect_timeout(&self.addr, wake).is_err() {
            let loopback = SocketAddr::new(std::net::Ipv4Addr::LOCALHOST.into(), self.addr.port());
            let _ = TcpStream::connect_timeout(&loopback, wake);
        }
        self.manager.close_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown_in_place();
        }
    }
}

/// Bind `config.addr` and serve the registry's algorithms until
/// [`ServerHandle::shutdown`]. Each accepted connection runs one
/// session on its own thread; the returned handle owns the listener
/// thread.
///
/// ```
/// use acmr_core::{register_core, Registry};
/// use acmr_serve::{serve, ServeConfig};
///
/// let mut registry = Registry::new();
/// register_core(&mut registry);
/// let config = ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() };
/// let handle = serve(registry, config)?;
/// assert_ne!(handle.local_addr().port(), 0); // ephemeral port resolved
/// handle.shutdown(); // graceful: joins every connection thread
/// # Ok::<(), acmr_core::AcmrError>(())
/// ```
pub fn serve(registry: Registry, config: ServeConfig) -> Result<ServerHandle, AcmrError> {
    let listener = TcpListener::bind(&config.addr).map_err(|e| AcmrError::Io {
        message: format!("cannot bind {}: {e}", config.addr),
    })?;
    let addr = listener.local_addr().map_err(|e| AcmrError::Io {
        message: format!("cannot read bound address: {e}"),
    })?;
    let manager = Arc::new(SessionManager::new());
    let stop = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(registry);

    let accept = {
        let manager = Arc::clone(&manager);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(listener, registry, manager, stop, config))
    };

    Ok(ServerHandle {
        addr,
        manager,
        stop,
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    manager: Arc<SessionManager>,
    stop: Arc<AtomicBool>,
    config: ServeConfig,
) {
    let max_connections = config.max_connections;
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Replies are small frames on a request/response rhythm:
        // Nagle + delayed ACK would add ~40 ms stalls per batched
        // reply, so turn it off (the serving bench pins throughput).
        let _ = stream.set_nodelay(true);
        // Optional stall bound: a peer that goes silent longer than
        // the idle timeout gets a terminal `ERR io` instead of
        // pinning its connection slot forever.
        let _ = stream.set_read_timeout(config.idle_timeout);
        // Reap finished workers so a long-lived server does not
        // accumulate dead join handles.
        workers.retain(|h| !h.is_finished());
        // Track the socket *before* spawning, so graceful shutdown can
        // unblock the thread even while it is still mid-handshake.
        let conn_id = stream.try_clone().ok().map(|s| manager.track_connection(s));
        let manager = Arc::clone(&manager);
        if workers.len() >= max_connections {
            // Over capacity: a short-lived worker delivers the typed
            // busy reply (with the same drain-before-close that keeps
            // it from dying to a TCP reset), never a silent drop. It
            // joins the same pool so shutdown reaps it too.
            workers.push(std::thread::spawn(move || {
                let mut w = BufWriter::new(&stream);
                let busy = AcmrError::Io {
                    message: format!("server at its {max_connections}-connection capacity"),
                };
                let _ = writeln!(w, "{GREETING}");
                let _ = writeln!(w, "{}", error_reply(&busy));
                let _ = w.flush();
                drop(w);
                drain_then_close(&stream);
                if let Some(id) = conn_id {
                    manager.untrack_connection(id);
                }
            }));
            continue;
        }
        let registry = Arc::clone(&registry);
        let max_proto = config.max_proto;
        workers.push(std::thread::spawn(move || {
            serve_connection(stream, &registry, &manager, max_proto);
            if let Some(id) = conn_id {
                manager.untrack_connection(id);
            }
        }));
    }
    for h in workers {
        let _ = h.join();
    }
}

/// Run one connection to completion. Never panics on peer input: any
/// error becomes one `ERR` reply (best-effort — the peer may already
/// be gone) and the connection closes.
fn serve_connection(
    stream: TcpStream,
    registry: &Registry,
    manager: &SessionManager,
    max_proto: ProtoVersion,
) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(write_half);
    if writeln!(writer, "{GREETING}")
        .and_then(|_| writer.flush())
        .is_err()
    {
        return;
    }
    let frames = FrameReader::new(&stream);
    let mut session_id = None;
    let outcome = run_session(
        frames,
        &mut writer,
        registry,
        manager,
        &stream,
        &peer,
        &mut session_id,
        max_proto,
    );
    if let Err(e) = outcome {
        // Best-effort typed reply; the peer may have disconnected.
        // Errors raised after the v2 upgrade were already delivered as
        // an `ERR` frame inside `run_session`; only line-phase errors
        // reach this path.
        let _ = writeln!(writer, "{}", error_reply(&e));
        let _ = writer.flush();
    }
    if let Some(id) = session_id {
        manager.deregister(id);
    }
    drain_then_close(&stream);
}

/// Close the connection without losing the final reply: closing a
/// socket while unread peer bytes are pending makes the OS send RST,
/// which can discard the `ERR`/`REPORT` the peer has not read yet. So
/// first drain (bounded in bytes and time — a firehose peer cannot
/// pin the thread), then shut down.
fn drain_then_close(stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let mut buf = [0u8; 64 * 1024];
    let mut budget: usize = 8 * 1024 * 1024;
    let mut reader = stream;
    while budget > 0 {
        match std::io::Read::read(&mut reader, &mut buf) {
            Ok(0) => break,
            Ok(n) => budget = budget.saturating_sub(n),
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// The per-connection state machine: handshake, arrival frames, `END`.
/// `Ok(())` is a clean close (END served, or the client hung up
/// between frames); any `Err` is sent back as the terminal `ERR`.
///
/// A `proto=v2` handshake hands the connection to [`run_session_v2`]
/// after the `OK` line; errors past that point are delivered as `ERR`
/// *frames* in there, so this function only returns `Err` while the
/// wire is still line-oriented.
#[allow(clippy::too_many_arguments)]
fn run_session(
    mut frames: FrameReader<&TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    registry: &Registry,
    manager: &SessionManager,
    stream: &TcpStream,
    peer: &str,
    session_id: &mut Option<u64>,
    max_proto: ProtoVersion,
) -> Result<(), AcmrError> {
    let proto_err = |line: usize, message: String| AcmrError::TraceParse { line, message };

    // Handshake line 1: OPEN <spec> [seed=<S>] [proto=v2 [events=on]].
    let Some((open_ln, open)) = next_content_line(&mut frames)? else {
        return Ok(()); // connected and left: not an error
    };
    let mut toks = open.split_whitespace();
    if toks.next() != Some("OPEN") {
        return Err(proto_err(
            open_ln,
            format!("expected `OPEN <spec> [seed=<S>]`, got {open:?}"),
        ));
    }
    let spec_str = toks
        .next()
        .ok_or_else(|| proto_err(open_ln, "OPEN is missing an algorithm spec".into()))?;
    let spec = AlgorithmSpec::parse(spec_str)?;
    let mut base_seed = 0u64;
    let mut proto = ProtoVersion::V1;
    let mut events_optin = false;
    for tok in toks {
        if let Some(seed) = tok.strip_prefix("seed=").and_then(|s| s.parse().ok()) {
            base_seed = seed;
            continue;
        }
        // A v1-capped server answers `proto=v2` with this same typed
        // parse error — the deterministic downgrade signal the v2
        // client turns into "use --proto v1 against this fleet".
        if max_proto == ProtoVersion::V2 && tok == PROTO_V2_TOKEN {
            proto = ProtoVersion::V2;
            continue;
        }
        if max_proto == ProtoVersion::V2 && tok == EVENTS_TOKEN {
            events_optin = true;
            continue;
        }
        let allowed = match max_proto {
            ProtoVersion::V1 => "only seed=<S> is allowed",
            ProtoVersion::V2 => "seed=<S>, proto=v2 and events=on are allowed",
        };
        return Err(proto_err(
            open_ln,
            format!("unexpected OPEN argument {tok:?} ({allowed})"),
        ));
    }
    if events_optin && proto != ProtoVersion::V2 {
        return Err(proto_err(
            open_ln,
            "events=on requires proto=v2 (v1 always streams events)".into(),
        ));
    }

    // Handshake lines 2–3: the trace header's edge universe, parsed by
    // the exact grammar functions the file reader uses. A hangup here
    // points at the line the missing frame was *expected* on
    // (`next_line_number`), not the last line consumed — skipped blank
    // lines must not drag the reported position backwards.
    let (ln, edges_line) = next_content_line(&mut frames)?.ok_or_else(|| {
        proto_err(
            frames.next_line_number(),
            "connection closed before `edges`".into(),
        )
    })?;
    let m = parse_edges_line(ln, &edges_line)?;
    let (ln, caps_line) = next_content_line(&mut frames)?.ok_or_else(|| {
        proto_err(
            frames.next_line_number(),
            "connection closed before `caps`".into(),
        )
    })?;
    let capacities = parse_caps_line(ln, &caps_line, m)?;

    let mut session = Session::from_registry(registry, &spec, &capacities, base_seed)?;
    let canonical = spec.canonical();
    let id = manager.register(peer.to_string(), canonical.clone(), stream.try_clone().ok());
    *session_id = Some(id);
    match proto {
        ProtoVersion::V1 => writeln!(writer, "OK {id} {canonical}")?,
        ProtoVersion::V2 => writeln!(writer, "OK {id} {canonical} {PROTO_V2_TOKEN}")?,
    }
    writer.flush()?;

    if proto == ProtoVersion::V2 {
        // Switch the read side to binary frames, carrying over any
        // bytes a pipelining client already sent past the handshake.
        let (rest, stream_ref) = frames.into_binary();
        let bin = BinFrameReader::with_rest(rest, stream_ref);
        let v2 = V2SessionState {
            registry,
            manager,
            stream,
            peer,
            session_id,
            session,
            capacities,
            events_optin,
        };
        if let Err(e) = run_session_v2(bin, writer, v2) {
            // Terminal typed reply, framed: same body as the v1 ERR
            // line. Best-effort — the peer may already be gone.
            let _ = write_frame(writer, FRAME_ERR, error_reply_body(&e).as_bytes());
            let _ = writer.flush();
        }
        return Ok(());
    }

    // v1: arrival frames until END or hangup.
    let mut batch: Vec<Request> = Vec::new();
    let mut events = Vec::new();
    loop {
        let Some((ln, line)) = next_content_line(&mut frames)? else {
            return Ok(()); // client hung up between frames: clean close
        };
        if line == "END" {
            let report = session.report();
            let json = serde_json::to_string(&report).map_err(|e| AcmrError::Io {
                message: format!("cannot serialize report: {e}"),
            })?;
            writeln!(writer, "REPORT {json}")?;
            writer.flush()?;
            return Ok(());
        }
        if let Some(count) = line.strip_prefix("BATCH") {
            let n: usize = count
                .trim()
                .parse()
                .map_err(|_| proto_err(ln, format!("expected `BATCH <n>`, got {line:?}")))?;
            if n > MAX_BATCH {
                return Err(proto_err(
                    ln,
                    format!("BATCH {n} exceeds the {MAX_BATCH}-request frame cap"),
                ));
            }
            batch.clear();
            for _ in 0..n {
                let (ln, line) = frames.next_line()?.ok_or_else(|| {
                    proto_err(
                        frames.next_line_number(),
                        format!(
                            "connection closed mid-batch ({} of {n} requests)",
                            batch.len()
                        ),
                    )
                })?;
                batch.push(parse_request_line(ln, &line, capacities.len())?);
            }
            // On a mid-batch contract violation the events preceding
            // the violation are still delivered, then the ERR.
            let result = session.push_batch_into(&batch, &mut events);
            for event in &events {
                write_event(writer, event)?;
            }
            result?;
            writer.flush()?;
            continue;
        }
        // Anything else must be a request line of the trace grammar.
        let request = parse_request_line(ln, &line, capacities.len())?;
        let event = session.push(&request)?;
        write_event(writer, &event)?;
        writer.flush()?;
    }
}

/// Everything the v2 binary loop needs besides the two wire halves.
struct V2SessionState<'a> {
    registry: &'a Registry,
    manager: &'a SessionManager,
    stream: &'a TcpStream,
    peer: &'a str,
    session_id: &'a mut Option<u64>,
    session: Session,
    capacities: Vec<u32>,
    events_optin: bool,
}

/// The v2 binary-frame loop, entered after a `proto=v2` handshake.
///
/// Arrival payloads are ACMR-TRACE v2 record bytes; `BATCH` frames
/// acknowledge with one [`BatchSummary`] unless the session opted
/// into per-arrival `EVENT` frames; `END` answers with the `REPORT`
/// frame and parks the session until a `RESET` frame (same
/// connection, fresh [`Session`]) or a hangup. `Ok(())` is a clean
/// close at a frame boundary; any `Err` becomes the terminal `ERR`
/// frame in the caller.
fn run_session_v2<R: std::io::Read>(
    mut frames: BinFrameReader<R>,
    writer: &mut BufWriter<TcpStream>,
    mut st: V2SessionState<'_>,
) -> Result<(), AcmrError> {
    let frame_err = |frame: usize, message: String| AcmrError::TraceParse {
        line: frame,
        message,
    };
    let mut payload = Vec::new();
    let mut reply = Vec::new();
    let mut batch: Vec<Request> = Vec::new();
    let mut events: Vec<ArrivalEvent> = Vec::new();
    // False between END and the next RESET: the session has reported
    // and only RESET (or hangup) is meaningful.
    let mut active = true;
    loop {
        let Some(ty) = frames.read_frame(&mut payload)? else {
            return Ok(()); // hangup at a frame boundary: clean close
        };
        let fno = frames.frame_number();
        let num_edges = st.capacities.len() as u32;
        match ty {
            FRAME_REQ if active => {
                let (request, end) = decode_record(&payload, 0, fno, num_edges)?;
                if end != payload.len() {
                    return Err(frame_err(
                        fno,
                        format!(
                            "{} trailing bytes after the REQ record",
                            payload.len() - end
                        ),
                    ));
                }
                let event = st.session.push(&request)?;
                write_event_frame(writer, &event)?;
                writer.flush()?;
            }
            FRAME_BATCH if active => {
                let n = decode_batch_into(&payload, fno, num_edges, &mut batch)?;
                // A mid-batch contract violation still delivers the
                // acknowledgement for the arrivals that preceded it
                // (events, or a summary over the applied prefix),
                // then the ERR frame — same contract as v1.
                let result = st.session.push_batch_into(&batch, &mut events);
                if st.events_optin {
                    for event in &events {
                        write_event_frame(writer, event)?;
                    }
                } else {
                    let mut summary = summarize_events(&events);
                    // `n` is the count *requested*; on a violation the
                    // summary covers only the applied prefix, and its
                    // `n` says how many actually landed.
                    debug_assert!(events.len() <= n);
                    summary.n = events.len() as u32;
                    reply.clear();
                    encode_summary(&mut reply, &summary);
                    write_frame(writer, FRAME_SUMMARY, &reply)?;
                }
                result?;
                writer.flush()?;
            }
            FRAME_END if active => {
                if !payload.is_empty() {
                    return Err(frame_err(fno, "END frame carries a payload".into()));
                }
                let report = st.session.report();
                let json = serde_json::to_string(&report).map_err(|e| AcmrError::Io {
                    message: format!("cannot serialize report: {e}"),
                })?;
                write_frame(writer, FRAME_REPORT, json.as_bytes())?;
                writer.flush()?;
                active = false;
            }
            FRAME_RESET => {
                let reset = decode_reset(&payload).map_err(|e| match e {
                    AcmrError::TraceParse { message, .. } => frame_err(fno, message),
                    other => other,
                })?;
                let spec = AlgorithmSpec::parse(&reset.spec)?;
                if !reset.capacities.is_empty() {
                    st.capacities = reset.capacities;
                }
                let seed = reset.base_seed.unwrap_or(0);
                st.session = Session::from_registry(st.registry, &spec, &st.capacities, seed)?;
                let canonical = spec.canonical();
                // A RESET is a fresh session in the table: new id, new
                // spec, same connection.
                if let Some(old) = st.session_id.take() {
                    st.manager.deregister(old);
                }
                let id = st.manager.register(
                    st.peer.to_string(),
                    canonical.clone(),
                    st.stream.try_clone().ok(),
                );
                *st.session_id = Some(id);
                reply.clear();
                encode_ok(&mut reply, id, &canonical);
                write_frame(writer, FRAME_OK, &reply)?;
                writer.flush()?;
                active = true;
            }
            FRAME_REQ | FRAME_BATCH | FRAME_END => {
                return Err(frame_err(
                    fno,
                    "session already ended: only RESET (or hangup) may follow END".into(),
                ));
            }
            other => {
                return Err(frame_err(
                    fno,
                    format!("unexpected frame type 0x{other:02x}"),
                ));
            }
        }
    }
}

/// Decode a `BATCH` frame payload (`u32le` count, then that many
/// ACMR-TRACE v2 records back to back) into `batch`; returns the
/// declared count. Shares the byte-level record decoder with the
/// binary trace file reader.
fn decode_batch_into(
    payload: &[u8],
    frame: usize,
    num_edges: u32,
    batch: &mut Vec<Request>,
) -> Result<usize, AcmrError> {
    let frame_err = |message: String| AcmrError::TraceParse {
        line: frame,
        message,
    };
    let count = payload
        .get(..4)
        .ok_or_else(|| frame_err("BATCH frame shorter than its 4-byte count".into()))?;
    let n = u32::from_le_bytes(count.try_into().expect("4 bytes")) as usize;
    if n > MAX_BATCH {
        return Err(frame_err(format!(
            "BATCH {n} exceeds the {MAX_BATCH}-request frame cap"
        )));
    }
    batch.clear();
    let mut at = 4;
    for i in 0..n {
        let (request, next) = decode_record(payload, at, i, num_edges).map_err(|e| match e {
            AcmrError::TraceParse { message, .. } => {
                frame_err(format!("batch record {i}: {message}"))
            }
            other => other,
        })?;
        batch.push(request);
        at = next;
    }
    if at != payload.len() {
        return Err(frame_err(format!(
            "{} trailing bytes after {n} batch records",
            payload.len() - at
        )));
    }
    Ok(n)
}

/// Serialize one arrival event as a v2 `EVENT` frame — the payload is
/// the same JSON the v1 `EVENT` line carries.
fn write_event_frame(
    writer: &mut BufWriter<TcpStream>,
    event: &ArrivalEvent,
) -> Result<(), AcmrError> {
    let json = serde_json::to_string(event).map_err(|e| AcmrError::Io {
        message: format!("cannot serialize event: {e}"),
    })?;
    write_frame(writer, FRAME_EVENT, json.as_bytes())
}

fn write_event(
    writer: &mut BufWriter<TcpStream>,
    event: &acmr_core::ArrivalEvent,
) -> Result<(), AcmrError> {
    let json = serde_json::to_string(event).map_err(|e| AcmrError::Io {
        message: format!("cannot serialize event: {e}"),
    })?;
    writeln!(writer, "EVENT {json}")?;
    Ok(())
}

/// Next non-blank line (blank lines between frames are ignored, which
/// keeps hand-driven `nc` sessions pleasant).
fn next_content_line<R: std::io::Read>(
    frames: &mut FrameReader<R>,
) -> Result<Option<(usize, String)>, AcmrError> {
    loop {
        match frames.next_line()? {
            None => return Ok(None),
            Some((_, line)) if line.is_empty() => continue,
            Some(found) => return Ok(Some(found)),
        }
    }
}
