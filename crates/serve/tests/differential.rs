//! Serving differential suite: the wire path is pinned to the engine.
//!
//! For **every** algorithm in the default registry (enumerated, never
//! hard-coded) over hostile and random traces, a session served over a
//! loopback socket — single request frames and `BATCH n` frames alike
//! — must produce the identical audited [`ArrivalEvent`] stream and
//! the identical final [`RunReport`] as (a) per-push
//! [`Session::push`] over the in-memory instance and (b)
//! [`Session::run_stream`] over the chunked `TraceReader` — i.e.
//! **served ≡ streamed ≡ in-memory**, event for event. Any divergence
//! fails here naming the algorithm, trace, and framing.

use acmr_core::{AdmissionInstance, AlgorithmSpec, ArrivalEvent, RunReport, Session};
use acmr_harness::default_registry;
use acmr_serve::{serve, serve_trace, ServeClient, ServeConfig, ServerHandle};
use acmr_workloads::trace::{write_trace, TraceReader};
use acmr_workloads::{
    dyadic_admission_instance, nested_intervals, random_path_workload, repeated_hot_edge,
    two_phase_squeeze, CostModel, PathWorkloadSpec, Topology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn start_server() -> ServerHandle {
    serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server")
}

/// Reference decision stream and report: per-push over the in-memory
/// instance, exactly like the engine differential suite.
fn reference(inst: &AdmissionInstance, spec_str: &str) -> (Vec<ArrivalEvent>, RunReport) {
    let registry = default_registry();
    let spec = AlgorithmSpec::parse(spec_str).unwrap();
    let mut session = Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
    let events = inst
        .requests
        .iter()
        .map(|r| session.push(r).unwrap())
        .collect();
    (events, session.report())
}

/// Serve `inst` through a live socket and return the event stream and
/// final report the wire produced.
fn served(
    handle: &ServerHandle,
    inst: &AdmissionInstance,
    spec_str: &str,
    batch: Option<usize>,
) -> (Vec<ArrivalEvent>, RunReport) {
    let mut events = Vec::new();
    let report = serve_trace(
        handle.local_addr(),
        spec_str,
        None,
        &inst.capacities,
        inst.requests.iter().cloned().map(Ok),
        batch,
        |e| events.push(e.clone()),
    )
    .expect("served run");
    (events, report)
}

fn hostile_traces() -> Vec<(&'static str, AdmissionInstance)> {
    vec![
        ("nested", nested_intervals(16, 2, 2, 2)),
        ("hot-edge", repeated_hot_edge(4, 3, 12)),
        ("squeeze", two_phase_squeeze(12, 3, 4, 3)),
        ("dyadic", dyadic_admission_instance(4, 3, 2)),
    ]
}

#[test]
fn served_equals_streamed_equals_in_memory_for_every_algorithm() {
    let handle = start_server();
    let registry = default_registry();
    for (family, inst) in &hostile_traces() {
        let text = write_trace(inst);
        for name in registry.names() {
            let spec_str = format!("{name}?seed=5");
            let (expected_events, expected_report) = reference(inst, &spec_str);

            // In-memory streamed (TraceReader → run_stream): the
            // middle leg of served ≡ streamed ≡ in-memory.
            let spec = AlgorithmSpec::parse(&spec_str).unwrap();
            let streamed = Session::from_registry(&registry, &spec, &inst.capacities, 0)
                .unwrap()
                .run_stream(TraceReader::new(text.as_bytes()).unwrap())
                .unwrap();
            assert_eq!(streamed, expected_report, "{family}/{spec_str}: streamed");

            // Served, one frame per arrival.
            let (events, report) = served(&handle, inst, &spec_str, None);
            assert_eq!(
                events, expected_events,
                "{family}/{spec_str}: served event stream diverges (single frames)"
            );
            assert_eq!(
                report, expected_report,
                "{family}/{spec_str}: served report diverges (single frames)"
            );

            // Served, BATCH frames (odd size so the tail is partial).
            let (events, report) = served(&handle, inst, &spec_str, Some(7));
            assert_eq!(
                events, expected_events,
                "{family}/{spec_str}: served event stream diverges (BATCH 7)"
            );
            assert_eq!(
                report, expected_report,
                "{family}/{spec_str}: served report diverges (BATCH 7)"
            );
        }
    }
    handle.shutdown();
}

#[test]
fn served_random_workload_matches_reference_for_every_algorithm() {
    let handle = start_server();
    let spec = PathWorkloadSpec {
        topology: Topology::Grid { rows: 3, cols: 4 },
        capacity: 2,
        overload: 2.0,
        costs: CostModel::Uniform { lo: 1.0, hi: 9.0 },
        max_hops: 5,
    };
    let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(17));
    assert!(!inst.requests.is_empty());
    for name in default_registry().names() {
        let spec_str = format!("{name}?seed=3");
        let (expected_events, expected_report) = reference(&inst, &spec_str);
        for batch in [None, Some(1), Some(4), Some(inst.requests.len())] {
            let (events, report) = served(&handle, &inst, &spec_str, batch);
            assert_eq!(events, expected_events, "{spec_str} batch {batch:?}");
            assert_eq!(report, expected_report, "{spec_str} batch {batch:?}");
        }
    }
    handle.shutdown();
}

#[test]
fn mixed_single_and_batch_frames_share_one_session() {
    // Frame boundaries must not leak into algorithm state: alternating
    // single and BATCH frames over one connection agrees with the
    // pure per-push reference — the wire twin of the engine's
    // mixed-push differential.
    let handle = start_server();
    let inst = two_phase_squeeze(10, 2, 3, 2);
    for name in default_registry().names() {
        let spec_str = format!("{name}?seed=9");
        let (expected_events, expected_report) = reference(&inst, &spec_str);

        let mut client =
            ServeClient::connect(handle.local_addr(), &spec_str, None, &inst.capacities).unwrap();
        let mut events = Vec::new();
        let mut rest = inst.requests.as_slice();
        while !rest.is_empty() {
            events.push(client.push(&rest[0]).unwrap());
            rest = &rest[1..];
            let take = rest.len().min(3);
            events.extend(client.push_batch(&rest[..take]).unwrap());
            rest = &rest[take..];
        }
        let report = client.finish().unwrap();
        assert_eq!(events, expected_events, "{name}: mixed frames diverge");
        assert_eq!(report, expected_report, "{name}: mixed-frame report");
    }
    handle.shutdown();
}

#[test]
fn serve_trace_clamps_batches_to_the_protocol_cap() {
    // `acmr run --batch N` accepts any N ≥ 1; the wire caps a single
    // BATCH frame at MAX_BATCH, so serve_trace must split instead of
    // letting the server refuse — pinned with a stream one request
    // longer than the cap and a batch far beyond it.
    use acmr_core::Request;
    use acmr_graph::{EdgeId, EdgeSet};
    use acmr_serve::protocol::MAX_BATCH;

    let handle = start_server();
    let total = MAX_BATCH + 1;
    let arrivals = (0..total).map(|_| Ok(Request::unit(EdgeSet::singleton(EdgeId(0)))));
    let mut seen = 0usize;
    let report = serve_trace(
        handle.local_addr(),
        "greedy",
        None,
        &[2],
        arrivals,
        Some(10 * MAX_BATCH),
        |_| seen += 1,
    )
    .expect("oversized --batch must be clamped, not refused");
    assert_eq!(report.requests, total);
    assert_eq!(seen, total);
    assert_eq!(report.rejected_count, total - 2); // capacity 2, greedy
    handle.shutdown();
}

#[test]
fn session_table_tracks_live_sessions() {
    let handle = start_server();
    let inst = repeated_hot_edge(4, 3, 12);
    assert_eq!(handle.manager().active(), 0);
    let mut client =
        ServeClient::connect(handle.local_addr(), "greedy", Some(1), &inst.capacities).unwrap();
    assert_eq!(handle.manager().active(), 1);
    let snap = handle.manager().snapshot();
    assert_eq!(snap[0].spec, "greedy");
    assert_eq!(snap[0].id, client.session_id());
    for r in &inst.requests {
        client.push(r).unwrap();
    }
    let report = client.finish().unwrap();
    assert_eq!(report.requests, inst.requests.len());
    // Deregistration races the END reply only by thread-exit time.
    wait_until(|| handle.manager().active() == 0);
    assert_eq!(handle.manager().total_opened(), 1);
    handle.shutdown();
}

fn wait_until(cond: impl Fn() -> bool) {
    for _ in 0..500 {
        if cond() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("condition not reached within 5s");
}
