//! Protocol v2 differential suite: the binary wire is pinned to the
//! line wire, which the v1 suite pins to the engine — so
//! **v2 ≡ v1 ≡ in-memory**, event for event and byte for byte.
//!
//! For every algorithm in the default registry over hostile traces, a
//! v2 session (events mode and summary mode, single REQ frames and
//! BATCH frames, fresh connections and `RESET`-reused ones) must
//! produce the identical audited [`ArrivalEvent`] stream and a
//! [`RunReport`] whose JSON serialization is byte-identical to the v1
//! and in-memory runs. Any divergence fails here naming the
//! algorithm, trace, and framing.

use acmr_core::{AdmissionInstance, AlgorithmSpec, ArrivalEvent, RunReport, Session};
use acmr_harness::default_registry;
use acmr_serve::protocol::summarize_events;
use acmr_serve::{
    serve, serve_trace, serve_trace_v2, BatchSummary, ProtoVersion, ServeClient, ServeConfig,
    ServerHandle,
};
use acmr_workloads::{
    dyadic_admission_instance, nested_intervals, repeated_hot_edge, two_phase_squeeze,
};

fn start_server() -> ServerHandle {
    serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server")
}

/// Reference decision stream and report: per-push over the in-memory
/// instance, exactly like the engine differential suite.
fn reference(inst: &AdmissionInstance, spec_str: &str) -> (Vec<ArrivalEvent>, RunReport) {
    let registry = default_registry();
    let spec = AlgorithmSpec::parse(spec_str).unwrap();
    let mut session = Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
    let events = inst
        .requests
        .iter()
        .map(|r| session.push(r).unwrap())
        .collect();
    (events, session.report())
}

fn hostile_traces() -> Vec<(&'static str, AdmissionInstance)> {
    vec![
        ("nested", nested_intervals(16, 2, 2, 2)),
        ("hot-edge", repeated_hot_edge(4, 3, 12)),
        ("squeeze", two_phase_squeeze(12, 3, 4, 3)),
        ("dyadic", dyadic_admission_instance(4, 3, 2)),
    ]
}

/// The PR's acceptance bar is *byte*-identical reports, not merely
/// `PartialEq`: serialize both and compare the JSON itself.
fn assert_report_bytes_equal(a: &RunReport, b: &RunReport, context: &str) {
    assert_eq!(a, b, "{context}");
    let a = serde_json::to_string(a).unwrap();
    let b = serde_json::to_string(b).unwrap();
    assert_eq!(a, b, "{context}: JSON bytes diverge");
}

#[test]
fn v2_equals_v1_equals_in_memory_for_every_algorithm() {
    let handle = start_server();
    let registry = default_registry();
    for (family, inst) in &hostile_traces() {
        for name in registry.names() {
            let spec_str = format!("{name}?seed=5");
            let (expected_events, expected_report) = reference(inst, &spec_str);

            // The v1 leg (already pinned to the engine by the v1
            // differential suite) — re-run here so the byte-identity
            // chain v2 ≡ v1 ≡ in-memory is closed in one test.
            let mut v1_events = Vec::new();
            let v1_report = serve_trace(
                handle.local_addr(),
                &spec_str,
                None,
                &inst.capacities,
                inst.requests.iter().cloned().map(Ok),
                Some(7),
                |e| v1_events.push(e.clone()),
            )
            .expect("v1 run");
            assert_eq!(v1_events, expected_events, "{family}/{spec_str}: v1 events");
            assert_report_bytes_equal(
                &v1_report,
                &expected_report,
                &format!("{family}/{spec_str}: v1"),
            );

            for batch in [None, Some(7)] {
                // v2, events mode: the full audited stream.
                let mut v2_events = Vec::new();
                let v2_report = serve_trace_v2(
                    handle.local_addr(),
                    &spec_str,
                    None,
                    &inst.capacities,
                    inst.requests.iter().cloned().map(Ok),
                    batch,
                    true,
                    |e| v2_events.push(e.clone()),
                )
                .expect("v2 events run");
                assert_eq!(
                    v2_events, expected_events,
                    "{family}/{spec_str}: v2 event stream diverges (batch {batch:?})"
                );
                assert_report_bytes_equal(
                    &v2_report,
                    &expected_report,
                    &format!("{family}/{spec_str}: v2 events mode (batch {batch:?})"),
                );

                // v2, summary mode: one pipelined pass, no events.
                let mut event_calls = 0usize;
                let v2_report = serve_trace_v2(
                    handle.local_addr(),
                    &spec_str,
                    None,
                    &inst.capacities,
                    inst.requests.iter().cloned().map(Ok),
                    batch,
                    false,
                    |_| event_calls += 1,
                )
                .expect("v2 summary run");
                assert_eq!(event_calls, 0, "summary mode must not fabricate events");
                assert_report_bytes_equal(
                    &v2_report,
                    &expected_report,
                    &format!("{family}/{spec_str}: v2 summary mode (batch {batch:?})"),
                );
            }
        }
    }
    handle.shutdown();
}

#[test]
fn v2_mixed_single_and_batch_frames_share_one_session() {
    // The binary twin of the v1 mixed-frame differential: alternating
    // REQ and BATCH frames over one events-mode session agree with the
    // pure per-push reference — frame boundaries never leak into
    // algorithm state.
    let handle = start_server();
    let inst = two_phase_squeeze(10, 2, 3, 2);
    for name in default_registry().names() {
        let spec_str = format!("{name}?seed=9");
        let (expected_events, expected_report) = reference(&inst, &spec_str);

        let mut client =
            ServeClient::connect_v2(handle.local_addr(), &spec_str, None, &inst.capacities, true)
                .unwrap();
        assert_eq!(client.proto(), ProtoVersion::V2);
        let mut events = Vec::new();
        let mut rest = inst.requests.as_slice();
        while !rest.is_empty() {
            events.push(client.push(&rest[0]).unwrap());
            rest = &rest[1..];
            let take = rest.len().min(3);
            events.extend(client.push_batch(&rest[..take]).unwrap());
            rest = &rest[take..];
        }
        let report = client.finish().unwrap();
        assert_eq!(events, expected_events, "{name}: v2 mixed frames diverge");
        assert_report_bytes_equal(
            &report,
            &expected_report,
            &format!("{name}: v2 mixed frames"),
        );
    }
    handle.shutdown();
}

#[test]
fn v2_batch_summaries_aggregate_the_v1_event_stream() {
    // Summary mode's per-batch acknowledgement must be exactly
    // `summarize_events` of the events the same batch produces in
    // events mode — the summary is a projection of the stream, not a
    // second bookkeeping path.
    let handle = start_server();
    let inst = repeated_hot_edge(4, 3, 12);
    for name in default_registry().names() {
        let spec_str = format!("{name}?seed=2");
        let (expected_events, expected_report) = reference(&inst, &spec_str);

        let mut client = ServeClient::connect_v2(
            handle.local_addr(),
            &spec_str,
            None,
            &inst.capacities,
            false,
        )
        .unwrap();
        let mut at = 0usize;
        for chunk in inst.requests.chunks(5) {
            let summary = client.push_batch_summary(chunk).unwrap();
            let expected: BatchSummary = summarize_events(&expected_events[at..at + chunk.len()]);
            assert_eq!(summary, expected, "{name}: batch summary at offset {at}");
            at += chunk.len();
        }
        let report = client.finish().unwrap();
        assert_report_bytes_equal(&report, &expected_report, &format!("{name}: summary mode"));
    }
    handle.shutdown();
}

#[test]
fn reset_reuses_one_connection_with_fresh_session_semantics() {
    // The persistent-session seam the pool relies on: many jobs over
    // one connection via RESET must report exactly what the same jobs
    // report over fresh connections — no state bleed across RESET, no
    // drift in session accounting.
    let handle = start_server();
    let jobs: Vec<(String, AdmissionInstance)> = {
        let registry = default_registry();
        let mut jobs = Vec::new();
        for (i, (_, inst)) in hostile_traces().into_iter().enumerate() {
            let name = registry.names()[i % registry.names().len()];
            jobs.push((format!("{name}?seed={i}"), inst));
        }
        jobs
    };

    let (spec0, inst0) = &jobs[0];
    let mut client =
        ServeClient::connect_v2(handle.local_addr(), spec0, None, &inst0.capacities, false)
            .unwrap();
    let mut session_ids = vec![client.session_id()];
    for (i, (spec_str, inst)) in jobs.iter().enumerate() {
        if i > 0 {
            let id = client.reset(spec_str, None, &inst.capacities).unwrap();
            assert_eq!(id, client.session_id());
            session_ids.push(id);
        }
        for chunk in inst.requests.chunks(4) {
            client.push_batch_summary(chunk).unwrap();
        }
        let report = client.end_session().unwrap();

        // Fresh-connection twin of the same job.
        let fresh = serve_trace_v2(
            handle.local_addr(),
            spec_str,
            None,
            &inst.capacities,
            inst.requests.iter().cloned().map(Ok),
            Some(4),
            false,
            |_| {},
        )
        .unwrap();
        assert_report_bytes_equal(
            &report,
            &fresh,
            &format!("job {i} ({spec_str}): RESET vs fresh"),
        );

        let (_, expected) = reference(inst, spec_str);
        assert_report_bytes_equal(
            &report,
            &expected,
            &format!("job {i} ({spec_str}): vs in-memory"),
        );
    }
    drop(client);

    // Every RESET opened a genuinely fresh session in the table.
    session_ids.dedup();
    assert_eq!(
        session_ids.len(),
        jobs.len(),
        "RESET must mint new session ids"
    );
    handle.shutdown();
}
