//! Machine differential suite: the sans-I/O [`Connection`] is pinned
//! to the engine **without a socket in sight**.
//!
//! The loopback differential suites (`differential.rs`,
//! `differential_v2.rs`) pin *served ≡ streamed ≡ in-memory* through
//! the whole reactor; this suite pins the layer below them: for every
//! algorithm in the default registry over the same hostile corpus, a
//! [`Connection`] fed the session's wire bytes in one `feed` call must
//! reproduce the identical audited [`ArrivalEvent`] stream and the
//! identical final [`RunReport`] as a plain in-memory
//! [`Session`] — in both dialects (v1 lines, v2 binary frames) and
//! both v2 acknowledgement modes (per-arrival events, batch
//! summaries). A divergence here names the algorithm, trace, dialect,
//! and framing, and cannot be blamed on the transport: there is none.

use acmr_core::{AdmissionInstance, AlgorithmSpec, ArrivalEvent, RunReport, Session};
use acmr_harness::default_registry;
use acmr_serve::protocol::{
    decode_summary, summarize_events, BatchSummary, FrameBuffer, FRAME_BATCH, FRAME_END,
    FRAME_EVENT, FRAME_REPORT, FRAME_REQ, FRAME_SUMMARY, GREETING,
};
use acmr_serve::{Connection, MachineConfig};
use acmr_workloads::binfmt::encode_record_into;
use acmr_workloads::trace::write_request_line;
use acmr_workloads::{
    dyadic_admission_instance, nested_intervals, repeated_hot_edge, two_phase_squeeze,
};
use std::sync::Arc;

fn machine() -> Connection {
    Connection::new(Arc::new(default_registry()), MachineConfig::default())
}

fn hostile_traces() -> Vec<(&'static str, AdmissionInstance)> {
    vec![
        ("nested", nested_intervals(16, 2, 2, 2)),
        ("hot-edge", repeated_hot_edge(4, 3, 12)),
        ("squeeze", two_phase_squeeze(12, 3, 4, 3)),
        ("dyadic", dyadic_admission_instance(4, 3, 2)),
    ]
}

/// Reference decision stream and report: per-push over the in-memory
/// instance, exactly like the loopback differential suites.
fn reference(inst: &AdmissionInstance, spec_str: &str) -> (Vec<ArrivalEvent>, RunReport) {
    let registry = default_registry();
    let spec = AlgorithmSpec::parse(spec_str).unwrap();
    let mut session = Session::from_registry(&registry, &spec, &inst.capacities, 0).unwrap();
    let events = inst
        .requests
        .iter()
        .map(|r| session.push(r).unwrap())
        .collect();
    (events, session.report())
}

/// The v1 wire bytes of a whole session: handshake, arrivals (single
/// lines, or `BATCH n` groups of `batch`), `END`.
fn v1_script(inst: &AdmissionInstance, spec_str: &str, batch: Option<usize>) -> Vec<u8> {
    let mut s = Vec::new();
    use std::io::Write;
    writeln!(s, "OPEN {spec_str}").unwrap();
    writeln!(s, "edges {}", inst.capacities.len()).unwrap();
    write!(s, "caps").unwrap();
    for c in &inst.capacities {
        write!(s, " {c}").unwrap();
    }
    writeln!(s).unwrap();
    match batch {
        None => {
            for r in &inst.requests {
                write_request_line(&mut s, r).unwrap();
            }
        }
        Some(n) => {
            for chunk in inst.requests.chunks(n) {
                writeln!(s, "BATCH {}", chunk.len()).unwrap();
                for r in chunk {
                    write_request_line(&mut s, r).unwrap();
                }
            }
        }
    }
    writeln!(s, "END").unwrap();
    s
}

/// The v2 wire bytes of a whole session: the line handshake with the
/// negotiation tokens, then binary frames — `REQ` per arrival or
/// `BATCH` frames of `batch` — and the empty `END`.
fn v2_script(
    inst: &AdmissionInstance,
    spec_str: &str,
    batch: Option<usize>,
    events_on: bool,
) -> Vec<u8> {
    let mut s = Vec::new();
    use acmr_serve::protocol::write_frame;
    use std::io::Write;
    write!(s, "OPEN {spec_str} proto=v2").unwrap();
    if events_on {
        write!(s, " events=on").unwrap();
    }
    writeln!(s).unwrap();
    writeln!(s, "edges {}", inst.capacities.len()).unwrap();
    write!(s, "caps").unwrap();
    for c in &inst.capacities {
        write!(s, " {c}").unwrap();
    }
    writeln!(s).unwrap();
    let m = inst.capacities.len() as u32;
    let mut payload = Vec::new();
    match batch {
        None => {
            for r in &inst.requests {
                payload.clear();
                encode_record_into(&mut payload, r, m).unwrap();
                write_frame(&mut s, FRAME_REQ, &payload).unwrap();
            }
        }
        Some(n) => {
            for chunk in inst.requests.chunks(n) {
                payload.clear();
                payload.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
                for r in chunk {
                    encode_record_into(&mut payload, r, m).unwrap();
                }
                write_frame(&mut s, FRAME_BATCH, &payload).unwrap();
            }
        }
    }
    write_frame(&mut s, FRAME_END, &[]).unwrap();
    s
}

/// Run a whole script through a fresh machine (single `feed`, then
/// EOF) and return its raw output bytes. Panics if the machine is not
/// done afterwards — every script here is a complete session.
fn drive(script: &[u8]) -> Vec<u8> {
    let mut c = machine();
    c.feed(script);
    c.feed_eof();
    assert!(c.is_done(), "machine still mid-session after a full script");
    c.drain_output()
}

/// Decode a v1 output byte stream: greeting, `OK`, the `EVENT` lines,
/// the final `REPORT`. Any `ERR` fails the test.
fn decode_v1_output(out: &[u8], ctx: &str) -> (Vec<ArrivalEvent>, RunReport) {
    let text = std::str::from_utf8(out).unwrap_or_else(|e| panic!("{ctx}: non-UTF-8 v1 out: {e}"));
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some(GREETING), "{ctx}: greeting");
    let ok = lines.next().unwrap_or_else(|| panic!("{ctx}: missing OK"));
    assert!(ok.starts_with("OK "), "{ctx}: expected OK, got {ok:?}");
    let mut events = Vec::new();
    let mut report = None;
    for line in lines {
        if let Some(json) = line.strip_prefix("EVENT ") {
            events.push(serde_json::from_str(json).unwrap());
        } else if let Some(json) = line.strip_prefix("REPORT ") {
            report = Some(serde_json::from_str(json).unwrap());
        } else {
            panic!("{ctx}: unexpected reply line {line:?}");
        }
    }
    (events, report.unwrap_or_else(|| panic!("{ctx}: no REPORT")))
}

/// Decode a v2 output byte stream: the line-dialect greeting and `OK
/// … proto=v2`, then binary frames — `EVENT`s and/or `SUMMARY`s, then
/// the `REPORT`. Any `ERR` frame fails the test.
fn decode_v2_output(out: &[u8], ctx: &str) -> (Vec<ArrivalEvent>, Vec<BatchSummary>, RunReport) {
    // The handshake replies are lines; everything after the OK line's
    // newline is frames.
    let mut cut = 0usize;
    let mut newlines = 0;
    for (i, b) in out.iter().enumerate() {
        if *b == b'\n' {
            newlines += 1;
            if newlines == 2 {
                cut = i + 1;
                break;
            }
        }
    }
    assert_eq!(newlines, 2, "{ctx}: incomplete v2 handshake output");
    let head = std::str::from_utf8(&out[..cut]).unwrap();
    let mut lines = head.lines();
    assert_eq!(lines.next(), Some(GREETING), "{ctx}: greeting");
    let ok = lines.next().unwrap();
    assert!(
        ok.starts_with("OK ") && ok.ends_with(" proto=v2"),
        "{ctx}: v2 OK line, got {ok:?}"
    );
    let mut frames = FrameBuffer::new();
    frames.feed(&out[cut..]);
    frames.set_eof();
    let mut payload = Vec::new();
    let mut events = Vec::new();
    let mut summaries = Vec::new();
    let mut report = None;
    while let Some(ty) = frames.next_frame(&mut payload).unwrap() {
        match ty {
            FRAME_EVENT => {
                events.push(serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap())
            }
            FRAME_SUMMARY => summaries.push(decode_summary(&payload).unwrap()),
            FRAME_REPORT => {
                report = Some(serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap())
            }
            other => panic!("{ctx}: unexpected frame type 0x{other:02x}"),
        }
    }
    (
        events,
        summaries,
        report.unwrap_or_else(|| panic!("{ctx}: no REPORT frame")),
    )
}

#[test]
fn v1_machine_output_matches_in_memory_for_every_algorithm() {
    for (family, inst) in &hostile_traces() {
        for name in default_registry().names() {
            let spec_str = format!("{name}?seed=5");
            let (expected_events, expected_report) = reference(inst, &spec_str);
            for batch in [None, Some(1), Some(7)] {
                let ctx = format!("{family}/{spec_str}/v1 batch {batch:?}");
                let out = drive(&v1_script(inst, &spec_str, batch));
                let (events, report) = decode_v1_output(&out, &ctx);
                assert_eq!(events, expected_events, "{ctx}: event stream diverges");
                assert_eq!(report, expected_report, "{ctx}: report diverges");
            }
        }
    }
}

#[test]
fn v2_events_mode_matches_in_memory_for_every_algorithm() {
    for (family, inst) in &hostile_traces() {
        for name in default_registry().names() {
            let spec_str = format!("{name}?seed=5");
            let (expected_events, expected_report) = reference(inst, &spec_str);
            for batch in [None, Some(1), Some(7)] {
                let ctx = format!("{family}/{spec_str}/v2 events batch {batch:?}");
                let out = drive(&v2_script(inst, &spec_str, batch, true));
                let (events, summaries, report) = decode_v2_output(&out, &ctx);
                assert!(summaries.is_empty(), "{ctx}: summary in events mode");
                assert_eq!(events, expected_events, "{ctx}: event stream diverges");
                assert_eq!(report, expected_report, "{ctx}: report diverges");
            }
        }
    }
}

#[test]
fn v2_summary_mode_matches_in_memory_for_every_algorithm() {
    for (family, inst) in &hostile_traces() {
        for name in default_registry().names() {
            let spec_str = format!("{name}?seed=5");
            let (expected_events, expected_report) = reference(inst, &spec_str);
            for batch_n in [1usize, 7] {
                let ctx = format!("{family}/{spec_str}/v2 summary batch {batch_n}");
                let out = drive(&v2_script(inst, &spec_str, Some(batch_n), false));
                let (events, summaries, report) = decode_v2_output(&out, &ctx);
                // Single REQ frames still stream an EVENT each even in
                // summary mode, but BATCH frames acknowledge with one
                // summary — this script is all BATCH frames.
                assert!(events.is_empty(), "{ctx}: events in summary mode");
                let expected_summaries: Vec<BatchSummary> = expected_events
                    .chunks(batch_n)
                    .map(summarize_events)
                    .collect();
                assert_eq!(summaries, expected_summaries, "{ctx}: summaries diverge");
                assert_eq!(report, expected_report, "{ctx}: report diverges");
            }
        }
    }
}

#[test]
fn machine_output_is_identical_to_the_loopback_wire() {
    // The reactor is a byte pump: a served session's reply bytes are
    // the machine's reply bytes, so the loopback differential suites
    // transitively pin the machine too. Spot-check that equivalence
    // directly: one v1 session over a real socket, captured raw, must
    // equal the machine's output for the same input bytes.
    use acmr_serve::{serve, ServeConfig};
    use std::io::{Read, Write};

    let inst = repeated_hot_edge(4, 3, 12);
    let script = v1_script(&inst, "greedy?seed=5", Some(5));
    let expected = drive(&script);

    let handle = serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    let mut sock = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    sock.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    sock.write_all(&script).unwrap();
    sock.shutdown(std::net::Shutdown::Write).unwrap();
    let mut wire = Vec::new();
    sock.read_to_end(&mut wire).unwrap();
    // Session ids come from one server-wide allocator (connection
    // tracking draws from it too), so the id in the `OK` line is the
    // one legitimately driver-dependent byte sequence — normalize it.
    let normalize = |bytes: &[u8]| -> String {
        let text = std::str::from_utf8(bytes).unwrap().to_string();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let ok = &lines[1];
        assert!(ok.starts_with("OK "), "expected OK line, got {ok:?}");
        let spec = ok.splitn(3, ' ').nth(2).unwrap().to_string();
        lines[1] = format!("OK <id> {spec}");
        lines.join("\n")
    };
    assert_eq!(
        normalize(&wire),
        normalize(&expected),
        "wire bytes diverge from the machine's output"
    );
    handle.shutdown();
}
