//! Machine fuzz suite: the sans-I/O [`Connection`] under hostile and
//! arbitrarily-chunked input — no sockets, no timeouts, no flakes.
//!
//! The loopback `protocol_fuzz.rs` suite pins the *server process*
//! against hostile peers; this suite pins the protocol core those
//! scenarios ultimately exercise, directly and exhaustively:
//!
//! 1. **Chunking invariance** — the machine's output bytes depend
//!    only on the input bytes, never on how they were split across
//!    `feed` calls: one-byte-at-a-time through whole-buffer produce
//!    byte-identical replies, across the full v1/v2 negotiation
//!    matrix (v1, v2 summary acks, v2 `events=on`, and a v2 request
//!    against a v1-capped machine).
//! 2. **Corrupt any byte** — flipping any single input byte to any
//!    value never panics the machine; every reply it emits still
//!    parses as the protocol's reply grammar, and every error is the
//!    one typed `ERR` shape (known code, spec pointer).
//! 3. **Truncate anywhere** — EOF at any byte offset leaves the
//!    machine cleanly finished: either the session completed, the
//!    hangup was at a legal boundary, or one typed `ERR` closed it.

use acmr_core::AdmissionInstance;
use acmr_harness::default_registry;
use acmr_serve::protocol::{
    decode_error_reply, decode_summary, write_frame, FrameBuffer, ProtoVersion, FRAME_BATCH,
    FRAME_END, FRAME_ERR, FRAME_EVENT, FRAME_OK, FRAME_REPORT, FRAME_REQ, FRAME_STATS_REPLY,
    FRAME_SUMMARY, GREETING, SPEC_POINTER,
};
use acmr_serve::{Connection, MachineConfig};
use acmr_workloads::binfmt::encode_record_into;
use acmr_workloads::repeated_hot_edge;
use acmr_workloads::trace::write_request_line;
use proptest::prelude::*;
use std::io::Write;
use std::sync::Arc;

/// The wire dialect + acknowledgement mode matrix one generated
/// session picks from.
#[derive(Clone, Copy, Debug)]
enum Mode {
    V1,
    V2Summary,
    V2Events,
    /// `proto=v2` sent to a machine capped at v1: the negotiation
    /// must fail with the typed `ERR parse` reply, not an upgrade.
    V2AgainstV1Cap,
}

const MODES: [Mode; 4] = [
    Mode::V1,
    Mode::V2Summary,
    Mode::V2Events,
    Mode::V2AgainstV1Cap,
];

fn machine_for(mode: Mode) -> Connection {
    let config = MachineConfig {
        max_proto: match mode {
            Mode::V2AgainstV1Cap => ProtoVersion::V1,
            _ => ProtoVersion::V2,
        },
        ..MachineConfig::default()
    };
    Connection::new(Arc::new(default_registry()), config)
}

fn instance() -> AdmissionInstance {
    repeated_hot_edge(4, 3, 12)
}

/// Build the full wire bytes of one session for the given matrix cell:
/// handshake (with the mode's negotiation tokens), the arrivals in the
/// chosen framing, and — unless `hangup` — the terminal `END`.
fn session_script(mode: Mode, spec: &str, batch: Option<usize>, hangup: bool) -> Vec<u8> {
    let inst = instance();
    let mut s = Vec::new();
    write!(s, "OPEN {spec}").unwrap();
    match mode {
        Mode::V1 => {}
        Mode::V2Summary | Mode::V2AgainstV1Cap => write!(s, " proto=v2").unwrap(),
        Mode::V2Events => write!(s, " proto=v2 events=on").unwrap(),
    }
    writeln!(s).unwrap();
    writeln!(s, "edges {}", inst.capacities.len()).unwrap();
    write!(s, "caps").unwrap();
    for c in &inst.capacities {
        write!(s, " {c}").unwrap();
    }
    writeln!(s).unwrap();
    // A v1-capped machine rejects the negotiation at OPEN; the rest of
    // the script is bytes it will never read, which is fine — hostile
    // peers keep talking after an ERR too.
    match mode {
        Mode::V1 => {
            match batch {
                None => {
                    for r in &inst.requests {
                        write_request_line(&mut s, r).unwrap();
                    }
                }
                Some(n) => {
                    for chunk in inst.requests.chunks(n) {
                        writeln!(s, "BATCH {}", chunk.len()).unwrap();
                        for r in chunk {
                            write_request_line(&mut s, r).unwrap();
                        }
                    }
                }
            }
            if !hangup {
                writeln!(s, "END").unwrap();
            }
        }
        Mode::V2Summary | Mode::V2Events | Mode::V2AgainstV1Cap => {
            let m = inst.capacities.len() as u32;
            let mut payload = Vec::new();
            match batch {
                None => {
                    for r in &inst.requests {
                        payload.clear();
                        encode_record_into(&mut payload, r, m).unwrap();
                        write_frame(&mut s, FRAME_REQ, &payload).unwrap();
                    }
                }
                Some(n) => {
                    for chunk in inst.requests.chunks(n) {
                        payload.clear();
                        payload.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
                        for r in chunk {
                            encode_record_into(&mut payload, r, m).unwrap();
                        }
                        write_frame(&mut s, FRAME_BATCH, &payload).unwrap();
                    }
                }
            }
            if !hangup {
                write_frame(&mut s, FRAME_END, &[]).unwrap();
            }
        }
    }
    s
}

const KNOWN_CODES: [&str; 10] = [
    "spec",
    "unknown-algorithm",
    "bad-param",
    "violation",
    "poisoned",
    "invalid",
    "parse",
    "io",
    "busy",
    "proto",
];

/// Assert one `ERR` body (line rest or frame payload) is the typed
/// shape: a known code, then a message carrying the spec pointer.
fn assert_typed_err(rest: &str, ctx: &str) {
    let err = decode_error_reply(rest);
    let acmr_core::AcmrError::Remote { code, message } = err else {
        panic!("{ctx}: ERR did not decode to Remote");
    };
    assert!(
        KNOWN_CODES.contains(&code.as_str()),
        "{ctx}: unknown ERR code {code:?} (rest {rest:?})"
    );
    assert!(
        message.contains(SPEC_POINTER),
        "{ctx}: ERR without the spec pointer: {rest:?}"
    );
}

/// Walk a machine's complete output and assert every reply parses as
/// the protocol grammar — lines until (and including) a v2-upgrading
/// `OK`, frames after it — with every `ERR` typed. Returns whether an
/// `ERR` was seen. Panics on anything unparseable: the machine must
/// never emit garbage, whatever was fed in.
fn assert_valid_output(out: &[u8], ctx: &str) -> bool {
    let mut saw_err = false;
    let mut rest = out;
    // Line dialect until the stream ends or an upgrade switches it.
    let mut upgraded = false;
    while !rest.is_empty() && !upgraded {
        let nl = rest
            .iter()
            .position(|b| *b == b'\n')
            .unwrap_or_else(|| panic!("{ctx}: output ends mid-line"));
        let line = std::str::from_utf8(&rest[..nl])
            .unwrap_or_else(|e| panic!("{ctx}: non-UTF-8 reply line: {e}"));
        rest = &rest[nl + 1..];
        if line == GREETING {
        } else if let Some(ok) = line.strip_prefix("OK ") {
            upgraded = ok.ends_with(" proto=v2");
        } else if let Some(err) = line.strip_prefix("ERR ") {
            saw_err = true;
            assert_typed_err(err, ctx);
        } else if let Some(json) = line.strip_prefix("EVENT ") {
            serde_json::from_str::<acmr_core::ArrivalEvent>(json)
                .unwrap_or_else(|e| panic!("{ctx}: malformed {line:?}: {e}"));
        } else if let Some(json) = line.strip_prefix("REPORT ") {
            serde_json::from_str::<acmr_core::RunReport>(json)
                .unwrap_or_else(|e| panic!("{ctx}: malformed {line:?}: {e}"));
        } else if let Some(json) = line.strip_prefix("STATS ") {
            serde_json::from_str::<acmr_serve::StatsReport>(json)
                .unwrap_or_else(|e| panic!("{ctx}: malformed STATS reply: {e}"));
        } else {
            panic!("{ctx}: unexpected reply line {line:?}");
        }
    }
    // Binary dialect for everything after the upgrade.
    if upgraded {
        let mut frames = FrameBuffer::new();
        frames.feed(rest);
        frames.set_eof();
        let mut payload = Vec::new();
        loop {
            let ty = match frames.next_frame(&mut payload) {
                Ok(Some(ty)) => ty,
                Ok(None) => break,
                Err(e) => panic!("{ctx}: machine emitted an unparseable frame: {e}"),
            };
            match ty {
                FRAME_OK | FRAME_STATS_REPLY => {}
                FRAME_EVENT => {
                    let json = std::str::from_utf8(&payload)
                        .unwrap_or_else(|e| panic!("{ctx}: non-UTF-8 frame: {e}"));
                    serde_json::from_str::<acmr_core::ArrivalEvent>(json)
                        .unwrap_or_else(|e| panic!("{ctx}: malformed EVENT frame: {e}"));
                }
                FRAME_REPORT => {
                    let json = std::str::from_utf8(&payload)
                        .unwrap_or_else(|e| panic!("{ctx}: non-UTF-8 frame: {e}"));
                    serde_json::from_str::<acmr_core::RunReport>(json)
                        .unwrap_or_else(|e| panic!("{ctx}: malformed REPORT frame: {e}"));
                }
                FRAME_SUMMARY => {
                    decode_summary(&payload)
                        .unwrap_or_else(|e| panic!("{ctx}: malformed SUMMARY: {e}"));
                }
                FRAME_ERR => {
                    saw_err = true;
                    let body = std::str::from_utf8(&payload)
                        .unwrap_or_else(|e| panic!("{ctx}: non-UTF-8 ERR frame: {e}"));
                    assert_typed_err(body, ctx);
                }
                other => panic!("{ctx}: unexpected reply frame type 0x{other:02x}"),
            }
        }
    }
    saw_err
}

/// Feed a whole script in one call, then EOF; return the output.
fn drive_whole(mode: Mode, script: &[u8]) -> Vec<u8> {
    let mut c = machine_for(mode);
    c.feed(script);
    c.feed_eof();
    c.drain_output()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunking invariance across the negotiation matrix: the same
    /// session bytes split into arbitrary chunks — one byte at a time
    /// included — produce byte-identical output, with the output
    /// drained (interleaved) after every chunk exactly as a reactor
    /// would.
    #[test]
    fn output_is_invariant_under_any_chunking(
        mode_ix in 0usize..MODES.len(),
        seed in prop_oneof![Just(None), Just(Some(7u64))],
        batch in prop_oneof![Just(None), Just(Some(1usize)), Just(Some(5usize))],
        hangup in prop_oneof![Just(false), Just(true)],
        chunks in proptest::collection::vec(1usize..17, 1..40),
    ) {
        let mode = MODES[mode_ix];
        let spec = match seed {
            None => "greedy".to_string(),
            Some(s) => format!("aag-weighted?seed={s}"),
        };
        let script = session_script(mode, &spec, batch, hangup);
        let whole = drive_whole(mode, &script);
        assert_valid_output(&whole, &format!("{mode:?} whole"));

        // Chunked feed, draining after every chunk (the generated
        // chunk sizes repeat cyclically to cover the whole script).
        let mut c = machine_for(mode);
        let mut out = Vec::new();
        let mut offset = 0usize;
        let mut i = 0usize;
        while offset < script.len() {
            let n = chunks[i % chunks.len()].min(script.len() - offset);
            c.feed(&script[offset..offset + n]);
            out.extend_from_slice(&c.drain_output());
            offset += n;
            i += 1;
        }
        c.feed_eof();
        out.extend_from_slice(&c.drain_output());
        prop_assert_eq!(
            out, whole,
            "chunked output diverges ({:?}, batch {:?}, hangup {})",
            mode, batch, hangup
        );
    }

    /// Corrupting any byte of a valid session: the machine never
    /// panics, everything it emits still parses as the reply grammar,
    /// and every error is one typed `ERR`.
    #[test]
    fn corrupting_any_byte_yields_parseable_replies(
        mode_ix in 0usize..MODES.len(),
        pos_seed in 0usize..100_000,
        byte in 0u8..=255u8,
    ) {
        let mode = MODES[mode_ix];
        let mut script = session_script(mode, "greedy?seed=5", Some(5), false);
        let pos = pos_seed % script.len();
        script[pos] = byte;
        let out = drive_whole(mode, &script);
        assert_valid_output(&out, &format!("{mode:?} corrupt [{pos}]={byte:#04x}"));
    }

    /// Truncating a valid session at any byte: the machine finishes
    /// cleanly — done, with either a completed run, a legal-boundary
    /// hangup, or one typed `ERR`; never a wedge, never garbage.
    #[test]
    fn truncation_anywhere_finishes_with_a_typed_reply(
        mode_ix in 0usize..MODES.len(),
        len_seed in 0usize..100_000,
    ) {
        let mode = MODES[mode_ix];
        let script = session_script(mode, "greedy?seed=5", Some(5), false);
        let len = len_seed % (script.len() + 1);
        let mut c = machine_for(mode);
        c.feed(&script[..len]);
        c.feed_eof();
        prop_assert!(c.is_done(), "machine not done after EOF at byte {}", len);
        let out = c.drain_output();
        assert_valid_output(&out, &format!("{mode:?} truncate at {len}"));
    }
}

#[test]
fn v1_capped_machine_rejects_the_v2_negotiation_with_err_parse() {
    // The matrix cell worth pinning deterministically: `proto=v2`
    // against a v1-only machine is a typed parse error, in the line
    // dialect (the upgrade never happened).
    let mut c = machine_for(Mode::V2AgainstV1Cap);
    c.feed(&session_script(Mode::V2AgainstV1Cap, "greedy", None, false));
    c.feed_eof();
    assert!(c.is_done());
    let out = c.drain_output();
    let text = std::str::from_utf8(&out).unwrap();
    let err = text
        .lines()
        .find(|l| l.starts_with("ERR "))
        .expect("typed ERR reply");
    assert!(err.starts_with("ERR parse"), "{err:?}");
}

#[test]
fn stats_probe_is_deterministic_for_a_fixed_feed() {
    // STATS replies include `bytes_in`, which counts *received* bytes
    // — deliberately not chunking-invariant (a probe observes real
    // transport progress), which is why the proptest matrix above
    // never sends STATS. For one fixed feed pattern the reply is
    // still fully deterministic, pinned here.
    let run = || {
        let mut c = machine_for(Mode::V1);
        c.feed(b"STATS\n");
        let first = c.drain_output();
        c.feed(b"STATS\n");
        (first, c.drain_output())
    };
    let (a1, a2) = run();
    let (b1, b2) = run();
    assert_eq!(a1, b1);
    assert_eq!(a2, b2);
    assert_valid_output(&a1, "stats probe");
}
